//! The worker-pool execution engine behind the parallel iterators.
//!
//! Design (see DESIGN.md §9 for the full discussion):
//!
//! * A **pool** is `num_threads`-way parallelism: `num_threads - 1` detached
//!   worker threads plus the calling thread, which always participates. The
//!   global pool is built lazily on first use (`RAYON_NUM_THREADS` or the
//!   host's available parallelism); explicit pools come from
//!   [`crate::ThreadPoolBuilder`].
//! * A parallel call splits its work into **pieces** and publishes one job to
//!   the pool. Workers and the caller all run the same claim loop: grab the
//!   next piece index from an atomic counter, run it, repeat. Dynamic
//!   claiming load-balances skewed pieces for free.
//! * The **caller always runs the claim loop itself**, so every parallel call
//!   makes progress even if all workers are busy elsewhere — the pool only
//!   ever accelerates, it can never deadlock a caller.
//! * Workers never block while holding work, and a parallel call issued
//!   *from inside* a worker (nested parallelism) is detected via a
//!   thread-local flag and inlined sequentially, so there is no cyclic
//!   waiting anywhere in the engine.
//! * A panic in a piece is caught, the remaining pieces are drained quickly
//!   (each claim re-checks a poison flag), and the payload is re-thrown on
//!   the calling thread once every outstanding piece has finished — the same
//!   observable behavior as rayon.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Pool observability (DESIGN.md §12): every series is `Runtime`-class —
/// piece counts, idle time, and wait time all legitimately vary with
/// thread count and scheduling. Handles are resolved once and cached.
struct PoolMetrics {
    /// Parallel calls dispatched through a pool's claim loop.
    par_calls: sb_metrics::Counter,
    /// Parallel calls degraded to sequential inline execution (1-thread
    /// pool, nested call, or a single piece).
    inline_calls: sb_metrics::Counter,
    /// Work pieces claimed and executed, across callers and workers.
    pieces_claimed: sb_metrics::Counter,
    /// Job copies published to worker queues.
    jobs_published: sb_metrics::Counter,
    /// `ThreadPool::install` scopes entered.
    installs: sb_metrics::Counter,
    /// Worker threads spawned (across all pools ever started).
    threads_started: sb_metrics::Counter,
    /// Time workers spent parked waiting for a job, microseconds.
    worker_idle_us: sb_metrics::Counter,
    /// Time callers spent waiting for stragglers after exhausting the
    /// claim counter themselves, microseconds.
    caller_wait_us: sb_metrics::Counter,
}

fn metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        use sb_metrics::Class::Runtime;
        let r = sb_metrics::global();
        PoolMetrics {
            par_calls: r.counter("sb_pool_par_calls", Runtime),
            inline_calls: r.counter("sb_pool_inline_calls", Runtime),
            pieces_claimed: r.counter("sb_pool_pieces_claimed", Runtime),
            jobs_published: r.counter("sb_pool_jobs_published", Runtime),
            installs: r.counter("sb_pool_installs", Runtime),
            threads_started: r.counter("sb_pool_threads_started", Runtime),
            worker_idle_us: r.counter("sb_pool_worker_idle_us", Runtime),
            caller_wait_us: r.counter("sb_pool_caller_wait_us", Runtime),
        }
    })
}

/// Pieces-per-thread oversubscription factor: enough pieces that dynamic
/// claiming can balance skew, few enough that claim overhead is noise.
const PIECES_PER_THREAD: usize = 4;

/// Below this many base items a parallel call runs sequentially inline —
/// dispatch costs more than the work (compare `prim::BLOCK`).
pub(crate) const SEQ_THRESHOLD: usize = 4096;

thread_local! {
    /// Set while this thread is executing a piece on behalf of a pool, so
    /// nested parallel calls degrade to sequential inline execution.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Pool stack pushed by `ThreadPool::install`.
    static CURRENT: std::cell::RefCell<Vec<Arc<PoolCore>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// True while executing on a pool worker (nested calls must inline).
pub(crate) fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// One published parallel job: a lifetime-erased claim-loop runner that any
/// number of threads may call concurrently, plus the copy accounting the
/// caller waits on before its stack frame (which the runner borrows) dies.
struct Job {
    /// The claim-loop runner. SAFETY: points into the stack frame of the
    /// caller, which blocks in [`PoolCore::run`] until `copies_left == 0`.
    runner: &'static (dyn Fn() + Sync),
    /// Copies published minus copies finished; guarded by `lock`.
    lock: Mutex<usize>,
    cv: Condvar,
}

impl Job {
    fn copy_done(&self) {
        let mut left = self.lock.lock().unwrap();
        *left -= 1;
        if *left == 0 {
            self.cv.notify_all();
        }
    }

    fn wait_all_copies(&self) {
        let mut left = self.lock.lock().unwrap();
        while *left > 0 {
            left = self.cv.wait(left).unwrap();
        }
    }
}

struct Queue {
    jobs: VecDeque<Arc<Job>>,
    shutdown: bool,
}

/// Shared pool state: worker threads pull jobs from the queue.
pub(crate) struct PoolCore {
    num_threads: usize,
    queue: Mutex<Queue>,
    available: Condvar,
}

impl PoolCore {
    fn start(num_threads: usize) -> Arc<PoolCore> {
        let core = Arc::new(PoolCore {
            num_threads,
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        for i in 0..num_threads.saturating_sub(1) {
            let c = Arc::clone(&core);
            std::thread::Builder::new()
                .name(format!("sb-pool-{i}"))
                .spawn(move || c.worker_loop())
                .expect("spawn pool worker");
        }
        metrics()
            .threads_started
            .add(num_threads.saturating_sub(1) as u64);
        core
    }

    fn worker_loop(&self) {
        IN_WORKER.with(|w| w.set(true));
        loop {
            let idle_from = Instant::now();
            let job = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        break job;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = self.available.wait(q).unwrap();
                }
            };
            metrics()
                .worker_idle_us
                .add(idle_from.elapsed().as_micros() as u64);
            // A panic in the runner is already captured into the job's
            // poison slot by the runner itself (see `run`), so the worker
            // thread survives every job.
            (job.runner)();
            job.copy_done();
        }
    }

    /// Degree of parallelism this pool provides (workers + caller).
    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `pieces` work items: `piece_fn(i)` for every `i in 0..pieces`,
    /// claimed dynamically by the caller and up to `num_threads - 1`
    /// workers. Returns when every piece has finished. Re-throws the first
    /// piece panic on the calling thread.
    pub(crate) fn run(self: &Arc<Self>, pieces: usize, piece_fn: &(dyn Fn(usize) + Sync)) {
        if pieces == 0 {
            return;
        }
        metrics().par_calls.inc();
        let next = AtomicUsize::new(0);
        let poisoned = AtomicBool::new(false);
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let runner = || {
            // One batched metrics update per runner copy, not per piece:
            // the claim loop itself must stay two atomic ops long.
            let mut claimed = 0u64;
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= pieces || poisoned.load(Ordering::Relaxed) {
                    break;
                }
                claimed += 1;
                // Keep the engine alive through piece panics: record the
                // first payload, drain the rest of the claim loop fast.
                if let Err(payload) =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| piece_fn(i)))
                {
                    poisoned.store(true, Ordering::Relaxed);
                    let mut slot = panic_slot.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            if claimed > 0 {
                metrics().pieces_claimed.add(claimed);
            }
        };

        let copies = (self.num_threads - 1).min(pieces.saturating_sub(1));
        let job = if copies > 0 {
            let erased: &(dyn Fn() + Sync) = &runner;
            // SAFETY: `runner` borrows this stack frame. The transmute to
            // 'static is sound because we do not return before
            // `wait_all_copies()` observes that every published copy has
            // finished calling it (workers call `copy_done` strictly after
            // their last use of `runner`).
            let erased: &'static (dyn Fn() + Sync) = unsafe { std::mem::transmute(erased) };
            let job = Arc::new(Job {
                runner: erased,
                lock: Mutex::new(copies),
                cv: Condvar::new(),
            });
            {
                let mut q = self.queue.lock().unwrap();
                for _ in 0..copies {
                    q.jobs.push_back(Arc::clone(&job));
                }
            }
            metrics().jobs_published.add(copies as u64);
            self.available.notify_all();
            Some(job)
        } else {
            None
        };

        // The caller is one of the pool's threads: claim pieces too. Its
        // runner exits only when the claim counter is exhausted, i.e. every
        // piece is claimed; stragglers finish before `wait_all_copies`.
        // While claiming, the caller counts as a worker so nested parallel
        // calls inside a piece inline instead of re-entering the pool.
        {
            struct Restore(bool);
            impl Drop for Restore {
                fn drop(&mut self) {
                    IN_WORKER.with(|w| w.set(self.0));
                }
            }
            let _restore = Restore(IN_WORKER.with(|w| w.replace(true)));
            runner();
        }
        if let Some(job) = job {
            let wait_from = Instant::now();
            job.wait_all_copies();
            metrics()
                .caller_wait_us
                .add(wait_from.elapsed().as_micros() as u64);
        }
        if let Some(payload) = panic_slot.into_inner().unwrap() {
            std::panic::resume_unwind(payload);
        }
    }

    fn shutdown(&self) {
        let mut q = self.queue.lock().unwrap();
        q.shutdown = true;
        drop(q);
        self.available.notify_all();
    }
}

/// Default parallelism: `RAYON_NUM_THREADS` if set and positive, else the
/// host's available parallelism.
fn default_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// The lazily-built global pool backing parallel calls made outside any
/// `ThreadPool::install` scope.
fn global() -> &'static Arc<PoolCore> {
    static GLOBAL: OnceLock<Arc<PoolCore>> = OnceLock::new();
    GLOBAL.get_or_init(|| PoolCore::start(default_num_threads()))
}

/// The pool governing parallel calls on this thread right now: the
/// innermost `install`, else the global pool.
pub(crate) fn current() -> Arc<PoolCore> {
    CURRENT
        .with(|c| c.borrow().last().cloned())
        .unwrap_or_else(|| Arc::clone(global()))
}

/// Effective parallelism for a call issued on this thread: 1 inside a
/// worker (nested calls inline), else the current pool's thread count.
pub(crate) fn effective_parallelism() -> usize {
    if in_worker() {
        1
    } else {
        current().num_threads()
    }
}

/// Execute `pieces` claims of `piece_fn` with the current pool, sequentially
/// when parallelism is unavailable (1-thread pool or nested call).
pub(crate) fn execute(pieces: usize, piece_fn: &(dyn Fn(usize) + Sync)) {
    let pool = if in_worker() { None } else { Some(current()) };
    match pool {
        Some(pool) if pool.num_threads() > 1 && pieces > 1 => pool.run(pieces, piece_fn),
        _ => {
            if pieces > 0 {
                metrics().inline_calls.inc();
            }
            for i in 0..pieces {
                piece_fn(i);
            }
        }
    }
}

/// How many pieces a workload of `work_items` base items should split into
/// under the current pool, or 1 when it should stay sequential.
pub(crate) fn piece_count(work_items: usize) -> usize {
    let threads = effective_parallelism();
    if threads <= 1 || work_items < SEQ_THRESHOLD {
        return 1;
    }
    (threads * PIECES_PER_THREAD).min(work_items)
}

/// Guard that pushes a pool as this thread's current for a scope.
pub(crate) struct InstallGuard;

impl InstallGuard {
    pub(crate) fn push(core: Arc<PoolCore>) -> InstallGuard {
        metrics().installs.inc();
        CURRENT.with(|c| c.borrow_mut().push(core));
        InstallGuard
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Owned handle used by [`crate::ThreadPool`]: shuts the workers down (and
/// lets them drain the queue) when the last handle drops.
pub(crate) struct PoolHandle {
    pub(crate) core: Arc<PoolCore>,
}

impl PoolHandle {
    pub(crate) fn new(num_threads: usize) -> PoolHandle {
        let n = if num_threads == 0 {
            default_num_threads()
        } else {
            num_threads
        };
        PoolHandle {
            core: PoolCore::start(n),
        }
    }
}

impl Drop for PoolHandle {
    fn drop(&mut self) {
        self.core.shutdown();
    }
}
