//! The worker-pool execution engine behind the parallel iterators.
//!
//! Design (see DESIGN.md §9 for the full discussion):
//!
//! * A **pool** is `num_threads`-way parallelism: `num_threads - 1` detached
//!   worker threads plus the calling thread, which always participates. The
//!   global pool is built lazily on first use (`RAYON_NUM_THREADS` or the
//!   host's available parallelism); explicit pools come from
//!   [`crate::ThreadPoolBuilder`].
//! * A parallel call splits its work into **pieces** and publishes one job to
//!   the pool. Workers and the caller all run the same claim loop. Two
//!   claim disciplines exist, selected by [`ScheduleStrategy`]:
//!   - **Stealing** (the default): each participant owns a bounded deque — a
//!     contiguous piece range packed into one `AtomicU64` — pops chunks from
//!     its own bottom, and steals the top half of a victim's range when its
//!     own deque runs dry. Chunk size starts coarse and halves under
//!     observed steal pressure, so uniform workloads pay near-zero claim
//!     traffic while skewed workloads rebalance (see DESIGN.md §14).
//!   - **GlobalCounter**: the original single `AtomicUsize` claim counter,
//!     kept runtime-selectable (`SBREAK_POOL_STRATEGY=counter`) as the A/B
//!     baseline for `ablate_threads`.
//! * The **caller always runs the claim loop itself**, so every parallel call
//!   makes progress even if all workers are busy elsewhere — the pool only
//!   ever accelerates, it can never deadlock a caller.
//! * Workers never block while holding work, and a parallel call issued
//!   *from inside* a worker (nested parallelism) is detected via a
//!   thread-local flag and inlined sequentially, so there is no cyclic
//!   waiting anywhere in the engine.
//! * A panic in a piece is caught, the remaining pieces are drained quickly
//!   (each claim re-checks a poison flag), and the payload is re-thrown on
//!   the calling thread once every outstanding piece has finished — the same
//!   observable behavior as rayon.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Pool observability (DESIGN.md §12): every series is `Runtime`-class —
/// piece counts, idle time, and wait time all legitimately vary with
/// thread count and scheduling. Handles are resolved once and cached.
struct PoolMetrics {
    /// Parallel calls dispatched through a pool's claim loop.
    par_calls: sb_metrics::Counter,
    /// Parallel calls degraded to sequential inline execution (1-thread
    /// pool, nested call, or a single piece).
    inline_calls: sb_metrics::Counter,
    /// Work pieces claimed and executed, across callers and workers.
    pieces_claimed: sb_metrics::Counter,
    /// Job copies published to worker queues.
    jobs_published: sb_metrics::Counter,
    /// `ThreadPool::install` scopes entered.
    installs: sb_metrics::Counter,
    /// Worker threads spawned (across all pools ever started).
    threads_started: sb_metrics::Counter,
    /// Time workers spent parked waiting for a job, microseconds.
    worker_idle_us: sb_metrics::Counter,
    /// Time callers spent waiting for stragglers after exhausting the
    /// claim counter themselves, microseconds.
    caller_wait_us: sb_metrics::Counter,
    /// Successful steals: a participant took the top half of a victim's
    /// piece range (stealing strategy only).
    steals: sb_metrics::Counter,
    /// Steal attempts that lost the CAS race or found the victim drained
    /// between the scan and the attempt.
    steal_failures: sb_metrics::Counter,
    /// Chunk sizes (in pieces) claimed by pop/steal operations, log2
    /// buckets — shows how far the adaptive chunk size decayed under steal
    /// pressure.
    chunk_pieces: sb_metrics::Histogram,
}

fn metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        use sb_metrics::Class::Runtime;
        let r = sb_metrics::global();
        PoolMetrics {
            par_calls: r.counter("sb_pool_par_calls", Runtime),
            inline_calls: r.counter("sb_pool_inline_calls", Runtime),
            pieces_claimed: r.counter("sb_pool_pieces_claimed", Runtime),
            jobs_published: r.counter("sb_pool_jobs_published", Runtime),
            installs: r.counter("sb_pool_installs", Runtime),
            threads_started: r.counter("sb_pool_threads_started", Runtime),
            worker_idle_us: r.counter("sb_pool_worker_idle_us", Runtime),
            caller_wait_us: r.counter("sb_pool_caller_wait_us", Runtime),
            steals: r.counter("sb_pool_steals", Runtime),
            steal_failures: r.counter("sb_pool_steal_failures", Runtime),
            chunk_pieces: r.histogram("sb_pool_chunk_pieces", Runtime),
        }
    })
}

/// How a parallel call's pieces are claimed by the pool's participants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleStrategy {
    /// Per-participant bounded deques with steal-half rebalancing and an
    /// adaptive chunk size (the default).
    Stealing,
    /// The original single global `AtomicUsize` claim counter — the A/B
    /// baseline for the stealing scheduler.
    GlobalCounter,
}

/// Current strategy, encoded: 0 = unresolved, 1 = Stealing, 2 = GlobalCounter.
static STRATEGY: AtomicU8 = AtomicU8::new(0);

/// The strategy governing parallel calls right now. Resolved once from
/// `SBREAK_POOL_STRATEGY` (`stealing` | `counter`) on first use, default
/// `Stealing`; overridable at runtime with [`set_schedule_strategy`].
pub fn schedule_strategy() -> ScheduleStrategy {
    match STRATEGY.load(Ordering::Relaxed) {
        1 => ScheduleStrategy::Stealing,
        2 => ScheduleStrategy::GlobalCounter,
        _ => {
            let resolved = match std::env::var("SBREAK_POOL_STRATEGY").as_deref() {
                Ok("counter") | Ok("global-counter") => ScheduleStrategy::GlobalCounter,
                _ => ScheduleStrategy::Stealing,
            };
            set_schedule_strategy(resolved);
            resolved
        }
    }
}

/// Select the claim discipline for subsequent parallel calls (process-wide;
/// in-flight calls finish under the strategy they started with).
pub fn set_schedule_strategy(s: ScheduleStrategy) {
    let code = match s {
        ScheduleStrategy::Stealing => 1,
        ScheduleStrategy::GlobalCounter => 2,
    };
    STRATEGY.store(code, Ordering::Relaxed);
}

/// A claim discipline distributes piece indices `0..pieces` over the
/// participants of one parallel call. Every participant (caller + worker
/// copies) calls [`claim`](ClaimDiscipline::claim) exactly once; each piece
/// index must be handed to `run_piece` exactly once across all participants.
/// `run_piece` returns `false` when the call is poisoned and the loop should
/// drain without executing further pieces.
trait ClaimDiscipline: Sync {
    fn claim(&self, run_piece: &(dyn Fn(usize) -> bool + Sync));
}

/// The original discipline: one global fetch-add counter. Two atomic ops
/// per claim, but every claim contends on one cache line.
struct CounterClaim {
    next: AtomicUsize,
    pieces: usize,
}

impl ClaimDiscipline for CounterClaim {
    fn claim(&self, run_piece: &(dyn Fn(usize) -> bool + Sync)) {
        // One batched metrics update per runner copy, not per piece:
        // the claim loop itself must stay two atomic ops long.
        let mut claimed = 0u64;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.pieces {
                break;
            }
            claimed += 1;
            if !run_piece(i) {
                break;
            }
        }
        if claimed > 0 {
            metrics().pieces_claimed.add(claimed);
        }
    }
}

/// Pack a half-open piece range `[lo, hi)` into one `AtomicU64` word so a
/// pop or steal is a single compare-exchange — no Chase–Lev ABA concerns,
/// because the whole deque state moves atomically.
#[inline]
fn pack(lo: u32, hi: u32) -> u64 {
    (u64::from(hi) << 32) | u64::from(lo)
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    (word as u32, (word >> 32) as u32)
}

/// The stealing discipline (DESIGN.md §14): each participant owns one
/// bounded deque — a contiguous range of piece indices in a packed
/// `AtomicU64`. Owners pop adaptive-size chunks from the bottom (`lo`);
/// when dry, they scan the other slots and steal the **top half** of a
/// victim's range (`hi` side), depositing the stolen range into their own
/// empty slot. The chunk size starts coarse (half a slot's initial share)
/// and halves per observed steal, floor 1: uniform workloads touch their
/// own cache line a handful of times, skewed workloads decay to fine-grained
/// rebalancing.
struct StealClaim {
    /// One packed `[lo, hi)` range per slot. Invariant: a slot is written
    /// by arbitrary thieves via CAS, but *stored* (non-CAS) only by its
    /// owner, and only while empty — see the deposit comment in `claim`.
    deques: Vec<AtomicU64>,
    /// Participants that have entered `claim`, used to hand out unique
    /// slot indices. Participants ≤ num_threads = slot count by
    /// construction of `run`.
    joined: AtomicUsize,
    /// Total successful steals in this call — the pressure signal the
    /// adaptive chunk size keys off.
    steals: AtomicUsize,
    /// Starting chunk size: half of one slot's initial share.
    initial_chunk: usize,
}

impl StealClaim {
    fn new(pieces: usize, slots: usize) -> StealClaim {
        let slots = slots.max(1);
        // Contiguous static partition; slots past the work end start empty.
        let share = pieces.div_ceil(slots);
        let deques = (0..slots)
            .map(|s| {
                let lo = (s * share).min(pieces);
                let hi = ((s + 1) * share).min(pieces);
                AtomicU64::new(pack(lo as u32, hi as u32))
            })
            .collect();
        StealClaim {
            deques,
            joined: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            initial_chunk: share.div_ceil(2).max(1),
        }
    }

    /// Chunk size under current steal pressure: start coarse, halve per
    /// observed steal (saturating at a 64x reduction), floor 1.
    fn chunk_size(&self) -> usize {
        let pressure = self.steals.load(Ordering::Relaxed).min(6) as u32;
        (self.initial_chunk >> pressure).max(1)
    }
}

impl ClaimDiscipline for StealClaim {
    fn claim(&self, run_piece: &(dyn Fn(usize) -> bool + Sync)) {
        let slots = self.deques.len();
        let me = self.joined.fetch_add(1, Ordering::Relaxed) % slots;
        let mut claimed = 0u64;
        'work: loop {
            // Pop chunks from the bottom of our own deque until it is dry.
            loop {
                let cur = self.deques[me].load(Ordering::Acquire);
                let (lo, hi) = unpack(cur);
                if lo >= hi {
                    break;
                }
                let take = self.chunk_size().min((hi - lo) as usize) as u32;
                if self.deques[me]
                    .compare_exchange(
                        cur,
                        pack(lo + take, hi),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_err()
                {
                    // A thief moved `hi` under us; reload and retry.
                    continue;
                }
                metrics().chunk_pieces.observe(u64::from(take));
                claimed += u64::from(take);
                for i in lo..lo + take {
                    if !run_piece(i as usize) {
                        break 'work;
                    }
                }
            }
            // Own deque dry: scan the other slots for a victim and steal
            // the top half of its range.
            let mut saw_work = false;
            for d in 1..slots {
                let victim = (me + d) % slots;
                let cur = self.deques[victim].load(Ordering::Acquire);
                let (lo, hi) = unpack(cur);
                if lo >= hi {
                    continue;
                }
                saw_work = true;
                let take = ((hi - lo) as usize).div_ceil(2) as u32;
                if self.deques[victim]
                    .compare_exchange(
                        cur,
                        pack(lo, hi - take),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    // Deposit the stolen range into our own slot. A plain
                    // store (not CAS) is sound: only the owner stores to
                    // its slot, and only while the slot is empty — a
                    // concurrent thief's CAS on this slot either read the
                    // pre-store empty word (so it skipped us as drained) or
                    // the post-store word (an ordinary race-free steal).
                    self.deques[me].store(pack(hi - take, hi), Ordering::Release);
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    metrics().steals.inc();
                    continue 'work;
                }
                metrics().steal_failures.inc();
            }
            if !saw_work {
                // Every deque observed empty: all pieces are claimed
                // (in-flight chunks belong to participants executing them).
                break;
            }
            // Lost every steal race this scan; back off briefly and rescan.
            std::hint::spin_loop();
        }
        if claimed > 0 {
            metrics().pieces_claimed.add(claimed);
        }
    }
}

/// Pieces-per-thread oversubscription factor under the global-counter
/// discipline: enough pieces that dynamic claiming can balance skew, few
/// enough that claim overhead is noise.
const PIECES_PER_THREAD: usize = 4;

/// Pieces-per-thread under the stealing discipline: the per-owner deques
/// make claims nearly free (uniform loads pop a handful of coarse chunks),
/// so we can afford a finer split that gives steal-half rebalancing real
/// granularity on skewed workloads.
const STEAL_PIECES_PER_THREAD: usize = 16;

/// Below this many base items a parallel call runs sequentially inline —
/// dispatch costs more than the work (compare `prim::BLOCK`).
pub(crate) const SEQ_THRESHOLD: usize = 4096;

thread_local! {
    /// Set while this thread is executing a piece on behalf of a pool, so
    /// nested parallel calls degrade to sequential inline execution.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Pool stack pushed by `ThreadPool::install`.
    static CURRENT: std::cell::RefCell<Vec<Arc<PoolCore>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// True while executing on a pool worker (nested calls must inline).
pub(crate) fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// One published parallel job: a lifetime-erased claim-loop runner that any
/// number of threads may call concurrently, plus the copy accounting the
/// caller waits on before its stack frame (which the runner borrows) dies.
struct Job {
    /// The claim-loop runner. SAFETY: points into the stack frame of the
    /// caller, which blocks in [`PoolCore::run`] until `copies_left == 0`.
    runner: &'static (dyn Fn() + Sync),
    /// Copies published minus copies finished; guarded by `lock`.
    lock: Mutex<usize>,
    cv: Condvar,
}

impl Job {
    fn copy_done(&self) {
        let mut left = self.lock.lock().unwrap();
        *left -= 1;
        if *left == 0 {
            self.cv.notify_all();
        }
    }

    fn wait_all_copies(&self) {
        let mut left = self.lock.lock().unwrap();
        while *left > 0 {
            left = self.cv.wait(left).unwrap();
        }
    }
}

struct Queue {
    jobs: VecDeque<Arc<Job>>,
    shutdown: bool,
}

/// Shared pool state: worker threads pull jobs from the queue.
pub(crate) struct PoolCore {
    num_threads: usize,
    queue: Mutex<Queue>,
    available: Condvar,
}

impl PoolCore {
    fn start(num_threads: usize) -> Arc<PoolCore> {
        let core = Arc::new(PoolCore {
            num_threads,
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        for i in 0..num_threads.saturating_sub(1) {
            let c = Arc::clone(&core);
            std::thread::Builder::new()
                .name(format!("sb-pool-{i}"))
                .spawn(move || c.worker_loop())
                .expect("spawn pool worker");
        }
        metrics()
            .threads_started
            .add(num_threads.saturating_sub(1) as u64);
        core
    }

    fn worker_loop(&self) {
        IN_WORKER.with(|w| w.set(true));
        loop {
            let idle_from = Instant::now();
            let job = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        break job;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = self.available.wait(q).unwrap();
                }
            };
            metrics()
                .worker_idle_us
                .add(idle_from.elapsed().as_micros() as u64);
            // A panic in the runner is already captured into the job's
            // poison slot by the runner itself (see `run`), so the worker
            // thread survives every job.
            (job.runner)();
            job.copy_done();
        }
    }

    /// Degree of parallelism this pool provides (workers + caller).
    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `pieces` work items: `piece_fn(i)` for every `i in 0..pieces`,
    /// claimed dynamically by the caller and up to `num_threads - 1`
    /// workers under the current [`ScheduleStrategy`]. Returns when every
    /// piece has finished. Re-throws the first piece panic on the calling
    /// thread.
    pub(crate) fn run(self: &Arc<Self>, pieces: usize, piece_fn: &(dyn Fn(usize) + Sync)) {
        if pieces == 0 {
            return;
        }
        match schedule_strategy() {
            ScheduleStrategy::GlobalCounter => self.run_with(
                pieces,
                piece_fn,
                &CounterClaim {
                    next: AtomicUsize::new(0),
                    pieces,
                },
            ),
            ScheduleStrategy::Stealing => {
                self.run_with(pieces, piece_fn, &StealClaim::new(pieces, self.num_threads))
            }
        }
    }

    fn run_with(
        self: &Arc<Self>,
        pieces: usize,
        piece_fn: &(dyn Fn(usize) + Sync),
        discipline: &dyn ClaimDiscipline,
    ) {
        metrics().par_calls.inc();
        let poisoned = AtomicBool::new(false);
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        // Shared piece executor: claimed by whichever discipline is active.
        // Returns false once the call is poisoned, telling the discipline's
        // claim loop to drain fast. Keeps the engine alive through piece
        // panics: record the first payload, re-throw it on the caller.
        let run_piece = |i: usize| -> bool {
            if poisoned.load(Ordering::Relaxed) {
                return false;
            }
            if let Err(payload) =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| piece_fn(i)))
            {
                poisoned.store(true, Ordering::Relaxed);
                let mut slot = panic_slot.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            true
        };
        let runner = || discipline.claim(&run_piece);

        let copies = (self.num_threads - 1).min(pieces.saturating_sub(1));
        let job = if copies > 0 {
            let erased: &(dyn Fn() + Sync) = &runner;
            // SAFETY: `runner` borrows this stack frame. The transmute to
            // 'static is sound because we do not return before
            // `wait_all_copies()` observes that every published copy has
            // finished calling it (workers call `copy_done` strictly after
            // their last use of `runner`).
            let erased: &'static (dyn Fn() + Sync) = unsafe { std::mem::transmute(erased) };
            let job = Arc::new(Job {
                runner: erased,
                lock: Mutex::new(copies),
                cv: Condvar::new(),
            });
            {
                let mut q = self.queue.lock().unwrap();
                for _ in 0..copies {
                    q.jobs.push_back(Arc::clone(&job));
                }
            }
            metrics().jobs_published.add(copies as u64);
            self.available.notify_all();
            Some(job)
        } else {
            None
        };

        // The caller is one of the pool's threads: claim pieces too. Its
        // runner exits only when the claim counter is exhausted, i.e. every
        // piece is claimed; stragglers finish before `wait_all_copies`.
        // While claiming, the caller counts as a worker so nested parallel
        // calls inside a piece inline instead of re-entering the pool.
        {
            struct Restore(bool);
            impl Drop for Restore {
                fn drop(&mut self) {
                    IN_WORKER.with(|w| w.set(self.0));
                }
            }
            let _restore = Restore(IN_WORKER.with(|w| w.replace(true)));
            runner();
        }
        if let Some(job) = job {
            let wait_from = Instant::now();
            job.wait_all_copies();
            metrics()
                .caller_wait_us
                .add(wait_from.elapsed().as_micros() as u64);
        }
        if let Some(payload) = panic_slot.into_inner().unwrap() {
            std::panic::resume_unwind(payload);
        }
    }

    fn shutdown(&self) {
        let mut q = self.queue.lock().unwrap();
        q.shutdown = true;
        drop(q);
        self.available.notify_all();
    }
}

/// Default parallelism: `RAYON_NUM_THREADS` if set and positive, else the
/// host's available parallelism.
fn default_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// The lazily-built global pool backing parallel calls made outside any
/// `ThreadPool::install` scope.
fn global() -> &'static Arc<PoolCore> {
    static GLOBAL: OnceLock<Arc<PoolCore>> = OnceLock::new();
    GLOBAL.get_or_init(|| PoolCore::start(default_num_threads()))
}

/// The pool governing parallel calls on this thread right now: the
/// innermost `install`, else the global pool.
pub(crate) fn current() -> Arc<PoolCore> {
    CURRENT
        .with(|c| c.borrow().last().cloned())
        .unwrap_or_else(|| Arc::clone(global()))
}

/// Effective parallelism for a call issued on this thread: 1 inside a
/// worker (nested calls inline), else the current pool's thread count.
pub(crate) fn effective_parallelism() -> usize {
    if in_worker() {
        1
    } else {
        current().num_threads()
    }
}

/// Execute `pieces` claims of `piece_fn` with the current pool, sequentially
/// when parallelism is unavailable (1-thread pool or nested call).
pub(crate) fn execute(pieces: usize, piece_fn: &(dyn Fn(usize) + Sync)) {
    let pool = if in_worker() { None } else { Some(current()) };
    match pool {
        Some(pool) if pool.num_threads() > 1 && pieces > 1 => pool.run(pieces, piece_fn),
        _ => {
            if pieces > 0 {
                metrics().inline_calls.inc();
            }
            for i in 0..pieces {
                piece_fn(i);
            }
        }
    }
}

/// How many pieces a workload of `work_items` base items should split into
/// under the current pool, or 1 when it should stay sequential.
pub(crate) fn piece_count(work_items: usize) -> usize {
    let threads = effective_parallelism();
    if threads <= 1 || work_items < SEQ_THRESHOLD {
        return 1;
    }
    let per_thread = match schedule_strategy() {
        ScheduleStrategy::Stealing => STEAL_PIECES_PER_THREAD,
        ScheduleStrategy::GlobalCounter => PIECES_PER_THREAD,
    };
    (threads * per_thread).min(work_items)
}

/// Guard that pushes a pool as this thread's current for a scope.
pub(crate) struct InstallGuard;

impl InstallGuard {
    pub(crate) fn push(core: Arc<PoolCore>) -> InstallGuard {
        metrics().installs.inc();
        CURRENT.with(|c| c.borrow_mut().push(core));
        InstallGuard
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Owned handle used by [`crate::ThreadPool`]: shuts the workers down (and
/// lets them drain the queue) when the last handle drops.
pub(crate) struct PoolHandle {
    pub(crate) core: Arc<PoolCore>,
}

impl PoolHandle {
    pub(crate) fn new(num_threads: usize) -> PoolHandle {
        let n = if num_threads == 0 {
            default_num_threads()
        } else {
            num_threads
        };
        PoolHandle {
            core: PoolCore::start(n),
        }
    }
}

impl Drop for PoolHandle {
    fn drop(&mut self) {
        self.core.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a discipline with `participants` scoped threads and return how
    /// many times each piece index was handed out.
    fn drive(d: &dyn ClaimDiscipline, pieces: usize, participants: usize) -> Vec<usize> {
        let counts: Vec<AtomicUsize> = (0..pieces).map(|_| AtomicUsize::new(0)).collect();
        let run_piece = |i: usize| -> bool {
            counts[i].fetch_add(1, Ordering::Relaxed);
            true
        };
        std::thread::scope(|s| {
            for _ in 0..participants {
                s.spawn(|| d.claim(&run_piece));
            }
        });
        counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    #[test]
    fn counter_claim_hands_out_each_piece_exactly_once() {
        for (pieces, parts) in [(1, 1), (7, 3), (64, 4), (1000, 8)] {
            let d = CounterClaim {
                next: AtomicUsize::new(0),
                pieces,
            };
            let counts = drive(&d, pieces, parts);
            assert!(
                counts.iter().all(|&c| c == 1),
                "pieces={pieces} parts={parts}: {counts:?}"
            );
        }
    }

    #[test]
    fn steal_claim_hands_out_each_piece_exactly_once() {
        // Shapes chosen to hit: single slot (no thieves), pieces < slots
        // (empty tail slots), pieces not divisible by slots, fewer
        // participants than slots (unowned non-empty slots must be stolen),
        // and chunk sizes spanning several halvings.
        for (pieces, slots, parts) in [
            (1, 1, 1),
            (7, 4, 3),
            (64, 4, 4),
            (5, 8, 5),
            (129, 2, 2),
            (1000, 8, 8),
            (33, 8, 2),
        ] {
            let d = StealClaim::new(pieces, slots);
            let counts = drive(&d, pieces, parts);
            assert!(
                counts.iter().all(|&c| c == 1),
                "pieces={pieces} slots={slots} parts={parts}: {counts:?}"
            );
        }
    }

    #[test]
    fn steal_claim_rebalances_away_from_a_stuck_owner() {
        // Slot 0's owner stalls inside its first chunk; the other
        // participant must drain its own partition and then steal the rest
        // of slot 0's range, so the call still covers every piece.
        let pieces = 64;
        let d = StealClaim::new(pieces, 2);
        let counts: Vec<AtomicUsize> = (0..pieces).map(|_| AtomicUsize::new(0)).collect();
        let run_piece = |i: usize| -> bool {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(40));
            }
            counts[i].fetch_add(1, Ordering::Relaxed);
            true
        };
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| d.claim(&run_piece));
            }
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        assert!(
            d.steals.load(Ordering::Relaxed) > 0,
            "the free participant never stole from the stuck owner"
        );
    }

    #[test]
    fn steal_claim_chunk_size_decays_under_pressure() {
        let d = StealClaim::new(1024, 4);
        assert_eq!(d.chunk_size(), 128);
        d.steals.store(1, Ordering::Relaxed);
        assert_eq!(d.chunk_size(), 64);
        d.steals.store(6, Ordering::Relaxed);
        assert_eq!(d.chunk_size(), 2);
        // Pressure saturates: the floor is 1 piece, never 0.
        d.steals.store(1000, Ordering::Relaxed);
        assert_eq!(d.chunk_size(), 2);
        let tiny = StealClaim::new(3, 4);
        tiny.steals.store(1000, Ordering::Relaxed);
        assert_eq!(tiny.chunk_size(), 1);
    }

    #[test]
    fn steal_claim_poison_drains_without_running_pieces() {
        // Once run_piece reports poison, participants must exit their claim
        // loops promptly instead of spinning on unclaimed work.
        let d = StealClaim::new(256, 2);
        let executed = AtomicUsize::new(0);
        let run_piece = |_i: usize| -> bool {
            executed.fetch_add(1, Ordering::Relaxed);
            false
        };
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| d.claim(&run_piece));
            }
        });
        assert!(executed.load(Ordering::Relaxed) <= 2);
    }

    #[test]
    fn packed_range_roundtrips() {
        for (lo, hi) in [(0u32, 0u32), (0, 1), (17, 4096), (u32::MAX - 1, u32::MAX)] {
            assert_eq!(unpack(pack(lo, hi)), (lo, hi));
        }
    }

    #[test]
    fn strategy_env_and_setter_resolve() {
        // The setter wins over whatever the env resolved to; restore after.
        let before = schedule_strategy();
        set_schedule_strategy(ScheduleStrategy::GlobalCounter);
        assert_eq!(schedule_strategy(), ScheduleStrategy::GlobalCounter);
        set_schedule_strategy(ScheduleStrategy::Stealing);
        assert_eq!(schedule_strategy(), ScheduleStrategy::Stealing);
        set_schedule_strategy(before);
    }
}
