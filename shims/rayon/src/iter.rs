//! Splittable parallel iterators over the engine in [`crate::pool`].
//!
//! Every chain starts from an indexed base (a range, slice, `Vec`, or chunk
//! view), composes element-wise adaptors (`map`, `filter`, `filter_map`,
//! `flat_map_iter`, `copied`, `cloned`, `enumerate`, `zip`), and ends in a
//! consumer (`for_each`, `collect`, `sum`, `count`, `min`/`max`, `fold`,
//! `find_any`, …). A consumer splits the chain into pieces at base-index
//! boundaries, publishes them to the current pool, and each piece is run as
//! a plain sequential `std` iterator by whichever thread claims it. Results
//! are reassembled **in piece order**, so order-sensitive consumers
//! (`collect`, `fold`) see exactly the sequential outcome; `find_any` is the
//! one deliberately order-free consumer (see its docs).

use crate::pool;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A work item that can be cut at base-index boundaries and lowered to a
/// sequential iterator. `Send` because pieces migrate to worker threads.
pub trait ParallelIterator: Sized + Send {
    /// Element type produced by the chain.
    type Item: Send;
    /// The sequential iterator a piece lowers to.
    type Seq: Iterator<Item = Self::Item>;

    /// Number of *base* positions remaining (exact for indexed chains, an
    /// upper bound on yielded items for `filter`-like chains). Used only to
    /// size pieces.
    fn base_len(&self) -> usize;

    /// Estimated underlying work in scalar elements, for the go-parallel
    /// decision. Equal to `base_len` except for chunked bases, where each
    /// base item covers a whole sub-slice.
    fn work_hint(&self) -> usize {
        self.base_len()
    }

    /// Split at base position `index` (`0 <= index <= base_len`).
    fn split_at(self, index: usize) -> (Self, Self);

    /// Lower this (piece of the) chain to a sequential iterator.
    fn into_seq(self) -> Self::Seq;

    // ---- adaptors -------------------------------------------------------

    /// Parallel `map`.
    fn map<R: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Parallel `filter`.
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Parallel `filter_map`.
    fn filter_map<R: Send, F>(self, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<R> + Sync + Send,
    {
        FilterMap {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Rayon's `flat_map_iter`: `f` returns a *sequential* iterable that is
    /// flattened within the piece that produced it.
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        FlatMapIter {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Parallel `copied`.
    fn copied<'a, T>(self) -> Copied<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: Copy + Send + Sync + 'a,
    {
        Copied { base: self }
    }

    /// Parallel `cloned`.
    fn cloned<'a, T>(self) -> Cloned<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: Clone + Send + Sync + 'a,
    {
        Cloned { base: self }
    }

    // ---- consumers ------------------------------------------------------

    /// Run `f` on every item. Barrier semantics: returns only when every
    /// piece (on every thread) has finished.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        drive(self, &|seq| seq.for_each(&f));
    }

    /// Collect into `C`, preserving the sequential order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Sum of all items (associative reduction over per-piece sums).
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        drive(self, &|seq| seq.sum::<S>()).into_iter().sum()
    }

    /// Number of items.
    fn count(self) -> usize {
        drive(self, &|seq| seq.count()).into_iter().sum()
    }

    /// Maximum item (ties resolved toward the earliest piece).
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        drive(self, &|seq| seq.max()).into_iter().flatten().max()
    }

    /// Minimum item (ties resolved toward the earliest piece).
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        drive(self, &|seq| seq.min()).into_iter().flatten().min()
    }

    /// *Some* item matching `predicate`, or `None`.
    ///
    /// Under real parallelism this is **not** the first match in sequential
    /// order: pieces race, a hit raises a shared cancellation flag, and
    /// every other piece early-exits at its next item boundary. Call sites
    /// must only rely on the any-match contract.
    fn find_any<P>(self, predicate: P) -> Option<Self::Item>
    where
        P: Fn(&Self::Item) -> bool + Sync + Send,
    {
        let found = AtomicBool::new(false);
        drive(self, &|seq| {
            for item in seq {
                if found.load(Ordering::Relaxed) {
                    return None;
                }
                if predicate(&item) {
                    found.store(true, Ordering::Relaxed);
                    return Some(item);
                }
            }
            None
        })
        .into_iter()
        .flatten()
        .next()
    }

    /// True if any item matches `predicate` (early-exiting).
    fn any<P>(self, predicate: P) -> bool
    where
        P: Fn(&Self::Item) -> bool + Sync + Send,
    {
        self.find_any(predicate).is_some()
    }

    /// True if every item matches `predicate` (early-exiting).
    fn all<P>(self, predicate: P) -> bool
    where
        P: Fn(&Self::Item) -> bool + Sync + Send,
    {
        self.find_any(|item| !predicate(item)).is_none()
    }

    /// Sequential-semantics fold: items are produced in parallel, then
    /// folded left-to-right in base order on the calling thread. Matches
    /// `std::iter::Iterator::fold` exactly (the accumulator visits items in
    /// order), unlike rayon's fold/reduce pair — this is the contract the
    /// workspace's call sites were written against.
    fn fold<A, F>(self, init: A, f: F) -> A
    where
        F: FnMut(A, Self::Item) -> A,
    {
        let items: Vec<Self::Item> = self.collect();
        items.into_iter().fold(init, f)
    }
}

/// Indexed chains know their exact length and split positionally, which is
/// what `enumerate` and `zip` need to stay correct across splits.
pub trait IndexedParallelIterator: ParallelIterator {
    /// Exact number of items (`base_len` for indexed chains).
    fn len(&self) -> usize {
        self.base_len()
    }

    /// True when the chain yields nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number each item with its global position.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Pair positionally with another indexed chain (truncates to the
    /// shorter side, like `std`).
    fn zip<B: IndexedParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }
}

// ---- driver -------------------------------------------------------------

/// Split `iter` into pieces, run `consume` over each piece's sequential
/// iterator on the current pool, and return the per-piece results in piece
/// order.
fn drive<P, R, C>(iter: P, consume: &C) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
    C: Fn(P::Seq) -> R + Sync + ?Sized,
{
    let pieces = pool::piece_count(iter.work_hint()).min(iter.base_len().max(1));
    if pieces <= 1 {
        return vec![consume(iter.into_seq())];
    }
    let parts = split_into(iter, pieces);
    let n = parts.len();
    let slots: Vec<Mutex<Option<P>>> = parts.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    pool::execute(n, &|i| {
        let part = slots[i]
            .lock()
            .unwrap()
            .take()
            .expect("piece claimed twice");
        let r = consume(part.into_seq());
        *results[i].lock().unwrap() = Some(r);
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("piece produced no result"))
        .collect()
}

/// Cut `iter` into `k` contiguous pieces of near-equal base length.
fn split_into<P: ParallelIterator>(iter: P, k: usize) -> Vec<P> {
    let mut out = Vec::with_capacity(k);
    let mut rest = iter;
    for i in (1..k).rev() {
        let len = rest.base_len();
        // Size of the remaining i+1 pieces balances to len/(i+1) each.
        let cut = len - len / (i + 1);
        let (left, right) = rest.split_at(cut);
        out.push(right);
        rest = left;
    }
    out.push(rest);
    out.reverse();
    out
}

// ---- collect targets ----------------------------------------------------

/// Order-preserving parallel collection (rayon's `FromParallelIterator`).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build `Self` from the chain's items in sequential order.
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self {
        let parts = drive(iter, &|seq| seq.collect::<Vec<T>>());
        let total = parts.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for p in parts {
            out.extend(p);
        }
        out
    }
}

// ---- bases --------------------------------------------------------------

/// Parallel iterator over an integer range.
pub struct RangeParIter<T> {
    pub(crate) lo: T,
    pub(crate) hi: T,
}

/// Integer endpoint types for parallel ranges. A single generic
/// `Range<T>` impl (rather than one impl per type) keeps rustc's integer
/// literal fallback working for `(0..n).into_par_iter()`.
pub trait RangeInt: Copy + Ord + Send {
    /// `hi - lo` as a count.
    fn delta(lo: Self, hi: Self) -> usize;
    /// `lo + offset`.
    fn add(lo: Self, offset: usize) -> Self;
}

macro_rules! range_int {
    ($t:ty) => {
        impl RangeInt for $t {
            fn delta(lo: $t, hi: $t) -> usize {
                (hi - lo) as usize
            }

            fn add(lo: $t, offset: usize) -> $t {
                lo + offset as $t
            }
        }
    };
}

range_int!(usize);
range_int!(u32);
range_int!(u64);
range_int!(i32);
range_int!(i64);

impl<T: RangeInt> ParallelIterator for RangeParIter<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type Seq = std::ops::Range<T>;

    fn base_len(&self) -> usize {
        T::delta(self.lo, self.hi)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = T::add(self.lo, index);
        (
            RangeParIter {
                lo: self.lo,
                hi: mid,
            },
            RangeParIter {
                lo: mid,
                hi: self.hi,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.lo..self.hi
    }
}

impl<T: RangeInt> IndexedParallelIterator for RangeParIter<T> where
    std::ops::Range<T>: Iterator<Item = T>
{
}

impl<T: RangeInt> crate::IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type Iter = RangeParIter<T>;

    fn into_par_iter(self) -> Self::Iter {
        RangeParIter {
            lo: self.start,
            hi: self.end.max(self.start),
        }
    }
}

/// Parallel iterator over `&[T]`.
pub struct SliceParIter<'a, T> {
    pub(crate) slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn base_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (SliceParIter { slice: l }, SliceParIter { slice: r })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

impl<T: Sync> IndexedParallelIterator for SliceParIter<'_, T> {}

/// Parallel iterator over `&mut [T]`.
pub struct SliceParIterMut<'a, T> {
    pub(crate) slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for SliceParIterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;

    fn base_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index);
        (SliceParIterMut { slice: l }, SliceParIterMut { slice: r })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.iter_mut()
    }
}

impl<T: Send> IndexedParallelIterator for SliceParIterMut<'_, T> {}

/// Owning parallel iterator over a `Vec`.
pub struct VecParIter<T> {
    pub(crate) vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    type Seq = std::vec::IntoIter<T>;

    fn base_len(&self) -> usize {
        self.vec.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let right = self.vec.split_off(index);
        (self, VecParIter { vec: right })
    }

    fn into_seq(self) -> Self::Seq {
        self.vec.into_iter()
    }
}

impl<T: Send> IndexedParallelIterator for VecParIter<T> {}

impl<T: Send> crate::IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> Self::Iter {
        VecParIter { vec: self }
    }
}

/// Parallel iterator over `slice.par_chunks(size)`.
pub struct ChunksParIter<'a, T> {
    pub(crate) slice: &'a [T],
    pub(crate) size: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksParIter<'a, T> {
    type Item = &'a [T];
    type Seq = std::slice::Chunks<'a, T>;

    fn base_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn work_hint(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(mid);
        (
            ChunksParIter {
                slice: l,
                size: self.size,
            },
            ChunksParIter {
                slice: r,
                size: self.size,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks(self.size)
    }
}

impl<T: Sync> IndexedParallelIterator for ChunksParIter<'_, T> {}

/// Parallel iterator over `slice.par_chunks_mut(size)`.
pub struct ChunksMutParIter<'a, T> {
    pub(crate) slice: &'a mut [T],
    pub(crate) size: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksMutParIter<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksMut<'a, T>;

    fn base_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn work_hint(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(mid);
        (
            ChunksMutParIter {
                slice: l,
                size: self.size,
            },
            ChunksMutParIter {
                slice: r,
                size: self.size,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.size)
    }
}

impl<T: Send> IndexedParallelIterator for ChunksMutParIter<'_, T> {}

// ---- adaptors -----------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: Arc<F>,
}

/// Sequential tail of a [`Map`] piece; the closure is shared via `Arc` so
/// `F` needs no `Clone` bound (matching rayon).
pub struct MapSeq<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I: Iterator, R, F: Fn(I::Item) -> R> Iterator for MapSeq<I, F> {
    type Item = R;

    fn next(&mut self) -> Option<R> {
        self.inner.next().map(|x| (self.f)(x))
    }
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send,
{
    type Item = R;
    type Seq = MapSeq<P::Seq, F>;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn work_hint(&self) -> usize {
        self.base.work_hint()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Map {
                base: l,
                f: Arc::clone(&self.f),
            },
            Map { base: r, f: self.f },
        )
    }

    fn into_seq(self) -> Self::Seq {
        MapSeq {
            inner: self.base.into_seq(),
            f: self.f,
        }
    }
}

impl<P, R, F> IndexedParallelIterator for Map<P, F>
where
    P: IndexedParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send,
{
}

/// See [`ParallelIterator::filter`]. Not indexed: lengths after filtering
/// are unknowable without running the predicate.
pub struct Filter<P, F> {
    base: P,
    f: Arc<F>,
}

/// Sequential tail of a [`Filter`] piece.
pub struct FilterSeq<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I: Iterator, F: Fn(&I::Item) -> bool> Iterator for FilterSeq<I, F> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        loop {
            let x = self.inner.next()?;
            if (self.f)(&x) {
                return Some(x);
            }
        }
    }
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Sync + Send,
{
    type Item = P::Item;
    type Seq = FilterSeq<P::Seq, F>;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn work_hint(&self) -> usize {
        self.base.work_hint()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Filter {
                base: l,
                f: Arc::clone(&self.f),
            },
            Filter { base: r, f: self.f },
        )
    }

    fn into_seq(self) -> Self::Seq {
        FilterSeq {
            inner: self.base.into_seq(),
            f: self.f,
        }
    }
}

/// See [`ParallelIterator::filter_map`]. Not indexed.
pub struct FilterMap<P, F> {
    base: P,
    f: Arc<F>,
}

/// Sequential tail of a [`FilterMap`] piece.
pub struct FilterMapSeq<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I: Iterator, R, F: Fn(I::Item) -> Option<R>> Iterator for FilterMapSeq<I, F> {
    type Item = R;

    fn next(&mut self) -> Option<R> {
        loop {
            if let Some(r) = (self.f)(self.inner.next()?) {
                return Some(r);
            }
        }
    }
}

impl<P, R, F> ParallelIterator for FilterMap<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> Option<R> + Sync + Send,
{
    type Item = R;
    type Seq = FilterMapSeq<P::Seq, F>;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn work_hint(&self) -> usize {
        self.base.work_hint()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            FilterMap {
                base: l,
                f: Arc::clone(&self.f),
            },
            FilterMap { base: r, f: self.f },
        )
    }

    fn into_seq(self) -> Self::Seq {
        FilterMapSeq {
            inner: self.base.into_seq(),
            f: self.f,
        }
    }
}

/// See [`ParallelIterator::flat_map_iter`]. Not indexed.
pub struct FlatMapIter<P, F> {
    base: P,
    f: Arc<F>,
}

/// Sequential tail of a [`FlatMapIter`] piece.
pub struct FlatMapIterSeq<I, U: IntoIterator, F> {
    inner: I,
    f: Arc<F>,
    cur: Option<U::IntoIter>,
}

impl<I: Iterator, U: IntoIterator, F: Fn(I::Item) -> U> Iterator for FlatMapIterSeq<I, U, F> {
    type Item = U::Item;

    fn next(&mut self) -> Option<U::Item> {
        loop {
            if let Some(it) = &mut self.cur {
                if let Some(x) = it.next() {
                    return Some(x);
                }
            }
            self.cur = Some((self.f)(self.inner.next()?).into_iter());
        }
    }
}

impl<P, U, F> ParallelIterator for FlatMapIter<P, F>
where
    P: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(P::Item) -> U + Sync + Send,
{
    type Item = U::Item;
    type Seq = FlatMapIterSeq<P::Seq, U, F>;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn work_hint(&self) -> usize {
        self.base.work_hint()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            FlatMapIter {
                base: l,
                f: Arc::clone(&self.f),
            },
            FlatMapIter { base: r, f: self.f },
        )
    }

    fn into_seq(self) -> Self::Seq {
        FlatMapIterSeq {
            inner: self.base.into_seq(),
            f: self.f,
            cur: None,
        }
    }
}

/// See [`ParallelIterator::copied`].
pub struct Copied<P> {
    base: P,
}

impl<'a, T, P> ParallelIterator for Copied<P>
where
    P: ParallelIterator<Item = &'a T>,
    T: Copy + Send + Sync + 'a,
{
    type Item = T;
    type Seq = std::iter::Copied<P::Seq>;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn work_hint(&self) -> usize {
        self.base.work_hint()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (Copied { base: l }, Copied { base: r })
    }

    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().copied()
    }
}

impl<'a, T, P> IndexedParallelIterator for Copied<P>
where
    P: IndexedParallelIterator<Item = &'a T>,
    T: Copy + Send + Sync + 'a,
{
}

/// See [`ParallelIterator::cloned`].
pub struct Cloned<P> {
    base: P,
}

impl<'a, T, P> ParallelIterator for Cloned<P>
where
    P: ParallelIterator<Item = &'a T>,
    T: Clone + Send + Sync + 'a,
{
    type Item = T;
    type Seq = std::iter::Cloned<P::Seq>;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn work_hint(&self) -> usize {
        self.base.work_hint()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (Cloned { base: l }, Cloned { base: r })
    }

    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().cloned()
    }
}

impl<'a, T, P> IndexedParallelIterator for Cloned<P>
where
    P: IndexedParallelIterator<Item = &'a T>,
    T: Clone + Send + Sync + 'a,
{
}

/// See [`IndexedParallelIterator::enumerate`]. The split offset keeps
/// global positions correct on worker threads.
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

/// Sequential tail of an [`Enumerate`] piece: positions resume at `offset`.
pub struct EnumerateSeq<I> {
    inner: std::iter::Enumerate<I>,
    offset: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(i, x)| (i + self.offset, x))
    }
}

impl<P: IndexedParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);
    type Seq = EnumerateSeq<P::Seq>;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn work_hint(&self) -> usize {
        self.base.work_hint()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Enumerate {
                base: l,
                offset: self.offset,
            },
            Enumerate {
                base: r,
                offset: self.offset + index,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        EnumerateSeq {
            inner: self.base.into_seq().enumerate(),
            offset: self.offset,
        }
    }
}

impl<P: IndexedParallelIterator> IndexedParallelIterator for Enumerate<P> {}

/// See [`IndexedParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: IndexedParallelIterator, B: IndexedParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn base_len(&self) -> usize {
        self.a.base_len().min(self.b.base_len())
    }

    fn work_hint(&self) -> usize {
        self.a.work_hint().min(self.b.work_hint())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }

    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

impl<A: IndexedParallelIterator, B: IndexedParallelIterator> IndexedParallelIterator for Zip<A, B> {}
