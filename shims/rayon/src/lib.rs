//! Sequential drop-in for the subset of the `rayon` API this workspace uses.
//!
//! The build environment has no network access and no crates.io cache, so
//! the real `rayon` cannot be fetched. This shim preserves the API shape —
//! `par_iter`, `into_par_iter`, `par_sort_unstable`, `ThreadPoolBuilder`,
//! … — with sequential `std` iterators underneath. All algorithms in the
//! workspace are written against atomics and are correct under any
//! interleaving, so degrading to sequential execution changes timing only,
//! never results. Swapping the real crate back in is a one-line
//! `Cargo.toml` change; no source edits are required.

/// The traits user code imports with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIteratorExt, ParallelSlice, ParallelSliceMut,
    };
}

/// Rayon adaptor names that do not exist on `std::iter::Iterator`
/// (`flat_map_iter`, …), provided as plain sequential equivalents.
pub trait ParallelIteratorExt: Iterator + Sized {
    /// Rayon's `flat_map_iter` — sequentially identical to `flat_map`.
    fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
    where
        U: IntoIterator,
        F: FnMut(Self::Item) -> U,
    {
        self.flat_map(f)
    }

    /// Rayon's `find_any` — sequentially this is the *first* match, which
    /// satisfies the weaker "any match" contract.
    fn find_any<P>(mut self, mut predicate: P) -> Option<Self::Item>
    where
        P: FnMut(&Self::Item) -> bool,
    {
        self.find(|item| predicate(item))
    }
}

impl<I: Iterator> ParallelIteratorExt for I {}

/// `collection.into_par_iter()` — sequential `IntoIterator` underneath.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Consume `self`, yielding its (sequential) iterator.
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// `collection.par_iter()` — iterate over `&collection`.
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed iterator type.
    type Iter: Iterator;
    /// Borrowing iteration, named like rayon's parallel form.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Iter = <&'data C as IntoIterator>::IntoIter;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// `collection.par_iter_mut()` — iterate over `&mut collection`.
pub trait IntoParallelRefMutIterator<'data> {
    /// The mutably-borrowed iterator type.
    type Iter: Iterator;
    /// Mutably-borrowing iteration, named like rayon's parallel form.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
{
    type Iter = <&'data mut C as IntoIterator>::IntoIter;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Chunked traversal of shared slices.
pub trait ParallelSlice<T> {
    /// `slice.par_chunks(n)` — sequential `chunks` underneath.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Chunked/sorting traversal of mutable slices.
pub trait ParallelSliceMut<T> {
    /// `slice.par_chunks_mut(n)` — sequential `chunks_mut` underneath.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    /// `slice.par_sort_unstable()` — sequential unstable sort.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// `slice.par_sort_unstable_by(cmp)` — sequential unstable sort.
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: FnMut(&T, &T) -> std::cmp::Ordering;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: FnMut(&T, &T) -> std::cmp::Ordering,
    {
        self.sort_unstable_by(cmp);
    }
}

/// Run two closures "in parallel" (sequentially here).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of threads in the implicit pool (always 1 in the shim).
pub fn current_num_threads() -> usize {
    1
}

/// Error type returned by [`ThreadPoolBuilder::build`]; never constructed.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A "pool" that runs closures on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` in the pool (i.e. right here).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    /// Configured thread count (the shim still executes on one thread).
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Builder matching `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request a thread count (recorded, not honored by the shim).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the (sequential) pool; infallible.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.max(1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1u32, 2, 3];
        let s: u32 = v.par_iter().copied().sum();
        assert_eq!(s, 6);
        let doubled: Vec<u32> = v.into_par_iter().map(|x| 2 * x).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn range_into_par_iter() {
        let n: usize = (0..10usize).into_par_iter().filter(|&i| i % 2 == 0).count();
        assert_eq!(n, 5);
    }

    #[test]
    fn slice_ops() {
        let mut v = vec![3u32, 1, 2];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3]);
        v.par_sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(v, vec![3, 2, 1]);
        assert_eq!(v.par_chunks(2).count(), 2);
        assert_eq!(v.par_chunks_mut(2).count(), 2);
    }

    #[test]
    fn pool_installs() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 41 + 1), 42);
        assert_eq!(pool.current_num_threads(), 4);
    }
}
