//! Multi-threaded drop-in for the subset of the `rayon` API this workspace
//! uses.
//!
//! The build environment has no network access and no crates.io cache, so
//! the real `rayon` cannot be fetched. This shim preserves the API shape —
//! `par_iter`, `into_par_iter`, `par_sort_unstable`, `ThreadPoolBuilder`,
//! `install`, … — on top of a real execution engine (see [`pool`]): a
//! lazily-initialized global worker pool on `std::thread`, chunked
//! parallel-for with per-thread chunk claiming through an atomic index,
//! early-exit cancellation for `find_any`, order-respecting parallel
//! `map`/`collect`, and a parallel merge sort behind `par_sort_unstable`.
//!
//! Results are interleaving-independent by construction: order-sensitive
//! consumers reassemble per-piece results in base order, and the solvers
//! built on top are written against atomics and tolerate any interleaving
//! (`tests/concurrency.rs` exercises exactly that). The one deliberate
//! contract change versus sequential execution is [`iter::ParallelIterator::
//! find_any`], which returns *some* match rather than the first.
//!
//! Swapping the real crate back in is a one-line `Cargo.toml` change; no
//! source edits are required.

pub mod iter;
mod pool;
mod sort;

pub use pool::{schedule_strategy, set_schedule_strategy, ScheduleStrategy};

/// The traits user code imports with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::iter::{FromParallelIterator, IndexedParallelIterator, ParallelIterator};
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// `collection.into_par_iter()` — consuming parallel iteration.
pub trait IntoParallelIterator {
    /// Element type of the resulting iterator.
    type Item: Send;
    /// The parallel iterator this collection converts into.
    type Iter: iter::ParallelIterator<Item = Self::Item>;

    /// Consume `self`, yielding its parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `collection.par_iter()` — borrowing parallel iteration over slices (and
/// anything that derefs to a slice, e.g. `Vec`).
pub trait IntoParallelRefIterator<T: Sync> {
    /// Borrowing parallel iteration, named like rayon's form.
    fn par_iter(&self) -> iter::SliceParIter<'_, T>;
}

impl<T: Sync> IntoParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> iter::SliceParIter<'_, T> {
        iter::SliceParIter { slice: self }
    }
}

/// `collection.par_iter_mut()` — mutably-borrowing parallel iteration.
pub trait IntoParallelRefMutIterator<T: Send> {
    /// Mutably-borrowing parallel iteration, named like rayon's form.
    fn par_iter_mut(&mut self) -> iter::SliceParIterMut<'_, T>;
}

impl<T: Send> IntoParallelRefMutIterator<T> for [T] {
    fn par_iter_mut(&mut self) -> iter::SliceParIterMut<'_, T> {
        iter::SliceParIterMut { slice: self }
    }
}

/// Chunked traversal of shared slices.
pub trait ParallelSlice<T: Sync> {
    /// `slice.par_chunks(n)` — parallel iteration over `n`-sized chunks.
    fn par_chunks(&self, chunk_size: usize) -> iter::ChunksParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> iter::ChunksParIter<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        iter::ChunksParIter {
            slice: self,
            size: chunk_size,
        }
    }
}

/// Chunked/sorting traversal of mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// `slice.par_chunks_mut(n)` — parallel iteration over mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> iter::ChunksMutParIter<'_, T>;

    /// `slice.par_sort_unstable()` — parallel unstable merge sort.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    /// `slice.par_sort_unstable_by(cmp)` — parallel unstable merge sort
    /// with a comparator.
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync + Send;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> iter::ChunksMutParIter<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        iter::ChunksMutParIter {
            slice: self,
            size: chunk_size,
        }
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        sort::par_sort_unstable_by(self, T::cmp);
    }

    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync + Send,
    {
        sort::par_sort_unstable_by(self, cmp);
    }
}

/// Run two closures, potentially in parallel: `b` is offered to the current
/// pool while the calling thread runs `a` (and claims `b` back if no worker
/// picks it up first).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    use std::sync::Mutex;
    let slot_a: Mutex<(Option<A>, Option<RA>)> = Mutex::new((Some(a), None));
    let slot_b: Mutex<(Option<B>, Option<RB>)> = Mutex::new((Some(b), None));
    pool::execute(2, &|i| {
        if i == 0 {
            let mut s = slot_a.lock().unwrap();
            let f = s.0.take().expect("join closure claimed twice");
            s.1 = Some(f());
        } else {
            let mut s = slot_b.lock().unwrap();
            let f = s.0.take().expect("join closure claimed twice");
            s.1 = Some(f());
        }
    });
    (
        slot_a.into_inner().unwrap().1.unwrap(),
        slot_b.into_inner().unwrap().1.unwrap(),
    )
}

/// Parallelism of the pool governing this thread: the innermost
/// [`ThreadPool::install`], else the lazily-built global pool.
pub fn current_num_threads() -> usize {
    pool::effective_parallelism()
}

/// Error type returned by [`ThreadPoolBuilder::build`]; never constructed.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A real worker pool: `num_threads - 1` worker threads plus the installing
/// caller. Workers shut down when the pool drops.
pub struct ThreadPool {
    handle: pool::PoolHandle,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.current_num_threads())
            .finish()
    }
}

impl ThreadPool {
    /// Run `op` with this pool as the calling thread's current pool: every
    /// parallel call inside `op` executes on this pool's workers (plus the
    /// calling thread itself).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let _guard = pool::InstallGuard::push(std::sync::Arc::clone(&self.handle.core));
        op()
    }

    /// Configured degree of parallelism.
    pub fn current_num_threads(&self) -> usize {
        self.handle.core.num_threads()
    }
}

/// Builder matching `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request a degree of parallelism; 0 (the default) means the host's
    /// available parallelism (or `RAYON_NUM_THREADS`).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool, spawning its worker threads.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            handle: pool::PoolHandle::new(self.num_threads),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Big enough to clear the sequential threshold so the pool really runs.
    const N: usize = 100_000;

    fn quad_pool() -> super::ThreadPool {
        super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
    }

    #[test]
    fn par_iter_matches_sequential() {
        let v: Vec<u32> = (0..N as u32).collect();
        let s: u64 = v.par_iter().map(|&x| x as u64).sum();
        assert_eq!(s, (N as u64 - 1) * N as u64 / 2);
        let doubled: Vec<u32> = v.into_par_iter().map(|x| 2 * x).collect();
        assert_eq!(doubled[N - 1], 2 * (N as u32 - 1));
    }

    #[test]
    fn parallel_collect_preserves_order() {
        quad_pool().install(|| {
            let got: Vec<usize> = (0..N).into_par_iter().map(|i| i * 3).collect();
            assert!(got.iter().enumerate().all(|(i, &x)| x == i * 3));
            let evens: Vec<usize> = (0..N).into_par_iter().filter(|i| i % 2 == 0).collect();
            assert!(evens.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(evens.len(), N / 2);
        });
    }

    #[test]
    fn parallel_for_each_touches_everything_once() {
        quad_pool().install(|| {
            let cells: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
            cells.par_iter().for_each(|c| {
                c.fetch_add(1, Ordering::Relaxed);
            });
            assert!(cells.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        });
    }

    #[test]
    fn enumerate_offsets_survive_splitting() {
        quad_pool().install(|| {
            let v: Vec<u32> = (0..N as u32).collect();
            let ok: Vec<bool> = v
                .par_iter()
                .enumerate()
                .map(|(i, &x)| i == x as usize)
                .collect();
            assert!(ok.into_iter().all(|b| b));
        });
    }

    #[test]
    fn zip_lines_up_across_pieces() {
        quad_pool().install(|| {
            let a: Vec<u64> = (0..N as u64).collect();
            let b: Vec<u64> = (0..N as u64).map(|x| x * 2).collect();
            let s: u64 = a
                .par_iter()
                .zip(b.par_iter())
                .map(|(&x, &y)| y - 2 * x)
                .sum();
            assert_eq!(s, 0);
        });
    }

    #[test]
    fn fold_sees_items_in_order() {
        quad_pool().install(|| {
            let last = (0..N)
                .into_par_iter()
                .fold(None::<usize>, |prev, i| {
                    if let Some(p) = prev {
                        assert_eq!(i, p + 1, "fold order broke");
                    }
                    Some(i)
                })
                .unwrap();
            assert_eq!(last, N - 1);
        });
    }

    #[test]
    fn find_any_finds_and_cancels() {
        quad_pool().install(|| {
            // Any-match contract: the needle is found wherever it sits.
            let hit = (0..N).into_par_iter().find_any(|&i| i == N - 7);
            assert_eq!(hit, Some(N - 7));
            assert_eq!((0..N).into_par_iter().find_any(|&i| i > N), None);
            // Early exit: far fewer predicate calls than items once a match
            // (at the very front) raises the cancellation flag.
            let calls = AtomicUsize::new(0);
            let found = (0..N).into_par_iter().find_any(|&i| {
                calls.fetch_add(1, Ordering::Relaxed);
                i % 4 == 0
            });
            assert!(found.is_some());
            assert!(
                calls.load(Ordering::Relaxed) < N / 2,
                "cancellation flag did not stop the scan ({} calls)",
                calls.load(Ordering::Relaxed)
            );
        });
    }

    #[test]
    fn slice_ops() {
        let mut v: Vec<u32> = (0..N as u32).rev().collect();
        quad_pool().install(|| {
            v.par_sort_unstable();
            assert!(v.windows(2).all(|w| w[0] <= w[1]));
            v.par_sort_unstable_by(|a, b| b.cmp(a));
            assert!(v.windows(2).all(|w| w[0] >= w[1]));
            assert_eq!(v.par_chunks(1 << 10).count(), N.div_ceil(1 << 10));
            assert_eq!(v.par_chunks(1 << 10).map(|c| c.len()).sum::<usize>(), N);
            let mut w = vec![1u32; N];
            w.par_chunks_mut(1 << 10).for_each(|c| c[0] = 7);
            assert_eq!(w.iter().filter(|&&x| x == 7).count(), N.div_ceil(1 << 10));
        });
    }

    #[test]
    fn sort_matches_std_on_adversarial_patterns() {
        quad_pool().install(|| {
            for pat in 0..4u32 {
                let mut v: Vec<u32> = (0..N as u32)
                    .map(|i| match pat {
                        0 => i % 17,
                        1 => N as u32 - i,
                        2 => i,
                        _ => i.wrapping_mul(2654435761) >> 7,
                    })
                    .collect();
                let mut want = v.clone();
                want.sort_unstable();
                v.par_sort_unstable();
                assert_eq!(v, want, "pattern {pat}");
            }
        });
    }

    #[test]
    fn pool_installs_and_reports_threads() {
        let pool = quad_pool();
        assert_eq!(pool.install(|| 41 + 1), 42);
        assert_eq!(pool.current_num_threads(), 4);
        assert_eq!(pool.install(super::current_num_threads), 4);
    }

    #[test]
    fn nested_parallelism_inlines() {
        quad_pool().install(|| {
            let total: usize = (0..N)
                .into_par_iter()
                .map(|_| super::current_num_threads())
                .sum();
            // Pieces running on workers (and on the installing caller while
            // it executes pieces) see themselves as single-threaded.
            assert_eq!(total, N);
        });
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = quad_pool().install(|| super::join(|| 2 + 2, || "ok"));
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn panics_propagate_to_caller() {
        let pool = quad_pool();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..N).into_par_iter().for_each(|i| {
                    if i == N / 2 {
                        panic!("boom");
                    }
                });
            })
        }));
        assert!(caught.is_err(), "piece panic must reach the caller");
        // The pool survives the panic and keeps executing.
        let s: usize = pool.install(|| (0..N).into_par_iter().map(|_| 1usize).sum());
        assert_eq!(s, N);
    }

    #[test]
    fn both_schedule_strategies_cover_every_item_once() {
        // The strategy knob is process-global, so this test only asserts
        // properties that hold under either strategy for concurrently
        // running tests: here, exactly-once execution and correct sums.
        let pool = quad_pool();
        let before = super::schedule_strategy();
        for strat in [
            super::ScheduleStrategy::GlobalCounter,
            super::ScheduleStrategy::Stealing,
        ] {
            super::set_schedule_strategy(strat);
            pool.install(|| {
                let cells: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
                cells.par_iter().for_each(|c| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    cells.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                    "{strat:?} missed or repeated items"
                );
                let s: u64 = (0..N as u64).into_par_iter().sum();
                assert_eq!(s, (N as u64 - 1) * N as u64 / 2, "{strat:?}");
            });
        }
        super::set_schedule_strategy(before);
    }

    #[test]
    fn skewed_workload_completes_under_stealing() {
        // One item ~1000x heavier than the rest: the static partitions are
        // badly imbalanced, so steal-half rebalancing carries the load.
        let pool = quad_pool();
        pool.install(|| {
            let heavy = N / 2;
            let s: u64 = (0..N)
                .into_par_iter()
                .map(|i| {
                    let spins = if i == heavy { 100_000u64 } else { 100 };
                    let mut acc = i as u64;
                    for k in 0..spins {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                    }
                    acc & 1
                })
                .sum();
            assert!(s <= N as u64);
        });
    }

    #[test]
    fn many_pools_build_and_drop() {
        for nt in [1usize, 2, 3, 8] {
            let pool = super::ThreadPoolBuilder::new()
                .num_threads(nt)
                .build()
                .unwrap();
            let s: u64 = pool.install(|| (0..N as u64).into_par_iter().sum());
            assert_eq!(s, (N as u64 - 1) * N as u64 / 2);
        }
    }
}
