//! Parallel unstable sort: per-run `sort_unstable_by` in parallel, then
//! parallel pairwise merge rounds through two scratch buffers.
//!
//! The slice itself is only *read* during round 1 and *written* once by the
//! final bulk copy-back, which contains no comparator calls. A panicking
//! comparator therefore unwinds with the input slice still holding its
//! original (fully initialized) contents, and the scratch buffers — which
//! hold bitwise copies that are never dropped as `T` — leak nothing and
//! double-drop nothing.

use crate::pool;
use std::cmp::Ordering;
use std::mem::MaybeUninit;
use std::sync::Mutex;

/// Below this length a sequential sort beats the parallel one.
const SEQ_SORT_THRESHOLD: usize = 8192;

/// Sort `slice` with `cmp`, using the current pool when it helps.
pub(crate) fn par_sort_unstable_by<T, F>(slice: &mut [T], cmp: F)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync + Send,
{
    let n = slice.len();
    let threads = pool::effective_parallelism();
    if threads <= 1 || n < SEQ_SORT_THRESHOLD {
        slice.sort_unstable_by(|a, b| cmp(a, b));
        return;
    }

    // Contiguous runs, one per claimable piece; each run is a disjoint
    // `&mut` sub-slice sorted in place by whichever thread claims it.
    let runs = (threads * 2).min(n / (SEQ_SORT_THRESHOLD / 4)).max(2);
    let run_len = n.div_ceil(runs);
    let mut bounds: Vec<(usize, usize)> = (0..runs)
        .map(|r| (r * run_len, ((r + 1) * run_len).min(n)))
        .filter(|&(lo, hi)| lo < hi)
        .collect();
    {
        let slots: Vec<Mutex<Option<&mut [T]>>> = slice
            .chunks_mut(run_len)
            .map(|c| Mutex::new(Some(c)))
            .collect();
        let cmp = &cmp;
        pool::execute(slots.len(), &|i| {
            let piece = slots[i].lock().unwrap().take().expect("run claimed twice");
            piece.sort_unstable_by(|a, b| cmp(a, b));
        });
    }

    // Merge rounds ping-pong between two uninitialized scratch buffers;
    // round 1 reads the sorted runs out of `slice`.
    let mut buf_a: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    let mut buf_b: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit contents are allowed to be uninitialized.
    unsafe {
        buf_a.set_len(n);
        buf_b.set_len(n);
    }

    let mut src_is_slice = true;
    let mut src_buf = &mut buf_a;
    let mut dst_buf = &mut buf_b;
    while bounds.len() > 1 {
        let pairs: Vec<(usize, usize, usize)> = bounds
            .chunks(2)
            .map(|c| {
                if c.len() == 2 {
                    (c[0].0, c[0].1, c[1].1)
                } else {
                    (c[0].0, c[0].1, c[0].1)
                }
            })
            .collect();
        {
            let src_ptr = SendPtr(if src_is_slice {
                slice.as_ptr() as *const MaybeUninit<T>
            } else {
                src_buf.as_ptr()
            });
            let dst_ptr = SendPtr(dst_buf.as_mut_ptr());
            let cmp = &cmp;
            let pairs_ref = &pairs;
            pool::execute(pairs.len(), &move |p| {
                let (lo, mid, hi) = pairs_ref[p];
                // SAFETY: the pairs partition 0..n into disjoint [lo, hi)
                // ranges; each piece reads only its own source range and
                // writes only its own destination range, so concurrent
                // pieces never alias.
                unsafe { merge_into(src_ptr.get(), dst_ptr.get(), lo, mid, hi, cmp) };
            });
        }
        bounds = pairs.into_iter().map(|(lo, _, hi)| (lo, hi)).collect();
        src_is_slice = false;
        std::mem::swap(&mut src_buf, &mut dst_buf);
    }

    if !src_is_slice {
        // The fully merged permutation lives in `src_buf`; bulk-copy it
        // back. No comparator runs here, so this cannot unwind mid-write.
        // SAFETY: src_buf[0..n] holds n initialized (bitwise-moved) T values
        // and `slice` has room for exactly n.
        unsafe {
            std::ptr::copy_nonoverlapping(src_buf.as_ptr() as *const T, slice.as_mut_ptr(), n);
        }
    }
}

/// Raw pointer wrapper so disjoint-range writes can cross thread bounds.
#[derive(Clone, Copy)]
struct SendPtr<P>(P);
unsafe impl<P> Send for SendPtr<P> {}
unsafe impl<P> Sync for SendPtr<P> {}

impl<P: Copy> SendPtr<P> {
    /// Unwrap by value — closures capture the whole `Sync` wrapper rather
    /// than its raw-pointer field (edition-2021 disjoint capture).
    fn get(self) -> P {
        self.0
    }
}

/// Merge sorted `src[lo..mid]` and `src[mid..hi]` into `dst[lo..hi]`
/// (bitwise copies; no drops).
///
/// # Safety
/// `src[lo..hi]` must hold initialized values, `dst[lo..hi]` must be valid
/// to write, and the two regions must not overlap.
unsafe fn merge_into<T, F>(
    src: *const MaybeUninit<T>,
    dst: *mut MaybeUninit<T>,
    lo: usize,
    mid: usize,
    hi: usize,
    cmp: &F,
) where
    F: Fn(&T, &T) -> Ordering,
{
    let (mut i, mut j, mut k) = (lo, mid, lo);
    while i < mid && j < hi {
        let a = unsafe { &*(src.add(i) as *const T) };
        let b = unsafe { &*(src.add(j) as *const T) };
        let take_left = cmp(a, b) != Ordering::Greater;
        let from = if take_left { i } else { j };
        unsafe { std::ptr::copy_nonoverlapping(src.add(from), dst.add(k), 1) };
        if take_left {
            i += 1;
        } else {
            j += 1;
        }
        k += 1;
    }
    if i < mid {
        unsafe { std::ptr::copy_nonoverlapping(src.add(i), dst.add(k), mid - i) };
        k += mid - i;
    }
    if j < hi {
        unsafe { std::ptr::copy_nonoverlapping(src.add(j), dst.add(k), hi - j) };
        k += hi - j;
    }
    debug_assert_eq!(k, hi);
}
