//! Minimal benchmark harness standing in for `criterion`.
//!
//! The build environment is offline, so the real crate cannot be fetched.
//! This shim keeps the `criterion_group!`/`criterion_main!` entry points,
//! `Criterion::benchmark_group`, `bench_function`/`bench_with_input`,
//! `Bencher::iter`, and `BenchmarkId` so the workspace's `benches/`
//! targets compile and run. Measurement is a short median-of-samples
//! timing loop with results printed to stdout — adequate for relative
//! smoke comparisons, without the real crate's statistics machinery.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` compound id.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a closure-only benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            median_ns: 0,
        };
        f(&mut bencher);
        self.report(&id, bencher.median_ns);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            median_ns: 0,
        };
        f(&mut bencher, input);
        self.report(&id, bencher.median_ns);
        self
    }

    /// Close the group (printing is incremental, so this is cosmetic).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, median_ns: u128) {
        println!(
            "bench {}/{}: median {:.3} ms",
            self.name,
            id.id,
            median_ns as f64 / 1e6
        );
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    median_ns: u128,
}

impl Bencher {
    /// Time `routine` over `samples` runs; records the median.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One warmup, then the timed samples.
        black_box(routine());
        let mut times: Vec<u128> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                black_box(routine());
                t0.elapsed().as_nanos()
            })
            .collect();
        times.sort_unstable();
        self.median_ns = times[times.len() / 2];
    }
}

/// Declare a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("toy");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &k| {
            b.iter(|| (0..100u64).map(|x| x * k).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(2), &2usize, |b, &k| {
            b.iter(|| vec![0u8; 64 * k].len())
        });
        group.finish();
    }

    criterion_group!(benches, toy_bench);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }
}
