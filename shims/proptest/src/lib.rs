//! Miniature property-testing framework standing in for `proptest`.
//!
//! The build environment is offline, so the real crate cannot be fetched.
//! This shim keeps the parts this workspace's test-suites rely on — the
//! `proptest!` macro, the `Strategy` trait with `prop_map`/`prop_flat_map`,
//! range/tuple/`collection::vec`/`sample::select` strategies,
//! `ProptestConfig::with_cases`, `TestCaseError`, and the `prop_assert*`
//! macros — backed by a deterministic SplitMix64 generator. Each test runs
//! `cases` times with a per-test, per-case seed, so failures reproduce
//! exactly. Shrinking is intentionally not implemented: a failing case
//! reports its inputs via the assertion message instead.

use std::ops::Range;

/// Deterministic case generation machinery.
pub mod test_runner {
    /// Failure raised by `prop_assert*` or `TestCaseError::fail`.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed test case carrying a human-readable reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Runner configuration; only `cases` is honored by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running every property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator for one (test, case) pair; fully deterministic.
        pub fn deterministic(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, span)`; `span` must be positive.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            let zone = u64::MAX - (u64::MAX % span);
            loop {
                let x = self.next_u64();
                if x < zone {
                    return x % span;
                }
            }
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// FNV-1a of a test name, mixed into per-case seeds so distinct
    /// properties see distinct input streams.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for producing random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every sampled value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Use each sampled value to build a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Strategy produced by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty strategy range {}..{}",
                        self.start,
                        self.end
                    );
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u8, u16, u32, u64, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is uniform in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample::select`).
pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed set of options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice among `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Everything test files import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declare property tests. Each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that samples its arguments `cases` times deterministically.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let name_seed = $crate::test_runner::seed_from_name(stringify!($name));
                for case in 0..cfg.cases as u64 {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        name_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {case}: {e}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// `assert!` that reports through `TestCaseError` instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` flavor of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// `assert_ne!` flavor of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Convenience range type re-export used by some strategy signatures.
pub type SizeRange = Range<usize>;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pairs() -> impl Strategy<Value = Vec<(u32, u32)>> {
        crate::collection::vec((0u32..50, 0u32..50), 0..40)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(n in 2usize..120, x in 0u64..1000) {
            prop_assert!((2..120).contains(&n));
            prop_assert!(x < 1000);
        }

        #[test]
        fn vec_strategy_respects_len(v in arb_pairs()) {
            prop_assert!(v.len() < 40);
            for &(a, b) in &v {
                prop_assert!(a < 50 && b < 50, "({a}, {b}) out of range");
            }
        }

        #[test]
        fn flat_map_threads_dependency(v in (1usize..10).prop_flat_map(|n| {
            crate::collection::vec(0..n, 1..20).prop_map(move |xs| (n, xs))
        })) {
            let (n, xs) = v;
            prop_assert!(xs.iter().all(|&x| x < n));
        }

        #[test]
        fn question_mark_propagates(flag in 0usize..2) {
            let r: Result<(), String> = Ok(());
            r.map_err(TestCaseError::fail)?;
            prop_assert_eq!(flag / 2, 0);
            prop_assert_ne!(flag, 9);
        }
    }

    #[test]
    fn select_draws_every_option() {
        use crate::strategy::Strategy;
        let s = crate::sample::select(vec!['a', 'b', 'c']);
        let mut rng = crate::test_runner::TestRng::deterministic(1);
        let seen: std::collections::HashSet<char> = (0..100).map(|_| s.sample(&mut rng)).collect();
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic(7);
        let mut b = crate::test_runner::TestRng::deterministic(7);
        let s = 0usize..1_000_000;
        for _ in 0..64 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
