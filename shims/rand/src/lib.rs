//! Deterministic drop-in for the subset of the `rand` API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, the `RngExt`
//! convenience trait (`random_range`, `random_bool`), and
//! `seq::SliceRandom::shuffle`.
//!
//! The build environment is offline, so the real crate cannot be fetched.
//! The generator here is SplitMix64 — statistically fine for workload
//! generation and randomized algorithms, NOT cryptographic. All users in
//! this workspace seed explicitly, so determinism per seed is the only
//! contract that matters.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample from `range` (half-open or inclusive integer ranges).
    ///
    /// Generic over the output type `T` first — like the real crate — so
    /// integer-literal ranges infer their type from how the result is used.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 random bits → uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> RngExt for T {}

/// Range types accepted by [`RngExt::random_range`], producing `T`.
///
/// Implemented as a *blanket* impl over [`SampleUniform`] element types —
/// like the real crate — so the compiler unifies `T` with the range's
/// element type eagerly and integer-literal ranges infer cleanly.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range using `rng`.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

/// Element types [`RngExt::random_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_in<G: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut G) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// Draw from `[0, span)` without modulo bias (rejection sampling).
fn bounded<G: RngCore>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Zone is the largest multiple of `span` that fits in u64.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<G: RngCore>(lo: $t, hi: $t, inclusive: bool, rng: &mut G) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample from empty range {lo}..={hi}");
                    let span = hi.abs_diff(lo) as u64;
                    if span == u64::MAX {
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add(bounded(rng, span + 1) as $t)
                } else {
                    assert!(lo < hi, "cannot sample from empty range {lo}..{hi}");
                    let span = hi.abs_diff(lo) as u64;
                    lo.wrapping_add(bounded(rng, span) as $t)
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u16, u32, u64, i32, i64);

impl SampleUniform for f64 {
    fn sample_in<G: RngCore>(lo: f64, hi: f64, _inclusive: bool, rng: &mut G) -> f64 {
        assert!(lo < hi, "cannot sample from empty range {lo}..{hi}");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): full-period, passes
            // BigCrush; more than enough for graph generation.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// In-place shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<G: RngCore>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<G: RngCore>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{rngs::StdRng, seq::SliceRandom, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(43);
        let stream_a: Vec<usize> = (0..16).map(|_| a.random_range(0..1 << 20)).collect();
        let stream_c: Vec<usize> = (0..16).map(|_| c.random_range(0..1 << 20)).collect();
        assert_ne!(stream_a, stream_c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(5..17usize);
            assert!((5..17).contains(&x));
            let y = rng.random_range(1..=3usize);
            assert!((1..=3).contains(&y));
            let f = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
        // Inclusive ranges must be able to hit both endpoints.
        let hits: std::collections::HashSet<usize> =
            (0..1000).map(|_| rng.random_range(0..=2usize)).collect();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&heads), "heads = {heads}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>());
    }
}
