//! # symmetry-breaking
//!
//! Decomposition-based parallel symmetry breaking: maximal matching, vertex
//! coloring, and maximal independent set over light-weight graph
//! decompositions (BRIDGE / RAND / DEGk), reproducing *"A Study of Graph
//! Decomposition Algorithms for Parallel Symmetry Breaking"* (Nayyaroddeen,
//! Gambhir, Kothapalli; IPDPS-W 2017).
//!
//! This crate is the façade over the workspace: it re-exports the public
//! API of the substrate crates so applications depend on one crate.
//!
//! ```
//! use symmetry_breaking::prelude::*;
//!
//! // Build a graph, pick an algorithm + architecture, verify the result.
//! let g = from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
//! let run = maximal_matching(&g, MmAlgorithm::Rand { partitions: 2 }, Arch::Cpu, 42);
//! check_maximal_matching(&g, &run.mate).unwrap();
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub mod loadgen;

pub use sb_core as core;
pub use sb_datasets as datasets;
pub use sb_decompose as decompose;
pub use sb_engine as engine;
pub use sb_graph as graph;
pub use sb_par as par;
pub use sb_trace as trace;

/// One-stop imports for applications.
pub mod prelude {
    pub use sb_core::coloring::{
        vertex_coloring, vertex_coloring_opts, vertex_coloring_traced, ColorAlgorithm, ColoringRun,
    };
    pub use sb_core::common::{Arch, FrontierMode, RunStats, SolveOpts};
    pub use sb_core::matching::{
        maximal_matching, maximal_matching_opts, maximal_matching_traced, suggested_partitions,
        MatchingRun, MmAlgorithm,
    };
    pub use sb_core::mis::{
        maximal_independent_set, maximal_independent_set_opts, maximal_independent_set_traced,
        MisAlgorithm, MisRun,
    };
    pub use sb_core::repair::{repair_coloring, repair_matching, repair_mis};
    pub use sb_core::verify::{
        check_coloring, check_independent_set, check_matching, check_maximal_independent_set,
        check_maximal_matching, color_count, matching_cardinality,
    };
    pub use sb_datasets::suite::{generate, load_or_generate, spec, GraphId, Scale};
    pub use sb_decompose::{
        decompose_bridge, decompose_degk, decompose_metis_like, decompose_rand,
    };
    pub use sb_engine::{
        parse_jobs, run_batch_compare, BatchOptions, BatchReport, CancelToken, Client, Engine,
        EngineConfig, GraphSource, JobSpec, ServeConfig, Server, ServerHandle, Session,
        SharedEngine, Solver,
    };
    pub use sb_graph::builder::{from_edge_list, GraphBuilder};
    pub use sb_graph::csr::{Graph, VertexId, INVALID};
    pub use sb_graph::editlog::{Edit, EditLog, Overlay, MAX_EDIT_VERTEX};
    pub use sb_graph::renumber::{renumber_by_degree, unpermute_labels};
    pub use sb_graph::sbg::{map_sbg, read_sbg_perm, write_sbg, SbgError};
    pub use sb_graph::stats::GraphStats;
    pub use sb_graph::store::{FileIdent, GraphStore, Mapping};
    pub use sb_par::counters::Counters;
    pub use sb_par::frontier::{Frontier, Scratch};
    pub use sb_trace::{TraceSink, TraceSummary};
}
