//! `sbreak` — command-line front end for the symmetry-breaking library.
//!
//! ```text
//! sbreak generate <graph> [--scale F] [--seed S] -o out.edges
//! sbreak convert  <input> <out.sbg> [--renumber degree] [--scale F] [--seed S]
//! sbreak stats     <input> [--bridges] [--blocks]
//! sbreak decompose <input> --method bridge|rand:K|degk:K|metis:K|bicc
//! sbreak solve     <input> --problem mm|color|mis
//!                          [--algo baseline|bridge|rand:K|degk:K|bicc]
//!                          [--arch cpu|gpu] [--seed S] [-o solution.txt]
//! sbreak fuzz      [--seed S] [--budget-secs T] [--max-cases K]
//!                  [--threads N] [-o results/fuzz] [--replay case.txt]
//! sbreak batch     <jobs.toml> [--cache-cap N] [--compare-fresh]
//!                  [--trace-dir d] [--out-dir d] [-o BENCH_engine.json]
//! sbreak profile   <trace.jsonl> [--top K] [--metrics snapshot.json]
//! sbreak perfdiff  <baseline.json> <candidate.json>
//!                  [--rel-tol F] [--abs-floor F] [--strict]
//! sbreak serve     [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!                  [--cache-cap N] [--tenant-quota BYTES] [--deadline-ms T]
//! sbreak loadgen   [gen:<graph>] [--addr HOST:PORT] [--clients N]
//!                  [--repeats R] [--scale F] [--seed S] [--workers N]
//!                  [--shutdown] [-o <dir>]
//! ```
//!
//! `<input>` is an edge-list, Matrix-Market (`.mtx`), or binary CSR
//! (`.sbg`) file, or `gen:<graph>` for a Table II stand-in (e.g.
//! `gen:germany-osm`). Solutions are always verified before they are
//! reported or written.
//!
//! `convert` serializes any input to the `.sbg` on-disk CSR format
//! (DESIGN.md §15). Every command that takes `<input>` accepts the
//! resulting file and loads it through a zero-copy read-only mapping —
//! the out-of-core path for graphs that should cost page cache, not
//! heap. `--renumber degree` reorders vertices by descending degree at
//! convert time and stores the new→old permutation in the file, so
//! solver output maps back to original ids.
//!
//! `--trace <out.jsonl>` (on `solve` and `decompose`) records phase spans
//! and per-round records to a JSONL file and prints a one-line summary.
//!
//! `--metrics <out.json>` (on `solve`, `batch`, and `fuzz`) writes the
//! process-wide `sb-metrics` registry snapshot — worker-pool, engine-cache,
//! and frontier/scratch series plus per-phase latency histograms — as JSON
//! (Prometheus text when the path ends in `.prom`) on exit. `profile` digests a recorded trace into per-phase round-time
//! percentiles and the hottest rounds (pass the snapshot back via
//! `--metrics` for the cache/arena summary); `perfdiff` compares two
//! BENCH-shaped reports and exits nonzero when an enforced cell regressed:
//! `edges` columns (Logical class — deterministic work totals) always,
//! `ms`/`us` columns (Runtime class — host timing) only under `--strict`
//! (DESIGN.md §12).
//!
//! `--threads <n>` pins the parallel execution to an `n`-thread pool (the
//! rayon layer runs a real worker pool); the default is the host's
//! available parallelism.
//!
//! `--frontier dense|compact|bitset` (on `solve`) picks the round-loop live-set
//! strategy: `compact` (the default) iterates compacted worklists of
//! still-undecided vertices, `dense` rescans `0..n` every round (the
//! pre-frontier behavior, kept for A/B comparison), and `bitset` keeps the
//! live set as u64 bitset words iterated by trailing zeros — byte-identical
//! results to `compact` at lower memory traffic.
//!
//! `serve` runs the resident multi-tenant solve daemon: JSONL requests
//! over TCP against one shared cached-decomposition engine (DESIGN.md
//! §13). `loadgen` drives a serve daemon (or an in-process one when no
//! `--addr` is given) through a cold pass and a concurrent warm pass and
//! writes client-observed latency percentiles to
//! `results/BENCH_serve.json`.
//!
//! `batch` runs a jobs file through the cached-decomposition engine
//! (`sb-engine`): N jobs on one graph pay for ingestion and each distinct
//! decomposition once. `--cache-cap 0` disables the caches (the reference
//! path), `--compare-fresh` additionally re-runs everything cache-disabled
//! and hard-errors on any output divergence.

use std::io::Write;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use symmetry_breaking::decompose::{
    decompose_bicc, decompose_bridge, decompose_degk, decompose_metis_like, decompose_rand,
};
use symmetry_breaking::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage:\n  sbreak generate <graph> [--scale F] [--seed S] -o <file>\n  \
         sbreak convert <input> <out.sbg> [--renumber degree] [--scale F] [--seed S]\n  \
         sbreak stats <input> [--bridges] [--blocks] [--scale F] [--seed S]\n  \
         sbreak decompose <input> --method bridge|rand:K|degk:K|metis:K|bicc [--seed S] [--trace <out.jsonl>]\n  \
         sbreak solve <input> --problem mm|color|mis [--algo baseline|bridge|rand:K|degk:K|bicc]\n  \
         \x20            [--arch cpu|gpu] [--frontier dense|compact|bitset] [--seed S] [--threads N]\n  \
         \x20            [-o <file>] [--trace <out.jsonl>]\n  \
         sbreak fuzz [--seed S] [--budget-secs T] [--max-cases K] [--threads N]\n  \
         \x20           [-o <dir>] [--replay <case.txt>]\n  \
         sbreak batch <jobs.toml> [--cache-cap N] [--compare-fresh] [--threads N]\n  \
         \x20            [--trace-dir <dir>] [--out-dir <dir>] [-o <report.json>]\n  \
         sbreak profile <trace.jsonl> [--top K] [--metrics <snapshot.json>]\n  \
         sbreak perfdiff <baseline.json> <candidate.json> [--rel-tol F] [--abs-floor F] [--strict]\n  \
         sbreak serve [--addr H:P] [--workers N] [--queue-cap N] [--cache-cap N]\n  \
         \x20            [--tenant-quota BYTES] [--deadline-ms T] [--threads N]\n  \
         sbreak loadgen [gen:<graph>] [--addr H:P] [--clients N] [--repeats R]\n  \
         \x20              [--scale F] [--seed S] [--workers N] [--shutdown] [-o <dir>]\n\n\
         <input>: an edge-list/.mtx/.sbg path, or gen:<table-II-name> (e.g. gen:lp1)\n\
         --metrics <out.json> (solve/batch/fuzz): write the metrics registry snapshot on exit"
    );
    std::process::exit(2)
}

/// `name:K` → (name, Some(K)); `name` → (name, None). A malformed or zero
/// parameter is an error rather than a silent fallback.
fn split_param(s: &str) -> Result<(&str, Option<usize>), String> {
    match s.split_once(':') {
        Some((a, b)) => match b.parse::<usize>() {
            Ok(k) if k >= 1 => Ok((a, Some(k))),
            _ => Err(format!(
                "'{s}': the parameter after ':' must be a positive integer"
            )),
        },
        None => Ok((s, None)),
    }
}

/// Resolve a Table II name to its `GraphId`.
fn graph_id_by_name(name: &str) -> Option<GraphId> {
    GraphId::ALL
        .into_iter()
        .find(|&id| symmetry_breaking::datasets::suite::spec(id).name == name)
}

fn load_input(input: &str, scale: Scale, seed: u64) -> Result<Graph, String> {
    if let Some(name) = input.strip_prefix("gen:") {
        let id = graph_id_by_name(name).ok_or_else(|| {
            let names: Vec<&str> = GraphId::ALL
                .into_iter()
                .map(|id| symmetry_breaking::datasets::suite::spec(id).name)
                .collect();
            format!("unknown graph '{name}'; available: {}", names.join(", "))
        })?;
        Ok(generate(id, scale, seed))
    } else {
        symmetry_breaking::graph::io::read_path(Path::new(input))
            .map_err(|e| format!("cannot read {input}: {e}"))
    }
}

struct Flags {
    positional: Vec<String>,
    scale: Scale,
    seed: u64,
    arch: Arch,
    frontier: FrontierMode,
    method: Option<String>,
    problem: Option<String>,
    algo: String,
    output: Option<String>,
    trace: Option<String>,
    bridges: bool,
    blocks: bool,
    threads: Option<usize>,
    budget_secs: Option<u64>,
    max_cases: Option<usize>,
    replay: Option<String>,
    cache_cap: Option<usize>,
    trace_dir: Option<String>,
    out_dir: Option<String>,
    compare_fresh: bool,
    metrics: Option<String>,
    top: usize,
    rel_tol: f64,
    abs_floor: f64,
    strict: bool,
    addr: Option<String>,
    workers: Option<usize>,
    queue_cap: Option<usize>,
    tenant_quota: Option<u64>,
    deadline_ms: Option<u64>,
    clients: Option<usize>,
    repeats: Option<usize>,
    shutdown: bool,
    renumber: Option<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        positional: Vec::new(),
        scale: Scale::Default,
        seed: 42,
        arch: Arch::Cpu,
        frontier: FrontierMode::default(),
        method: None,
        problem: None,
        algo: "baseline".into(),
        output: None,
        trace: None,
        bridges: false,
        blocks: false,
        threads: None,
        budget_secs: None,
        max_cases: None,
        replay: None,
        cache_cap: None,
        trace_dir: None,
        out_dir: None,
        compare_fresh: false,
        metrics: None,
        top: 5,
        rel_tol: 0.10,
        abs_floor: 0.5,
        strict: false,
        addr: None,
        workers: None,
        queue_cap: None,
        tenant_quota: None,
        deadline_ms: None,
        clients: None,
        repeats: None,
        shutdown: false,
        renumber: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--scale" => {
                f.scale = Scale::Factor(
                    val("--scale")?
                        .parse()
                        .map_err(|_| "--scale takes a float".to_string())?,
                )
            }
            "--seed" => {
                f.seed = val("--seed")?
                    .parse()
                    .map_err(|_| "--seed takes a u64".to_string())?
            }
            "--arch" => {
                f.arch = match val("--arch")?.as_str() {
                    "cpu" => Arch::Cpu,
                    "gpu" => Arch::GpuSim,
                    other => return Err(format!("unknown arch '{other}'")),
                }
            }
            "--frontier" => f.frontier = val("--frontier")?.parse()?,
            "--method" => f.method = Some(val("--method")?),
            "--problem" => f.problem = Some(val("--problem")?),
            "--algo" => f.algo = val("--algo")?,
            "-o" | "--output" => f.output = Some(val("-o")?),
            "--trace" => f.trace = Some(val("--trace")?),
            "--threads" => {
                f.threads = Some(match val("--threads")?.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => return Err("--threads takes a positive integer".to_string()),
                })
            }
            "--budget-secs" => {
                f.budget_secs = Some(
                    val("--budget-secs")?
                        .parse()
                        .map_err(|_| "--budget-secs takes a u64".to_string())?,
                )
            }
            "--max-cases" => {
                f.max_cases = Some(
                    val("--max-cases")?
                        .parse()
                        .map_err(|_| "--max-cases takes a positive integer".to_string())?,
                )
            }
            "--replay" => f.replay = Some(val("--replay")?),
            "--cache-cap" => {
                f.cache_cap = Some(
                    val("--cache-cap")?
                        .parse()
                        .map_err(|_| "--cache-cap takes a non-negative integer".to_string())?,
                )
            }
            "--metrics" => f.metrics = Some(val("--metrics")?),
            "--top" => {
                f.top = match val("--top")?.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => return Err("--top takes a positive integer".to_string()),
                }
            }
            "--rel-tol" => {
                f.rel_tol = match val("--rel-tol")?.parse::<f64>() {
                    Ok(x) if x >= 0.0 => x,
                    _ => return Err("--rel-tol takes a non-negative float".to_string()),
                }
            }
            "--abs-floor" => {
                f.abs_floor = match val("--abs-floor")?.parse::<f64>() {
                    Ok(x) if x >= 0.0 => x,
                    _ => return Err("--abs-floor takes a non-negative float".to_string()),
                }
            }
            "--strict" => f.strict = true,
            "--addr" => f.addr = Some(val("--addr")?),
            "--workers" => {
                f.workers = Some(match val("--workers")?.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => return Err("--workers takes a positive integer".to_string()),
                })
            }
            "--queue-cap" => {
                f.queue_cap = Some(match val("--queue-cap")?.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => return Err("--queue-cap takes a positive integer".to_string()),
                })
            }
            "--tenant-quota" => {
                f.tenant_quota = Some(
                    val("--tenant-quota")?
                        .parse()
                        .map_err(|_| "--tenant-quota takes a byte count (u64)".to_string())?,
                )
            }
            "--deadline-ms" => {
                f.deadline_ms = Some(
                    val("--deadline-ms")?
                        .parse()
                        .map_err(|_| "--deadline-ms takes a u64".to_string())?,
                )
            }
            "--clients" => {
                f.clients = Some(match val("--clients")?.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => return Err("--clients takes a positive integer".to_string()),
                })
            }
            "--repeats" => {
                f.repeats = Some(match val("--repeats")?.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => return Err("--repeats takes a positive integer".to_string()),
                })
            }
            "--shutdown" => f.shutdown = true,
            "--renumber" => f.renumber = Some(val("--renumber")?),
            "--trace-dir" => f.trace_dir = Some(val("--trace-dir")?),
            "--out-dir" => f.out_dir = Some(val("--out-dir")?),
            "--compare-fresh" => f.compare_fresh = true,
            "--bridges" => f.bridges = true,
            "--blocks" => f.blocks = true,
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => f.positional.push(other.to_string()),
        }
    }
    Ok(f)
}

/// Build the trace sink requested by `--trace`, if any.
fn trace_sink(f: &Flags) -> Option<Arc<TraceSink>> {
    f.trace.as_ref().map(|_| Arc::new(TraceSink::enabled()))
}

/// Write the recorded trace to the `--trace` path and print its summary.
fn flush_trace(f: &Flags, sink: &Option<Arc<TraceSink>>) -> Result<(), String> {
    let (Some(path), Some(sink)) = (f.trace.as_ref(), sink.as_ref()) else {
        return Ok(());
    };
    sink.save_jsonl(Path::new(path))
        .map_err(|e| format!("cannot write trace {path}: {e}"))?;
    if let Some(summary) = sink.summary() {
        println!("{}", summary.render_line());
    }
    println!("[trace written to {path}]");
    Ok(())
}

/// Write the process-wide metrics snapshot to the `--metrics` path, if
/// one was requested. Runs after the command body so the snapshot sees
/// everything the run recorded (on `solve`/`batch`/`fuzz`).
fn flush_metrics(f: &Flags) -> Result<(), String> {
    let Some(path) = f.metrics.as_ref() else {
        return Ok(());
    };
    let snap = sb_metrics::global().snapshot();
    let body = if path.ends_with(".prom") {
        snap.to_prometheus()
    } else {
        snap.to_json()
    };
    std::fs::write(path, body).map_err(|e| format!("cannot write metrics {path}: {e}"))?;
    println!("[metrics written to {path}: {} series]", snap.series.len());
    Ok(())
}

fn write_or_print(output: &Option<String>, content: &str) -> Result<(), String> {
    match output {
        Some(path) => {
            let mut fh =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            fh.write_all(content.as_bytes())
                .map_err(|e| format!("write failed: {e}"))?;
            println!("[written to {path}]");
            Ok(())
        }
        None => {
            println!("{content}");
            Ok(())
        }
    }
}

fn cmd_generate(f: &Flags) -> Result<(), String> {
    let name = f.positional.first().ok_or("generate needs a graph name")?;
    let id = graph_id_by_name(name).ok_or_else(|| format!("unknown graph '{name}'"))?;
    let g = generate(id, f.scale, f.seed);
    let out = f.output.as_ref().ok_or("generate needs -o <file>")?;
    let fh = std::fs::File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    symmetry_breaking::graph::io::write_edge_list(&g, fh).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} vertices, {} edges) to {out}",
        name,
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}

fn cmd_convert(f: &Flags) -> Result<(), String> {
    let input = f.positional.first().ok_or("convert needs an input")?;
    let out = f
        .positional
        .get(1)
        .cloned()
        .or_else(|| f.output.clone())
        .ok_or("convert needs an output path (second positional or -o)")?;
    let g = load_input(input, f.scale, f.seed)?;
    let (g, perm) = match f.renumber.as_deref() {
        None | Some("none") => (g, None),
        Some("degree") => {
            let (h, p) = symmetry_breaking::graph::renumber::renumber_by_degree(&g);
            (h, Some(p))
        }
        Some(other) => {
            return Err(format!(
                "unknown --renumber mode '{other}' (expected 'degree' or 'none')"
            ))
        }
    };
    let bytes = symmetry_breaking::graph::sbg::write_sbg(&g, perm.as_deref(), Path::new(&out))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {out}: {} vertices, {} edges, {bytes} bytes{}",
        g.num_vertices(),
        g.num_edges(),
        if perm.is_some() {
            " (degree-renumbered, permutation stored)"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_stats(f: &Flags) -> Result<(), String> {
    let input = f.positional.first().ok_or("stats needs an input")?;
    let g = load_input(input, f.scale, f.seed)?;
    let s = GraphStats::compute(&g);
    println!("vertices      {}", s.num_vertices);
    println!("edges         {}", s.num_edges);
    println!("avg degree    {:.2}", s.avg_degree);
    println!("max degree    {}", s.max_degree);
    println!("%deg≤2        {:.1}", s.pct_deg_le2);
    println!("isolated      {}", s.isolated);
    if f.bridges {
        let b = symmetry_breaking::decompose::bridge::find_bridges(&g, &Counters::new());
        println!(
            "bridges       {} ({:.1}% of edges)",
            b.len(),
            100.0 * b.len() as f64 / s.num_edges.max(1) as f64
        );
    }
    if f.blocks {
        let p = decompose_bicc(&g, &Counters::new());
        println!("blocks        {}", p.num_blocks);
        println!("articulation  {}", p.articulation_points().len());
    }
    Ok(())
}

fn cmd_decompose(f: &Flags) -> Result<(), String> {
    let input = f.positional.first().ok_or("decompose needs an input")?;
    let method = f.method.as_ref().ok_or("decompose needs --method")?;
    let g = load_input(input, f.scale, f.seed)?;
    let sink = trace_sink(f);
    let c = match &sink {
        Some(s) => Counters::with_trace(s.clone()),
        None => Counters::new(),
    };
    let sw = std::time::Instant::now();
    let span = c.phase("decompose");
    let summary = match split_param(method)? {
        ("bridge", _) => {
            let d = decompose_bridge(&g, &c);
            format!(
                "BRIDGE: {} bridges ({:.1}%), {} two-edge-connected components",
                d.bridges.len(),
                100.0 * d.bridges.len() as f64 / g.num_edges().max(1) as f64,
                d.components.count
            )
        }
        ("rand", k) => {
            let k = k.unwrap_or(10);
            let d = decompose_rand(&g, k, f.seed, &c);
            format!(
                "RAND(k={k}): {} induced edges ({:.1}%), {} cross edges",
                d.m_induced,
                100.0 * d.induced_edge_fraction(),
                d.m_cross
            )
        }
        ("degk", k) => {
            let k = k.unwrap_or(2);
            let d = decompose_degk(&g, k, &c);
            format!(
                "DEG{k}: |V_H| = {}, G_H {} edges, G_L {} edges, G_C {} edges",
                d.high_vertices().len(),
                d.m_high,
                d.m_low,
                d.m_cross
            )
        }
        ("metis", k) => {
            let k = k.unwrap_or(8);
            let d = decompose_metis_like(&g, k, &c);
            format!(
                "METIS-like(k={k}): cut = {} edges ({:.1}%)",
                d.cut,
                100.0 * d.cut as f64 / g.num_edges().max(1) as f64
            )
        }
        ("bicc", _) => {
            let d = decompose_bicc(&g, &c);
            format!(
                "BICC: {} blocks, {} articulation points",
                d.num_blocks,
                d.articulation_points().len()
            )
        }
        (other, _) => return Err(format!("unknown method '{other}'")),
    };
    drop(span);
    println!("{summary}");
    println!(
        "decomposed in {:.2} ms ({} rounds)",
        sw.elapsed().as_secs_f64() * 1e3,
        c.rounds()
    );
    flush_trace(f, &sink)?;
    Ok(())
}

fn cmd_solve(f: &Flags) -> Result<(), String> {
    let input = f.positional.first().ok_or("solve needs an input")?;
    let problem = f.problem.as_ref().ok_or("solve needs --problem")?;
    let g = load_input(input, f.scale, f.seed)?;
    let sink = trace_sink(f);
    let opts = SolveOpts {
        trace: sink.clone(),
        frontier: f.frontier,
    };

    match problem.as_str() {
        "mm" => {
            let algo = match split_param(&f.algo)? {
                ("baseline", _) => MmAlgorithm::Baseline,
                ("bridge", _) => MmAlgorithm::Bridge,
                ("rand", k) => MmAlgorithm::Rand {
                    partitions: k.unwrap_or(10),
                },
                ("degk", k) => MmAlgorithm::Degk { k: k.unwrap_or(2) },
                ("bicc", _) => MmAlgorithm::Bicc,
                (other, _) => return Err(format!("unknown algo '{other}'")),
            };
            let run = maximal_matching_opts(&g, algo, f.arch, f.seed, &opts);
            check_maximal_matching(&g, &run.mate).map_err(|e| format!("INVALID RESULT: {e}"))?;
            println!(
                "maximal matching: {} edges in {:.2} ms ({} rounds; decomposition {:.2} ms) — verified",
                run.cardinality(),
                run.stats.total_ms(),
                run.stats.counters.rounds,
                run.stats.decompose_time.as_secs_f64() * 1e3
            );
            let body: String = run
                .mate
                .iter()
                .enumerate()
                .filter(|&(v, &m)| (m as usize) > v && m != INVALID)
                .map(|(v, &m)| format!("{v} {m}\n"))
                .collect();
            if f.output.is_some() {
                write_or_print(&f.output, &body)?;
            }
        }
        "color" => {
            let algo = match split_param(&f.algo)? {
                ("baseline", _) => ColorAlgorithm::Baseline,
                ("bridge", _) => ColorAlgorithm::Bridge,
                ("rand", k) => ColorAlgorithm::Rand {
                    partitions: k.unwrap_or(2),
                },
                ("degk", k) => ColorAlgorithm::Degk { k: k.unwrap_or(2) },
                ("bicc", _) => ColorAlgorithm::Bicc,
                (other, _) => return Err(format!("unknown algo '{other}'")),
            };
            let run = vertex_coloring_opts(&g, algo, f.arch, f.seed, &opts);
            check_coloring(&g, &run.color).map_err(|e| format!("INVALID RESULT: {e}"))?;
            println!(
                "coloring: {} colors in {:.2} ms ({} rounds) — verified",
                run.num_colors(),
                run.stats.total_ms(),
                run.stats.counters.rounds
            );
            if f.output.is_some() {
                let body: String = run
                    .color
                    .iter()
                    .enumerate()
                    .map(|(v, c)| format!("{v} {c}\n"))
                    .collect();
                write_or_print(&f.output, &body)?;
            }
        }
        "mis" => {
            let algo = match split_param(&f.algo)? {
                ("baseline", _) => MisAlgorithm::Baseline,
                ("bridge", _) => MisAlgorithm::Bridge,
                ("rand", k) => MisAlgorithm::Rand {
                    partitions: k.unwrap_or(10),
                },
                ("degk", k) => MisAlgorithm::Degk { k: k.unwrap_or(2) },
                ("bicc", _) => MisAlgorithm::Bicc,
                (other, _) => return Err(format!("unknown algo '{other}'")),
            };
            let run = maximal_independent_set_opts(&g, algo, f.arch, f.seed, &opts);
            check_maximal_independent_set(&g, &run.in_set)
                .map_err(|e| format!("INVALID RESULT: {e}"))?;
            println!(
                "maximal independent set: {} vertices in {:.2} ms ({} rounds) — verified",
                run.size(),
                run.stats.total_ms(),
                run.stats.counters.rounds
            );
            if f.output.is_some() {
                let body: String = run
                    .in_set
                    .iter()
                    .enumerate()
                    .filter(|&(_, &b)| b)
                    .map(|(v, _)| format!("{v}\n"))
                    .collect();
                write_or_print(&f.output, &body)?;
            }
        }
        other => return Err(format!("unknown problem '{other}' (mm|color|mis)")),
    }
    flush_trace(f, &sink)?;
    Ok(())
}

/// `sbreak fuzz`: run the differential fuzzing oracle (or replay one
/// recorded counterexample). `--threads` here sets the wide N of the
/// 1-vs-N matrix rather than pinning a pool — the oracle manages its own
/// pools per run.
fn cmd_fuzz(f: &Flags) -> Result<(), String> {
    use sb_fuzz::{run_fuzz, CaseFile, FuzzOptions, Mutation, SolverConfig};

    let wide = f.threads.unwrap_or(4);
    if let Some(path) = &f.replay {
        let case = CaseFile::load(Path::new(path))?;
        let cfg = SolverConfig::parse(&case.config)?;
        let g = symmetry_breaking::graph::builder::from_edge_list(case.n, &case.edges);
        let threads = f.threads.unwrap_or(case.threads);
        println!(
            "replaying {}: {} (n={}, m={}, seed={}, wide={})",
            path,
            case.config,
            case.n,
            case.edges.len(),
            case.seed,
            threads
        );
        return match sb_fuzz::oracle::check_case(&g, &cfg, case.seed, threads, Mutation::None) {
            Ok(()) => {
                println!("case passes: the recorded failure no longer reproduces");
                Ok(())
            }
            Err(fail) => Err(format!("case still fails — {fail}")),
        };
    }

    let out_dir = f.output.clone().unwrap_or_else(|| "results/fuzz".into());
    let report = run_fuzz(&FuzzOptions {
        master_seed: f.seed,
        budget: f.budget_secs.map(std::time::Duration::from_secs),
        max_cases: f.max_cases,
        wide_threads: wide,
        out_dir: Some(out_dir.clone().into()),
        ..FuzzOptions::default()
    });
    println!(
        "fuzz: {} cases ({} configs covered) in {:.1}s{}",
        report.cases_run,
        report.configs_covered,
        report.elapsed.as_secs_f64(),
        if report.truncated { " [truncated]" } else { "" }
    );
    if report.counterexamples.is_empty() {
        println!("zero counterexamples");
        return Ok(());
    }
    for cex in &report.counterexamples {
        eprintln!(
            "counterexample: {} on '{}' seed {} — {}: {}",
            cex.config, cex.graph, cex.seed, cex.kind, cex.detail
        );
        eprintln!(
            "  minimized to n={} m={}{}",
            cex.shrunk.n,
            cex.shrunk.edges.len(),
            match &cex.case_path {
                Some(p) => format!(", case file {}", p.display()),
                None => String::new(),
            }
        );
        eprintln!("  regression skeleton:\n{}", cex.regression);
    }
    Err(format!(
        "{} counterexample(s) found",
        report.counterexamples.len()
    ))
}

/// `sbreak batch`: run a jobs file through the cached-decomposition
/// engine. Per-job thread pins come from the jobs file; `--threads` sets
/// the default for jobs that don't pin (the engine's workers run outside
/// any pool installed on this thread, so the global pin would not reach
/// them).
fn cmd_batch(f: &Flags) -> Result<(), String> {
    use symmetry_breaking::engine::{
        parse_jobs, run_batch_compare, BatchOptions, Engine, EngineConfig,
    };

    let path = f.positional.first().ok_or("batch needs a jobs file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut jobs = parse_jobs(&text, path)?;
    if let Some(n) = f.threads {
        for job in &mut jobs {
            job.threads.get_or_insert(n);
        }
    }
    println!("batch: {} job(s) from {path}", jobs.len());

    let cfg = EngineConfig {
        cache_cap: f.cache_cap.unwrap_or(64),
        ..EngineConfig::default()
    };
    let opts = BatchOptions {
        trace_dir: f.trace_dir.as_ref().map(std::path::PathBuf::from),
    };
    let report = if f.compare_fresh {
        run_batch_compare(&jobs, cfg, &opts)?
    } else {
        Engine::new(cfg).run_batch(&jobs, &opts)?
    };

    if let Some(dir) = &f.out_dir {
        let dir = Path::new(dir);
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        for job in &report.jobs {
            if let Some(solution) = &job.solution {
                let out = dir.join(format!("{}.txt", job.label));
                std::fs::write(&out, solution.render())
                    .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
            }
        }
        println!("[solutions written to {}]", dir.display());
    }

    print!("{}", report.render_markdown());
    // A run that did not complete every job must never clobber the
    // checked-in default artifact; failed runs only write a report when
    // one is explicitly requested with -o.
    if f.output.is_some() || report.all_ok() {
        let json_path = f
            .output
            .clone()
            .unwrap_or_else(|| "results/BENCH_engine.json".into());
        report.save_json(Path::new(&json_path))?;
        println!("\n[saved {json_path}]");
    } else {
        eprintln!(
            "warning: run failed; not overwriting default \
             results/BENCH_engine.json (pass -o to write a report)"
        );
    }

    if report.all_ok() {
        Ok(())
    } else {
        let bad: Vec<String> = report
            .jobs
            .iter()
            .filter(|j| j.outcome != symmetry_breaking::engine::JobOutcome::Ok)
            .map(|j| format!("{} ({}: {})", j.label, j.outcome.label(), j.detail))
            .collect();
        Err(format!(
            "{} job(s) did not complete: {}",
            bad.len(),
            bad.join("; ")
        ))
    }
}

/// `sbreak profile`: digest a recorded `--trace` JSONL into the numbers a
/// perf investigation starts from — the same one-line summary the traced
/// run printed (byte-for-byte, from the same `TraceSummary`), a per-phase
/// round-time percentile table, and the hottest individual rounds. With
/// `--metrics <snapshot.json>` it also summarizes the engine caches and
/// the scratch arena from a snapshot the run wrote.
fn cmd_profile(f: &Flags) -> Result<(), String> {
    use sb_bench::report::Table;

    let path = f.positional.first().ok_or("profile needs a trace file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let events = symmetry_breaking::trace::parse_jsonl(&text).map_err(|e| e.to_string())?;
    let summary = TraceSummary::from_events(&events);
    println!("{}", summary.render_line());

    // Round durations grouped by phase, in first-appearance order.
    let mut order: Vec<String> = Vec::new();
    let mut by_phase: std::collections::HashMap<String, Vec<u64>> = Default::default();
    let mut rounds: Vec<(&String, &symmetry_breaking::trace::RoundRecord)> = Vec::new();
    for e in &events {
        if let symmetry_breaking::trace::TraceEvent::Round { phase, record, .. } = e {
            if !by_phase.contains_key(phase) {
                order.push(phase.clone());
            }
            by_phase
                .entry(phase.clone())
                .or_default()
                .push(record.duration_us);
            rounds.push((phase, record));
        }
    }
    // Nearest-rank percentile over a sorted slice — the TraceSummary rule,
    // applied per phase.
    let pct = |sorted: &[u64], p: f64| -> u64 {
        let rank = (p * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    };
    let mut phases = Table::new(
        "Per-phase round times",
        &["phase", "rounds", "p50 us", "p95 us", "p99 us", "max us"],
    );
    for name in &order {
        let durs = by_phase.get_mut(name).expect("phase seen");
        durs.sort_unstable();
        phases.row(vec![
            name.clone(),
            durs.len().to_string(),
            pct(durs, 0.50).to_string(),
            pct(durs, 0.95).to_string(),
            pct(durs, 0.99).to_string(),
            durs.last().copied().unwrap_or(0).to_string(),
        ]);
    }
    phases.print();

    rounds.sort_by_key(|r| std::cmp::Reverse(r.1.duration_us));
    let mut hot = Table::new(
        format!("Hottest {} rounds", f.top.min(rounds.len())),
        &[
            "phase",
            "round",
            "duration us",
            "active",
            "settled",
            "edges scanned",
        ],
    );
    for (phase, r) in rounds.iter().take(f.top) {
        hot.row(vec![
            (*phase).clone(),
            r.round.to_string(),
            r.duration_us.to_string(),
            r.active.to_string(),
            r.settled.to_string(),
            r.edges_scanned.to_string(),
        ]);
    }
    hot.print();

    if let Some(mpath) = &f.metrics {
        let text =
            std::fs::read_to_string(mpath).map_err(|e| format!("cannot read {mpath}: {e}"))?;
        let snap = sb_metrics::Snapshot::parse_json(&text)?;
        let mut caches = Table::new(
            "Caches and scratch arena",
            &["series", "hits", "misses", "hit rate", "evictions"],
        );
        for cache in ["graph", "decomp"] {
            let v = |s: &str| snap.scalar_or_zero(&format!("sb_engine_{cache}_cache_{s}"));
            let (h, m) = (v("hits"), v("misses"));
            let rate = if h + m == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * h as f64 / (h + m) as f64)
            };
            caches.row(vec![
                format!("{cache} cache"),
                h.to_string(),
                m.to_string(),
                rate,
                v("evictions").to_string(),
            ]);
        }
        let fresh = snap.scalar_or_zero("sb_par_scratch_fresh_allocs");
        let reused = snap.scalar_or_zero("sb_par_scratch_reuses");
        let rate = if fresh + reused == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", 100.0 * reused as f64 / (fresh + reused) as f64)
        };
        caches.row(vec![
            "scratch arena".into(),
            reused.to_string(),
            fresh.to_string(),
            rate,
            "-".into(),
        ]);
        println!("(scratch arena: hits = buffer reuses, misses = fresh allocations)");
        caches.print();
    }
    Ok(())
}

/// `sbreak perfdiff`: compare a candidate BENCH-shaped report against a
/// baseline and fail (exit 1) when an *enforced* cell regressed past the
/// noise gate or disappeared. Logical-class columns (`edges` — work
/// totals, deterministic per build) are always enforced; Runtime-class
/// columns (`ms`/`us` — host timing) warn by default and are enforced
/// only under `--strict`. See `sb_bench::perfdiff`.
fn cmd_perfdiff(f: &Flags) -> Result<(), String> {
    use sb_bench::perfdiff::{diff_reports, CostClass, Tolerance};

    let [base, cand] = f.positional.as_slice() else {
        return Err("perfdiff needs <baseline.json> <candidate.json>".into());
    };
    let base_text =
        std::fs::read_to_string(base).map_err(|e| format!("cannot read {base}: {e}"))?;
    let cand_text =
        std::fs::read_to_string(cand).map_err(|e| format!("cannot read {cand}: {e}"))?;
    let tol = Tolerance {
        rel: f.rel_tol,
        abs: f.abs_floor,
    };
    let diff = diff_reports(&base_text, &cand_text, tol)?;
    print!("{}", diff.render());
    let gate_tripped = if f.strict {
        diff.regressed()
    } else {
        diff.enforced_regressed()
    };
    if gate_tripped {
        Err(format!(
            "performance regression: {} logical + {} runtime cell(s) over tolerance \
             (rel {:.0}%, abs {}{}), {} missing",
            diff.regressed_of(CostClass::Logical),
            diff.regressed_of(CostClass::Runtime),
            100.0 * tol.rel,
            tol.abs,
            if f.strict { ", strict" } else { "" },
            diff.missing.len()
        ))
    } else {
        if diff.regressed() {
            println!(
                "warning: {} runtime-class cell(s) regressed — warn-only \
                 (re-run with --strict to enforce timing columns)",
                diff.regressed_of(CostClass::Runtime)
            );
        }
        Ok(())
    }
}

/// `sbreak serve`: run the resident multi-tenant solve daemon until a
/// client sends a `shutdown` op. One shared engine, a bounded admission
/// queue, and a fixed worker pool (DESIGN.md §13).
fn cmd_serve(f: &Flags) -> Result<(), String> {
    use symmetry_breaking::engine::{EngineConfig, ServeConfig, Server};

    let cfg = ServeConfig {
        addr: f.addr.clone().unwrap_or_else(|| "127.0.0.1:7199".into()),
        workers: f.workers.unwrap_or(2),
        queue_cap: f.queue_cap.unwrap_or(64),
        engine: EngineConfig {
            cache_cap: f.cache_cap.unwrap_or(64),
            tenant_quota_bytes: f.tenant_quota,
            ..EngineConfig::default()
        },
        default_deadline_ms: f.deadline_ms,
        default_threads: f.threads,
        allow_debug: false,
        ..ServeConfig::default()
    };
    let workers = cfg.workers;
    let queue_cap = cfg.queue_cap;
    let handle = Server::spawn(cfg).map_err(|e| format!("cannot start server: {e}"))?;
    println!(
        "sbreak serve: listening on {} ({workers} worker(s), queue cap {queue_cap})",
        handle.addr()
    );
    handle.join();
    println!("sbreak serve: shut down cleanly");
    Ok(())
}

/// `sbreak loadgen`: drive a serve daemon (`--addr`), or an in-process one,
/// through a cold pass and a concurrent warm pass; write the
/// client-observed latency report to `<out-dir>/BENCH_serve.json`.
fn cmd_loadgen(f: &Flags) -> Result<(), String> {
    use symmetry_breaking::loadgen::{run_loadgen, LoadgenOptions};

    let addr = match &f.addr {
        Some(a) => Some(
            a.parse()
                .map_err(|_| format!("--addr '{a}' is not a socket address"))?,
        ),
        None => None,
    };
    let defaults = LoadgenOptions::default();
    let opts = LoadgenOptions {
        addr,
        clients: f.clients.unwrap_or(defaults.clients),
        repeats: f.repeats.unwrap_or(defaults.repeats),
        graph: f
            .positional
            .first()
            .cloned()
            .unwrap_or_else(|| defaults.graph.clone()),
        scale: match f.scale {
            Scale::Factor(x) => x,
            _ => defaults.scale,
        },
        seed: f.seed,
        workers: f.workers.unwrap_or(defaults.workers),
        shutdown: f.shutdown,
    };
    let summary = run_loadgen(&opts)?;
    summary.table.print();
    println!(
        "cold p50 {:.3} ms → warm p50 {:.3} ms over {} warm request(s)",
        summary.cold.p50_ms, summary.warm.p50_ms, summary.warm.requests
    );
    let dir = f.output.clone().unwrap_or_else(|| "results".into());
    summary.table.save_json(Path::new(&dir), "BENCH_serve")?;
    println!("[saved {dir}/BENCH_serve.json]");
    // The whole point of a resident service is the warm path: a run where
    // nothing completed or nothing hit the shared caches is a failure.
    if summary.warm.ok == 0 {
        return Err("warm phase completed zero solves".into());
    }
    if summary.warm.decomp_hits == 0 {
        return Err("warm phase recorded zero decomposition-cache hits".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let run = || match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "convert" => cmd_convert(&flags),
        "stats" => cmd_stats(&flags),
        "decompose" => cmd_decompose(&flags),
        "solve" => cmd_solve(&flags),
        "fuzz" => cmd_fuzz(&flags),
        "batch" => cmd_batch(&flags),
        "profile" => cmd_profile(&flags),
        "perfdiff" => cmd_perfdiff(&flags),
        "serve" => cmd_serve(&flags),
        "loadgen" => cmd_loadgen(&flags),
        _ => {
            usage();
        }
    };
    // Pin the whole command to an explicit pool when asked; otherwise the
    // lazily-built global pool (host parallelism) governs parallel calls.
    // `fuzz` is exempt (its oracle builds a 1-vs-N pool matrix itself), as
    // are `batch`, `serve`, and `loadgen` (each engine job pins its own
    // worker; for `serve`, --threads is the per-request default pin).
    let result = match flags.threads {
        Some(n) if !matches!(cmd.as_str(), "fuzz" | "batch" | "serve" | "loadgen") => {
            symmetry_breaking::par::with_threads(n, run)
        }
        _ => run(),
    };
    // The metrics snapshot is written even when the run itself failed: a
    // counterexample-bearing fuzz run still has pool/cache series worth
    // keeping. `profile` consumes --metrics as an input instead.
    let result = if cmd == "profile" || cmd == "perfdiff" {
        result
    } else {
        match (result, flush_metrics(&flags)) {
            (Ok(()), flushed) => flushed,
            (Err(e), _) => Err(e),
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_param_forms() {
        assert_eq!(split_param("rand:10").unwrap(), ("rand", Some(10)));
        assert_eq!(split_param("degk").unwrap(), ("degk", None));
        assert!(
            split_param("rand:x").is_err(),
            "typo'd K must not fall back silently"
        );
        assert!(
            split_param("rand:0").is_err(),
            "zero partitions must be rejected"
        );
    }

    #[test]
    fn graph_names_resolve() {
        assert!(graph_id_by_name("lp1").is_some());
        assert!(graph_id_by_name("rgg-n-2-23-s0").is_some());
        assert!(graph_id_by_name("nope").is_none());
    }

    #[test]
    fn flags_parse() {
        let f = parse_flags(&[
            "input.mtx".into(),
            "--problem".into(),
            "mm".into(),
            "--algo".into(),
            "rand:4".into(),
            "--arch".into(),
            "gpu".into(),
            "--seed".into(),
            "9".into(),
            "--threads".into(),
            "4".into(),
        ])
        .unwrap();
        assert_eq!(f.positional, vec!["input.mtx"]);
        assert_eq!(f.problem.as_deref(), Some("mm"));
        assert_eq!(f.algo, "rand:4");
        assert_eq!(f.arch, Arch::GpuSim);
        assert_eq!(f.seed, 9);
        assert_eq!(f.threads, Some(4));
        assert!(parse_flags(&["--bogus".into()]).is_err());
        assert_eq!(f.frontier, FrontierMode::Compact, "compact is the default");
        let d = parse_flags(&["--frontier".into(), "dense".into()]).unwrap();
        assert_eq!(d.frontier, FrontierMode::Dense);
        assert!(
            parse_flags(&["--frontier".into(), "sparse".into()]).is_err(),
            "unknown frontier mode must be rejected"
        );
        assert!(
            parse_flags(&["--threads".into(), "0".into()]).is_err(),
            "zero threads must be rejected"
        );
    }
}
