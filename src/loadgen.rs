//! `sbreak loadgen` — a load generator for the serve daemon.
//!
//! Two phases against one server:
//!
//! 1. **cold** — a single client runs the workload once against empty
//!    caches, so every request pays graph ingestion and decomposition.
//! 2. **warm** — `clients` concurrent client threads (each its own tenant)
//!    repeat the same workload `repeats` times; everything after the first
//!    round rides the shared graph/decomposition caches.
//!
//! Latency is measured client-side around each request round-trip, so
//! queueing and protocol overhead count, exactly as a tenant would see
//! them. The report (`results/BENCH_serve.json`, schema-pinned via
//! `sb_bench::schemas::bench_serve`) carries p50/p99/mean latency,
//! throughput, and the server's decomposition-cache hit delta per phase —
//! the repeat-solve p50 dropping below the cold p50 is the resident
//! service's reason to exist.
//!
//! Pass `addr: None` to spawn an in-process server (the golden tests and
//! `tests/serve.rs` do); pass an address to drive an external `sbreak
//! serve` (the CI smoke job does).

use sb_bench::report::Table;
use sb_bench::schemas;
use sb_engine::protocol::SolveParams;
use sb_engine::serve::percentile_f64;
use sb_engine::{Client, EngineConfig, ServeConfig, Server};
use std::net::SocketAddr;
use std::thread;
use std::time::Instant;

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Server to drive; `None` spawns an in-process server.
    pub addr: Option<SocketAddr>,
    /// Concurrent client threads in the warm phase.
    pub clients: usize,
    /// Workload repetitions per client in the warm phase.
    pub repeats: usize,
    /// Graph source for the workload.
    pub graph: String,
    /// Scale factor for generated graphs.
    pub scale: f64,
    /// Solver + generation seed.
    pub seed: u64,
    /// Worker threads for the spawned in-process server.
    pub workers: usize,
    /// Send a `shutdown` op to an external server when done (CI smoke).
    pub shutdown: bool,
}

impl Default for LoadgenOptions {
    fn default() -> LoadgenOptions {
        LoadgenOptions {
            addr: None,
            clients: 1,
            repeats: 8,
            graph: "gen:lp1".into(),
            scale: 0.1,
            seed: 42,
            workers: 2,
            shutdown: false,
        }
    }
}

/// Aggregated client-side view of one phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseStats {
    /// Requests sent.
    pub requests: u64,
    /// `ok` responses.
    pub ok: u64,
    /// `overloaded` rejections.
    pub overloaded: u64,
    /// `timeout` responses.
    pub timeout: u64,
    /// `error` (and transport-failure) responses.
    pub error: u64,
    /// Median round-trip latency, milliseconds.
    pub p50_ms: f64,
    /// Tail round-trip latency, milliseconds.
    pub p99_ms: f64,
    /// Mean round-trip latency, milliseconds.
    pub mean_ms: f64,
    /// Completed requests per second of phase wall-clock.
    pub rps: f64,
    /// Server decomposition-cache hits gained during the phase.
    pub decomp_hits: u64,
}

impl PhaseStats {
    fn from_latencies(mut lat_ms: Vec<f64>, counts: PhaseCounts, wall_secs: f64) -> PhaseStats {
        lat_ms.sort_by(|a, b| a.total_cmp(b));
        let mean = if lat_ms.is_empty() {
            0.0
        } else {
            lat_ms.iter().sum::<f64>() / lat_ms.len() as f64
        };
        PhaseStats {
            requests: counts.requests,
            ok: counts.ok,
            overloaded: counts.overloaded,
            timeout: counts.timeout,
            error: counts.error,
            p50_ms: percentile_f64(&lat_ms, 0.50),
            p99_ms: percentile_f64(&lat_ms, 0.99),
            mean_ms: mean,
            rps: if wall_secs > 0.0 {
                counts.requests as f64 / wall_secs
            } else {
                0.0
            },
            decomp_hits: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PhaseCounts {
    requests: u64,
    ok: u64,
    overloaded: u64,
    timeout: u64,
    error: u64,
}

impl PhaseCounts {
    fn absorb(&mut self, status: &str) {
        self.requests += 1;
        match status {
            "ok" => self.ok += 1,
            "overloaded" => self.overloaded += 1,
            "timeout" => self.timeout += 1,
            _ => self.error += 1,
        }
    }
}

/// The loadgen result: both phases plus the rendered report table.
pub struct LoadgenSummary {
    /// Cold-cache phase (single client, first touch).
    pub cold: PhaseStats,
    /// Warm-cache phase (`clients × repeats` over resident caches).
    pub warm: PhaseStats,
    /// The `BENCH_serve` table, ready to print/save.
    pub table: Table,
}

/// The canonical three-problem workload: one matching, one coloring, one
/// MIS solve. Each job generates the graph at its *own* seed, so every
/// cold request pays generation, ingestion, and decomposition, and every
/// warm repeat of the same job rides the caches for all three.
pub fn workload(graph: &str, scale: f64, seed: u64) -> Vec<SolveParams> {
    [("mm", "rand:10"), ("color", "degk:2"), ("mis", "degk:2")]
        .iter()
        .enumerate()
        .map(|(i, (problem, algo))| {
            let mut p = SolveParams::new(graph, problem, algo);
            p.id = format!("{problem}-{algo}");
            p.scale = scale;
            p.seed = seed;
            p.graph_seed = Some(seed.wrapping_add(i as u64));
            p
        })
        .collect()
}

fn decomp_hits(client: &mut Client) -> Result<u64, String> {
    let stats = client.stats()?;
    stats
        .raw
        .get("decomp_cache")
        .and_then(|c| c.get("hits"))
        .and_then(|h| h.as_u64())
        .ok_or_else(|| "stats response is missing decomp_cache.hits".to_string())
}

fn run_phase(
    addr: SocketAddr,
    jobs: &[SolveParams],
    clients: usize,
    repeats: usize,
) -> Result<PhaseStats, String> {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let jobs = jobs.to_vec();
            thread::spawn(move || -> Result<(Vec<f64>, PhaseCounts), String> {
                let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
                let mut latencies = Vec::with_capacity(repeats * jobs.len());
                let mut counts = PhaseCounts::default();
                for r in 0..repeats {
                    for job in &jobs {
                        let mut job = job.clone();
                        job.tenant = format!("client-{c}");
                        job.id = format!("{}-r{r}", job.id);
                        let sent = Instant::now();
                        let reply = client.solve(&job)?;
                        latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                        counts.absorb(reply.status());
                    }
                }
                Ok((latencies, counts))
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut counts = PhaseCounts::default();
    for h in handles {
        let (lat, c) = h
            .join()
            .map_err(|_| "loadgen client thread panicked".to_string())??;
        latencies.extend(lat);
        counts.requests += c.requests;
        counts.ok += c.ok;
        counts.overloaded += c.overloaded;
        counts.timeout += c.timeout;
        counts.error += c.error;
    }
    Ok(PhaseStats::from_latencies(
        latencies,
        counts,
        start.elapsed().as_secs_f64(),
    ))
}

fn phase_row(table: &mut Table, phase: &str, clients: usize, s: &PhaseStats) {
    table.row(vec![
        phase.to_string(),
        clients.to_string(),
        s.requests.to_string(),
        s.ok.to_string(),
        s.overloaded.to_string(),
        s.timeout.to_string(),
        s.error.to_string(),
        format!("{:.3}", s.p50_ms),
        format!("{:.3}", s.p99_ms),
        format!("{:.3}", s.mean_ms),
        format!("{:.1}", s.rps),
        s.decomp_hits.to_string(),
    ]);
}

/// Run the cold + warm phases and build the `BENCH_serve` report.
pub fn run_loadgen(opts: &LoadgenOptions) -> Result<LoadgenSummary, String> {
    // An in-process server when no address was given: loopback, quiet
    // defaults, generous queue so the warm phase measures latency rather
    // than admission control.
    let spawned = match opts.addr {
        Some(_) => None,
        None => Some(
            Server::spawn(ServeConfig {
                workers: opts.workers,
                queue_cap: (opts.clients * 4).max(64),
                engine: EngineConfig::default(),
                ..ServeConfig::default()
            })
            .map_err(|e| format!("cannot spawn server: {e}"))?,
        ),
    };
    let addr = opts
        .addr
        .unwrap_or_else(|| spawned.as_ref().expect("spawned above").addr());
    let jobs = workload(&opts.graph, opts.scale, opts.seed);

    let mut control = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let hits_base = decomp_hits(&mut control)?;
    let mut cold = run_phase(addr, &jobs, 1, 1)?;
    let hits_cold = decomp_hits(&mut control)?;
    cold.decomp_hits = hits_cold.saturating_sub(hits_base);
    let mut warm = run_phase(addr, &jobs, opts.clients.max(1), opts.repeats.max(1))?;
    let hits_warm = decomp_hits(&mut control)?;
    warm.decomp_hits = hits_warm.saturating_sub(hits_cold);

    if let Some(handle) = spawned {
        handle.shutdown();
        handle.join();
    } else if opts.shutdown {
        control.shutdown()?;
    }

    let mut table = schemas::bench_serve().table();
    phase_row(&mut table, "cold", 1, &cold);
    phase_row(&mut table, "warm", opts.clients.max(1), &warm);
    Ok(LoadgenSummary { cold, warm, table })
}
