//! Parallel primitives and execution substrates for the symmetry-breaking study.
//!
//! This crate provides the two execution models the study runs on:
//!
//! * **CPU-parallel** — thin wrappers over [rayon] used by the multicore-CPU
//!   algorithm family (module [`prim`]), plus parallel scans and stream
//!   compaction which the graph and decomposition crates build on.
//! * **GPU-sim** — a bulk-synchronous executor (module [`bsp`]) that runs a
//!   sequence of flat data-parallel *kernels* with a barrier between kernels,
//!   counting launches and per-kernel work. The GPU algorithm family (LMAX,
//!   EB, flat Luby) is written against this executor; it substitutes for the
//!   NVidia K40c of the original paper while preserving the algorithmic
//!   structure that drives the paper's round-count comparisons.
//!
//! Supporting modules: [`atomic`] (atomic min/CAS helpers and a concurrent
//! bitset), [`frontier`] (active-set worklist compaction and the scratch
//! buffer arena the frontier solver variants borrow their per-call working
//! memory from), [`counters`] (instrumentation shared by all algorithms plus the
//! K40c cost model), [`exec`] (thread-pool scoping — the one place thread
//! counts are pinned for ablations and tests), [`rng`] (counter-based
//! splittable random numbers so parallel algorithms are deterministic for a
//! given seed regardless of thread count), and [`union_find`] (lock-free
//! disjoint sets).

pub mod atomic;
pub mod bsp;
pub mod counters;
pub mod exec;
pub mod frontier;
pub mod prim;
pub mod rng;
pub mod union_find;

pub use bsp::BspExecutor;
pub use counters::{Counters, PhaseGuard, RoundScope};
pub use exec::{current_threads, with_threads};
pub use frontier::{compact_active, compact_range, Frontier, Scratch, ScratchStats};
// Re-exported so downstream crates (and the integration tests) can pin the
// pool's claim discipline without depending on the rayon shim directly.
pub use rayon::{schedule_strategy, set_schedule_strategy, ScheduleStrategy};
