//! Thread-pool scoping helpers for the CPU execution model.
//!
//! The rayon layer (real crate or the workspace shim — both expose the same
//! engine semantics now) runs parallel calls on the pool *installed* for the
//! calling thread. These helpers give solvers, benches, and tests one
//! place to pin that pool to an explicit width, which is what the paper's
//! thread-count ablations (80-thread dual E5-2650 in Table I) vary.

/// Run `f` with every parallel call inside it executing on a dedicated
/// pool of `num_threads` threads (the calling thread plus `num_threads - 1`
/// workers). `num_threads == 0` means the host default (respecting
/// `RAYON_NUM_THREADS`). The pool is torn down when `f` returns.
///
/// This is the one sanctioned way to vary parallelism: solvers themselves
/// never build pools, so a single `with_threads` at the entry point governs
/// every `par_iter`/`BspExecutor` kernel underneath it.
pub fn with_threads<R>(num_threads: usize, f: impl FnOnce() -> R) -> R {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(num_threads)
        .build()
        .expect("thread pool construction cannot fail");
    pool.install(f)
}

/// Parallelism governing parallel calls issued from this thread right now
/// (the innermost installed pool, else the global default).
pub fn current_threads() -> usize {
    rayon::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn with_threads_pins_parallelism() {
        for n in [1, 2, 4] {
            assert_eq!(with_threads(n, current_threads), n);
        }
    }

    #[test]
    fn with_threads_runs_real_work() {
        let total: u64 = with_threads(4, || (0..200_000u64).into_par_iter().sum());
        assert_eq!(total, 200_000u64 * 199_999 / 2);
    }

    #[test]
    fn nested_installs_innermost_wins() {
        let (outer, inner) = with_threads(4, || {
            let outer = current_threads();
            let inner = with_threads(2, current_threads);
            (outer, inner)
        });
        assert_eq!(outer, 4);
        assert_eq!(inner, 2);
    }
}
