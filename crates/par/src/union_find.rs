//! Lock-free concurrent union-find.
//!
//! Wait-free finds with path halving and CAS-based hooking by minimum
//! representative. Used by the biconnected-components decomposition, where
//! every non-tree edge's LCA walk unions the tree edges on its fundamental
//! cycle concurrently with all other walks.

use std::sync::atomic::{AtomicU32, Ordering};

/// A concurrent disjoint-set forest over `0..len`.
#[derive(Debug)]
pub struct ConcurrentUnionFind {
    parent: Vec<AtomicU32>,
}

impl ConcurrentUnionFind {
    /// `len` singleton sets.
    pub fn new(len: usize) -> Self {
        assert!(len <= u32::MAX as usize);
        Self {
            parent: (0..len as u32).map(AtomicU32::new).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize].load(Ordering::Relaxed);
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize].load(Ordering::Relaxed);
            if gp == p {
                return p;
            }
            // Path halving: point x at its grandparent. A lost race only
            // forgoes the shortcut, never breaks the forest.
            let _ = self.parent[x as usize].compare_exchange(
                p,
                gp,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            x = gp;
        }
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    ///
    /// Hooks the larger root under the smaller (deterministic final
    /// representative = minimum element of the set).
    pub fn unite(&self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        loop {
            if ra == rb {
                return false;
            }
            // Hook max root under min root.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            match self.parent[hi as usize].compare_exchange(
                hi,
                lo,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(_) => {
                    // hi was hooked by a racing unite; retry from new roots.
                    ra = self.find(ra);
                    rb = self.find(rb);
                }
            }
        }
    }

    /// True when `a` and `b` are in the same set.
    pub fn same(&self, a: u32, b: u32) -> bool {
        // Standard double-check loop for concurrent reads.
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return true;
            }
            if self.parent[ra as usize].load(Ordering::Relaxed) == ra {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn singletons_then_chain() {
        let uf = ConcurrentUnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert!(!uf.same(0, 1));
        assert!(uf.unite(0, 1));
        assert!(!uf.unite(1, 0), "second unite is a no-op");
        assert!(uf.unite(1, 2));
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
        // Representative is the minimum element.
        assert_eq!(uf.find(2), 0);
    }

    #[test]
    fn parallel_chain_union_connects_everything() {
        let n = 100_000u32;
        let uf = ConcurrentUnionFind::new(n as usize);
        (0..n - 1).into_par_iter().for_each(|i| {
            uf.unite(i, i + 1);
        });
        assert_eq!(uf.find(n - 1), 0);
        assert!(uf.same(17, 99_999));
    }

    #[test]
    fn parallel_random_unions_match_sequential() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 2_000u32;
        let pairs: Vec<(u32, u32)> = (0..4_000)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();

        let uf = ConcurrentUnionFind::new(n as usize);
        pairs.par_iter().for_each(|&(a, b)| {
            uf.unite(a, b);
        });

        // Sequential reference.
        let mut parent: Vec<u32> = (0..n).collect();
        fn find(p: &mut [u32], mut x: u32) -> u32 {
            while p[x as usize] != x {
                let gp = p[p[x as usize] as usize];
                p[x as usize] = gp;
                x = gp;
            }
            x
        }
        for &(a, b) in &pairs {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra.max(rb) as usize] = ra.min(rb);
            }
        }
        for v in 0..n {
            let seq_rep = find(&mut parent, v);
            assert!(
                uf.same(v, seq_rep),
                "vertex {v} not with its sequential representative"
            );
        }
        // Same partition cardinality.
        let mut reps: Vec<u32> = (0..n).map(|v| uf.find(v)).collect();
        reps.sort_unstable();
        reps.dedup();
        let mut seq_reps: Vec<u32> = (0..n).map(|v| find(&mut parent, v)).collect();
        seq_reps.sort_unstable();
        seq_reps.dedup();
        assert_eq!(reps.len(), seq_reps.len());
    }

    #[test]
    fn empty() {
        let uf = ConcurrentUnionFind::new(0);
        assert!(uf.is_empty());
    }
}
