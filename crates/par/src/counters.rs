//! Instrumentation shared by every algorithm in the study.
//!
//! The paper's explanations are couched in *rounds* and *work* ("GM requires
//! on the order of 14,000 iterations… MM-Rand finds the remaining matches in
//! another 400"). Wall-clock alone cannot confirm those claims on different
//! hardware, so every solver in this repository reports a [`Counters`] block
//! alongside its result, and the bench harness prints both.
//!
//! A [`Counters`] block can additionally carry an `sb-trace` sink. When it
//! does, solvers emit *phase spans* (via [`Counters::phase`]) and *round
//! records* (via [`Counters::round_scope`] / [`Counters::finish_round`])
//! into the sink as they run; when it does not — the default — those same
//! calls cost one branch on an `Option` and nothing else.

use sb_trace::{CounterDelta, SpanId, TraceSink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cheap, thread-safe event counters for one algorithm invocation.
#[derive(Debug, Default)]
pub struct Counters {
    /// Outer synchronous rounds (iterations of the algorithm's main loop).
    rounds: AtomicU64,
    /// Flat data-parallel kernel launches (BSP executor increments this).
    kernel_launches: AtomicU64,
    /// Total elements processed across all kernels / parallel loops.
    work_items: AtomicU64,
    /// Edge relaxations / neighbor scans performed.
    edges_scanned: AtomicU64,
    /// Optional trace sink. `None` (the default) keeps every trace call a
    /// single branch; solvers never pay for observability they didn't ask
    /// for.
    trace: Option<Arc<TraceSink>>,
}

impl Counters {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh counters that report phase spans and round records into
    /// `sink`. A disabled sink is dropped here so the hot path stays
    /// identical to [`Counters::new`].
    pub fn with_trace(sink: Arc<TraceSink>) -> Self {
        Counters {
            trace: sink.is_enabled().then_some(sink),
            ..Default::default()
        }
    }

    /// The attached trace sink, if any (always enabled when present).
    pub fn trace_sink(&self) -> Option<&Arc<TraceSink>> {
        self.trace.as_ref()
    }

    /// Whether trace events are being recorded.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Open a phase span named `name` (`decompose`, `induced-solve`, …).
    ///
    /// The returned guard closes the span on drop, attributing to it the
    /// counter movement that happened while it was open. With no sink
    /// attached this constructs a no-op guard.
    pub fn phase(&self, name: &'static str) -> PhaseGuard<'_> {
        let open = self
            .trace
            .as_ref()
            .and_then(|sink| sink.begin_span(name))
            .map(|id| (id, self.snapshot()));
        PhaseGuard {
            counters: self,
            open,
            name,
            start: Instant::now(),
        }
    }

    /// Begin observing one synchronous round over `active` work items.
    ///
    /// Pair with [`Counters::finish_round`]. Does *not* bump the round
    /// counter — solvers keep their existing `add_rounds(1)` calls. With no
    /// sink attached this returns an inert scope and costs one branch.
    #[inline]
    pub fn round_scope(&self, active: u64) -> RoundScope {
        RoundScope {
            open: self.trace.is_some().then(|| RoundScopeInner {
                start: Instant::now(),
                at_open: self.snapshot(),
                active,
            }),
        }
    }

    /// Close a round scope, emitting one round record. `settled` is only
    /// invoked when tracing is live, so callers may put real counting work
    /// in it without taxing untraced runs.
    pub fn finish_round(&self, scope: RoundScope, settled: impl FnOnce() -> u64) {
        self.finish_round_flagged(scope, false, settled);
    }

    /// [`Counters::finish_round`] with an explicit `vacuous` marker: pass
    /// `true` for a termination-check round that settled nothing by
    /// construction (e.g. a dense sweep that only observed emptiness), so
    /// trace consumers can compare *productive* round counts across
    /// frontier modes (`sb_trace::productive_rounds_per_phase`).
    pub fn finish_round_flagged(
        &self,
        scope: RoundScope,
        vacuous: bool,
        settled: impl FnOnce() -> u64,
    ) {
        let Some(inner) = scope.open else {
            return;
        };
        let sink = self
            .trace
            .as_ref()
            .expect("round scope opened without a sink");
        let now = self.snapshot();
        sink.record_round(
            inner.active,
            settled(),
            now.edges_scanned
                .saturating_sub(inner.at_open.edges_scanned),
            now.work_items.saturating_sub(inner.at_open.work_items),
            inner.start.elapsed().as_micros() as u64,
            vacuous,
        );
    }

    /// Record `k` completed rounds (usually `k = 1`).
    #[inline]
    pub fn add_rounds(&self, k: u64) {
        self.rounds.fetch_add(k, Ordering::Relaxed);
    }

    /// Record a kernel launch over `n` items.
    #[inline]
    pub fn add_kernel(&self, n: u64) {
        self.kernel_launches.fetch_add(1, Ordering::Relaxed);
        self.work_items.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` processed work items outside a kernel launch.
    #[inline]
    pub fn add_work(&self, n: u64) {
        self.work_items.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` scanned edges.
    #[inline]
    pub fn add_edges(&self, n: u64) {
        self.edges_scanned.fetch_add(n, Ordering::Relaxed);
    }

    /// Completed rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Kernel launches.
    pub fn kernel_launches(&self) -> u64 {
        self.kernel_launches.load(Ordering::Relaxed)
    }

    /// Total work items.
    pub fn work_items(&self) -> u64 {
        self.work_items.load(Ordering::Relaxed)
    }

    /// Total scanned edges.
    pub fn edges_scanned(&self) -> u64 {
        self.edges_scanned.load(Ordering::Relaxed)
    }

    /// Fold another counter block into this one (e.g. a subphase).
    pub fn merge(&self, other: &Counters) {
        self.rounds.fetch_add(other.rounds(), Ordering::Relaxed);
        self.kernel_launches
            .fetch_add(other.kernel_launches(), Ordering::Relaxed);
        self.work_items
            .fetch_add(other.work_items(), Ordering::Relaxed);
        self.edges_scanned
            .fetch_add(other.edges_scanned(), Ordering::Relaxed);
    }

    /// Snapshot as a plain struct for reporting.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            rounds: self.rounds(),
            kernel_launches: self.kernel_launches(),
            work_items: self.work_items(),
            edges_scanned: self.edges_scanned(),
        }
    }
}

/// Open phase span: created by [`Counters::phase`], closes on drop.
///
/// On close it attributes to the span the difference between the counters
/// now and when the span was opened, so nested spans (which share the same
/// `Counters`) each see their own inclusive delta.
#[must_use = "a phase guard records its span when dropped"]
pub struct PhaseGuard<'a> {
    counters: &'a Counters,
    open: Option<(SpanId, CounterSnapshot)>,
    name: &'static str,
    start: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        // Unlike the trace span, the latency histogram is fed on every
        // run: phases are coarse (a handful per solve), so one registry
        // lookup plus three relaxed atomics per phase is noise, and it
        // means `--metrics` reports percentiles without `--trace`.
        sb_metrics::global()
            .histogram_with(
                "sb_par_phase_duration_us",
                &[("phase", self.name)],
                sb_metrics::Class::Runtime,
            )
            .observe(self.start.elapsed().as_micros() as u64);
        if let Some((id, at_open)) = self.open.take() {
            let sink = self
                .counters
                .trace
                .as_ref()
                .expect("phase guard opened without a sink");
            let now = self.counters.snapshot();
            sink.end_span(id, now.delta_since(&at_open));
        }
    }
}

/// In-flight round observation; see [`Counters::round_scope`].
#[must_use = "pass the scope to Counters::finish_round to record the round"]
pub struct RoundScope {
    open: Option<RoundScopeInner>,
}

struct RoundScopeInner {
    start: Instant,
    at_open: CounterSnapshot,
    active: u64,
}

/// Plain-old-data snapshot of [`Counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Outer synchronous rounds.
    pub rounds: u64,
    /// Kernel launches.
    pub kernel_launches: u64,
    /// Total work items.
    pub work_items: u64,
    /// Scanned edges.
    pub edges_scanned: u64,
}

impl CounterSnapshot {
    /// Counter movement since `earlier`, as a trace delta.
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterDelta {
        CounterDelta {
            rounds: self.rounds.saturating_sub(earlier.rounds),
            kernel_launches: self.kernel_launches.saturating_sub(earlier.kernel_launches),
            work_items: self.work_items.saturating_sub(earlier.work_items),
            edges_scanned: self.edges_scanned.saturating_sub(earlier.edges_scanned),
        }
    }

    /// This snapshot as a trace delta (movement since zero).
    pub fn as_delta(&self) -> CounterDelta {
        self.delta_since(&CounterSnapshot::default())
    }
}

/// A linear cost model turning counters into device time for the GPU-sim
/// substitute (see DESIGN.md §2).
///
/// The host CPU cannot reproduce one decisive property of the K40c: the
/// ~30× gap between *streamed* (coalesced) and *gathered* (random) memory
/// traffic, which is what makes neighbor-chasing solvers expensive relative
/// to the decompositions' streaming passes on real GPUs. The model charges
/// each counter class its K40c-derived unit cost:
///
/// * `per_launch` — kernel launch latency (~8 µs on Kepler);
/// * `per_stream_item` — one coalesced 8-byte item at ~288 GB/s (~0.028 ns);
/// * `per_gather` — one dependent random read at an effective ~10 GB/s
///   random-access bandwidth (~0.8 ns).
///
/// Every solver and decomposition accounts its traffic in these classes
/// (`work_items` = streamed, `edges_scanned` = gathered), so
/// [`GpuCostModel::modeled_ms`] is a deterministic function of the
/// algorithm's communication structure — the quantity the paper's GPU
/// comparisons actually measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuCostModel {
    /// Kernel launch latency in microseconds.
    pub per_launch_us: f64,
    /// Cost per streamed (coalesced) item in nanoseconds.
    pub per_stream_ns: f64,
    /// Cost per gathered (random) read in nanoseconds.
    pub per_gather_ns: f64,
}

impl Default for GpuCostModel {
    fn default() -> Self {
        Self::K40C
    }
}

impl GpuCostModel {
    /// Constants derived from the NVidia Tesla K40c datasheet (288 GB/s
    /// peak bandwidth, Kepler launch latency) and published random-access
    /// bandwidth measurements for Kepler-class parts.
    pub const K40C: GpuCostModel = GpuCostModel {
        per_launch_us: 8.0,
        per_stream_ns: 0.028,
        per_gather_ns: 0.8,
    };

    /// Modeled device milliseconds for a counter snapshot.
    pub fn modeled_ms(&self, s: &CounterSnapshot) -> f64 {
        (s.kernel_launches as f64 * self.per_launch_us) * 1e-3
            + (s.work_items as f64 * self.per_stream_ns) * 1e-6
            + (s.edges_scanned as f64 * self.per_gather_ns) * 1e-6
    }
}

/// Wall-clock stopwatch used by the bench harness.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed milliseconds as `f64`.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = Counters::new();
        c.add_rounds(2);
        c.add_kernel(100);
        c.add_kernel(50);
        c.add_work(5);
        c.add_edges(9);
        let s = c.snapshot();
        assert_eq!(s.rounds, 2);
        assert_eq!(s.kernel_launches, 2);
        assert_eq!(s.work_items, 155);
        assert_eq!(s.edges_scanned, 9);
    }

    #[test]
    fn counters_merge() {
        let a = Counters::new();
        let b = Counters::new();
        a.add_rounds(1);
        b.add_rounds(3);
        b.add_edges(7);
        a.merge(&b);
        assert_eq!(a.rounds(), 4);
        assert_eq!(a.edges_scanned(), 7);
    }

    #[test]
    fn counters_parallel_increments() {
        use rayon::prelude::*;
        let c = Counters::new();
        (0..1000).into_par_iter().for_each(|_| c.add_rounds(1));
        assert_eq!(c.rounds(), 1000);
    }

    #[test]
    fn gpu_model_is_linear_in_counters() {
        let m = GpuCostModel::K40C;
        let s1 = CounterSnapshot {
            rounds: 1,
            kernel_launches: 10,
            work_items: 1_000_000,
            edges_scanned: 1_000_000,
        };
        let s2 = CounterSnapshot {
            rounds: 2,
            kernel_launches: 20,
            work_items: 2_000_000,
            edges_scanned: 2_000_000,
        };
        assert!((m.modeled_ms(&s2) - 2.0 * m.modeled_ms(&s1)).abs() < 1e-9);
        // Gathers dominate streams by the coalescing gap.
        let gathers = CounterSnapshot {
            edges_scanned: 1_000_000,
            ..Default::default()
        };
        let streams = CounterSnapshot {
            work_items: 1_000_000,
            ..Default::default()
        };
        assert!(m.modeled_ms(&gathers) > 10.0 * m.modeled_ms(&streams));
    }

    #[test]
    fn untraced_counters_have_inert_guards() {
        let c = Counters::new();
        assert!(!c.tracing());
        {
            let _phase = c.phase("solve");
            let scope = c.round_scope(10);
            c.add_rounds(1);
            // The settled closure must not run when tracing is off.
            c.finish_round(scope, || panic!("settled computed without a sink"));
        }
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn traced_counters_emit_spans_and_rounds() {
        use sb_trace::{total_delta, TraceEvent, TraceSink};
        use std::sync::Arc;

        let sink = Arc::new(TraceSink::enabled());
        let c = Counters::with_trace(sink.clone());
        assert!(c.tracing());
        {
            let _solve = c.phase("solve");
            for round in 0..3u64 {
                let scope = c.round_scope(100 - round);
                c.add_rounds(1);
                c.add_work(10);
                c.add_edges(7);
                c.finish_round(scope, || 5);
            }
        }
        let events = sink.events();
        let rounds: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Round { record, .. } => Some(*record),
                _ => None,
            })
            .collect();
        assert_eq!(rounds.len(), 3);
        // Indices assigned by the sink: contiguous from zero.
        assert_eq!(
            rounds.iter().map(|r| r.round).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Each round saw exactly its own counter movement.
        assert!(rounds.iter().all(|r| r.edges_scanned == 7));
        assert!(rounds.iter().all(|r| r.work_items == 10));
        assert!(rounds.iter().all(|r| r.settled == 5));
        // The span delta equals the final snapshot.
        assert_eq!(total_delta(&events), c.snapshot().as_delta());
    }

    #[test]
    fn disabled_sink_degrades_to_untraced() {
        use sb_trace::TraceSink;
        use std::sync::Arc;

        let c = Counters::with_trace(Arc::new(TraceSink::disabled()));
        assert!(!c.tracing());
        let _phase = c.phase("solve");
        let scope = c.round_scope(1);
        c.finish_round(scope, || unreachable!());
    }

    #[test]
    fn stopwatch_monotone() {
        let w = Stopwatch::start();
        let a = w.elapsed();
        let b = w.elapsed();
        assert!(b >= a);
        assert!(w.elapsed_ms() >= 0.0);
    }
}
