//! Active-frontier compaction and scratch-arena reuse.
//!
//! Every solver in the study is a synchronous round loop, and by the later
//! rounds only a small fraction of vertices is still live. The dense
//! formulations re-sweep the full participant list each round (the paper's
//! baselines do exactly that — see `sb_core::mis::luby`); the frontier
//! formulations instead keep the live set as a flat worklist and *compact*
//! it between rounds, so each round's sweeps touch only still-live
//! vertices or edges.
//!
//! Two pieces live here:
//!
//! * [`Frontier`] — a ping-pong pair of index buffers plus a reusable
//!   per-block count buffer. [`Frontier::compact`] filters the current
//!   worklist into the spare buffer with the same order-stable blocked
//!   flag–scan–scatter pipeline as [`crate::prim::compact_indices`], then
//!   swaps the buffers; no allocation happens once the buffers have grown
//!   to their high-water mark (round 1).
//! * [`Scratch`] — a typed buffer arena. Solvers borrow per-call working
//!   arrays (`degree`, `marked`, `proposal`, FORBIDDEN offsets, …) from it
//!   instead of `vec![0; n]`-ing fresh ones, and give them back when done.
//!   The arena counts fresh allocations vs reuses so tests can pin that a
//!   second solve on the same arena allocates nothing.
//!
//! The standalone [`compact_active`] is the same primitive over a
//! caller-owned destination, kept public for the criterion microbench and
//! for one-shot callers that have no `Frontier` at hand.

use rayon::prelude::*;

use crate::prim::BLOCK;
use std::sync::OnceLock;

/// Frontier/arena observability (DESIGN.md §12). Every series here is
/// `Logical`-class: compaction counts, items scanned, and arena
/// allocation behavior are fixed by the algorithm and must be identical
/// at 1 and N threads — the CLI determinism test pins that.
struct FrontierMetrics {
    /// Compaction passes executed (one per `compact_active_with` call).
    compactions: sb_metrics::Counter,
    /// Worklist items scanned across all compaction passes.
    items_scanned: sb_metrics::Counter,
    /// Scratch-arena buffers that had to be freshly allocated.
    scratch_fresh_allocs: sb_metrics::Counter,
    /// Scratch-arena buffers handed out without allocating.
    scratch_reuses: sb_metrics::Counter,
}

fn metrics() -> &'static FrontierMetrics {
    static METRICS: OnceLock<FrontierMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        use sb_metrics::Class::Logical;
        let r = sb_metrics::global();
        FrontierMetrics {
            compactions: r.counter("sb_par_frontier_compactions", Logical),
            items_scanned: r.counter("sb_par_frontier_items_scanned", Logical),
            scratch_fresh_allocs: r.counter("sb_par_scratch_fresh_allocs", Logical),
            scratch_reuses: r.counter("sb_par_scratch_reuses", Logical),
        }
    })
}

/// Filter `src` into `dst` (cleared first), keeping order: the parallel
/// filter-compact primitive behind [`Frontier::compact`].
///
/// Order-stable and deterministic: the output equals
/// `src.iter().filter(|&&i| keep(i))` regardless of thread count. Inputs at
/// or below one block run sequentially — a parallel two-pass costs more
/// than the loop at that size.
pub fn compact_active<F>(src: &[u32], keep: F, dst: &mut Vec<u32>)
where
    F: Fn(u32) -> bool + Sync + Send,
{
    let mut counts = Vec::new();
    compact_active_with(src, keep, dst, &mut counts);
}

/// [`compact_active`] with a caller-owned per-block count buffer, so
/// repeated compactions (the round loop) allocate nothing at steady state.
fn compact_active_with<F>(src: &[u32], keep: F, dst: &mut Vec<u32>, counts: &mut Vec<usize>)
where
    F: Fn(u32) -> bool + Sync + Send,
{
    dst.clear();
    let n = src.len();
    let m = metrics();
    m.compactions.inc();
    m.items_scanned.add(n as u64);
    if n == 0 {
        return;
    }
    if n <= BLOCK {
        dst.extend(src.iter().copied().filter(|&i| keep(i)));
        return;
    }
    let nblocks = n.div_ceil(BLOCK);
    // Pass 1: survivors per block, written into the reused count buffer.
    counts.clear();
    counts.resize(nblocks, 0);
    counts.par_iter_mut().enumerate().for_each(|(b, c)| {
        let lo = b * BLOCK;
        let hi = n.min(lo + BLOCK);
        *c = src[lo..hi].iter().filter(|&&i| keep(i)).count();
    });
    let total: usize = counts.iter().sum();
    // Pass 2: scatter each block into its exact slot range.
    dst.resize(total, 0);
    let mut slices: Vec<&mut [u32]> = Vec::with_capacity(nblocks);
    {
        let mut rest: &mut [u32] = dst;
        for &len in counts.iter() {
            let (head, tail) = rest.split_at_mut(len);
            slices.push(head);
            rest = tail;
        }
    }
    src.par_chunks(BLOCK)
        .zip(slices.into_par_iter())
        .for_each(|(chunk, slot)| {
            let mut j = 0;
            for &i in chunk {
                if keep(i) {
                    slot[j] = i;
                    j += 1;
                }
            }
            debug_assert_eq!(j, slot.len());
        });
}

/// Compact the index range `0..n` into a fresh order-stable worklist.
///
/// Convenience entry for the initial participant scan a solver does once at
/// entry (the per-round path goes through [`Frontier::compact`], which
/// reuses buffers). Equivalent to `(0..n).filter(keep).collect()`.
pub fn compact_range<F>(n: usize, keep: F) -> Vec<u32>
where
    F: Fn(u32) -> bool + Sync + Send,
{
    crate::prim::compact_indices(n, |i| keep(i as u32))
}

/// A ping-pong active-set worklist for synchronous round loops.
///
/// The current worklist lives in one buffer; [`Frontier::compact`] filters
/// it into the other and swaps. Both buffers (and the internal per-block
/// count buffer) keep their capacity across rounds and across solver calls
/// when the frontier is recycled through a [`Scratch`].
#[derive(Debug, Default)]
pub struct Frontier {
    cur: Vec<u32>,
    spare: Vec<u32>,
    counts: Vec<usize>,
}

impl Frontier {
    /// Empty frontier with no capacity.
    pub fn new() -> Frontier {
        Frontier::default()
    }

    /// Take ownership of an existing worklist as the current frontier.
    pub fn from_vec(items: Vec<u32>) -> Frontier {
        Frontier {
            cur: items,
            ..Frontier::default()
        }
    }

    /// Reset to the indices `i in 0..n` with `keep(i)`, in increasing
    /// order, reusing the buffers' capacity.
    pub fn reset_range<F>(&mut self, n: usize, keep: F)
    where
        F: Fn(u32) -> bool + Sync + Send,
    {
        // Fill the spare with 0..n, then compact — two streaming passes,
        // both allocation-free at steady state.
        self.spare.clear();
        self.spare.extend(0..n as u32);
        std::mem::swap(&mut self.cur, &mut self.spare);
        self.compact(keep);
    }

    /// Reset to a copy of an existing worklist, reusing buffer capacity.
    pub fn reset_from(&mut self, items: &[u32]) {
        self.cur.clear();
        self.cur.extend_from_slice(items);
    }

    /// Current worklist.
    pub fn as_slice(&self) -> &[u32] {
        &self.cur
    }

    /// Number of live items.
    pub fn len(&self) -> usize {
        self.cur.len()
    }

    /// Whether no item is live.
    pub fn is_empty(&self) -> bool {
        self.cur.is_empty()
    }

    /// Drop every item failing `keep`, preserving order (ping-pong swap).
    pub fn compact<F>(&mut self, keep: F)
    where
        F: Fn(u32) -> bool + Sync + Send,
    {
        compact_active_with(&self.cur, keep, &mut self.spare, &mut self.counts);
        std::mem::swap(&mut self.cur, &mut self.spare);
    }

    /// Capacity currently held across both buffers (for reuse accounting).
    fn capacity(&self) -> usize {
        self.cur.capacity() + self.spare.capacity()
    }
}

/// Allocation statistics of a [`Scratch`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScratchStats {
    /// Buffers handed out that had to be freshly allocated (or regrown).
    pub fresh_allocs: u64,
    /// Buffers handed out from the pool without allocating.
    pub reuses: u64,
}

/// A typed buffer arena for per-solver working memory.
///
/// One `Scratch` lives for a whole composite run; each solver phase
/// borrows the arrays it needs (`take_*`), uses them for its round loop,
/// and returns them (`recycle_*`). The first call per shape allocates; all
/// later calls reuse, so a run's allocation count stops growing after its
/// first solve — [`Scratch::stats`] exposes the counts so tests can pin
/// exactly that.
#[derive(Debug, Default)]
pub struct Scratch {
    u8s: Vec<Vec<u8>>,
    u32s: Vec<Vec<u32>>,
    usizes: Vec<Vec<usize>>,
    frontiers: Vec<Frontier>,
    fresh_allocs: u64,
    reuses: u64,
}

fn take_buf<T: Copy>(
    pool: &mut Vec<Vec<T>>,
    n: usize,
    fill: T,
    fresh: &mut u64,
    reuses: &mut u64,
) -> Vec<T> {
    match pool.pop() {
        Some(mut b) if b.capacity() >= n => {
            *reuses += 1;
            b.clear();
            b.resize(n, fill);
            b
        }
        _ => {
            *fresh += 1;
            vec![fill; n]
        }
    }
}

impl Scratch {
    /// Fresh, empty arena.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// Borrow a `u8` buffer of length `n`, every entry set to `fill`.
    pub fn take_u8(&mut self, n: usize, fill: u8) -> Vec<u8> {
        take_buf(
            &mut self.u8s,
            n,
            fill,
            &mut self.fresh_allocs,
            &mut self.reuses,
        )
    }

    /// Borrow a `u32` buffer of length `n`, every entry set to `fill`.
    pub fn take_u32(&mut self, n: usize, fill: u32) -> Vec<u32> {
        take_buf(
            &mut self.u32s,
            n,
            fill,
            &mut self.fresh_allocs,
            &mut self.reuses,
        )
    }

    /// Borrow a `usize` buffer of length `n`, every entry set to `fill`.
    pub fn take_usize(&mut self, n: usize, fill: usize) -> Vec<usize> {
        take_buf(
            &mut self.usizes,
            n,
            fill,
            &mut self.fresh_allocs,
            &mut self.reuses,
        )
    }

    /// Borrow an empty [`Frontier`] (its buffers keep the capacity they had
    /// when recycled).
    pub fn take_frontier(&mut self) -> Frontier {
        match self.frontiers.pop() {
            Some(mut f) => {
                if f.capacity() > 0 {
                    self.reuses += 1;
                } else {
                    self.fresh_allocs += 1;
                }
                f.cur.clear();
                f.spare.clear();
                f
            }
            None => {
                self.fresh_allocs += 1;
                Frontier::new()
            }
        }
    }

    /// Return a `u8` buffer to the pool.
    pub fn recycle_u8(&mut self, b: Vec<u8>) {
        self.u8s.push(b);
    }

    /// Return a `u32` buffer to the pool.
    pub fn recycle_u32(&mut self, b: Vec<u32>) {
        self.u32s.push(b);
    }

    /// Return a `usize` buffer to the pool.
    pub fn recycle_usize(&mut self, b: Vec<usize>) {
        self.usizes.push(b);
    }

    /// Return a frontier (with its grown buffers) to the pool.
    pub fn recycle_frontier(&mut self, f: Frontier) {
        self.frontiers.push(f);
    }

    /// Allocation counters accumulated so far.
    pub fn stats(&self) -> ScratchStats {
        ScratchStats {
            fresh_allocs: self.fresh_allocs,
            reuses: self.reuses,
        }
    }
}

impl Drop for Scratch {
    /// Publish the arena's lifetime totals to the global metrics registry,
    /// so arena behavior is observable (`--metrics`) without any caller
    /// plumbing. Untouched arenas (including the empties `mem::take`
    /// leaves behind) publish nothing.
    fn drop(&mut self) {
        if self.fresh_allocs == 0 && self.reuses == 0 {
            return;
        }
        let m = metrics();
        m.scratch_fresh_allocs.add(self.fresh_allocs);
        m.scratch_reuses.add(self.reuses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn want(src: &[u32], keep: impl Fn(u32) -> bool) -> Vec<u32> {
        src.iter().copied().filter(|&i| keep(i)).collect()
    }

    #[test]
    fn compact_active_matches_filter_small_and_large() {
        for n in [0usize, 1, 57, 1000, BLOCK * 2 + 55] {
            let src: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(7) % 1000).collect();
            let keep = |i: u32| i % 3 == 1;
            let mut dst = Vec::new();
            compact_active(&src, keep, &mut dst);
            assert_eq!(dst, want(&src, keep), "n = {n}");
        }
    }

    #[test]
    fn compact_active_reuses_destination_capacity() {
        let src: Vec<u32> = (0..(BLOCK * 2) as u32).collect();
        let mut dst = Vec::new();
        compact_active(&src, |_| true, &mut dst);
        let cap = dst.capacity();
        let ptr = dst.as_ptr();
        compact_active(&src, |i| i % 2 == 0, &mut dst);
        assert_eq!(dst.capacity(), cap);
        assert_eq!(dst.as_ptr(), ptr, "no reallocation on a shrinking pass");
        assert_eq!(dst.len(), BLOCK);
    }

    #[test]
    fn frontier_reset_and_pingpong() {
        let mut f = Frontier::new();
        f.reset_range(10, |i| i != 3);
        assert_eq!(f.as_slice(), &[0, 1, 2, 4, 5, 6, 7, 8, 9]);
        f.compact(|i| i % 2 == 0);
        assert_eq!(f.as_slice(), &[0, 2, 4, 6, 8]);
        assert_eq!(f.len(), 5);
        f.compact(|_| false);
        assert!(f.is_empty());
        // Reset reuses the same buffers.
        f.reset_range(4, |_| true);
        assert_eq!(f.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn frontier_multi_block_stable() {
        let n = BLOCK * 3 + 17;
        let mut f = Frontier::new();
        f.reset_range(n, |i| i % 5 != 0);
        let expect: Vec<u32> = (0..n as u32).filter(|i| i % 5 != 0).collect();
        assert_eq!(f.as_slice(), expect.as_slice());
        f.compact(|i| i % 2 == 0);
        let expect: Vec<u32> = expect.into_iter().filter(|i| i % 2 == 0).collect();
        assert_eq!(f.as_slice(), expect.as_slice());
    }

    #[test]
    fn frontier_compaction_allocates_nothing_at_steady_state() {
        let mut f = Frontier::new();
        f.reset_range(BLOCK * 2, |_| true);
        f.compact(|_| true); // both buffers now at high-water capacity
        let cur_cap = f.cur.capacity();
        let spare_cap = f.spare.capacity();
        for round in 0..6 {
            f.compact(move |i| i % (round + 2) != 0);
        }
        assert_eq!(
            f.cur.capacity().max(f.spare.capacity()),
            cur_cap.max(spare_cap)
        );
    }

    #[test]
    fn scratch_reuses_buffers() {
        let mut s = Scratch::new();
        let a = s.take_u32(100, 7);
        assert_eq!(a, vec![7u32; 100]);
        let ptr = a.as_ptr();
        s.recycle_u32(a);
        let b = s.take_u32(50, 9);
        assert_eq!(b.as_ptr(), ptr, "recycled buffer handed back out");
        assert_eq!(b, vec![9u32; 50]);
        let st = s.stats();
        assert_eq!(st.fresh_allocs, 1);
        assert_eq!(st.reuses, 1);
    }

    #[test]
    fn scratch_regrows_undersized_buffers() {
        let mut s = Scratch::new();
        let a = s.take_u8(10, 0);
        s.recycle_u8(a);
        let b = s.take_u8(10_000, 1); // does not fit: fresh allocation
        assert_eq!(b.len(), 10_000);
        assert_eq!(s.stats().fresh_allocs, 2);
    }

    #[test]
    fn scratch_frontier_roundtrip() {
        let mut s = Scratch::new();
        let mut f = s.take_frontier();
        f.reset_range(1000, |_| true);
        s.recycle_frontier(f);
        let f2 = s.take_frontier();
        assert!(f2.is_empty(), "recycled frontier comes back cleared");
        assert!(f2.capacity() >= 1000, "but keeps its capacity");
        let st = s.stats();
        assert_eq!(st.fresh_allocs, 1);
        assert_eq!(st.reuses, 1);
    }
}
