//! Active-frontier compaction and scratch-arena reuse.
//!
//! Every solver in the study is a synchronous round loop, and by the later
//! rounds only a small fraction of vertices is still live. The dense
//! formulations re-sweep the full participant list each round (the paper's
//! baselines do exactly that — see `sb_core::mis::luby`); the frontier
//! formulations instead keep the live set as a flat worklist and *compact*
//! it between rounds, so each round's sweeps touch only still-live
//! vertices or edges.
//!
//! Two pieces live here:
//!
//! * [`Frontier`] — a ping-pong pair of index buffers plus a reusable
//!   per-block count buffer. [`Frontier::compact`] filters the current
//!   worklist into the spare buffer with the same order-stable blocked
//!   flag–scan–scatter pipeline as [`crate::prim::compact_indices`], then
//!   swaps the buffers; no allocation happens once the buffers have grown
//!   to their high-water mark (round 1).
//! * [`Scratch`] — a typed buffer arena. Solvers borrow per-call working
//!   arrays (`degree`, `marked`, `proposal`, FORBIDDEN offsets, …) from it
//!   instead of `vec![0; n]`-ing fresh ones, and give them back when done.
//!   The arena counts fresh allocations vs reuses so tests can pin that a
//!   second solve on the same arena allocates nothing.
//!
//! The standalone [`compact_active`] is the same primitive over a
//! caller-owned destination, kept public for the criterion microbench and
//! for one-shot callers that have no `Frontier` at hand.

use rayon::prelude::*;

use crate::atomic::as_atomic_u64;
use crate::prim::BLOCK;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// Frontier/arena observability (DESIGN.md §12). Every series here is
/// `Logical`-class: compaction counts, items scanned, and arena
/// allocation behavior are fixed by the algorithm and must be identical
/// at 1 and N threads — the CLI determinism test pins that.
struct FrontierMetrics {
    /// Compaction passes executed (one per `compact_active_with` call).
    compactions: sb_metrics::Counter,
    /// Worklist items scanned across all compaction passes.
    items_scanned: sb_metrics::Counter,
    /// Scratch-arena buffers that had to be freshly allocated.
    scratch_fresh_allocs: sb_metrics::Counter,
    /// Scratch-arena buffers handed out without allocating.
    scratch_reuses: sb_metrics::Counter,
}

fn metrics() -> &'static FrontierMetrics {
    static METRICS: OnceLock<FrontierMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        use sb_metrics::Class::Logical;
        let r = sb_metrics::global();
        FrontierMetrics {
            compactions: r.counter("sb_par_frontier_compactions", Logical),
            items_scanned: r.counter("sb_par_frontier_items_scanned", Logical),
            scratch_fresh_allocs: r.counter("sb_par_scratch_fresh_allocs", Logical),
            scratch_reuses: r.counter("sb_par_scratch_reuses", Logical),
        }
    })
}

/// Filter `src` into `dst` (cleared first), keeping order: the parallel
/// filter-compact primitive behind [`Frontier::compact`].
///
/// Order-stable and deterministic: the output equals
/// `src.iter().filter(|&&i| keep(i))` regardless of thread count. Inputs at
/// or below one block run sequentially — a parallel two-pass costs more
/// than the loop at that size.
pub fn compact_active<F>(src: &[u32], keep: F, dst: &mut Vec<u32>)
where
    F: Fn(u32) -> bool + Sync + Send,
{
    let mut counts = Vec::new();
    compact_active_with(src, keep, dst, &mut counts);
}

/// [`compact_active`] with a caller-owned per-block count buffer, so
/// repeated compactions (the round loop) allocate nothing at steady state.
fn compact_active_with<F>(src: &[u32], keep: F, dst: &mut Vec<u32>, counts: &mut Vec<usize>)
where
    F: Fn(u32) -> bool + Sync + Send,
{
    dst.clear();
    let n = src.len();
    let m = metrics();
    m.compactions.inc();
    m.items_scanned.add(n as u64);
    if n == 0 {
        return;
    }
    if n <= BLOCK {
        dst.extend(src.iter().copied().filter(|&i| keep(i)));
        return;
    }
    let nblocks = n.div_ceil(BLOCK);
    // Pass 1: survivors per block, written into the reused count buffer.
    counts.clear();
    counts.resize(nblocks, 0);
    counts.par_iter_mut().enumerate().for_each(|(b, c)| {
        let lo = b * BLOCK;
        let hi = n.min(lo + BLOCK);
        *c = src[lo..hi].iter().filter(|&&i| keep(i)).count();
    });
    let total: usize = counts.iter().sum();
    // Pass 2: scatter each block into its exact slot range.
    dst.resize(total, 0);
    let mut slices: Vec<&mut [u32]> = Vec::with_capacity(nblocks);
    {
        let mut rest: &mut [u32] = dst;
        for &len in counts.iter() {
            let (head, tail) = rest.split_at_mut(len);
            slices.push(head);
            rest = tail;
        }
    }
    src.par_chunks(BLOCK)
        .zip(slices.into_par_iter())
        .for_each(|(chunk, slot)| {
            let mut j = 0;
            for &i in chunk {
                if keep(i) {
                    slot[j] = i;
                    j += 1;
                }
            }
            debug_assert_eq!(j, slot.len());
        });
}

/// Compact the index range `0..n` into a fresh order-stable worklist.
///
/// Convenience entry for the initial participant scan a solver does once at
/// entry (the per-round path goes through [`Frontier::compact`], which
/// reuses buffers). Equivalent to `(0..n).filter(keep).collect()`.
pub fn compact_range<F>(n: usize, keep: F) -> Vec<u32>
where
    F: Fn(u32) -> bool + Sync + Send,
{
    crate::prim::compact_indices(n, |i| keep(i as u32))
}

/// A ping-pong active-set worklist for synchronous round loops.
///
/// The current worklist lives in one buffer; [`Frontier::compact`] filters
/// it into the other and swaps. Both buffers (and the internal per-block
/// count buffer) keep their capacity across rounds and across solver calls
/// when the frontier is recycled through a [`Scratch`].
#[derive(Debug, Default)]
pub struct Frontier {
    cur: Vec<u32>,
    spare: Vec<u32>,
    counts: Vec<usize>,
}

impl Frontier {
    /// Empty frontier with no capacity.
    pub fn new() -> Frontier {
        Frontier::default()
    }

    /// Take ownership of an existing worklist as the current frontier.
    pub fn from_vec(items: Vec<u32>) -> Frontier {
        Frontier {
            cur: items,
            ..Frontier::default()
        }
    }

    /// Reset to the indices `i in 0..n` with `keep(i)`, in increasing
    /// order, reusing the buffers' capacity.
    pub fn reset_range<F>(&mut self, n: usize, keep: F)
    where
        F: Fn(u32) -> bool + Sync + Send,
    {
        // Fill the spare with 0..n, then compact — two streaming passes,
        // both allocation-free at steady state.
        self.spare.clear();
        self.spare.extend(0..n as u32);
        std::mem::swap(&mut self.cur, &mut self.spare);
        self.compact(keep);
    }

    /// Reset to a copy of an existing worklist, reusing buffer capacity.
    pub fn reset_from(&mut self, items: &[u32]) {
        self.cur.clear();
        self.cur.extend_from_slice(items);
    }

    /// Current worklist.
    pub fn as_slice(&self) -> &[u32] {
        &self.cur
    }

    /// Number of live items.
    pub fn len(&self) -> usize {
        self.cur.len()
    }

    /// Whether no item is live.
    pub fn is_empty(&self) -> bool {
        self.cur.is_empty()
    }

    /// Drop every item failing `keep`, preserving order (ping-pong swap).
    pub fn compact<F>(&mut self, keep: F)
    where
        F: Fn(u32) -> bool + Sync + Send,
    {
        compact_active_with(&self.cur, keep, &mut self.spare, &mut self.counts);
        std::mem::swap(&mut self.cur, &mut self.spare);
    }

    /// Capacity currently held across both buffers (for reuse accounting).
    fn capacity(&self) -> usize {
        self.cur.capacity() + self.spare.capacity()
    }
}

/// A per-vertex (or per-edge) mark array shared across a parallel sweep.
///
/// Solvers write marks from inside kernels (`put`) and read them from
/// neighbors (`get`); the representation is the frontier family's choice:
/// one byte per index for the worklist family, one *bit* per index for the
/// bitset family — which is what lets [`BitFrontier::select_marked_into`]
/// intersect live set and marks with word-level AND instead of a
/// per-member predicate sweep.
pub trait MarkSet: Sync + Send {
    /// Set or clear index `i`'s mark (atomic; racing distinct indices is fine).
    fn put(&self, i: u32, val: bool);
    /// Read index `i`'s mark.
    fn get(&self, i: u32) -> bool;
}

/// The round-loop live-set contract every frontier-form solver is written
/// against.
///
/// [`Frontier`] implements it as the existing order-stable worklist (the
/// `Compact` mode — same code, now monomorphized through this trait), and
/// [`BitFrontier`] implements it over u64 bitset words (the `Bitset`
/// mode). Both iterate members in increasing index order wherever order is
/// observable (`for_each_seq`), which is why the two modes stay
/// byte-identical: every worklist the solvers build is sorted ascending.
pub trait ActiveSet: Send + Sized {
    /// The mark representation paired with this live-set representation.
    type Marks: MarkSet;

    /// Borrow an empty set from the arena.
    fn take(scratch: &mut Scratch) -> Self;

    /// Return the set (with its grown buffers) to the arena.
    fn recycle(self, scratch: &mut Scratch);

    /// Borrow a mark array covering `0..n`, every mark set to `fill`.
    fn take_marks(scratch: &mut Scratch, n: usize, fill: bool) -> Self::Marks;

    /// Return a mark array to the arena.
    fn recycle_marks(marks: Self::Marks, scratch: &mut Scratch);

    /// Rebuild as `{i in 0..n : keep(i)}`, in increasing order.
    fn reset_range<F>(&mut self, n: usize, keep: F)
    where
        F: Fn(u32) -> bool + Sync + Send;

    /// Rebuild from an explicit member list drawn from `0..universe`.
    fn reset_from(&mut self, items: &[u32], universe: usize);

    /// Number of live members.
    fn len(&self) -> usize;

    /// Whether no member is live.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every member failing `keep` (the per-round compaction).
    fn retain<F>(&mut self, keep: F)
    where
        F: Fn(u32) -> bool + Sync + Send;

    /// Parallel sweep over the members.
    fn for_each<F>(&self, f: F)
    where
        F: Fn(u32) + Sync + Send;

    /// Sequential sweep over the members in increasing order.
    fn for_each_seq<F>(&self, f: F)
    where
        F: FnMut(u32);

    /// `dst := {v in self : pred(v)}`.
    fn select_into<F>(&self, pred: F, dst: &mut Self)
    where
        F: Fn(u32) -> bool + Sync + Send;

    /// `dst := self ∩ marks` — the conflict/winner-mask step. The bitset
    /// family computes this with one AND per live word.
    fn select_marked_into(&self, marks: &Self::Marks, dst: &mut Self);
}

/// One mark byte per index — the [`Frontier`] family's [`MarkSet`].
///
/// Backed by an arena `Vec<u8>`; accesses go through `AtomicU8` views of
/// the same memory (the `crate::atomic` cast idiom), so kernels may mark
/// concurrently.
pub struct ByteMarks {
    buf: Vec<u8>,
}

impl ByteMarks {
    fn at(&self, i: u32) -> &AtomicU8 {
        // SAFETY: `AtomicU8` has the same layout as `u8`, the index is in
        // bounds (caller contract, checked in debug), and every access to
        // the buffer while it is shared goes through these atomic views.
        debug_assert!((i as usize) < self.buf.len());
        unsafe { &*(self.buf.as_ptr().add(i as usize) as *const AtomicU8) }
    }
}

impl MarkSet for ByteMarks {
    fn put(&self, i: u32, val: bool) {
        self.at(i).store(val as u8, Ordering::Relaxed);
    }

    fn get(&self, i: u32) -> bool {
        self.at(i).load(Ordering::Relaxed) != 0
    }
}

/// One mark bit per index — the [`BitFrontier`] family's [`MarkSet`].
///
/// Marks are set/cleared with atomic OR/ANDNOT on the containing word, and
/// whole words are exposed to [`BitFrontier::select_marked_into`] so the
/// live∩marked intersection is a word-level AND.
pub struct WordMarks {
    words: Vec<u64>,
}

impl WordMarks {
    fn at(&self, w: usize) -> &AtomicU64 {
        // SAFETY: same layout-compatible atomic view as `ByteMarks::at`.
        debug_assert!(w < self.words.len());
        unsafe { &*(self.words.as_ptr().add(w) as *const AtomicU64) }
    }

    /// The whole mark word covering indices `64w..64w+64`.
    pub fn word(&self, w: usize) -> u64 {
        self.at(w).load(Ordering::Relaxed)
    }
}

impl MarkSet for WordMarks {
    fn put(&self, i: u32, val: bool) {
        let bit = 1u64 << (i & 63);
        let w = self.at(i as usize >> 6);
        if val {
            w.fetch_or(bit, Ordering::Relaxed);
        } else {
            w.fetch_and(!bit, Ordering::Relaxed);
        }
    }

    fn get(&self, i: u32) -> bool {
        self.word(i as usize >> 6) >> (i & 63) & 1 != 0
    }
}

impl ActiveSet for Frontier {
    type Marks = ByteMarks;

    fn take(scratch: &mut Scratch) -> Frontier {
        scratch.take_frontier()
    }

    fn recycle(self, scratch: &mut Scratch) {
        scratch.recycle_frontier(self);
    }

    fn take_marks(scratch: &mut Scratch, n: usize, fill: bool) -> ByteMarks {
        ByteMarks {
            buf: scratch.take_u8(n, fill as u8),
        }
    }

    fn recycle_marks(marks: ByteMarks, scratch: &mut Scratch) {
        scratch.recycle_u8(marks.buf);
    }

    fn reset_range<F>(&mut self, n: usize, keep: F)
    where
        F: Fn(u32) -> bool + Sync + Send,
    {
        Frontier::reset_range(self, n, keep);
    }

    fn reset_from(&mut self, items: &[u32], _universe: usize) {
        Frontier::reset_from(self, items);
    }

    fn len(&self) -> usize {
        Frontier::len(self)
    }

    fn retain<F>(&mut self, keep: F)
    where
        F: Fn(u32) -> bool + Sync + Send,
    {
        self.compact(keep);
    }

    fn for_each<F>(&self, f: F)
    where
        F: Fn(u32) + Sync + Send,
    {
        self.cur.par_iter().for_each(|&v| f(v));
    }

    fn for_each_seq<F>(&self, mut f: F)
    where
        F: FnMut(u32),
    {
        for &v in &self.cur {
            f(v);
        }
    }

    fn select_into<F>(&self, pred: F, dst: &mut Frontier)
    where
        F: Fn(u32) -> bool + Sync + Send,
    {
        compact_active_with(&self.cur, pred, &mut dst.cur, &mut dst.counts);
    }

    fn select_marked_into(&self, marks: &ByteMarks, dst: &mut Frontier) {
        compact_active_with(&self.cur, |v| marks.get(v), &mut dst.cur, &mut dst.counts);
    }
}

/// A u64-bitset live set: bit `i & 63` of `words[i >> 6]` says whether
/// index `i` is live.
///
/// The invariant `words[w] != 0  ⇔  w ∈ live` is maintained by every
/// operation, and `live` (the sorted nonzero-word index list) is what the
/// per-round compaction emits — word-index runs, 64× shorter than the
/// member list — so sweeps skip dead regions at word granularity while
/// iteration inside a word is a trailing-zeros loop. Members always come
/// out in increasing index order, matching the sorted worklists of the
/// [`Frontier`] family.
#[derive(Debug, Default)]
pub struct BitFrontier {
    words: Vec<u64>,
    live: Vec<u32>,
    spare: Vec<u32>,
    len: usize,
}

/// Visit the set bits of `bits` (word index `w`) as global indices.
#[inline]
fn for_bits(w: u32, mut bits: u64, f: &mut impl FnMut(u32)) {
    let base = w * 64;
    while bits != 0 {
        f(base + bits.trailing_zeros());
        bits &= bits - 1;
    }
}

impl BitFrontier {
    /// Empty bitset frontier with no capacity.
    pub fn new() -> BitFrontier {
        BitFrontier::default()
    }

    /// Current members, materialized in increasing order (test/debug aid;
    /// the solvers never materialize).
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each_seq(|v| out.push(v));
        out
    }

    /// Resize the word array for a universe of `n` indices, zeroing it.
    fn reset_words(&mut self, n: usize) {
        let nw = n.div_ceil(64);
        if self.words.len() == nw {
            // Clearing only the live words beats a full memset once the
            // set is sparse.
            for &w in &self.live {
                self.words[w as usize] = 0;
            }
        } else {
            self.words.clear();
            self.words.resize(nw, 0);
        }
        self.live.clear();
        self.len = 0;
    }

    /// Rebuild `live` and `len` from the word array (sequential: the word
    /// array is 64× smaller than the universe).
    fn rebuild_live(&mut self) {
        self.spare.clear();
        let words = &self.words;
        self.spare
            .extend((0..words.len() as u32).filter(|&w| words[w as usize] != 0));
        std::mem::swap(&mut self.live, &mut self.spare);
        self.len = self
            .live
            .iter()
            .map(|&w| self.words[w as usize].count_ones() as usize)
            .sum();
    }

    /// Drop dead word indices from `live` (order-stable) and recount.
    fn compact_live(&mut self) {
        self.spare.clear();
        let words = &self.words;
        self.spare.extend(
            self.live
                .iter()
                .copied()
                .filter(|&w| words[w as usize] != 0),
        );
        std::mem::swap(&mut self.live, &mut self.spare);
        self.len = self
            .live
            .iter()
            .map(|&w| self.words[w as usize].count_ones() as usize)
            .sum();
    }

    /// Capacity currently held (for arena reuse accounting).
    fn capacity(&self) -> usize {
        self.words.capacity() + self.live.capacity() + self.spare.capacity()
    }
}

impl ActiveSet for BitFrontier {
    type Marks = WordMarks;

    fn take(scratch: &mut Scratch) -> BitFrontier {
        scratch.take_bit_frontier()
    }

    fn recycle(self, scratch: &mut Scratch) {
        scratch.recycle_bit_frontier(self);
    }

    fn take_marks(scratch: &mut Scratch, n: usize, fill: bool) -> WordMarks {
        WordMarks {
            words: scratch.take_u64(n.div_ceil(64), if fill { !0 } else { 0 }),
        }
    }

    fn recycle_marks(marks: WordMarks, scratch: &mut Scratch) {
        scratch.recycle_u64(marks.words);
    }

    fn reset_range<F>(&mut self, n: usize, keep: F)
    where
        F: Fn(u32) -> bool + Sync + Send,
    {
        let m = metrics();
        m.compactions.inc();
        m.items_scanned.add(n as u64);
        self.reset_words(n);
        self.words.par_iter_mut().enumerate().for_each(|(w, word)| {
            let lo = w * 64;
            let hi = n.min(lo + 64);
            let mut bits = 0u64;
            for i in lo..hi {
                if keep(i as u32) {
                    bits |= 1 << (i - lo);
                }
            }
            *word = bits;
        });
        self.rebuild_live();
    }

    fn reset_from(&mut self, items: &[u32], universe: usize) {
        self.reset_words(universe);
        for &i in items {
            self.words[i as usize >> 6] |= 1 << (i & 63);
        }
        self.rebuild_live();
    }

    fn len(&self) -> usize {
        self.len
    }

    fn retain<F>(&mut self, keep: F)
    where
        F: Fn(u32) -> bool + Sync + Send,
    {
        let m = metrics();
        m.compactions.inc();
        m.items_scanned.add(self.len as u64);
        let words = as_atomic_u64(&mut self.words);
        self.live.par_iter().for_each(|&w| {
            let old = words[w as usize].load(Ordering::Relaxed);
            let mut kept = 0u64;
            for_bits(w, old, &mut |i| {
                if keep(i) {
                    kept |= 1 << (i & 63);
                }
            });
            if kept != old {
                words[w as usize].store(kept, Ordering::Relaxed);
            }
        });
        self.compact_live();
    }

    fn for_each<F>(&self, f: F)
    where
        F: Fn(u32) + Sync + Send,
    {
        let words = &self.words;
        self.live
            .par_iter()
            .for_each(|&w| for_bits(w, words[w as usize], &mut |i| f(i)));
    }

    fn for_each_seq<F>(&self, mut f: F)
    where
        F: FnMut(u32),
    {
        for &w in &self.live {
            for_bits(w, self.words[w as usize], &mut f);
        }
    }

    fn select_into<F>(&self, pred: F, dst: &mut BitFrontier)
    where
        F: Fn(u32) -> bool + Sync + Send,
    {
        let m = metrics();
        m.compactions.inc();
        m.items_scanned.add(self.len as u64);
        dst.reset_words(self.words.len() * 64);
        let src = &self.words;
        let out = as_atomic_u64(&mut dst.words);
        self.live.par_iter().for_each(|&w| {
            let mut kept = 0u64;
            for_bits(w, src[w as usize], &mut |i| {
                if pred(i) {
                    kept |= 1 << (i & 63);
                }
            });
            if kept != 0 {
                out[w as usize].store(kept, Ordering::Relaxed);
            }
        });
        // Only words live in `self` can be live in `dst`.
        dst.spare.clear();
        let words = &dst.words;
        dst.spare.extend(
            self.live
                .iter()
                .copied()
                .filter(|&w| words[w as usize] != 0),
        );
        std::mem::swap(&mut dst.live, &mut dst.spare);
        dst.len = dst
            .live
            .iter()
            .map(|&w| dst.words[w as usize].count_ones() as usize)
            .sum();
    }

    fn select_marked_into(&self, marks: &WordMarks, dst: &mut BitFrontier) {
        let m = metrics();
        m.compactions.inc();
        m.items_scanned.add(self.len as u64);
        dst.reset_words(self.words.len() * 64);
        let src = &self.words;
        let out = as_atomic_u64(&mut dst.words);
        // The whole point: live ∩ marked is one AND per live word.
        self.live.par_iter().for_each(|&w| {
            let kept = src[w as usize] & marks.word(w as usize);
            if kept != 0 {
                out[w as usize].store(kept, Ordering::Relaxed);
            }
        });
        dst.spare.clear();
        let words = &dst.words;
        dst.spare.extend(
            self.live
                .iter()
                .copied()
                .filter(|&w| words[w as usize] != 0),
        );
        std::mem::swap(&mut dst.live, &mut dst.spare);
        dst.len = dst
            .live
            .iter()
            .map(|&w| dst.words[w as usize].count_ones() as usize)
            .sum();
    }
}

/// Allocation statistics of a [`Scratch`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScratchStats {
    /// Buffers handed out that had to be freshly allocated (or regrown).
    pub fresh_allocs: u64,
    /// Buffers handed out from the pool without allocating.
    pub reuses: u64,
}

/// A typed buffer arena for per-solver working memory.
///
/// One `Scratch` lives for a whole composite run; each solver phase
/// borrows the arrays it needs (`take_*`), uses them for its round loop,
/// and returns them (`recycle_*`). The first call per shape allocates; all
/// later calls reuse, so a run's allocation count stops growing after its
/// first solve — [`Scratch::stats`] exposes the counts so tests can pin
/// exactly that.
#[derive(Debug, Default)]
pub struct Scratch {
    u8s: Vec<Vec<u8>>,
    u32s: Vec<Vec<u32>>,
    u64s: Vec<Vec<u64>>,
    usizes: Vec<Vec<usize>>,
    frontiers: Vec<Frontier>,
    bit_frontiers: Vec<BitFrontier>,
    fresh_allocs: u64,
    reuses: u64,
}

fn take_buf<T: Copy>(
    pool: &mut Vec<Vec<T>>,
    n: usize,
    fill: T,
    fresh: &mut u64,
    reuses: &mut u64,
) -> Vec<T> {
    match pool.pop() {
        Some(mut b) if b.capacity() >= n => {
            *reuses += 1;
            b.clear();
            b.resize(n, fill);
            b
        }
        _ => {
            *fresh += 1;
            vec![fill; n]
        }
    }
}

impl Scratch {
    /// Fresh, empty arena.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// Borrow a `u8` buffer of length `n`, every entry set to `fill`.
    pub fn take_u8(&mut self, n: usize, fill: u8) -> Vec<u8> {
        take_buf(
            &mut self.u8s,
            n,
            fill,
            &mut self.fresh_allocs,
            &mut self.reuses,
        )
    }

    /// Borrow a `u32` buffer of length `n`, every entry set to `fill`.
    pub fn take_u32(&mut self, n: usize, fill: u32) -> Vec<u32> {
        take_buf(
            &mut self.u32s,
            n,
            fill,
            &mut self.fresh_allocs,
            &mut self.reuses,
        )
    }

    /// Borrow a `u64` buffer of length `n`, every entry set to `fill`.
    pub fn take_u64(&mut self, n: usize, fill: u64) -> Vec<u64> {
        take_buf(
            &mut self.u64s,
            n,
            fill,
            &mut self.fresh_allocs,
            &mut self.reuses,
        )
    }

    /// Borrow a `usize` buffer of length `n`, every entry set to `fill`.
    pub fn take_usize(&mut self, n: usize, fill: usize) -> Vec<usize> {
        take_buf(
            &mut self.usizes,
            n,
            fill,
            &mut self.fresh_allocs,
            &mut self.reuses,
        )
    }

    /// Borrow an empty [`Frontier`] (its buffers keep the capacity they had
    /// when recycled).
    pub fn take_frontier(&mut self) -> Frontier {
        match self.frontiers.pop() {
            Some(mut f) => {
                if f.capacity() > 0 {
                    self.reuses += 1;
                } else {
                    self.fresh_allocs += 1;
                }
                f.cur.clear();
                f.spare.clear();
                f
            }
            None => {
                self.fresh_allocs += 1;
                Frontier::new()
            }
        }
    }

    /// Borrow an empty [`BitFrontier`] (its buffers keep the capacity they
    /// had when recycled).
    pub fn take_bit_frontier(&mut self) -> BitFrontier {
        match self.bit_frontiers.pop() {
            Some(mut f) => {
                if f.capacity() > 0 {
                    self.reuses += 1;
                } else {
                    self.fresh_allocs += 1;
                }
                f.words.clear();
                f.live.clear();
                f.spare.clear();
                f.len = 0;
                f
            }
            None => {
                self.fresh_allocs += 1;
                BitFrontier::new()
            }
        }
    }

    /// Return a `u8` buffer to the pool.
    pub fn recycle_u8(&mut self, b: Vec<u8>) {
        self.u8s.push(b);
    }

    /// Return a `u64` buffer to the pool.
    pub fn recycle_u64(&mut self, b: Vec<u64>) {
        self.u64s.push(b);
    }

    /// Return a bitset frontier (with its grown buffers) to the pool.
    pub fn recycle_bit_frontier(&mut self, f: BitFrontier) {
        self.bit_frontiers.push(f);
    }

    /// Return a `u32` buffer to the pool.
    pub fn recycle_u32(&mut self, b: Vec<u32>) {
        self.u32s.push(b);
    }

    /// Return a `usize` buffer to the pool.
    pub fn recycle_usize(&mut self, b: Vec<usize>) {
        self.usizes.push(b);
    }

    /// Return a frontier (with its grown buffers) to the pool.
    pub fn recycle_frontier(&mut self, f: Frontier) {
        self.frontiers.push(f);
    }

    /// Allocation counters accumulated so far.
    pub fn stats(&self) -> ScratchStats {
        ScratchStats {
            fresh_allocs: self.fresh_allocs,
            reuses: self.reuses,
        }
    }
}

impl Drop for Scratch {
    /// Publish the arena's lifetime totals to the global metrics registry,
    /// so arena behavior is observable (`--metrics`) without any caller
    /// plumbing. Untouched arenas (including the empties `mem::take`
    /// leaves behind) publish nothing.
    fn drop(&mut self) {
        if self.fresh_allocs == 0 && self.reuses == 0 {
            return;
        }
        let m = metrics();
        m.scratch_fresh_allocs.add(self.fresh_allocs);
        m.scratch_reuses.add(self.reuses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn want(src: &[u32], keep: impl Fn(u32) -> bool) -> Vec<u32> {
        src.iter().copied().filter(|&i| keep(i)).collect()
    }

    #[test]
    fn compact_active_matches_filter_small_and_large() {
        for n in [0usize, 1, 57, 1000, BLOCK * 2 + 55] {
            let src: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(7) % 1000).collect();
            let keep = |i: u32| i % 3 == 1;
            let mut dst = Vec::new();
            compact_active(&src, keep, &mut dst);
            assert_eq!(dst, want(&src, keep), "n = {n}");
        }
    }

    #[test]
    fn compact_active_reuses_destination_capacity() {
        let src: Vec<u32> = (0..(BLOCK * 2) as u32).collect();
        let mut dst = Vec::new();
        compact_active(&src, |_| true, &mut dst);
        let cap = dst.capacity();
        let ptr = dst.as_ptr();
        compact_active(&src, |i| i % 2 == 0, &mut dst);
        assert_eq!(dst.capacity(), cap);
        assert_eq!(dst.as_ptr(), ptr, "no reallocation on a shrinking pass");
        assert_eq!(dst.len(), BLOCK);
    }

    #[test]
    fn frontier_reset_and_pingpong() {
        let mut f = Frontier::new();
        f.reset_range(10, |i| i != 3);
        assert_eq!(f.as_slice(), &[0, 1, 2, 4, 5, 6, 7, 8, 9]);
        f.compact(|i| i % 2 == 0);
        assert_eq!(f.as_slice(), &[0, 2, 4, 6, 8]);
        assert_eq!(f.len(), 5);
        f.compact(|_| false);
        assert!(f.is_empty());
        // Reset reuses the same buffers.
        f.reset_range(4, |_| true);
        assert_eq!(f.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn frontier_multi_block_stable() {
        let n = BLOCK * 3 + 17;
        let mut f = Frontier::new();
        f.reset_range(n, |i| i % 5 != 0);
        let expect: Vec<u32> = (0..n as u32).filter(|i| i % 5 != 0).collect();
        assert_eq!(f.as_slice(), expect.as_slice());
        f.compact(|i| i % 2 == 0);
        let expect: Vec<u32> = expect.into_iter().filter(|i| i % 2 == 0).collect();
        assert_eq!(f.as_slice(), expect.as_slice());
    }

    #[test]
    fn frontier_compaction_allocates_nothing_at_steady_state() {
        let mut f = Frontier::new();
        f.reset_range(BLOCK * 2, |_| true);
        f.compact(|_| true); // both buffers now at high-water capacity
        let cur_cap = f.cur.capacity();
        let spare_cap = f.spare.capacity();
        for round in 0..6 {
            f.compact(move |i| i % (round + 2) != 0);
        }
        assert_eq!(
            f.cur.capacity().max(f.spare.capacity()),
            cur_cap.max(spare_cap)
        );
    }

    #[test]
    fn scratch_reuses_buffers() {
        let mut s = Scratch::new();
        let a = s.take_u32(100, 7);
        assert_eq!(a, vec![7u32; 100]);
        let ptr = a.as_ptr();
        s.recycle_u32(a);
        let b = s.take_u32(50, 9);
        assert_eq!(b.as_ptr(), ptr, "recycled buffer handed back out");
        assert_eq!(b, vec![9u32; 50]);
        let st = s.stats();
        assert_eq!(st.fresh_allocs, 1);
        assert_eq!(st.reuses, 1);
    }

    #[test]
    fn scratch_regrows_undersized_buffers() {
        let mut s = Scratch::new();
        let a = s.take_u8(10, 0);
        s.recycle_u8(a);
        let b = s.take_u8(10_000, 1); // does not fit: fresh allocation
        assert_eq!(b.len(), 10_000);
        assert_eq!(s.stats().fresh_allocs, 2);
    }

    #[test]
    fn bit_frontier_matches_worklist_ops() {
        // Drive a Frontier and a BitFrontier through the same op sequence
        // and require identical member lists at every step — across word
        // boundaries (universe deliberately not a multiple of 64).
        let n = 64 * 3 + 7;
        let mut s = Scratch::new();
        let mut wl: Frontier = ActiveSet::take(&mut s);
        let mut bs: BitFrontier = ActiveSet::take(&mut s);
        ActiveSet::reset_range(&mut wl, n, |i| i % 3 != 0);
        ActiveSet::reset_range(&mut bs, n, |i| i % 3 != 0);
        assert_eq!(bs.to_vec(), wl.as_slice());
        assert_eq!(ActiveSet::len(&bs), ActiveSet::len(&wl));
        for round in 2..6u32 {
            ActiveSet::retain(&mut wl, move |i| i % round != 1);
            ActiveSet::retain(&mut bs, move |i| i % round != 1);
            assert_eq!(bs.to_vec(), wl.as_slice(), "round {round}");
            assert_eq!(ActiveSet::len(&bs), ActiveSet::len(&wl));
        }
        let mut seq = Vec::new();
        bs.for_each_seq(|v| seq.push(v));
        assert_eq!(seq, wl.as_slice(), "sequential order must be ascending");
    }

    #[test]
    fn bit_frontier_word_boundaries() {
        // The classic off-by-one sites: bits 63, 64, 65 live in different
        // words; membership, retain, and select must all agree there.
        let mut bs = BitFrontier::new();
        bs.reset_from(&[63, 64, 65], 130);
        assert_eq!(bs.to_vec(), vec![63, 64, 65]);
        assert_eq!(ActiveSet::len(&bs), 3);
        ActiveSet::retain(&mut bs, |i| i != 64);
        assert_eq!(bs.to_vec(), vec![63, 65]);
        let mut dst = BitFrontier::new();
        bs.select_into(|i| i == 65, &mut dst);
        assert_eq!(dst.to_vec(), vec![65]);
        ActiveSet::retain(&mut bs, |_| false);
        assert!(ActiveSet::is_empty(&bs));
    }

    #[test]
    fn bit_frontier_select_marked_is_word_and() {
        let n = 200;
        let mut s = Scratch::new();
        let mut bs: BitFrontier = ActiveSet::take(&mut s);
        ActiveSet::reset_range(&mut bs, n, |i| i % 2 == 0);
        let marks = BitFrontier::take_marks(&mut s, n, false);
        for i in [0u32, 62, 63, 64, 65, 127, 128, 198] {
            marks.put(i, true);
        }
        marks.put(64, false); // exercise the clear path too
        let mut dst: BitFrontier = ActiveSet::take(&mut s);
        bs.select_marked_into(&marks, &mut dst);
        assert_eq!(dst.to_vec(), vec![0, 62, 128, 198]);
        // Reusing dst for a second selection must fully replace it.
        marks.put(2, true);
        bs.select_marked_into(&marks, &mut dst);
        assert_eq!(dst.to_vec(), vec![0, 2, 62, 128, 198]);
    }

    #[test]
    fn word_marks_roundtrip_against_byte_marks() {
        let mut s = Scratch::new();
        let wm = BitFrontier::take_marks(&mut s, 150, true);
        let bm = Frontier::take_marks(&mut s, 150, true);
        for i in 0..150u32 {
            assert_eq!(wm.get(i), bm.get(i), "fill mismatch at {i}");
        }
        for i in [0u32, 1, 63, 64, 65, 100, 149] {
            wm.put(i, false);
            bm.put(i, false);
        }
        wm.put(64, true);
        bm.put(64, true);
        for i in 0..150u32 {
            assert_eq!(wm.get(i), bm.get(i), "mark mismatch at {i}");
        }
    }

    #[test]
    fn scratch_bit_frontier_roundtrip() {
        let mut s = Scratch::new();
        let mut f = s.take_bit_frontier();
        ActiveSet::reset_range(&mut f, 1000, |_| true);
        s.recycle_bit_frontier(f);
        let f2 = s.take_bit_frontier();
        assert!(ActiveSet::is_empty(&f2), "recycled bitset comes back empty");
        assert!(f2.capacity() > 0, "but keeps its capacity");
        let st = s.stats();
        assert_eq!(st.fresh_allocs, 1);
        assert_eq!(st.reuses, 1);
    }

    #[test]
    fn scratch_frontier_roundtrip() {
        let mut s = Scratch::new();
        let mut f = s.take_frontier();
        f.reset_range(1000, |_| true);
        s.recycle_frontier(f);
        let f2 = s.take_frontier();
        assert!(f2.is_empty(), "recycled frontier comes back cleared");
        assert!(f2.capacity() >= 1000, "but keeps its capacity");
        let st = s.stats();
        assert_eq!(st.fresh_allocs, 1);
        assert_eq!(st.reuses, 1);
    }
}
