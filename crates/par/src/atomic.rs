//! Atomic helpers used by the parallel graph algorithms.
//!
//! The hook-style algorithms in this study (LCA marking, label propagation,
//! proposal matching) are expressed as races that are resolved with atomic
//! min/once operations; this module centralizes those patterns plus a
//! concurrent bitset used for edge marking.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};

/// Atomically lower `a` to `min(a, v)`; returns the previous value.
#[inline]
pub fn fetch_min_u32(a: &AtomicU32, v: u32) -> u32 {
    a.fetch_min(v, Ordering::Relaxed)
}

/// Atomically raise `a` to `max(a, v)`; returns the previous value.
#[inline]
pub fn fetch_max_u32(a: &AtomicU32, v: u32) -> u32 {
    a.fetch_max(v, Ordering::Relaxed)
}

/// Write `v` into `a` only if `a` currently holds `empty`.
/// Returns `true` when this call performed the write (won the race).
#[inline]
pub fn store_once_u32(a: &AtomicU32, empty: u32, v: u32) -> bool {
    a.compare_exchange(empty, v, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
}

/// Reinterpret a `&mut [u32]` as a slice of atomics for the duration of a
/// parallel phase. Safe because `AtomicU32` has the same layout as `u32` and
/// the exclusive borrow guarantees no other non-atomic access coexists.
#[inline]
pub fn as_atomic_u32(xs: &mut [u32]) -> &[AtomicU32] {
    // SAFETY: AtomicU32 is repr(transparent)-compatible in layout with u32
    // (guaranteed same size/alignment per std docs), and we hold the unique
    // mutable borrow, so converting to a shared slice of atomics is sound.
    unsafe { &*(xs as *mut [u32] as *const [AtomicU32]) }
}

/// Reinterpret a `&mut [u8]` as atomics; see [`as_atomic_u32`]. Used for
/// the status/marked byte arrays the MIS and frontier solvers race on.
#[inline]
pub fn as_atomic_u8(xs: &mut [u8]) -> &[AtomicU8] {
    // SAFETY: same argument as `as_atomic_u32`.
    unsafe { &*(xs as *mut [u8] as *const [AtomicU8]) }
}

/// Reinterpret a `&mut [u64]` as atomics; see [`as_atomic_u32`].
#[inline]
pub fn as_atomic_u64(xs: &mut [u64]) -> &[AtomicU64] {
    // SAFETY: same argument as `as_atomic_u32`.
    unsafe { &*(xs as *mut [u64] as *const [AtomicU64]) }
}

/// Reinterpret a `&mut [usize]` as atomics; see [`as_atomic_u32`].
#[inline]
pub fn as_atomic_usize(xs: &mut [usize]) -> &[AtomicUsize] {
    // SAFETY: same argument as `as_atomic_u32`.
    unsafe { &*(xs as *mut [usize] as *const [AtomicUsize]) }
}

/// A fixed-capacity concurrent bitset.
///
/// Supports lock-free set/test; used to mark tree edges during the BRIDGE
/// decomposition's parallel LCA walks and to flag conflicted vertices in the
/// coloring algorithms.
#[derive(Debug)]
pub struct AtomicBitSet {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitSet {
    /// Create a bitset of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        let words = (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        Self { words, len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitset holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`; returns `true` if the bit was previously clear.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i & 63);
        self.words[i >> 6].fetch_or(mask, Ordering::Relaxed) & mask == 0
    }

    /// Clear bit `i`; returns `true` if the bit was previously set.
    #[inline]
    pub fn clear(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i & 63);
        self.words[i >> 6].fetch_and(!mask, Ordering::Relaxed) & mask != 0
    }

    /// Test bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i >> 6].load(Ordering::Relaxed) & (1u64 << (i & 63)) != 0
    }

    /// Reset every bit to clear.
    pub fn clear_all(&self) {
        for w in &self.words {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Count set bits.
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Iterate over the indices of set bits (sequential).
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut bits = w.load(Ordering::Relaxed);
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn bitset_set_get_clear() {
        let bs = AtomicBitSet::new(130);
        assert_eq!(bs.len(), 130);
        assert!(!bs.get(0) && !bs.get(129));
        assert!(bs.set(129));
        assert!(!bs.set(129), "second set reports already-set");
        assert!(bs.get(129));
        assert!(bs.clear(129));
        assert!(!bs.clear(129));
        assert!(!bs.get(129));
    }

    #[test]
    fn bitset_count_and_iter() {
        let bs = AtomicBitSet::new(200);
        for i in (0..200).step_by(3) {
            bs.set(i);
        }
        assert_eq!(bs.count_ones(), (0..200).step_by(3).count());
        let ones: Vec<usize> = bs.iter_ones().collect();
        assert_eq!(ones, (0..200).step_by(3).collect::<Vec<_>>());
        bs.clear_all();
        assert_eq!(bs.count_ones(), 0);
    }

    #[test]
    fn bitset_concurrent_sets_each_bit_claimed_once() {
        let bs = AtomicBitSet::new(1024);
        // Every bit is targeted by 8 racing setters; exactly one must win.
        let wins: usize = (0..8 * 1024usize)
            .into_par_iter()
            .map(|j| usize::from(bs.set(j % 1024)))
            .sum();
        assert_eq!(wins, 1024);
        assert_eq!(bs.count_ones(), 1024);
    }

    #[test]
    fn store_once_single_winner() {
        let a = AtomicU32::new(u32::MAX);
        let winners: usize = (0..64u32)
            .into_par_iter()
            .map(|v| usize::from(store_once_u32(&a, u32::MAX, v)))
            .sum();
        assert_eq!(winners, 1);
        assert!(a.load(Ordering::Relaxed) < 64);
    }

    #[test]
    fn atomic_views_share_storage() {
        let mut xs = vec![5u32, 6, 7];
        {
            let at = as_atomic_u32(&mut xs);
            at[1].store(42, Ordering::Relaxed);
            fetch_min_u32(&at[0], 1);
            fetch_max_u32(&at[2], 100);
        }
        assert_eq!(xs, vec![1, 42, 100]);
    }

    #[test]
    fn empty_bitset() {
        let bs = AtomicBitSet::new(0);
        assert!(bs.is_empty());
        assert_eq!(bs.count_ones(), 0);
        assert_eq!(bs.iter_ones().count(), 0);
    }
}
