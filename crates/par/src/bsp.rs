//! Bulk-synchronous "GPU-sim" executor.
//!
//! The original study runs its GPU algorithm family (LMAX matching, EB
//! coloring, flat Luby MIS) on an NVidia K40c. What characterizes those codes
//! — and what drives the paper's GPU-side conclusions — is their *shape*:
//! every step is a flat data-parallel kernel over all n elements, kernels are
//! separated by device-wide barriers, and the cost of a run is (number of
//! kernel launches) × (launch overhead) + total work. This module provides a
//! [`BspExecutor`] with exactly that contract: algorithms submit kernels, the
//! executor runs each kernel to completion (a barrier) before the next one
//! starts, and it accounts launches and work in a [`Counters`] block.
//!
//! This is the documented substitute for the K40c (see DESIGN.md §2): it does
//! not model SM occupancy or memory coalescing, but it preserves the
//! round/launch structure that the paper's GPU comparisons turn on.
//!
//! Kernels execute on the rayon layer's worker pool, so each launch is a
//! genuinely parallel sweep and the `kernel(…)` return is a real barrier
//! (the pool's claim loop finishes every grid point before returning). The
//! number of kernel *launches* an algorithm performs is a property of the
//! algorithm, not of the pool width — `tests/determinism.rs` pins that
//! launch counts are identical at 1 and N threads.

use crate::counters::Counters;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// A bulk-synchronous executor: runs flat kernels with a barrier after each.
#[derive(Debug, Default)]
pub struct BspExecutor {
    counters: Counters,
}

impl BspExecutor {
    /// New executor with zeroed accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// New executor whose counters report into the same trace sink as
    /// `parent` (if any), so BSP rounds show up in the run's trace. The
    /// counters themselves start at zero — callers merge them back into
    /// `parent` when the device phase finishes, exactly as with
    /// [`BspExecutor::new`].
    pub fn inheriting(parent: &Counters) -> Self {
        match parent.trace_sink() {
            Some(sink) => BspExecutor {
                counters: Counters::with_trace(sink.clone()),
            },
            None => Self::default(),
        }
    }

    /// Launch a kernel over the index grid `0..n`.
    ///
    /// Every grid point runs `body(i)`; the call returns only when all grid
    /// points have finished (the inter-kernel barrier).
    pub fn kernel<F>(&self, n: usize, body: F)
    where
        F: Fn(usize) + Sync + Send,
    {
        self.counters.add_kernel(n as u64);
        (0..n).into_par_iter().for_each(body);
    }

    /// Launch a kernel over an explicit work-list (frontier) of indices.
    ///
    /// GPU codes compact their active set between rounds; this is the
    /// corresponding launch form.
    pub fn kernel_over<F>(&self, items: &[u32], body: F)
    where
        F: Fn(u32) + Sync + Send,
    {
        self.counters.add_kernel(items.len() as u64);
        items.par_iter().for_each(|&i| body(i));
    }

    /// Launch a kernel over an [`ActiveSet`](crate::frontier::ActiveSet)
    /// live set — the generic form of [`BspExecutor::kernel_over`] shared
    /// by the worklist and bitset frontier families. Work accounting is the
    /// member count, exactly as with an explicit worklist.
    pub fn kernel_over_set<W, F>(&self, set: &W, body: F)
    where
        W: crate::frontier::ActiveSet,
        F: Fn(u32) + Sync + Send,
    {
        self.counters.add_kernel(set.len() as u64);
        set.for_each(body);
    }

    /// Launch a counting-reduction kernel: number of `i in 0..n` with `pred(i)`.
    pub fn count<F>(&self, n: usize, pred: F) -> usize
    where
        F: Fn(usize) -> bool + Sync + Send,
    {
        self.counters.add_kernel(n as u64);
        (0..n).into_par_iter().filter(|&i| pred(i)).count()
    }

    /// Launch a sum-reduction kernel over `0..n`.
    pub fn sum<F>(&self, n: usize, f: F) -> u64
    where
        F: Fn(usize) -> u64 + Sync + Send,
    {
        self.counters.add_kernel(n as u64);
        (0..n).into_par_iter().map(f).sum()
    }

    /// Launch a kernel that also produces a device-side "any flag changed"
    /// signal — the standard convergence test for iterative GPU codes.
    pub fn kernel_any<F>(&self, n: usize, body: F) -> bool
    where
        F: Fn(usize) -> bool + Sync + Send,
    {
        self.counters.add_kernel(n as u64);
        let flag = AtomicU64::new(0);
        (0..n).into_par_iter().for_each(|i| {
            if body(i) {
                flag.store(1, Ordering::Relaxed);
            }
        });
        flag.load(Ordering::Relaxed) != 0
    }

    /// Mark the end of one outer algorithm round.
    pub fn end_round(&self) {
        self.counters.add_rounds(1);
    }

    /// Accounting block for this executor.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn kernel_touches_every_grid_point_once() {
        let exec = BspExecutor::new();
        let cells: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        exec.kernel(1000, |i| {
            cells[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(cells.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        let s = exec.counters().snapshot();
        assert_eq!(s.kernel_launches, 1);
        assert_eq!(s.work_items, 1000);
    }

    #[test]
    fn kernel_over_worklist() {
        let exec = BspExecutor::new();
        let cells: Vec<AtomicU32> = (0..10).map(|_| AtomicU32::new(0)).collect();
        exec.kernel_over(&[1, 3, 5], |i| {
            cells[i as usize].fetch_add(1, Ordering::Relaxed);
        });
        let touched: Vec<u32> = cells.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        assert_eq!(touched, vec![0, 1, 0, 1, 0, 1, 0, 0, 0, 0]);
        assert_eq!(exec.counters().work_items(), 3);
    }

    #[test]
    fn reductions() {
        let exec = BspExecutor::new();
        assert_eq!(exec.count(100, |i| i % 2 == 0), 50);
        assert_eq!(exec.sum(10, |i| i as u64), 45);
        assert_eq!(exec.counters().kernel_launches(), 2);
    }

    #[test]
    fn kernel_any_signals_change() {
        let exec = BspExecutor::new();
        assert!(exec.kernel_any(100, |i| i == 37));
        assert!(!exec.kernel_any(100, |_| false));
        assert!(!exec.kernel_any(0, |_| true), "empty grid changes nothing");
    }

    #[test]
    fn rounds_accumulate() {
        let exec = BspExecutor::new();
        for _ in 0..5 {
            exec.kernel(1, |_| {});
            exec.end_round();
        }
        assert_eq!(exec.counters().rounds(), 5);
        assert_eq!(exec.counters().kernel_launches(), 5);
    }
}
