//! Data-parallel building blocks: scans, stream compaction, histograms.
//!
//! These are the PRAM-style primitives every algorithm in the study is
//! assembled from. They are implemented as two-pass blocked algorithms over
//! rayon so they parallelize on multicore hosts and degrade gracefully to
//! sequential loops on one core.

use rayon::prelude::*;

/// Minimum number of elements per parallel block. Below this, blocked
/// two-pass algorithms cost more than a sequential loop. Shared with the
/// frontier-compaction module so every compaction in the crate switches to
/// its sequential form at the same size.
pub(crate) const BLOCK: usize = 1 << 14;

/// Exclusive prefix sum: `out[i] = xs[0] + … + xs[i-1]`, returning the total.
///
/// Two-pass blocked scan: per-block sums in parallel, sequential scan of the
/// (few) block sums, then per-block local scans in parallel.
pub fn exclusive_scan(xs: &[usize], out: &mut [usize]) -> usize {
    assert_eq!(xs.len(), out.len());
    let n = xs.len();
    if n == 0 {
        return 0;
    }
    if n <= BLOCK {
        let mut acc = 0usize;
        for i in 0..n {
            out[i] = acc;
            acc += xs[i];
        }
        return acc;
    }
    let nblocks = n.div_ceil(BLOCK);
    let mut block_sums: Vec<usize> = xs.par_chunks(BLOCK).map(|c| c.iter().sum()).collect();
    let mut acc = 0usize;
    for s in &mut block_sums {
        let b = *s;
        *s = acc;
        acc += b;
    }
    debug_assert_eq!(block_sums.len(), nblocks);
    out.par_chunks_mut(BLOCK)
        .zip(xs.par_chunks(BLOCK))
        .zip(block_sums.par_iter())
        .for_each(|((o, x), &base)| {
            let mut a = base;
            for i in 0..x.len() {
                o[i] = a;
                a += x[i];
            }
        });
    acc
}

/// Convenience wrapper: exclusive scan into a fresh vector, plus the total.
pub fn exclusive_scan_vec(xs: &[usize]) -> (Vec<usize>, usize) {
    let mut out = vec![0usize; xs.len()];
    let total = exclusive_scan(xs, &mut out);
    (out, total)
}

/// Stream compaction: indices `i in 0..n` with `keep(i)`, in increasing order.
///
/// The classic flag–scan–scatter pipeline; order-stable so downstream code
/// can rely on deterministic output.
pub fn compact_indices<F>(n: usize, keep: F) -> Vec<u32>
where
    F: Fn(usize) -> bool + Sync + Send,
{
    if n == 0 {
        return Vec::new();
    }
    if n <= BLOCK {
        return (0..n).filter(|&i| keep(i)).map(|i| i as u32).collect();
    }
    let nblocks = n.div_ceil(BLOCK);
    // Pass 1: count survivors per block.
    let counts: Vec<usize> = (0..nblocks)
        .into_par_iter()
        .map(|b| {
            let lo = b * BLOCK;
            let hi = n.min(lo + BLOCK);
            (lo..hi).filter(|&i| keep(i)).count()
        })
        .collect();
    let (offsets, total) = exclusive_scan_vec(&counts);
    // Pass 2: scatter into the exact slot range for each block.
    let mut out = vec![0u32; total];
    let mut slices: Vec<&mut [u32]> = Vec::with_capacity(nblocks);
    {
        let mut rest: &mut [u32] = &mut out;
        for &len in &counts {
            let (head, tail) = rest.split_at_mut(len);
            slices.push(head);
            rest = tail;
        }
        debug_assert_eq!(offsets.len(), nblocks);
    }
    slices.into_par_iter().enumerate().for_each(|(b, slot)| {
        let lo = b * BLOCK;
        let hi = n.min(lo + BLOCK);
        let mut j = 0;
        for i in lo..hi {
            if keep(i) {
                slot[j] = i as u32;
                j += 1;
            }
        }
        debug_assert_eq!(j, slot.len());
    });
    out
}

/// Map `f` over `0..n` in parallel into a fresh vector.
pub fn par_tabulate<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    (0..n).into_par_iter().map(f).collect()
}

/// Run `f(i)` for every `i in 0..n` in parallel (side-effecting kernel body).
pub fn par_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync + Send,
{
    (0..n).into_par_iter().for_each(f);
}

/// Parallel count of `i in 0..n` with `pred(i)`.
pub fn par_count<F>(n: usize, pred: F) -> usize
where
    F: Fn(usize) -> bool + Sync + Send,
{
    (0..n).into_par_iter().filter(|&i| pred(i)).count()
}

/// Histogram of `key(i)` for `i in 0..n` into `buckets` bins.
///
/// Per-block private histograms merged at the end — the standard
/// contention-free formulation.
pub fn par_histogram<F>(n: usize, buckets: usize, key: F) -> Vec<usize>
where
    F: Fn(usize) -> usize + Sync + Send,
{
    if n == 0 {
        return vec![0; buckets];
    }
    let nblocks = n.div_ceil(BLOCK).max(1);
    (0..nblocks)
        .into_par_iter()
        .map(|b| {
            let lo = b * BLOCK;
            let hi = n.min(lo + BLOCK);
            let mut h = vec![0usize; buckets];
            for i in lo..hi {
                let k = key(i);
                debug_assert!(k < buckets);
                h[k] += 1;
            }
            h
        })
        .fold(vec![0usize; buckets], |mut a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_scan(xs: &[usize]) -> (Vec<usize>, usize) {
        let mut out = Vec::with_capacity(xs.len());
        let mut acc = 0;
        for &x in xs {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn scan_empty_and_singleton() {
        let (v, t) = exclusive_scan_vec(&[]);
        assert!(v.is_empty());
        assert_eq!(t, 0);
        let (v, t) = exclusive_scan_vec(&[7]);
        assert_eq!(v, vec![0]);
        assert_eq!(t, 7);
    }

    #[test]
    fn scan_matches_sequential_small() {
        let xs: Vec<usize> = (0..1000).map(|i| (i * 7 + 3) % 11).collect();
        let (got, total) = exclusive_scan_vec(&xs);
        let (want, wtotal) = seq_scan(&xs);
        assert_eq!(got, want);
        assert_eq!(total, wtotal);
    }

    #[test]
    fn scan_matches_sequential_multi_block() {
        let n = BLOCK * 3 + 137;
        let xs: Vec<usize> = (0..n).map(|i| i % 5).collect();
        let (got, total) = exclusive_scan_vec(&xs);
        let (want, wtotal) = seq_scan(&xs);
        assert_eq!(total, wtotal);
        assert_eq!(got, want);
    }

    #[test]
    fn compact_small_and_large_match_filter() {
        for n in [0usize, 1, 100, BLOCK * 2 + 55] {
            let got = compact_indices(n, |i| i % 3 == 1);
            let want: Vec<u32> = (0..n).filter(|i| i % 3 == 1).map(|i| i as u32).collect();
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn compact_all_and_none() {
        assert_eq!(compact_indices(10, |_| false), Vec::<u32>::new());
        assert_eq!(
            compact_indices(10, |_| true),
            (0..10u32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tabulate_count_histogram() {
        let v = par_tabulate(100, |i| i * 2);
        assert_eq!(v[40], 80);
        assert_eq!(par_count(100, |i| i < 30), 30);
        let h = par_histogram(1000, 4, |i| i % 4);
        assert_eq!(h, vec![250; 4]);
    }

    #[test]
    fn histogram_multi_block() {
        let n = BLOCK * 2 + 9;
        let h = par_histogram(n, 3, |i| i % 3);
        assert_eq!(h.iter().sum::<usize>(), n);
        for (k, &c) in h.iter().enumerate() {
            assert_eq!(c, (0..n).filter(|i| i % 3 == k).count());
        }
    }
}
