//! Counter-based random numbers for data-parallel algorithms.
//!
//! The randomized algorithms in this study (RAND decomposition, Luby's MIS,
//! LMAX edge weights, GM edge priorities) need a random value *per element
//! per round* that is independent of the number of worker threads, so that a
//! run is reproducible from its seed alone. A stateful RNG shared across a
//! parallel loop cannot provide that; a counter-based construction can: the
//! value for element `i` in round `r` under seed `s` is a pure function
//! `mix(s, r, i)`.
//!
//! The mixer is the finalizer of SplitMix64 (Steele et al., "Fast splittable
//! pseudorandom number generators", OOPSLA 2014), which passes BigCrush when
//! used this way and costs a handful of arithmetic instructions.

/// SplitMix64 finalizer: a bijective 64-bit mixer with full avalanche.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A pure hash of `(seed, round, index)` usable as a per-element random draw.
#[inline]
pub fn hash3(seed: u64, round: u64, index: u64) -> u64 {
    // Chain two finalizer applications so all three inputs avalanche.
    splitmix64(splitmix64(seed ^ round.wrapping_mul(0xA076_1D64_78BD_642F)) ^ index)
}

/// A pure hash of `(seed, index)`.
#[inline]
pub fn hash2(seed: u64, index: u64) -> u64 {
    splitmix64(seed ^ splitmix64(index))
}

/// Uniform draw in `[0, bound)` from a 64-bit hash via the widening-multiply
/// trick (Lemire). `bound` must be nonzero.
#[inline]
pub fn bounded(hash: u64, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(hash) * u128::from(bound)) >> 64) as u64
}

/// Uniform `f64` in `[0, 1)` from a 64-bit hash (53 mantissa bits).
#[inline]
pub fn unit_f64(hash: u64) -> f64 {
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_bijective_on_samples() {
        // Distinct inputs must give distinct outputs (bijectivity spot-check).
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)));
        }
    }

    #[test]
    fn hash3_differs_across_each_argument() {
        let base = hash3(1, 2, 3);
        assert_ne!(base, hash3(2, 2, 3));
        assert_ne!(base, hash3(1, 3, 3));
        assert_ne!(base, hash3(1, 2, 4));
    }

    #[test]
    fn bounded_stays_in_range_and_covers_range() {
        let bound = 7u64;
        let mut hit = [false; 7];
        for i in 0..1_000 {
            let v = bounded(hash2(42, i), bound);
            assert!(v < bound);
            hit[v as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "all residues should appear");
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        for i in 0..1_000 {
            let x = unit_f64(hash2(7, i));
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let bound = 10u64;
        let n = 100_000u64;
        let mut counts = vec![0u64; bound as usize];
        for i in 0..n {
            counts[bounded(hash2(13, i), bound) as usize] += 1;
        }
        let expect = (n / bound) as f64;
        for &c in &counts {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket deviates {dev:.3} from uniform");
        }
    }
}
