//! Performance-regression sentinel over the checked-in `BENCH_*.json`
//! reports.
//!
//! Every report writer in this workspace (bench `Table::save_json`, the
//! engine's `BatchReport::save_json`) emits the same flat shape: a
//! `title` plus `records`, each record an ordered object of
//! string-valued cells whose *first* column names the row. `perfdiff`
//! compares a baseline and a candidate of that shape cell by cell and
//! flags regressions on the lower-is-better columns.
//!
//! Which columns are compared is decided by name, not position: a column
//! participates when its header mentions a cost unit (`ms`, `us`, or
//! `edges`) *and* the baseline cell parses as a plain number. That rule
//! skips derived ratios (`speedup` renders as `2.00x`), placeholder
//! dashes, and identity columns (`seed`, `workload`) without a
//! per-report schema.
//!
//! Columns carry an enforcement class mirroring the `sb_metrics` split
//! (DESIGN.md §12): `edges` columns are **Logical** — deterministic work
//! totals that must not regress on any host — while `ms`/`us` columns are
//! **Runtime** — they vary with the machine and scheduling, so their
//! regressions are reported but only enforced when the caller opts in
//! (`sbreak perfdiff --strict`).
//!
//! The noise model is two-sided: a candidate cell only counts as a
//! regression (or an improvement) when it moves by more than
//! `rel_tol` *relatively* and by more than `abs_floor` in absolute
//! units. The absolute floor keeps sub-millisecond jitter on tiny rows
//! from tripping the relative gate; see DESIGN.md §12.

use sb_metrics::{parse_json_value, JsonValue};

/// Two-sided noise gate for one cell comparison.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative slack: a cell must move by more than this fraction of
    /// the baseline value to count. 0.10 = 10%.
    pub rel: f64,
    /// Absolute floor, in the column's own units (ms, us, or edges): a
    /// cell must also move by more than this much.
    pub abs: f64,
}

impl Default for Tolerance {
    fn default() -> Tolerance {
        Tolerance {
            rel: 0.10,
            abs: 0.5,
        }
    }
}

/// Outcome of one cell comparison under the noise gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Candidate is lower than baseline by more than the tolerance.
    Improved,
    /// Movement within the noise gate (either direction).
    WithinNoise,
    /// Candidate is higher than baseline by more than the tolerance.
    Regressed,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::WithinNoise => "ok",
            Verdict::Regressed => "REGRESSED",
        }
    }
}

/// Enforcement class of a cost column, mirroring `sb_metrics::Class`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    /// Deterministic work totals (`edges` columns): identical on every
    /// host for a given build, so a regression is a real algorithmic
    /// change — enforced.
    Logical,
    /// Wall-clock and modeled-time columns (`ms`, `us`): legitimately
    /// vary with the machine, thread count, and scheduler — warn-only
    /// unless the caller opts into strict mode.
    Runtime,
}

/// One compared cell.
#[derive(Debug, Clone)]
pub struct CellDiff {
    /// Row name (the first column of the record).
    pub row: String,
    /// Column header.
    pub column: String,
    /// Enforcement class of the column.
    pub class: CostClass,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// `candidate / baseline` (`inf` when the baseline is 0).
    pub ratio: f64,
    /// Noise-gated verdict.
    pub verdict: Verdict,
}

/// Full comparison of two reports.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Baseline report title.
    pub title: String,
    /// Every compared cell, in baseline order.
    pub cells: Vec<CellDiff>,
    /// Rows/cells present in the baseline but absent (or non-numeric)
    /// in the candidate. A shrunk candidate is a failure, not a pass:
    /// a regression that removes its own measurement must not go green.
    pub missing: Vec<String>,
}

impl DiffReport {
    /// True when the candidate regressed anywhere: any cell over
    /// tolerance (either class), or any baseline measurement the
    /// candidate no longer reports.
    pub fn regressed(&self) -> bool {
        !self.missing.is_empty() || self.cells.iter().any(|c| c.verdict == Verdict::Regressed)
    }

    /// True when the enforced subset regressed: a missing measurement
    /// (a regression that removes its own measurement must not go green)
    /// or a Logical-class cell over tolerance. Runtime-class cells do not
    /// trip this — CI-runner timing noise is not an algorithmic change.
    pub fn enforced_regressed(&self) -> bool {
        !self.missing.is_empty()
            || self
                .cells
                .iter()
                .any(|c| c.verdict == Verdict::Regressed && c.class == CostClass::Logical)
    }

    /// Count of cells with the given verdict.
    pub fn count(&self, v: Verdict) -> usize {
        self.cells.iter().filter(|c| c.verdict == v).count()
    }

    /// Count of regressed cells of the given class.
    pub fn regressed_of(&self, class: CostClass) -> usize {
        self.cells
            .iter()
            .filter(|c| c.verdict == Verdict::Regressed && c.class == class)
            .count()
    }

    /// Human rendering: one line per compared cell plus a summary line.
    /// Runtime-class regressions are tagged `(runtime, warn-only)` so the
    /// log says why the gate did or did not trip.
    pub fn render(&self) -> String {
        let mut out = format!("perfdiff: {}\n", self.title);
        for c in &self.cells {
            let tag = match (c.verdict, c.class) {
                (Verdict::Regressed, CostClass::Runtime) => " (runtime, warn-only)",
                (Verdict::Regressed, CostClass::Logical) => " (logical, enforced)",
                _ => "",
            };
            out.push_str(&format!(
                "  {:<10} {} · {}: {} -> {} ({:+.1}%){tag}\n",
                c.verdict.label(),
                c.row,
                c.column,
                c.baseline,
                c.candidate,
                100.0 * (c.ratio - 1.0)
            ));
        }
        for m in &self.missing {
            out.push_str(&format!("  MISSING    {m}\n"));
        }
        out.push_str(&format!(
            "  {} compared: {} improved, {} within noise, {} regressed \
             ({} enforced logical, {} warn-only runtime), {} missing\n",
            self.cells.len(),
            self.count(Verdict::Improved),
            self.count(Verdict::WithinNoise),
            self.count(Verdict::Regressed),
            self.regressed_of(CostClass::Logical),
            self.regressed_of(CostClass::Runtime),
            self.missing.len()
        ));
        out
    }
}

/// The enforcement class of a lower-is-better cost column, or `None` when
/// the header names no cost unit. `edges` wins over `ms`/`us` if a header
/// somehow mentions both: misclassifying a logical total as runtime would
/// silently un-enforce it.
fn cost_class(header: &str) -> Option<CostClass> {
    let h = header.to_ascii_lowercase();
    let mut class = None;
    for w in h.split(|c: char| !c.is_ascii_alphanumeric()) {
        match w {
            "edges" => return Some(CostClass::Logical),
            "ms" | "us" => class = Some(CostClass::Runtime),
            _ => {}
        }
    }
    class
}

/// The cell as a plain number, or `None` for dashes / `2.00x` ratios.
fn numeric(v: &JsonValue) -> Option<f64> {
    let s = v.as_str()?;
    s.trim().parse::<f64>().ok().filter(|x| x.is_finite())
}

struct Report<'a> {
    title: String,
    records: Vec<&'a [(String, JsonValue)]>,
}

fn parse_report<'a>(doc: &'a JsonValue, which: &str) -> Result<Report<'a>, String> {
    let title = doc
        .get("title")
        .and_then(|t| t.as_str())
        .unwrap_or("(untitled)")
        .to_string();
    let records = doc
        .get("records")
        .and_then(|r| r.as_arr())
        .ok_or_else(|| format!("{which}: no 'records' array — not a BENCH-shaped report"))?;
    let records = records
        .iter()
        .map(|r| {
            r.as_obj()
                .filter(|m| !m.is_empty())
                .ok_or_else(|| format!("{which}: record is not a non-empty object"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Report { title, records })
}

/// Compare two `{"title", "records": [...]}` report texts.
///
/// The baseline drives the comparison: every numeric cost cell it holds
/// must still be present and within tolerance in the candidate. Extra
/// candidate rows or columns are ignored (adding measurements is not a
/// regression).
pub fn diff_reports(baseline: &str, candidate: &str, tol: Tolerance) -> Result<DiffReport, String> {
    let base_doc = parse_json_value(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cand_doc = parse_json_value(candidate).map_err(|e| format!("candidate: {e}"))?;
    let base = parse_report(&base_doc, "baseline")?;
    let cand = parse_report(&cand_doc, "candidate")?;

    let row_name = |rec: &[(String, JsonValue)]| -> String {
        rec[0].1.as_str().unwrap_or_default().to_string()
    };
    let mut cells = Vec::new();
    let mut missing = Vec::new();
    for rec in &base.records {
        let row = row_name(rec);
        let Some(crec) = cand.records.iter().find(|r| row_name(r) == row) else {
            missing.push(format!("row '{row}'"));
            continue;
        };
        for (col, val) in rec.iter() {
            let Some(class) = cost_class(col) else {
                continue;
            };
            let Some(b) = numeric(val) else { continue };
            let Some(c) = crec
                .iter()
                .find(|(k, _)| k == col)
                .and_then(|(_, v)| numeric(v))
            else {
                missing.push(format!("row '{row}' column '{col}'"));
                continue;
            };
            let delta = c - b;
            let verdict = if delta > b * tol.rel && delta > tol.abs {
                Verdict::Regressed
            } else if -delta > b * tol.rel && -delta > tol.abs {
                Verdict::Improved
            } else {
                Verdict::WithinNoise
            };
            cells.push(CellDiff {
                row: row.clone(),
                column: col.clone(),
                class,
                baseline: b,
                candidate: c,
                ratio: if b == 0.0 { f64::INFINITY } else { c / b },
                verdict,
            });
        }
    }
    Ok(DiffReport {
        title: base.title,
        cells,
        missing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: &[(&str, &[(&str, &str)])]) -> String {
        let recs: Vec<String> = rows
            .iter()
            .map(|(name, cells)| {
                let body: Vec<String> = std::iter::once(format!("\"workload\":\"{name}\""))
                    .chain(cells.iter().map(|(k, v)| format!("\"{k}\":\"{v}\"")))
                    .collect();
                format!("{{{}}}", body.join(","))
            })
            .collect();
        format!("{{\"title\":\"t\",\"records\":[{}]}}", recs.join(","))
    }

    #[test]
    fn improvement_is_not_a_regression() {
        let base = report(&[("a", &[("wall ms", "100")])]);
        let cand = report(&[("a", &[("wall ms", "60")])]);
        let d = diff_reports(&base, &cand, Tolerance::default()).unwrap();
        assert!(!d.regressed());
        assert_eq!(d.cells[0].verdict, Verdict::Improved);
    }

    #[test]
    fn within_noise_passes_both_gates() {
        // +8% relative: inside the 10% gate.
        let base = report(&[("a", &[("wall ms", "100")])]);
        let cand = report(&[("a", &[("wall ms", "108")])]);
        let d = diff_reports(&base, &cand, Tolerance::default()).unwrap();
        assert_eq!(d.cells[0].verdict, Verdict::WithinNoise);
        // +50% relative but only +0.3 absolute: under the 0.5 floor.
        let base = report(&[("a", &[("wall ms", "0.6")])]);
        let cand = report(&[("a", &[("wall ms", "0.9")])]);
        let d = diff_reports(&base, &cand, Tolerance::default()).unwrap();
        assert_eq!(d.cells[0].verdict, Verdict::WithinNoise);
        assert!(!d.regressed());
    }

    #[test]
    fn regression_over_both_gates_fails() {
        let base = report(&[("a", &[("wall ms", "100"), ("speedup", "2.00x")])]);
        let cand = report(&[("a", &[("wall ms", "120"), ("speedup", "1.50x")])]);
        let d = diff_reports(&base, &cand, Tolerance::default()).unwrap();
        assert!(d.regressed());
        assert_eq!(d.cells.len(), 1, "speedup (non-numeric ratio) is skipped");
        assert_eq!(d.cells[0].verdict, Verdict::Regressed);
        assert!(d.render().contains("REGRESSED"));
    }

    #[test]
    fn runtime_regressions_are_warn_only_logical_are_enforced() {
        // ms over tolerance: reported, but not enforced.
        let base = report(&[("a", &[("wall ms", "100"), ("dense edges", "1000")])]);
        let cand = report(&[("a", &[("wall ms", "200"), ("dense edges", "1000")])]);
        let d = diff_reports(&base, &cand, Tolerance::default()).unwrap();
        assert!(d.regressed());
        assert!(!d.enforced_regressed(), "ms is runtime class: warn-only");
        assert_eq!(d.regressed_of(CostClass::Runtime), 1);
        assert_eq!(d.regressed_of(CostClass::Logical), 0);
        assert!(d.render().contains("(runtime, warn-only)"));

        // edges over tolerance: enforced — logical work totals are
        // deterministic, so this is a real algorithmic regression.
        let cand = report(&[("a", &[("wall ms", "100"), ("dense edges", "2000")])]);
        let d = diff_reports(&base, &cand, Tolerance::default()).unwrap();
        assert!(d.enforced_regressed());
        assert_eq!(d.regressed_of(CostClass::Logical), 1);
        assert!(d.render().contains("(logical, enforced)"));
    }

    #[test]
    fn cost_class_by_header_name() {
        assert_eq!(cost_class("wall ms"), Some(CostClass::Runtime));
        assert_eq!(cost_class("launch us"), Some(CostClass::Runtime));
        assert_eq!(cost_class("dense edges"), Some(CostClass::Logical));
        // A header naming both units classifies as logical (enforced).
        assert_eq!(cost_class("edges per ms"), Some(CostClass::Logical));
        assert_eq!(cost_class("speedup"), None);
        assert_eq!(cost_class("workload"), None);
    }

    #[test]
    fn missing_row_or_column_is_a_failure() {
        let base = report(&[
            ("a", &[("wall ms", "10"), ("scan edges", "500")]),
            ("b", &[("wall ms", "20")]),
        ]);
        let cand = report(&[("a", &[("wall ms", "10")])]);
        let d = diff_reports(&base, &cand, Tolerance::default()).unwrap();
        assert!(d.regressed());
        assert!(d.enforced_regressed(), "missing measurements are enforced");
        assert_eq!(d.missing, vec!["row 'a' column 'scan edges'", "row 'b'"]);
    }

    #[test]
    fn non_cost_columns_and_dashes_are_skipped() {
        let base = report(&[(
            "a",
            &[("seed", "42"), ("wall ms", "-"), ("dense edges", "100")],
        )]);
        let cand = report(&[(
            "a",
            &[("seed", "7"), ("wall ms", "5"), ("dense edges", "100")],
        )]);
        let d = diff_reports(&base, &cand, Tolerance::default()).unwrap();
        assert_eq!(d.cells.len(), 1, "only the numeric cost cell is compared");
        assert_eq!(d.cells[0].column, "dense edges");
        assert!(!d.regressed());
    }

    #[test]
    fn checked_in_shape_self_compares_clean() {
        // A report diffed against itself is always green.
        let base = report(&[
            (
                "g / GM",
                &[
                    ("dense ms", "380"),
                    ("compact ms", "211"),
                    ("edge reduction", "15.07x"),
                ],
            ),
            (
                "g / Luby",
                &[
                    ("dense ms", "20.4"),
                    ("compact ms", "12.3"),
                    ("edge reduction", "1.70x"),
                ],
            ),
        ]);
        let d = diff_reports(&base, &base, Tolerance::default()).unwrap();
        assert!(!d.regressed());
        assert_eq!(d.count(Verdict::WithinNoise), d.cells.len());
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(diff_reports("nonsense", "{}", Tolerance::default()).is_err());
        assert!(diff_reports("{\"title\":\"t\"}", "{}", Tolerance::default()).is_err());
    }
}
