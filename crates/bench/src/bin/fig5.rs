//! Reproduce Figure 5: MIS, LubyMIS vs decomposition composites
//! (`--arch cpu` for Figure 5a, `--arch gpu` for 5b).

use sb_bench::harness::{load_suite, BenchConfig};
use sb_bench::runners::mis_figure;
use sb_bench::schemas;

fn main() {
    let cfg = BenchConfig::from_env();
    let suite = load_suite(&cfg);
    let (t, avg) = mis_figure(
        &suite,
        cfg.arch,
        cfg.seed,
        cfg.reps,
        cfg.trace_dir.as_deref(),
        cfg.frontier,
    );
    t.emit(&schemas::fig5(cfg.arch).name);
    if let Some(a) = avg {
        println!(
            "\naverage MIS-Deg2 speedup (GPU avg excludes c-73, lp1): {a:.2}x \
             (paper: 3.39x CPU / 2.16x GPU)"
        );
    }
}
