//! Reproduce Figure 4: coloring, baseline vs decomposition composites
//! (`--arch cpu` for Figure 4a, `--arch gpu` for 4b).

use sb_bench::harness::{load_suite, BenchConfig};
use sb_bench::runners::coloring_figure;
use sb_bench::schemas;
use sb_core::common::Arch;

fn main() {
    let cfg = BenchConfig::from_env();
    let suite = load_suite(&cfg);
    let (t, avg) = coloring_figure(
        &suite,
        cfg.arch,
        cfg.seed,
        cfg.reps,
        cfg.trace_dir.as_deref(),
        cfg.frontier,
    );
    t.emit(&schemas::fig4(cfg.arch).name);
    if let Some(a) = avg {
        let paper = match cfg.arch {
            Arch::Cpu => "paper: COLOR-Deg2 1.27x",
            Arch::GpuSim => "paper: COLOR-Rand ~1x (no noticeable speedup)",
        };
        println!("\naverage winner speedup: {a:.2}x ({paper})");
    }
}
