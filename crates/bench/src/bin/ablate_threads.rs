//! Strong-scaling harness: wall-clock of the CPU baselines and their best
//! composites across rayon thread-pool sizes.
//!
//! The paper runs 80 threads on a dual E5-2650; this binary reproduces that
//! axis on whatever host it runs on (`--threads 1,2,4,…` — defaults to
//! powers of two up to the available parallelism). On a single-core host
//! every column is the same; the harness exists so the experiment transfers
//! to a multicore machine unchanged.

use sb_bench::harness::{load_suite, time_min, BenchConfig};
use sb_bench::report::{fmt_ms, Table};
use sb_core::common::Arch;
use sb_core::matching::{maximal_matching, MmAlgorithm};
use sb_core::mis::{maximal_independent_set, MisAlgorithm};
use sb_core::verify::{check_maximal_independent_set, check_maximal_matching};

fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut ts = vec![1usize];
    while ts.last().unwrap() * 2 <= max {
        ts.push(ts.last().unwrap() * 2);
    }
    ts
}

fn main() {
    let mut cfg = BenchConfig::from_env();
    if cfg.filter.is_empty() {
        cfg.filter = "webbase".into(); // one representative graph by default
    }
    let suite = load_suite(&cfg);
    let threads = thread_counts();
    let headers: Vec<String> = std::iter::once("workload".to_string())
        .chain(threads.iter().map(|t| format!("{t} thr (ms)")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("Strong scaling — wall ms per thread count", &header_refs);

    for (sp, g) in &suite.graphs {
        let workloads: Vec<(String, Box<dyn Fn() + Sync>)> = vec![
            (
                format!("{} / GM", sp.name),
                Box::new(|| {
                    let r = maximal_matching(g, MmAlgorithm::Baseline, Arch::Cpu, cfg.seed);
                    check_maximal_matching(g, &r.mate).unwrap();
                }),
            ),
            (
                format!("{} / MM-Rand(10)", sp.name),
                Box::new(|| {
                    let r = maximal_matching(
                        g,
                        MmAlgorithm::Rand { partitions: 10 },
                        Arch::Cpu,
                        cfg.seed,
                    );
                    check_maximal_matching(g, &r.mate).unwrap();
                }),
            ),
            (
                format!("{} / LubyMIS", sp.name),
                Box::new(|| {
                    let r = maximal_independent_set(g, MisAlgorithm::Baseline, Arch::Cpu, cfg.seed);
                    check_maximal_independent_set(g, &r.in_set).unwrap();
                }),
            ),
            (
                format!("{} / MIS-Deg2", sp.name),
                Box::new(|| {
                    let r = maximal_independent_set(
                        g,
                        MisAlgorithm::Degk { k: 2 },
                        Arch::Cpu,
                        cfg.seed,
                    );
                    check_maximal_independent_set(g, &r.in_set).unwrap();
                }),
            ),
        ];
        for (label, work) in workloads {
            let mut row = vec![label];
            for &nt in &threads {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(nt)
                    .build()
                    .expect("thread pool");
                let (ms, _) = pool.install(|| time_min(cfg.reps, &work));
                row.push(fmt_ms(ms));
            }
            t.row(row);
        }
    }
    t.emit("ablate_threads");
    println!(
        "\nnote: this host reports {} available thread(s); the paper used 80.",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );
}
