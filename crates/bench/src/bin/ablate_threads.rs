//! Strong-scaling harness: wall-clock of the CPU baselines and their best
//! composites across real thread-pool sizes, plus a skewed-workload A/B of
//! the pool's claim strategies (work-stealing deques vs the global claim
//! counter).
//!
//! The paper runs 80 threads on a dual E5-2650; this binary reproduces that
//! axis on whatever host it runs on (`--threads 1,2,4,…` — defaults to
//! powers of two up to the available parallelism). Since the rayon layer
//! gained a real execution engine, each column genuinely runs the solver on
//! that many threads.
//!
//! On a host without real parallelism every thread count runs on one core,
//! so a "speedup" ratio would measure pool overhead, not scaling: the
//! binary refuses to label it as such — every speedup cell is annotated
//! `(host-limited)` and the saved JSON carries a top-level
//! `host_limited: true` so downstream readers can tell the regimes apart.
//! When the host *does* have parallelism, the skewed-workload rows are
//! asserted: stealing must not lose to the global counter on a workload
//! whose static partitions are badly imbalanced.
//!
//! Besides the standard `results/ablate_threads.{csv,json}` pair, the table
//! is saved as `results/BENCH_threads.json` with per-workload speedup of
//! the widest pool over 1 thread.

use sb_bench::harness::{load_suite, thread_counts, time_min, BenchConfig};
use sb_bench::report::{fmt_ms, fmt_speedup};
use sb_bench::schemas;
use sb_core::common::Arch;
use sb_core::matching::{maximal_matching, MmAlgorithm};
use sb_core::mis::{maximal_independent_set, MisAlgorithm};
use sb_core::verify::{check_maximal_independent_set, check_maximal_matching};
use sb_par::with_threads;
use std::path::Path;

/// Synthetic skewed workload: per-item spin cost follows a heavy tail, so
/// the pool's static piece partitions are badly imbalanced and rebalancing
/// (or its absence) dominates the wall-clock.
fn skewed_spin(items: usize) -> u64 {
    use rayon::prelude::*;
    (0..items)
        .into_par_iter()
        .map(|i| {
            // Items divisible by 4096 are ~2000x heavier than the rest:
            // a few hot pieces, many near-empty ones.
            let spins = if i % 4096 == 0 { 200_000u64 } else { 100 };
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc & 1
        })
        .sum()
}

fn main() {
    let mut cfg = BenchConfig::from_env();
    if cfg.filter.is_empty() {
        cfg.filter = "webbase".into(); // one representative graph by default
    }
    let suite = load_suite(&cfg);
    let threads = thread_counts(&cfg);
    let host = std::thread::available_parallelism().map_or(1, |p| p.get());
    let host_limited = host <= 1;
    let schema = schemas::ablate_threads(&threads, host);
    let mut t = schema.table();

    for (sp, g) in &suite.graphs {
        let workloads: Vec<(String, Box<dyn Fn() + Sync>)> = vec![
            (
                format!("{} / GM", sp.name),
                Box::new(|| {
                    let r = maximal_matching(g, MmAlgorithm::Baseline, Arch::Cpu, cfg.seed);
                    check_maximal_matching(g, &r.mate).unwrap();
                }),
            ),
            (
                format!("{} / MM-Rand(10)", sp.name),
                Box::new(|| {
                    let r = maximal_matching(
                        g,
                        MmAlgorithm::Rand { partitions: 10 },
                        Arch::Cpu,
                        cfg.seed,
                    );
                    check_maximal_matching(g, &r.mate).unwrap();
                }),
            ),
            (
                format!("{} / LubyMIS", sp.name),
                Box::new(|| {
                    let r = maximal_independent_set(g, MisAlgorithm::Baseline, Arch::Cpu, cfg.seed);
                    check_maximal_independent_set(g, &r.in_set).unwrap();
                }),
            ),
            (
                format!("{} / MIS-Deg2", sp.name),
                Box::new(|| {
                    let r = maximal_independent_set(
                        g,
                        MisAlgorithm::Degk { k: 2 },
                        Arch::Cpu,
                        cfg.seed,
                    );
                    check_maximal_independent_set(g, &r.in_set).unwrap();
                }),
            ),
        ];
        for (label, work) in workloads {
            let mut row = vec![label];
            let mut ms_at: Vec<f64> = Vec::with_capacity(threads.len());
            for &nt in &threads {
                let (ms, _) = with_threads(nt, || time_min(cfg.reps, &work));
                ms_at.push(ms);
                row.push(fmt_ms(ms));
            }
            let speedup = match (ms_at.first(), ms_at.last()) {
                (Some(&t1), Some(&tn)) if tn > 0.0 => fmt_speedup(t1 / tn, host_limited),
                _ => "-".to_string(),
            };
            row.push(speedup);
            t.row(row);
        }
    }

    // Skewed-workload strategy A/B: same synthetic heavy-tail map under
    // each claim discipline. The stealing scheduler's whole reason to
    // exist is this shape — a few hot pieces pinning their static owners
    // while everyone else idles (global counter) or rebalances (stealing).
    use rayon::ScheduleStrategy;
    let before = rayon::schedule_strategy();
    let mut widest_ms: Vec<(ScheduleStrategy, f64)> = Vec::new();
    for (name, strat) in [
        ("stealing", ScheduleStrategy::Stealing),
        ("counter", ScheduleStrategy::GlobalCounter),
    ] {
        rayon::set_schedule_strategy(strat);
        let mut row = vec![format!("skewed-spin / {name}")];
        let mut ms_at: Vec<f64> = Vec::with_capacity(threads.len());
        for &nt in &threads {
            let (ms, _) = with_threads(nt, || time_min(cfg.reps, || skewed_spin(1 << 18)));
            ms_at.push(ms);
            row.push(fmt_ms(ms));
        }
        let speedup = match (ms_at.first(), ms_at.last()) {
            (Some(&t1), Some(&tn)) if tn > 0.0 => fmt_speedup(t1 / tn, host_limited),
            _ => "-".to_string(),
        };
        row.push(speedup);
        t.row(row);
        widest_ms.push((strat, *ms_at.last().unwrap()));
    }
    rayon::set_schedule_strategy(before);

    t.emit(&schema.name);
    let extra = [("host_limited", host_limited.to_string())];
    if let Err(e) = t.save_json_extra(Path::new("results"), "BENCH_threads", &extra) {
        eprintln!("warning: could not save results/BENCH_threads.json: {e}");
    } else {
        println!("[saved results/BENCH_threads.json]");
    }

    if host_limited {
        println!(
            "\nnote: this host reports {host} available thread(s); every column ran \
             on one core, so no row is labeled a genuine speedup (host_limited)."
        );
    } else {
        println!("\nnote: this host reports {host} available thread(s); the paper used 80.");
        let steal = widest_ms
            .iter()
            .find(|(s, _)| *s == ScheduleStrategy::Stealing)
            .map(|&(_, ms)| ms)
            .unwrap();
        let counter = widest_ms
            .iter()
            .find(|(s, _)| *s == ScheduleStrategy::GlobalCounter)
            .map(|&(_, ms)| ms)
            .unwrap();
        if steal > counter {
            eprintln!(
                "FAIL: skewed-spin at {} threads: stealing {steal:.3} ms vs global \
                 counter {counter:.3} ms — stealing must not lose on skewed work",
                threads.last().unwrap()
            );
            std::process::exit(1);
        }
        println!(
            "skewed-spin at {} threads: stealing {steal:.3} ms <= counter {counter:.3} ms — OK",
            threads.last().unwrap()
        );
    }
}
