//! Strong-scaling harness: wall-clock of the CPU baselines and their best
//! composites across real thread-pool sizes.
//!
//! The paper runs 80 threads on a dual E5-2650; this binary reproduces that
//! axis on whatever host it runs on (`--threads 1,2,4,…` — defaults to
//! powers of two up to the available parallelism). Since the rayon layer
//! gained a real execution engine, each column genuinely runs the solver on
//! that many threads; on a single-core host the columns still coincide, and
//! the host's parallelism is recorded in the saved table so readers can
//! tell which regime produced the numbers.
//!
//! Besides the standard `results/ablate_threads.{csv,json}` pair, the table
//! is saved as `results/BENCH_threads.json` with per-workload speedup of
//! the widest pool over 1 thread.

use sb_bench::harness::{load_suite, thread_counts, time_min, BenchConfig};
use sb_bench::report::{fmt_ms, fmt_x};
use sb_bench::schemas;
use sb_core::common::Arch;
use sb_core::matching::{maximal_matching, MmAlgorithm};
use sb_core::mis::{maximal_independent_set, MisAlgorithm};
use sb_core::verify::{check_maximal_independent_set, check_maximal_matching};
use sb_par::with_threads;
use std::path::Path;

fn main() {
    let mut cfg = BenchConfig::from_env();
    if cfg.filter.is_empty() {
        cfg.filter = "webbase".into(); // one representative graph by default
    }
    let suite = load_suite(&cfg);
    let threads = thread_counts(&cfg);
    let host = std::thread::available_parallelism().map_or(1, |p| p.get());
    let schema = schemas::ablate_threads(&threads, host);
    let mut t = schema.table();

    for (sp, g) in &suite.graphs {
        let workloads: Vec<(String, Box<dyn Fn() + Sync>)> = vec![
            (
                format!("{} / GM", sp.name),
                Box::new(|| {
                    let r = maximal_matching(g, MmAlgorithm::Baseline, Arch::Cpu, cfg.seed);
                    check_maximal_matching(g, &r.mate).unwrap();
                }),
            ),
            (
                format!("{} / MM-Rand(10)", sp.name),
                Box::new(|| {
                    let r = maximal_matching(
                        g,
                        MmAlgorithm::Rand { partitions: 10 },
                        Arch::Cpu,
                        cfg.seed,
                    );
                    check_maximal_matching(g, &r.mate).unwrap();
                }),
            ),
            (
                format!("{} / LubyMIS", sp.name),
                Box::new(|| {
                    let r = maximal_independent_set(g, MisAlgorithm::Baseline, Arch::Cpu, cfg.seed);
                    check_maximal_independent_set(g, &r.in_set).unwrap();
                }),
            ),
            (
                format!("{} / MIS-Deg2", sp.name),
                Box::new(|| {
                    let r = maximal_independent_set(
                        g,
                        MisAlgorithm::Degk { k: 2 },
                        Arch::Cpu,
                        cfg.seed,
                    );
                    check_maximal_independent_set(g, &r.in_set).unwrap();
                }),
            ),
        ];
        for (label, work) in workloads {
            let mut row = vec![label];
            let mut ms_at: Vec<f64> = Vec::with_capacity(threads.len());
            for &nt in &threads {
                let (ms, _) = with_threads(nt, || time_min(cfg.reps, &work));
                ms_at.push(ms);
                row.push(fmt_ms(ms));
            }
            let speedup = match (ms_at.first(), ms_at.last()) {
                (Some(&t1), Some(&tn)) if tn > 0.0 => fmt_x(t1 / tn),
                _ => "-".to_string(),
            };
            row.push(speedup);
            t.row(row);
        }
    }
    t.emit(&schema.name);
    if let Err(e) = t.save_json(Path::new("results"), "BENCH_threads") {
        eprintln!("warning: could not save results/BENCH_threads.json: {e}");
    } else {
        println!("[saved results/BENCH_threads.json]");
    }
    println!("\nnote: this host reports {host} available thread(s); the paper used 80.");
}
