//! Out-of-core ablation: every Table I suite graph is serialized to the
//! `.sbg` on-disk CSR format, mapped back read-only, and each solver
//! workload (GM matching, LubyMIS, JP coloring) runs on both the heap
//! CSR and the mapped one with the same seed and frontier mode. The run
//! **asserts**:
//!
//! * the mapped graph compares equal to the heap graph (same offsets,
//!   adjacency, and edge ids — the format round trip is lossless);
//! * every solver output is byte-identical between the two backings
//!   (the mapped arrays are a transparent `Slab` behind the accessor
//!   API, so no solver may observe the difference);
//! * the scanned-edge totals coincide (same logical work).
//!
//! Exits non-zero on any violation, so CI can run this as a smoke leg.
//! Reports wall-clock per backing plus what each representation charges
//! the allocator: a mapped graph's resident footprint is the struct
//! header only — the array bytes stay in the kernel page cache, which
//! is the point of the format at 10–100× scale (`--scale 10` and up).
//!
//! The table is saved as `results/BENCH_outofcore.json`.

use sb_bench::harness::{load_suite, time_min, BenchConfig};
use sb_bench::report::fmt_ms;
use sb_bench::schemas;
use sb_core::coloring::{vertex_coloring_opts, ColorAlgorithm};
use sb_core::common::{Arch, SolveOpts};
use sb_core::matching::{maximal_matching_opts, MmAlgorithm};
use sb_core::mis::{maximal_independent_set_opts, MisAlgorithm};
use sb_graph::csr::Graph;
use sb_graph::sbg::{map_sbg, write_sbg};
use std::path::Path;

fn main() {
    let cfg = BenchConfig::from_env();
    let suite = load_suite(&cfg);
    let schema = schemas::ablate_outofcore();
    let mut t = schema.table();

    let dir = std::env::temp_dir().join(format!("sbreak-outofcore-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("cannot create {dir:?}: {e}"));

    let mut failures = 0usize;
    for (sp, g) in &suite.graphs {
        let path = dir.join(format!("{}.sbg", sp.name.replace('/', "_")));
        let file_bytes = write_sbg(g, None, &path)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        let mapped =
            map_sbg(&path).unwrap_or_else(|e| panic!("cannot map {}: {e}", path.display()));
        if mapped != **g {
            eprintln!("FAIL: {}: mapped graph differs from heap CSR", sp.name);
            failures += 1;
            continue;
        }

        let opts = SolveOpts::with_mode(cfg.frontier);
        type Run<'a> = Box<dyn Fn(&Graph) -> (f64, u64, Vec<u8>) + 'a>;
        let workloads: Vec<(&str, Run)> = vec![
            (
                "GM",
                Box::new(|g: &Graph| {
                    let (ms, r) = time_min(cfg.reps, || {
                        maximal_matching_opts(g, MmAlgorithm::Baseline, Arch::Cpu, cfg.seed, &opts)
                    });
                    let bytes = r.mate.iter().flat_map(|m| m.to_le_bytes()).collect();
                    (ms, r.stats.counters.edges_scanned, bytes)
                }),
            ),
            (
                "LubyMIS",
                Box::new(|g: &Graph| {
                    let (ms, r) = time_min(cfg.reps, || {
                        maximal_independent_set_opts(
                            g,
                            MisAlgorithm::Baseline,
                            Arch::Cpu,
                            cfg.seed,
                            &opts,
                        )
                    });
                    let bytes = r.in_set.iter().map(|&b| b as u8).collect();
                    (ms, r.stats.counters.edges_scanned, bytes)
                }),
            ),
            (
                "JP-color",
                Box::new(|g: &Graph| {
                    let (ms, r) = time_min(cfg.reps, || {
                        vertex_coloring_opts(
                            g,
                            ColorAlgorithm::Baseline,
                            Arch::Cpu,
                            cfg.seed,
                            &opts,
                        )
                    });
                    let bytes = r.color.iter().flat_map(|c| c.to_le_bytes()).collect();
                    (ms, r.stats.counters.edges_scanned, bytes)
                }),
            ),
        ];
        for (algo, run) in workloads {
            let (heap_ms, heap_edges, heap_out) = run(g);
            let (mapped_ms, mapped_edges, mapped_out) = run(&mapped);
            let identical = heap_out == mapped_out && heap_edges == mapped_edges;
            if !identical {
                eprintln!(
                    "FAIL: {} / {algo}: mapped output diverged from heap \
                     ({heap_edges} vs {mapped_edges} edges scanned)",
                    sp.name
                );
                failures += 1;
            }
            t.row(vec![
                format!("{} / {algo}", sp.name),
                fmt_ms(heap_ms),
                fmt_ms(mapped_ms),
                heap_edges.to_string(),
                mapped_edges.to_string(),
                format!("{:.1}", file_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.1}", g.resident_bytes() as f64 / (1024.0 * 1024.0)),
                mapped.resident_bytes().to_string(),
                if identical { "yes" } else { "NO" }.to_string(),
            ]);
        }
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_dir_all(&dir).ok();

    t.emit(&schema.name);
    if let Err(e) = t.save_json(Path::new("results"), "BENCH_outofcore") {
        eprintln!("warning: could not save results/BENCH_outofcore.json: {e}");
    } else {
        println!("[saved results/BENCH_outofcore.json]");
    }
    if failures > 0 {
        eprintln!("{failures} out-of-core assertion(s) failed");
        std::process::exit(1);
    }
    println!("\nmapped == heap graphs, byte-identical solver outputs — OK");
}
