//! Reproduce Figure 2: decomposition time per technique per graph.

use sb_bench::harness::{load_suite, BenchConfig};
use sb_bench::runners::decomposition_figure;

fn main() {
    let cfg = BenchConfig::from_env();
    let suite = load_suite(&cfg);
    decomposition_figure(&suite, cfg.seed, cfg.reps).emit("fig2");
}
