//! Reproduce Figure 2: decomposition time per technique per graph.
//!
//! The suite loads through an `sb-engine` graph cache, so the ingestion
//! this figure times against is the same one a `sbreak batch` run on the
//! same `(graph, scale, seed)` keys would reuse.

use sb_bench::harness::{load_suite_with, BenchConfig};
use sb_bench::runners::decomposition_figure;
use sb_bench::schemas;
use sb_engine::{Engine, EngineConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    let mut engine = Engine::new(EngineConfig::default());
    let suite = load_suite_with(&cfg, &mut engine);
    decomposition_figure(&suite, cfg.seed, cfg.reps).emit(&schemas::fig2().name);
    let gs = engine.graph_cache_stats();
    println!(
        "[engine graph cache: {} insert(s), {} hit(s)]",
        gs.inserts, gs.hits
    );
}
