//! Reproduce Figure 3: maximal matching, baseline vs decomposition
//! composites (`--arch cpu` for Figure 3a, `--arch gpu` for 3b).

use sb_bench::harness::{load_suite, BenchConfig};
use sb_bench::runners::matching_figure;
use sb_bench::schemas;

fn main() {
    let cfg = BenchConfig::from_env();
    let suite = load_suite(&cfg);
    let (t, avg) = matching_figure(
        &suite,
        cfg.arch,
        cfg.seed,
        cfg.reps,
        cfg.trace_dir.as_deref(),
        cfg.frontier,
    );
    t.emit(&schemas::fig3(cfg.arch).name);
    if let Some(a) = avg {
        println!(
            "\naverage MM-Rand speedup (excluding rgg instances): {a:.2}x \
             (paper: 3.5x CPU / 2.53x GPU)"
        );
    }
}
