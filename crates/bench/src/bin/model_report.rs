//! Cost-model transparency: the raw counter breakdown behind every modeled
//! GPU number in Figures 3–5.
//!
//! For one graph (default: `kron-g500-logn20`), print each algorithm's
//! kernel launches, streamed items, gathered reads, the three cost-model
//! terms, and the resulting modeled K40c milliseconds — so a reader can
//! audit exactly where a modeled time comes from and re-derive any figure
//! cell by hand.

use sb_bench::harness::{load_suite, BenchConfig};
use sb_bench::report::Table;
use sb_bench::schemas;
use sb_core::coloring::{vertex_coloring, ColorAlgorithm};
use sb_core::common::Arch;
use sb_core::matching::{maximal_matching, MmAlgorithm};
use sb_core::mis::{maximal_independent_set, MisAlgorithm};
use sb_par::counters::{CounterSnapshot, GpuCostModel};

fn row(label: &str, s: CounterSnapshot, t: &mut Table) {
    let m = GpuCostModel::K40C;
    let launch_ms = s.kernel_launches as f64 * m.per_launch_us * 1e-3;
    let stream_ms = s.work_items as f64 * m.per_stream_ns * 1e-6;
    let gather_ms = s.edges_scanned as f64 * m.per_gather_ns * 1e-6;
    t.row(vec![
        label.into(),
        s.rounds.to_string(),
        s.kernel_launches.to_string(),
        s.work_items.to_string(),
        s.edges_scanned.to_string(),
        format!("{launch_ms:.3}"),
        format!("{stream_ms:.3}"),
        format!("{gather_ms:.3}"),
        format!("{:.3}", launch_ms + stream_ms + gather_ms),
    ]);
}

fn main() {
    let mut cfg = BenchConfig::from_env();
    if cfg.filter.is_empty() {
        cfg.filter = "kron-g500-logn20".into();
    }
    let suite = load_suite(&cfg);
    let m = GpuCostModel::K40C;
    println!(
        "cost model (K40c): {:.1} µs/launch, {:.3} ns/streamed item, {:.2} ns/gathered read",
        m.per_launch_us, m.per_stream_ns, m.per_gather_ns
    );

    for (sp, g) in &suite.graphs {
        let schema = schemas::model_report(sp.name, g.num_vertices(), g.num_edges());
        let mut t = schema.table();
        let arch = Arch::GpuSim;
        row(
            "LMAX (baseline)",
            maximal_matching(g, MmAlgorithm::Baseline, arch, cfg.seed)
                .stats
                .counters,
            &mut t,
        );
        row(
            "MM-Rand(100)",
            maximal_matching(g, MmAlgorithm::Rand { partitions: 100 }, arch, cfg.seed)
                .stats
                .counters,
            &mut t,
        );
        row(
            "EB (baseline)",
            vertex_coloring(g, ColorAlgorithm::Baseline, arch, cfg.seed)
                .stats
                .counters,
            &mut t,
        );
        row(
            "COLOR-Deg2",
            vertex_coloring(g, ColorAlgorithm::Degk { k: 2 }, arch, cfg.seed)
                .stats
                .counters,
            &mut t,
        );
        row(
            "LubyMIS (baseline)",
            maximal_independent_set(g, MisAlgorithm::Baseline, arch, cfg.seed)
                .stats
                .counters,
            &mut t,
        );
        row(
            "MIS-Deg2",
            maximal_independent_set(g, MisAlgorithm::Degk { k: 2 }, arch, cfg.seed)
                .stats
                .counters,
            &mut t,
        );
        t.emit(&schema.name);
    }
}
