//! Reproduce the §IV-D color-overhead discussion: how many extra colors
//! each decomposition-based colorer uses relative to the baseline.
//!
//! Paper values: COLOR-Rand +3.9% CPU / +3.4% GPU; COLOR-Degk +3% CPU /
//! +4.6% GPU; COLOR-Bridge +0% CPU / +4.5% GPU.

use sb_bench::harness::{color_rand_partitions, load_suite, BenchConfig};
use sb_bench::report::mean;
use sb_bench::schemas;
use sb_core::coloring::{vertex_coloring, ColorAlgorithm};
use sb_core::common::Arch;
use sb_core::verify::{check_coloring, color_count};

fn main() {
    let cfg = BenchConfig::from_env();
    let suite = load_suite(&cfg);
    let schema = schemas::color_overhead();
    let mut t = schema.table();
    for arch in [Arch::Cpu, Arch::GpuSim] {
        let mut over = [Vec::new(), Vec::new(), Vec::new()];
        let mut delta = [Vec::new(), Vec::new(), Vec::new()];
        for (_, g) in &suite.graphs {
            let base = vertex_coloring(g, ColorAlgorithm::Baseline, arch, cfg.seed);
            check_coloring(g, &base.color).unwrap();
            let base_colors = color_count(&base.color) as f64;
            let algos = [
                ColorAlgorithm::Bridge,
                ColorAlgorithm::Rand {
                    partitions: color_rand_partitions(arch),
                },
                ColorAlgorithm::Degk { k: 2 },
            ];
            for (i, algo) in algos.into_iter().enumerate() {
                let run = vertex_coloring(g, algo, arch, cfg.seed);
                check_coloring(g, &run.color).unwrap();
                let c = color_count(&run.color) as f64;
                over[i].push(100.0 * (c / base_colors - 1.0));
                delta[i].push(c - base_colors);
            }
        }
        let paper = match arch {
            Arch::Cpu => "+0% / +3.9% / +3%",
            Arch::GpuSim => "+4.5% / +3.4% / +4.6%",
        };
        let cell = |i: usize| {
            format!(
                "{:+.1}% / {:+.1}",
                mean(&over[i]).unwrap_or(0.0),
                mean(&delta[i]).unwrap_or(0.0)
            )
        };
        t.row(vec![
            arch.to_string(),
            cell(0),
            cell(1),
            cell(2),
            paper.into(),
        ]);
    }
    t.emit(&schema.name);
    println!(
        "
note: the stand-in graphs use far fewer colors than the paper's (small
         windows over small palettes), so a +2–3 color absolute overhead reads as a
         much larger percentage than the paper's +3–5% over ~100-color palettes."
    );
}
