//! Reproduce Table II: dataset statistics, measured vs paper.

use sb_bench::harness::{load_suite, BenchConfig};
use sb_bench::runners::table2;
use sb_bench::schemas;

fn main() {
    let cfg = BenchConfig::from_env();
    let suite = load_suite(&cfg);
    table2(&suite).emit(&schemas::table2().name);
}
