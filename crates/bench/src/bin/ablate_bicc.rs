//! Extension ablation: BRIDGE vs BICC composites.
//!
//! Hochbaum's original proposal \[16\] decomposes at articulation vertices
//! (biconnected blocks) — strictly finer than the paper's BRIDGE
//! (2-edge-connected components). This binary asks the question the paper
//! leaves open: does the finer decomposition pay for itself? For each
//! problem, compare the architecture baseline against the Bridge and Bicc
//! composites.

use sb_bench::harness::{load_suite, time_min, BenchConfig};
use sb_bench::report::fmt_ms;
use sb_bench::schemas;
use sb_core::coloring::{vertex_coloring, ColorAlgorithm};
use sb_core::matching::{maximal_matching, MmAlgorithm};
use sb_core::mis::{maximal_independent_set, MisAlgorithm};
use sb_core::verify::{check_coloring, check_maximal_independent_set, check_maximal_matching};

fn main() {
    let cfg = BenchConfig::from_env();
    let suite = load_suite(&cfg);
    let arch = cfg.arch;
    let schema = schemas::ablate_bicc(arch);
    let mut t = schema.table();
    for (sp, g) in &suite.graphs {
        let mm = |algo| {
            let (ms, run) = time_min(cfg.reps, || maximal_matching(g, algo, arch, cfg.seed));
            check_maximal_matching(g, &run.mate).unwrap();
            ms
        };
        let col = |algo| {
            let (ms, run) = time_min(cfg.reps, || vertex_coloring(g, algo, arch, cfg.seed));
            check_coloring(g, &run.color).unwrap();
            ms
        };
        let mis = |algo| {
            let (ms, run) = time_min(cfg.reps, || {
                maximal_independent_set(g, algo, arch, cfg.seed)
            });
            check_maximal_independent_set(g, &run.in_set).unwrap();
            ms
        };
        t.row(vec![
            sp.name.into(),
            fmt_ms(mm(MmAlgorithm::Baseline)),
            fmt_ms(mm(MmAlgorithm::Bridge)),
            fmt_ms(mm(MmAlgorithm::Bicc)),
            fmt_ms(col(ColorAlgorithm::Baseline)),
            fmt_ms(col(ColorAlgorithm::Bridge)),
            fmt_ms(col(ColorAlgorithm::Bicc)),
            fmt_ms(mis(MisAlgorithm::Baseline)),
            fmt_ms(mis(MisAlgorithm::Bridge)),
            fmt_ms(mis(MisAlgorithm::Bicc)),
        ]);
    }
    t.emit(&schema.name);
    println!(
        "\nBICC classification costs the same BFS + LCA walks as BRIDGE but replaces\n\
         the mark bitset with a union-find; the composites then split at articulation\n\
         vertices instead of bridge endpoints."
    );
}
