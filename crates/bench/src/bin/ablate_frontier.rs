//! Frontier-representation A/B/C: every solver family runs in `dense` mode
//! (full-sweep rounds, the pre-frontier behavior), `compact` mode
//! (ping-pong worklists + scratch-arena reuse), and `bitset` mode (u64
//! word-bitset frontiers, trailing-zeros iteration, word-level masks), on
//! the same graphs with the same seeds. Reports wall-clock and total
//! `edges_scanned` per mode and **asserts**:
//!
//! * compaction reduced the scanned-edge total vs dense for every workload;
//! * the bitset frontier scanned no more edges than compact (the two visit
//!   identical member sets, so their logical work must coincide);
//! * with `--reps >= 2` (stable timing), bitset wall-clock does not regress
//!   past compact on the GM and Luby workloads.
//!
//! Exits non-zero on any violation, so CI can run this as a perf smoke leg
//! (`--reps 1` there: the edge assertions are deterministic, the timing
//! assertion needs repetitions to be meaningful and is skipped).
//!
//! The default graph is the 60k-vertex `rgg-n-2-23-s0` stand-in: GM's vain
//! tendency makes it the paper's round-count worst case (§III-C), which is
//! exactly where dense rescans hurt the most.
//!
//! The table is saved as `results/BENCH_frontier.json`.

use sb_bench::harness::{load_suite, time_min, BenchConfig};
use sb_bench::report::{fmt_ms, fmt_x};
use sb_bench::schemas;
use sb_core::common::{Arch, FrontierMode, SolveOpts};
use sb_core::matching::{maximal_matching_opts, MmAlgorithm};
use sb_core::mis::{maximal_independent_set_opts, MisAlgorithm};
use sb_core::verify::{check_maximal_independent_set, check_maximal_matching};
use std::path::Path;

fn main() {
    let mut cfg = BenchConfig::from_env();
    if cfg.filter.is_empty() {
        cfg.filter = "rgg-n-2-23".into(); // GM's vain-tendency showcase
    }
    let suite = load_suite(&cfg);
    let schema = schemas::ablate_frontier();
    let mut t = schema.table();

    let mut failures = 0usize;
    for (sp, g) in &suite.graphs {
        type Run<'a> = Box<dyn Fn(FrontierMode) -> (f64, u64) + 'a>;
        let workloads: Vec<(String, Run)> = vec![
            (
                format!("{} / GM", sp.name),
                Box::new(|mode| {
                    let opts = SolveOpts::with_mode(mode);
                    let (ms, r) = time_min(cfg.reps, || {
                        maximal_matching_opts(g, MmAlgorithm::Baseline, Arch::Cpu, cfg.seed, &opts)
                    });
                    check_maximal_matching(g, &r.mate).unwrap();
                    (ms, r.stats.counters.edges_scanned)
                }),
            ),
            (
                format!("{} / LubyMIS", sp.name),
                Box::new(|mode| {
                    let opts = SolveOpts::with_mode(mode);
                    let (ms, r) = time_min(cfg.reps, || {
                        maximal_independent_set_opts(
                            g,
                            MisAlgorithm::Baseline,
                            Arch::Cpu,
                            cfg.seed,
                            &opts,
                        )
                    });
                    check_maximal_independent_set(g, &r.in_set).unwrap();
                    (ms, r.stats.counters.edges_scanned)
                }),
            ),
            (
                format!("{} / LubyMIS (gpu-sim)", sp.name),
                Box::new(|mode| {
                    let opts = SolveOpts::with_mode(mode);
                    let (ms, r) = time_min(cfg.reps, || {
                        maximal_independent_set_opts(
                            g,
                            MisAlgorithm::Baseline,
                            Arch::GpuSim,
                            cfg.seed,
                            &opts,
                        )
                    });
                    check_maximal_independent_set(g, &r.in_set).unwrap();
                    (ms, r.stats.counters.edges_scanned)
                }),
            ),
        ];
        for (label, run) in workloads {
            let (dense_ms, dense_edges) = run(FrontierMode::Dense);
            let (compact_ms, compact_edges) = run(FrontierMode::Compact);
            let (bitset_ms, bitset_edges) = run(FrontierMode::Bitset);
            if compact_edges >= dense_edges {
                eprintln!(
                    "FAIL: {label}: compact scanned {compact_edges} edges, \
                     dense {dense_edges} — compaction must reduce the total"
                );
                failures += 1;
            }
            if bitset_edges > compact_edges {
                eprintln!(
                    "FAIL: {label}: bitset scanned {bitset_edges} edges, compact \
                     {compact_edges} — identical member sets must scan identically"
                );
                failures += 1;
            }
            // Wall-clock is only trustworthy with repetitions (time_min
            // takes the minimum); the gpu-sim workload reports modeled
            // device time, so the host-side comparison targets the CPU
            // solvers.
            let timing_workload = !label.ends_with("(gpu-sim)");
            if cfg.reps >= 2 && timing_workload && bitset_ms > compact_ms {
                eprintln!(
                    "FAIL: {label}: bitset {bitset_ms:.3} ms vs compact \
                     {compact_ms:.3} ms — the bitset frontier regressed wall-clock"
                );
                failures += 1;
            }
            let reduction = if compact_edges > 0 {
                fmt_x(dense_edges as f64 / compact_edges as f64)
            } else {
                "-".to_string()
            };
            t.row(vec![
                label,
                fmt_ms(dense_ms),
                fmt_ms(compact_ms),
                fmt_ms(bitset_ms),
                dense_edges.to_string(),
                compact_edges.to_string(),
                bitset_edges.to_string(),
                reduction,
            ]);
        }
    }
    t.emit(&schema.name);
    if let Err(e) = t.save_json(Path::new("results"), "BENCH_frontier") {
        eprintln!("warning: could not save results/BENCH_frontier.json: {e}");
    } else {
        println!("[saved results/BENCH_frontier.json]");
    }
    if failures > 0 {
        eprintln!("{failures} frontier assertion(s) failed");
        std::process::exit(1);
    }
    if cfg.reps >= 2 {
        println!("\ncompact < dense edges, bitset <= compact edges and ms — OK");
    } else {
        println!(
            "\ncompact < dense edges, bitset <= compact edges — OK (timing skipped at --reps 1)"
        );
    }
}
