//! Frontier-compaction A/B: every solver family runs in `dense` mode
//! (full-sweep rounds, the pre-frontier behavior) and `compact` mode
//! (ping-pong worklists + scratch-arena reuse), on the same graphs with the
//! same seeds. Reports wall-clock and total `edges_scanned` per mode and
//! **asserts** that compaction reduced the scanned-edge total for every
//! workload — exiting non-zero otherwise, so CI can run this as a perf
//! smoke leg.
//!
//! The default graph is the 60k-vertex `rgg-n-2-23-s0` stand-in: GM's vain
//! tendency makes it the paper's round-count worst case (§III-C), which is
//! exactly where dense rescans hurt the most.
//!
//! The table is saved as `results/BENCH_frontier.json`.

use sb_bench::harness::{load_suite, time_min, BenchConfig};
use sb_bench::report::{fmt_ms, fmt_x};
use sb_bench::schemas;
use sb_core::common::{Arch, FrontierMode, SolveOpts};
use sb_core::matching::{maximal_matching_opts, MmAlgorithm};
use sb_core::mis::{maximal_independent_set_opts, MisAlgorithm};
use sb_core::verify::{check_maximal_independent_set, check_maximal_matching};
use std::path::Path;

fn main() {
    let mut cfg = BenchConfig::from_env();
    if cfg.filter.is_empty() {
        cfg.filter = "rgg-n-2-23".into(); // GM's vain-tendency showcase
    }
    let suite = load_suite(&cfg);
    let schema = schemas::ablate_frontier();
    let mut t = schema.table();

    let mut failures = 0usize;
    for (sp, g) in &suite.graphs {
        type Run<'a> = Box<dyn Fn(FrontierMode) -> (f64, u64) + 'a>;
        let workloads: Vec<(String, Run)> = vec![
            (
                format!("{} / GM", sp.name),
                Box::new(|mode| {
                    let opts = SolveOpts::with_mode(mode);
                    let (ms, r) = time_min(cfg.reps, || {
                        maximal_matching_opts(g, MmAlgorithm::Baseline, Arch::Cpu, cfg.seed, &opts)
                    });
                    check_maximal_matching(g, &r.mate).unwrap();
                    (ms, r.stats.counters.edges_scanned)
                }),
            ),
            (
                format!("{} / LubyMIS", sp.name),
                Box::new(|mode| {
                    let opts = SolveOpts::with_mode(mode);
                    let (ms, r) = time_min(cfg.reps, || {
                        maximal_independent_set_opts(
                            g,
                            MisAlgorithm::Baseline,
                            Arch::Cpu,
                            cfg.seed,
                            &opts,
                        )
                    });
                    check_maximal_independent_set(g, &r.in_set).unwrap();
                    (ms, r.stats.counters.edges_scanned)
                }),
            ),
            (
                format!("{} / LubyMIS (gpu-sim)", sp.name),
                Box::new(|mode| {
                    let opts = SolveOpts::with_mode(mode);
                    let (ms, r) = time_min(cfg.reps, || {
                        maximal_independent_set_opts(
                            g,
                            MisAlgorithm::Baseline,
                            Arch::GpuSim,
                            cfg.seed,
                            &opts,
                        )
                    });
                    check_maximal_independent_set(g, &r.in_set).unwrap();
                    (ms, r.stats.counters.edges_scanned)
                }),
            ),
        ];
        for (label, run) in workloads {
            let (dense_ms, dense_edges) = run(FrontierMode::Dense);
            let (compact_ms, compact_edges) = run(FrontierMode::Compact);
            if compact_edges >= dense_edges {
                eprintln!(
                    "FAIL: {label}: compact scanned {compact_edges} edges, \
                     dense {dense_edges} — compaction must reduce the total"
                );
                failures += 1;
            }
            let reduction = if compact_edges > 0 {
                fmt_x(dense_edges as f64 / compact_edges as f64)
            } else {
                "-".to_string()
            };
            t.row(vec![
                label,
                fmt_ms(dense_ms),
                fmt_ms(compact_ms),
                dense_edges.to_string(),
                compact_edges.to_string(),
                reduction,
            ]);
        }
    }
    t.emit(&schema.name);
    if let Err(e) = t.save_json(Path::new("results"), "BENCH_frontier") {
        eprintln!("warning: could not save results/BENCH_frontier.json: {e}");
    } else {
        println!("[saved results/BENCH_frontier.json]");
    }
    if failures > 0 {
        eprintln!("{failures} workload(s) did not reduce edges_scanned");
        std::process::exit(1);
    }
    println!("\nall workloads scanned fewer edges in compact mode — OK");
}
