//! Reproduce the partition-count discussions (§III-D, §IV-D): MM-Rand
//! slows down as RAND partitions increase past the average degree, and
//! COLOR-Rand slows down because cross edges (hence conflicts) increase.

use sb_bench::harness::{load_suite, time_min, BenchConfig};
use sb_bench::report::fmt_ms;
use sb_bench::schemas;
use sb_core::coloring::{vertex_coloring, ColorAlgorithm};
use sb_core::matching::{maximal_matching, MmAlgorithm};
use sb_core::verify::{check_coloring, check_maximal_matching};

const KS: [usize; 6] = [2, 4, 10, 20, 50, 100];

fn main() {
    let cfg = BenchConfig::from_env();
    let suite = load_suite(&cfg);
    let arch = cfg.arch;

    let mm_schema = schemas::ablate_partitions("mm", arch);
    let col_schema = schemas::ablate_partitions("color", arch);
    let mut mm = mm_schema.table();
    let mut col = col_schema.table();
    for (sp, g) in &suite.graphs {
        let mut mm_row = vec![sp.name.to_string()];
        let mut col_row = vec![sp.name.to_string()];
        for k in KS {
            let (ms, run) = time_min(cfg.reps, || {
                maximal_matching(g, MmAlgorithm::Rand { partitions: k }, arch, cfg.seed)
            });
            check_maximal_matching(g, &run.mate).unwrap();
            mm_row.push(fmt_ms(ms));
            let (ms, run) = time_min(cfg.reps, || {
                vertex_coloring(g, ColorAlgorithm::Rand { partitions: k }, arch, cfg.seed)
            });
            check_coloring(g, &run.color).unwrap();
            col_row.push(fmt_ms(ms));
        }
        mm.row(mm_row);
        col.row(col_row);
    }
    mm.emit(&mm_schema.name);
    col.emit(&col_schema.name);
}
