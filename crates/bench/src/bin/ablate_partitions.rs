//! Reproduce the partition-count discussions (§III-D, §IV-D): MM-Rand
//! slows down as RAND partitions increase past the average degree, and
//! COLOR-Rand slows down because cross edges (hence conflicts) increase.

use sb_bench::harness::{load_suite, time_min, BenchConfig};
use sb_bench::report::{fmt_ms, Table};
use sb_core::coloring::{vertex_coloring, ColorAlgorithm};
use sb_core::matching::{maximal_matching, MmAlgorithm};
use sb_core::verify::{check_coloring, check_maximal_matching};

const KS: [usize; 6] = [2, 4, 10, 20, 50, 100];

fn main() {
    let cfg = BenchConfig::from_env();
    let suite = load_suite(&cfg);
    let arch = cfg.arch;

    let mut mm = Table::new(
        format!("MM-Rand ({arch}) vs partition count (ms)"),
        &["graph", "k=2", "k=4", "k=10", "k=20", "k=50", "k=100"],
    );
    let mut col = Table::new(
        format!("COLOR-Rand ({arch}) vs partition count (ms)"),
        &["graph", "k=2", "k=4", "k=10", "k=20", "k=50", "k=100"],
    );
    for (sp, g) in &suite.graphs {
        let mut mm_row = vec![sp.name.to_string()];
        let mut col_row = vec![sp.name.to_string()];
        for k in KS {
            let (ms, run) = time_min(cfg.reps, || {
                maximal_matching(g, MmAlgorithm::Rand { partitions: k }, arch, cfg.seed)
            });
            check_maximal_matching(g, &run.mate).unwrap();
            mm_row.push(fmt_ms(ms));
            let (ms, run) = time_min(cfg.reps, || {
                vertex_coloring(g, ColorAlgorithm::Rand { partitions: k }, arch, cfg.seed)
            });
            check_coloring(g, &run.color).unwrap();
            col_row.push(fmt_ms(ms));
        }
        mm.row(mm_row);
        col.row(col_row);
    }
    mm.emit(&format!("ablate_partitions_mm_{arch}"));
    col.emit(&format!("ablate_partitions_color_{arch}"));
}
