//! Incremental-repair ablation: for every Table I suite graph and every
//! solver family (GM matching, LubyMIS, JP coloring), solve the base
//! graph once, then apply a deterministic edit batch of size 1 / 10 /
//! 100 / 1000 (half removals of live edges, half random insertions) and
//! compare two ways of answering for the edited graph:
//!
//! * **repair** — `sb_core::repair::repair_*` patches the prior solution
//!   through the zero-rebuild edit overlay, cost proportional to the
//!   batch;
//! * **fresh** — materialize the edited CSR and re-run the static solver
//!   from scratch, which is what a non-incremental consumer pays.
//!
//! The run **asserts**, exiting non-zero on any violation:
//!
//! * every repaired solution verifies as valid *and maximal* (matching,
//!   MIS) or conflict-free (coloring) on the materialized edited graph;
//! * at batch sizes ≤ 100 the repair path scans strictly fewer edges
//!   than the fresh path — the regime the dynamic layer exists for. The
//!   gate compares the deterministic `edges_scanned` work counters, not
//!   wall clock, so a noisy shared runner at `--reps 1` cannot flake it;
//!   the wall-clock comparison is additionally asserted only when
//!   `--reps` ≥ 2 (and is reported in the table either way). The
//!   1000-edit rows are informational: at that batch the touched
//!   neighborhood can approach the whole graph and the advantage
//!   legitimately erodes.
//!
//! The table is saved as `results/BENCH_incremental.json`; CI runs this
//! as a perf-smoke leg and uploads the regenerated report.

use sb_bench::harness::{load_suite, time_min, BenchConfig};
use sb_bench::report::fmt_ms;
use sb_bench::schemas;
use sb_core::coloring::{vertex_coloring_opts, ColorAlgorithm};
use sb_core::common::{Arch, SolveOpts};
use sb_core::matching::{maximal_matching_opts, MmAlgorithm};
use sb_core::mis::{maximal_independent_set_opts, MisAlgorithm};
use sb_core::{repair, verify};
use sb_graph::csr::Graph;
use sb_graph::editlog::EditLog;
use sb_par::rng::{bounded, hash3};
use std::path::Path;

const BATCHES: [usize; 4] = [1, 10, 100, 1000];
/// Largest batch size the repair-beats-fresh assertion applies to.
const ASSERT_MAX_BATCH: usize = 100;

/// Deterministic edit batch: alternate removing a live edge and adding a
/// random non-loop pair, so the batch both shrinks and grows structure.
/// Removals sample without replacement from the base edge list; draws are
/// `hash3`-derived so the batch depends only on `(graph, seed, size)`.
fn edit_batch(g: &Graph, seed: u64, size: usize) -> EditLog {
    let n = g.num_vertices() as u64;
    let mut live: Vec<(u32, u32)> = g.edge_list().iter().map(|&[u, v]| (u, v)).collect();
    let mut log = EditLog::new();
    let mut draw = 0u64;
    let mut rng = |bound: u64| {
        draw += 1;
        bounded(hash3(seed ^ 0x1BC2, draw, bound), bound.max(1))
    };
    for i in 0..size {
        if i % 2 == 0 && !live.is_empty() {
            let j = rng(live.len() as u64) as usize;
            let (u, v) = live.swap_remove(j);
            log.remove_edge(u, v);
        } else if n >= 2 {
            let u = rng(n) as u32;
            let mut v = rng(n) as u32;
            if u == v {
                v = (v + 1) % n as u32;
            }
            log.add_edge(u, v);
        }
    }
    log
}

fn main() {
    let cfg = BenchConfig::from_env();
    let suite = load_suite(&cfg);
    let schema = schemas::ablate_incremental();
    let mut t = schema.table();
    let opts = SolveOpts::with_mode(cfg.frontier);

    let mut failures = 0usize;
    for (sp, g) in &suite.graphs {
        // One prior solve per family; every batch size repairs from it.
        let mm_prior = maximal_matching_opts(g, MmAlgorithm::Baseline, Arch::Cpu, cfg.seed, &opts);
        let mis_prior =
            maximal_independent_set_opts(g, MisAlgorithm::Baseline, Arch::Cpu, cfg.seed, &opts);
        let col_prior =
            vertex_coloring_opts(g, ColorAlgorithm::Baseline, Arch::Cpu, cfg.seed, &opts);

        for batch_size in BATCHES {
            let batch = edit_batch(g, cfg.seed, batch_size);
            let edited = batch.materialize(g);

            // (family, repair ms, repair edges, fresh ms, fresh edges, validity)
            type Row = (&'static str, f64, u64, f64, u64, Result<(), String>);
            let rows: Vec<Row> = vec![
                {
                    let (rms, rr) =
                        time_min(cfg.reps, || repair::repair_matching(g, &batch, &mm_prior.mate, &opts));
                    let (fms, fr) = time_min(cfg.reps, || {
                        let g2 = batch.materialize(g);
                        maximal_matching_opts(&g2, MmAlgorithm::Baseline, Arch::Cpu, cfg.seed, &opts)
                    });
                    let valid = verify::check_maximal_matching(&edited, &rr.mate);
                    ("GM", rms, rr.stats.counters.edges_scanned, fms, fr.stats.counters.edges_scanned, valid)
                },
                {
                    let (rms, rr) =
                        time_min(cfg.reps, || repair::repair_mis(g, &batch, &mis_prior.in_set, &opts));
                    let (fms, fr) = time_min(cfg.reps, || {
                        let g2 = batch.materialize(g);
                        maximal_independent_set_opts(&g2, MisAlgorithm::Baseline, Arch::Cpu, cfg.seed, &opts)
                    });
                    let valid = verify::check_maximal_independent_set(&edited, &rr.in_set);
                    ("LubyMIS", rms, rr.stats.counters.edges_scanned, fms, fr.stats.counters.edges_scanned, valid)
                },
                {
                    let (rms, rr) =
                        time_min(cfg.reps, || repair::repair_coloring(g, &batch, &col_prior.color, &opts));
                    let (fms, fr) = time_min(cfg.reps, || {
                        let g2 = batch.materialize(g);
                        vertex_coloring_opts(&g2, ColorAlgorithm::Baseline, Arch::Cpu, cfg.seed, &opts)
                    });
                    let valid = verify::check_coloring(&edited, &rr.color);
                    ("JP-color", rms, rr.stats.counters.edges_scanned, fms, fr.stats.counters.edges_scanned, valid)
                },
            ];

            for (algo, repair_ms, repair_edges, fresh_ms, fresh_edges, valid) in rows {
                if let Err(e) = &valid {
                    eprintln!(
                        "FAIL: {} / {algo} @ batch {batch_size}: repaired solution invalid: {e}",
                        sp.name
                    );
                    failures += 1;
                }
                let wins = repair_ms < fresh_ms;
                if batch_size <= ASSERT_MAX_BATCH {
                    // The gate is the deterministic work counter; the
                    // wall-clock comparison joins it only with enough
                    // reps to smooth scheduler noise on shared runners.
                    if repair_edges >= fresh_edges {
                        eprintln!(
                            "FAIL: {} / {algo} @ batch {batch_size}: repair scanned \
                             {repair_edges} edges, not fewer than fresh ({fresh_edges})",
                            sp.name
                        );
                        failures += 1;
                    }
                    if cfg.reps >= 2 && !wins {
                        eprintln!(
                            "FAIL: {} / {algo} @ batch {batch_size}: repair ({}) not cheaper \
                             than fresh ({})",
                            sp.name,
                            fmt_ms(repair_ms),
                            fmt_ms(fresh_ms)
                        );
                        failures += 1;
                    }
                }
                t.row(vec![
                    format!("{} / {algo}", sp.name),
                    batch_size.to_string(),
                    fmt_ms(repair_ms),
                    fmt_ms(fresh_ms),
                    format!("{:.1}", fresh_ms / repair_ms.max(1e-6)),
                    repair_edges.to_string(),
                    fresh_edges.to_string(),
                    if valid.is_ok() { "yes" } else { "NO" }.to_string(),
                    if wins { "yes" } else { "no" }.to_string(),
                ]);
            }
        }
    }

    t.emit(&schema.name);
    if let Err(e) = t.save_json(Path::new("results"), "BENCH_incremental") {
        eprintln!("warning: could not save results/BENCH_incremental.json: {e}");
    } else {
        println!("[saved results/BENCH_incremental.json]");
    }
    if failures > 0 {
        eprintln!("{failures} incremental assertion(s) failed");
        std::process::exit(1);
    }
    println!(
        "\nrepairs valid and scanning fewer edges than fresh at batch <= {ASSERT_MAX_BATCH} — OK"
    );
}
