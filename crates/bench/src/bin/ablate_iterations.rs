//! Reproduce the §III-C iteration narrative: on the rgg instances,
//! Algorithm GM needs on the order of 14 000 proposal rounds (the *vain
//! tendency*), while MM-Rand matches most vertices inside the sparsified
//! induced subgraphs within a few rounds. Also contrasts the lowest-id
//! proposal rule with Blelloch's random edge priorities (the rule, not the
//! decomposition, causes the pathology).

use sb_bench::harness::{load_suite, mm_rand_partitions, BenchConfig};
use sb_bench::schemas;
use sb_core::common::Arch;
use sb_core::matching::gm::{gm_extend, gm_random_extend};
use sb_core::matching::{maximal_matching, MmAlgorithm};
use sb_core::verify::check_maximal_matching;
use sb_graph::csr::INVALID;
use sb_par::counters::Counters;

fn main() {
    let mut cfg = BenchConfig::from_env();
    if cfg.filter.is_empty() {
        cfg.filter = "rgg".into();
    }
    let suite = load_suite(&cfg);
    let schema = schemas::ablate_iterations();
    let mut t = schema.table();
    for (sp, g) in &suite.graphs {
        let base = maximal_matching(g, MmAlgorithm::Baseline, Arch::Cpu, cfg.seed);
        check_maximal_matching(g, &base.mate).unwrap();
        let k = mm_rand_partitions(Arch::Cpu, sp);
        let rand = maximal_matching(g, MmAlgorithm::Rand { partitions: k }, Arch::Cpu, cfg.seed);
        check_maximal_matching(g, &rand.mate).unwrap();

        // Ablation: same graph, same greedy structure, random priorities.
        let c = Counters::new();
        let mut mate = vec![INVALID; g.num_vertices()];
        gm_random_extend(
            g,
            sb_graph::view::EdgeView::full(),
            &mut mate,
            None,
            cfg.seed,
            &c,
        );
        check_maximal_matching(g, &mate).unwrap();

        // Sanity anchor for the counters: re-derive GM rounds directly.
        let c2 = Counters::new();
        let mut mate2 = vec![INVALID; g.num_vertices()];
        gm_extend(g, sb_graph::view::EdgeView::full(), &mut mate2, None, &c2);
        debug_assert_eq!(c2.rounds(), base.stats.counters.rounds);

        let ratio = base.stats.counters.rounds as f64 / rand.stats.counters.rounds.max(1) as f64;
        t.row(vec![
            sp.name.into(),
            base.stats.counters.rounds.to_string(),
            rand.stats.counters.rounds.to_string(),
            c.rounds().to_string(),
            format!("{ratio:.1}"),
        ]);
    }
    t.emit(&schema.name);
    println!("\npaper: GM ≈ 14,000 iterations on rgg-n-2-24-s0; MM-Rand ≈ 17 + ~400.");
}
