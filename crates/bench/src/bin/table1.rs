//! Reproduce Table I: the summary of best decomposition and average
//! speedup per problem per architecture. Runs all six figure experiments.

use sb_bench::harness::{load_suite, BenchConfig};
use sb_bench::runners::table1;

fn main() {
    let cfg = BenchConfig::from_env();
    let suite = load_suite(&cfg);
    table1(&suite, cfg.seed, cfg.reps, cfg.frontier).emit("table1");
}
