//! Reproduce Table I: the summary of best decomposition and average
//! speedup per problem per architecture. Runs all six figure experiments,
//! then replays the paper's three headline composites per graph as one
//! `sb-engine` batch (cached vs fresh) and writes the amortization report
//! to `results/BENCH_engine.json`.

use sb_bench::harness::{load_suite, BenchConfig};
use sb_bench::runners::{engine_amortization, table1};
use std::path::Path;

fn main() {
    let cfg = BenchConfig::from_env();
    let suite = load_suite(&cfg);
    table1(&suite, cfg.seed, cfg.reps, cfg.frontier).emit("table1");

    if cfg.data_dir.is_some() {
        // File-backed suites have no `gen:` key for the engine's graph
        // cache; the amortization report only covers generated suites.
        println!("\n[skipping BENCH_engine.json: --data-dir suites are file-backed]");
        return;
    }
    let scale = cfg.scale.factor();
    let report = match engine_amortization(&suite, cfg.arch, cfg.seed, scale, cfg.frontier) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: engine amortization batch failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render_markdown());
    let out = Path::new("results/BENCH_engine.json");
    if let Err(e) = report.save_json(out) {
        eprintln!("warning: {e}");
    } else {
        println!("\n[saved {}]", out.display());
    }
    match report.speedup() {
        Some(x) if x >= 1.5 => {
            println!("cached batch is {x:.2}x faster than fresh per-job runs (>= 1.5x)");
        }
        Some(x) => {
            eprintln!(
                "error: cached batch only {x:.2}x faster than fresh per-job runs (< 1.5x); \
                 the decomposition cache is not amortizing"
            );
            std::process::exit(1);
        }
        None => {
            eprintln!("error: amortization report has no fresh timings");
            std::process::exit(1);
        }
    }
}
