//! The schema registry: one constructor per results table the bench
//! binaries (and `sbreak batch`) can write, each yielding the table's
//! output name, title, and column headers.
//!
//! This is the single source of truth for every `results/*.csv` /
//! `results/*.json` schema. Runners build their [`Table`]s from here
//! ([`TableSchema::table`]), and the golden tests pin the rendered
//! registry ([`render_registry`]) so any schema drift — a renamed column,
//! a reordered header, a changed title — fails CI until the goldens are
//! regenerated with `SBREAK_BLESS=1`.

use crate::report::Table;
use sb_core::common::Arch;

/// Name, title, and headers of one results table.
#[derive(Debug, Clone)]
pub struct TableSchema {
    /// Output stem: the table saves to `results/<name>.{csv,json}`.
    pub name: String,
    /// Table caption.
    pub title: String,
    /// Column headers, in order.
    pub headers: Vec<String>,
}

impl TableSchema {
    fn new(name: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> TableSchema {
        TableSchema {
            name: name.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// An empty [`Table`] with this schema's title and headers.
    pub fn table(&self) -> Table {
        let refs: Vec<&str> = self.headers.iter().map(|s| s.as_str()).collect();
        Table::new(self.title.clone(), &refs)
    }

    /// One-table rendering for the registry golden: name, title, headers.
    pub fn render(&self) -> String {
        format!(
            "{}\n  title:   {}\n  headers: {}\n",
            self.name,
            self.title,
            self.headers.join(" | ")
        )
    }
}

fn arch_time_unit(arch: Arch) -> &'static str {
    match arch {
        Arch::Cpu => "wall ms",
        Arch::GpuSim => "modeled K40c ms",
    }
}

/// Table I — the summary table.
pub fn table1() -> TableSchema {
    TableSchema::new(
        "table1",
        "Table I — summary (decomposition, avg speedup) per problem and arch",
        &[
            "problem",
            "CPU decomposition",
            "CPU speedup",
            "GPU decomposition",
            "GPU speedup",
            "paper CPU",
            "paper GPU",
        ],
    )
}

/// Table II — dataset statistics.
pub fn table2() -> TableSchema {
    TableSchema::new(
        "table2",
        "Table II — dataset statistics (measured stand-in vs paper)",
        &[
            "graph",
            "class",
            "|V|",
            "|E|",
            "%DEG2",
            "%DEG2 (paper)",
            "%BRIDGES",
            "%BRIDGES (paper)",
            "avg deg",
            "avg deg (paper)",
            "pseudo-diam",
        ],
    )
}

/// Figure 2 — decomposition times.
pub fn fig2() -> TableSchema {
    TableSchema::new(
        "fig2",
        "Figure 2 — decomposition time (ms)",
        &["graph", "BRIDGE", "RAND(10)", "DEG2", "METIS-like(8)"],
    )
}

/// Figure 3 — maximal matching (per arch).
pub fn fig3(arch: Arch) -> TableSchema {
    TableSchema::new(
        format!("fig3_{arch}"),
        format!(
            "Figure 3 ({arch}) — maximal matching time ({})",
            arch_time_unit(arch)
        ),
        &[
            "graph",
            "baseline",
            "MM-Bridge",
            "MM-Rand",
            "MM-Deg2",
            "rand speedup",
            "baseline rounds",
            "rand rounds",
        ],
    )
}

/// Figure 4 — coloring (per arch; the headline column follows the paper's
/// winner for the arch).
pub fn fig4(arch: Arch) -> TableSchema {
    let headline = match arch {
        Arch::Cpu => "degk speedup",
        Arch::GpuSim => "rand speedup",
    };
    TableSchema::new(
        format!("fig4_{arch}"),
        format!(
            "Figure 4 ({arch}) — coloring time ({})",
            arch_time_unit(arch)
        ),
        &[
            "graph",
            "baseline",
            "COLOR-Bridge",
            "COLOR-Rand",
            "COLOR-Deg2",
            headline,
            "colors base",
            "colors winner",
        ],
    )
}

/// Figure 5 — MIS (per arch).
pub fn fig5(arch: Arch) -> TableSchema {
    TableSchema::new(
        format!("fig5_{arch}"),
        format!("Figure 5 ({arch}) — MIS time ({})", arch_time_unit(arch)),
        &[
            "graph",
            "LubyMIS",
            "MIS-Bridge",
            "MIS-Rand",
            "MIS-Deg2",
            "deg2 speedup",
            "luby rounds",
        ],
    )
}

/// §IV-D color-overhead table.
pub fn color_overhead() -> TableSchema {
    TableSchema::new(
        "color_overhead",
        "§IV-D — extra colors vs baseline (% relative / absolute Δ)",
        &[
            "arch",
            "COLOR-Bridge",
            "COLOR-Rand",
            "COLOR-Deg2",
            "paper (relative)",
        ],
    )
}

/// §III-C iteration-count table.
pub fn ablate_iterations() -> TableSchema {
    TableSchema::new(
        "ablate_iterations",
        "§III-C — proposal rounds: GM vs MM-Rand vs random-priority GM",
        &[
            "graph",
            "GM rounds",
            "MM-Rand rounds",
            "GM-randprio rounds",
            "round ratio GM/MM-Rand",
        ],
    )
}

/// Partition-count sweep (one table per problem per arch).
pub fn ablate_partitions(problem: &str, arch: Arch) -> TableSchema {
    let caption = match problem {
        "mm" => format!("MM-Rand ({arch}) vs partition count (ms)"),
        _ => format!("COLOR-Rand ({arch}) vs partition count (ms)"),
    };
    TableSchema::new(
        format!("ablate_partitions_{problem}_{arch}"),
        caption,
        &["graph", "k=2", "k=4", "k=10", "k=20", "k=50", "k=100"],
    )
}

/// BRIDGE-vs-BICC extension table (per arch).
pub fn ablate_bicc(arch: Arch) -> TableSchema {
    TableSchema::new(
        format!("ablate_bicc_{arch}"),
        format!("Extension — BRIDGE vs BICC composites ({arch}, ms)"),
        &[
            "graph",
            "MM base",
            "MM-Bridge",
            "MM-Bicc",
            "COLOR base",
            "COLOR-Bridge",
            "COLOR-Bicc",
            "MIS base",
            "MIS-Bridge",
            "MIS-Bicc",
        ],
    )
}

/// Frontier-representation A/B/C table (also saved as
/// `BENCH_frontier.json`): dense full sweeps vs compact worklists vs u64
/// bitset frontiers, per workload.
pub fn ablate_frontier() -> TableSchema {
    TableSchema::new(
        "ablate_frontier",
        "Frontier representation — dense vs compact vs bitset per workload",
        &[
            "workload",
            "dense ms",
            "compact ms",
            "bitset ms",
            "dense edges",
            "compact edges",
            "bitset edges",
            "edge reduction",
        ],
    )
}

/// Out-of-core ablation (also saved as `BENCH_outofcore.json`): each
/// Table I workload solved twice — from the in-heap CSR and from a
/// read-only mapping of the same graph serialized to `.sbg` — with the
/// solver outputs byte-compared. `heap/mapped resident` is what each
/// representation charges the allocator (the mapping's array bytes live
/// in page cache, not the heap).
pub fn ablate_outofcore() -> TableSchema {
    TableSchema::new(
        "ablate_outofcore",
        "Out-of-core — heap CSR vs mapped .sbg per workload (outputs byte-compared)",
        &[
            "workload",
            "heap ms",
            "mapped ms",
            "heap edges",
            "mapped edges",
            "file MB",
            "heap resident MB",
            "mapped resident bytes",
            "identical",
        ],
    )
}

/// Incremental-repair ablation (also saved as `BENCH_incremental.json`):
/// each Table I workload is solved once on the base graph, then an edit
/// batch of the given size is answered two ways — repairing the prior
/// solution through the edit overlay vs materializing the edited CSR and
/// solving fresh. `valid` is the verifier's verdict on the repaired
/// solution against the edited graph; `repair wins` records whether the
/// repair path was strictly cheaper on wall clock. The asserted gate at
/// batch ≤ 100 is the deterministic `repair edges` < `fresh edges`
/// comparison (wall clock is asserted too when `--reps` ≥ 2).
pub fn ablate_incremental() -> TableSchema {
    TableSchema::new(
        "ablate_incremental",
        "Incremental repair — patch prior solution vs fresh solve per edit-batch size",
        &[
            "workload",
            "batch",
            "repair ms",
            "fresh ms",
            "speedup",
            "repair edges",
            "fresh edges",
            "valid",
            "repair wins",
        ],
    )
}

/// Strong-scaling table (also saved as `BENCH_threads.json`). The column
/// set depends on the thread axis; `host` is the recorded host parallelism.
/// Besides the solver workloads, the table carries skewed-workload rows
/// comparing the pool's claim strategies (stealing vs global counter); on a
/// host without real parallelism every speedup cell is annotated
/// host-limited and the saved JSON carries `host_limited: true`.
pub fn ablate_threads(threads: &[usize], host: usize) -> TableSchema {
    let headers: Vec<String> = std::iter::once("workload".to_string())
        .chain(threads.iter().map(|t| format!("{t} thr (ms)")))
        .chain(std::iter::once("speedup".to_string()))
        .collect();
    let refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    TableSchema::new(
        "ablate_threads",
        format!(
            "Strong scaling — wall ms per thread count and claim strategy \
             (host parallelism: {host})"
        ),
        &refs,
    )
}

/// GPU cost-model audit table (one per graph).
pub fn model_report(graph_name: &str, num_vertices: usize, num_edges: usize) -> TableSchema {
    TableSchema::new(
        format!("model_report_{}", graph_name.replace('/', "_")),
        format!("{graph_name} — GPU counter breakdown (|V| = {num_vertices}, |E| = {num_edges})"),
        &[
            "algorithm",
            "rounds",
            "launches",
            "streamed",
            "gathered",
            "launch ms",
            "stream ms",
            "gather ms",
            "modeled ms",
        ],
    )
}

/// The engine batch report (`BENCH_engine.json`), mirrored from
/// `sb-engine` so the registry covers every results writer in the tree.
pub fn bench_engine() -> TableSchema {
    TableSchema::new(
        "BENCH_engine",
        sb_engine::report::REPORT_TITLE,
        &sb_engine::report::RECORD_KEYS,
    )
}

/// The serve loadgen report (`BENCH_serve.json`): client-observed latency
/// and throughput per phase (cold first-touch vs warm resident caches).
pub fn bench_serve() -> TableSchema {
    TableSchema::new(
        "BENCH_serve",
        "Serve loadgen — client-side latency per phase (cold vs warm caches)",
        &[
            "phase",
            "clients",
            "requests",
            "ok",
            "overloaded",
            "timeout",
            "error",
            "p50 ms",
            "p99 ms",
            "mean ms",
            "rps",
            "decomp hits",
        ],
    )
}

/// Every schema, instantiated with canonical parameters (both arches;
/// thread axis `1,2,4` at host parallelism 8; the `model_report` default
/// graph with the example sizes used in its documentation). The golden
/// registry test pins this rendering.
pub fn all() -> Vec<TableSchema> {
    let mut v = vec![table1(), table2(), fig2()];
    for arch in [Arch::Cpu, Arch::GpuSim] {
        v.push(fig3(arch));
        v.push(fig4(arch));
        v.push(fig5(arch));
    }
    v.push(color_overhead());
    v.push(ablate_iterations());
    for arch in [Arch::Cpu, Arch::GpuSim] {
        v.push(ablate_partitions("mm", arch));
        v.push(ablate_partitions("color", arch));
    }
    for arch in [Arch::Cpu, Arch::GpuSim] {
        v.push(ablate_bicc(arch));
    }
    v.push(ablate_frontier());
    v.push(ablate_outofcore());
    v.push(ablate_incremental());
    v.push(ablate_threads(&[1, 2, 4], 8));
    v.push(model_report("kron-g500-logn20", 52_000, 2_100_000));
    v.push(bench_engine());
    v.push(bench_serve());
    v
}

/// Render the whole registry as one text block (the golden file).
pub fn render_registry() -> String {
    let mut out = String::from(
        "# Results schema registry — every results/* table writer.\n\
         # Regenerate with: SBREAK_BLESS=1 cargo test --test golden\n\n",
    );
    for schema in all() {
        out.push_str(&schema.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in all() {
            assert!(seen.insert(s.name.clone()), "duplicate schema {}", s.name);
        }
    }

    #[test]
    fn schema_tables_accept_matching_rows() {
        let mut t = fig2().table();
        t.row(vec![
            "lp1".into(),
            "1".into(),
            "2".into(),
            "3".into(),
            "4".into(),
        ]);
        assert!(t.to_markdown().contains("Figure 2"));
    }

    #[test]
    fn engine_schema_mirrors_sb_engine() {
        let s = bench_engine();
        assert_eq!(s.headers.len(), sb_engine::report::RECORD_KEYS.len());
        assert_eq!(s.headers[0], "job");
    }

    #[test]
    fn registry_renders_every_schema() {
        let text = render_registry();
        for s in all() {
            assert!(text.contains(&s.name), "registry must list {}", s.name);
        }
    }
}
