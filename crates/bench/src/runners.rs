//! Per-figure experiment runners, shared by the bench binaries and the
//! integration tests.

use crate::harness::{
    color_rand_partitions, mis_rand_partitions, mm_rand_partitions, time_min, Suite,
};
use crate::report::{fmt_ms, fmt_x, mean, Table};
use crate::schemas;
use sb_core::coloring::{vertex_coloring_opts, ColorAlgorithm};
use sb_core::common::{Arch, FrontierMode, SolveOpts};
use sb_core::matching::{maximal_matching_opts, MmAlgorithm};
use sb_core::mis::{maximal_independent_set_opts, MisAlgorithm};
use sb_core::verify::{
    check_coloring, check_maximal_independent_set, check_maximal_matching, color_count,
};
use sb_datasets::suite::GraphId;
use sb_decompose::{decompose_bridge, decompose_degk, decompose_metis_like, decompose_rand};
use sb_graph::stats::GraphStats;
use sb_par::counters::Counters;
use sb_trace::TraceSink;
use std::path::Path;
use std::sync::Arc;

/// The figure-of-merit for one run: wall-clock on the CPU arch, modeled
/// K40c device time on GPU-sim (DESIGN.md §2 — host wall-clock cannot
/// express the coalesced/gather bandwidth gap, the counters can).
fn effective_ms(arch: Arch, wall_ms: f64, stats: &sb_core::common::RunStats) -> f64 {
    match arch {
        Arch::Cpu => wall_ms,
        Arch::GpuSim => stats.modeled_gpu_ms(),
    }
}

/// When `--trace-dir` is set, run `f` once more with an enabled sink and
/// save the JSONL to `<dir>/<name>.jsonl`. The extra run is separate from
/// the timed repetitions so the reported timings stay trace-free.
fn dump_trace<T>(dir: Option<&Path>, name: &str, f: impl FnOnce(Option<Arc<TraceSink>>) -> T) {
    let Some(dir) = dir else { return };
    let sink = Arc::new(TraceSink::enabled());
    f(Some(sink.clone()));
    let save = std::fs::create_dir_all(dir)
        .and_then(|()| sink.save_jsonl(&dir.join(format!("{name}.jsonl"))));
    if let Err(e) = save {
        eprintln!("warning: could not save trace {name}.jsonl: {e}");
    }
}

/// Table II: measured statistics of every suite graph next to the paper's
/// values for the real graph.
pub fn table2(suite: &Suite) -> Table {
    let mut t = schemas::table2().table();
    for (sp, g) in &suite.graphs {
        let s = GraphStats::compute(g);
        let diam = sb_graph::bfs::pseudo_diameter(g, 0, &Counters::new());
        let bridges = sb_decompose::bridge::find_bridges(g, &Counters::new());
        let pct_bridges = if g.num_edges() == 0 {
            0.0
        } else {
            100.0 * bridges.len() as f64 / g.num_edges() as f64
        };
        t.row(vec![
            sp.name.into(),
            sp.class.into(),
            s.num_vertices.to_string(),
            s.num_edges.to_string(),
            format!("{:.1}", s.pct_deg_le2),
            format!("{:.1}", sp.paper.pct_deg2),
            format!("{pct_bridges:.1}"),
            format!("{:.1}", sp.paper.pct_bridges),
            format!("{:.1}", s.avg_degree),
            format!("{:.1}", sp.paper.avg_degree),
            diam.to_string(),
        ]);
    }
    t
}

/// Figure 2: time of each decomposition technique per graph (RAND with 10
/// partitions, DEG2, plus the METIS-like stand-in for Remark 1).
pub fn decomposition_figure(suite: &Suite, seed: u64, reps: usize) -> Table {
    let mut t = schemas::fig2().table();
    for (sp, g) in &suite.graphs {
        let (bridge_ms, _) = time_min(reps, || decompose_bridge(g, &Counters::new()));
        let (rand_ms, _) = time_min(reps, || decompose_rand(g, 10, seed, &Counters::new()));
        let (deg2_ms, _) = time_min(reps, || decompose_degk(g, 2, &Counters::new()));
        let (metis_ms, _) = time_min(reps, || decompose_metis_like(g, 8, &Counters::new()));
        t.row(vec![
            sp.name.into(),
            fmt_ms(bridge_ms),
            fmt_ms(rand_ms),
            fmt_ms(deg2_ms),
            fmt_ms(metis_ms),
        ]);
    }
    t
}

/// Figure 3: maximal matching — baseline (GM on CPU / LMAX on GPU) vs the
/// three decomposition composites; the headline number is MM-Rand's
/// speedup. Returns the table and the average MM-Rand speedup computed the
/// paper's way (excluding the rgg instances, footnote 1).
pub fn matching_figure(
    suite: &Suite,
    arch: Arch,
    seed: u64,
    reps: usize,
    trace_dir: Option<&Path>,
    mode: FrontierMode,
) -> (Table, Option<f64>) {
    let opts = SolveOpts::with_mode(mode);
    let mut t = schemas::fig3(arch).table();
    let mut speedups = Vec::new();
    for (sp, g) in &suite.graphs {
        let (base_ms, base) = time_min(reps, || {
            maximal_matching_opts(g, MmAlgorithm::Baseline, arch, seed, &opts)
        });
        check_maximal_matching(g, &base.mate).expect("baseline matching invalid");
        let base_ms = effective_ms(arch, base_ms, &base.stats);
        let (bridge_ms, r) = time_min(reps, || {
            maximal_matching_opts(g, MmAlgorithm::Bridge, arch, seed, &opts)
        });
        check_maximal_matching(g, &r.mate).expect("MM-Bridge invalid");
        let bridge_ms = effective_ms(arch, bridge_ms, &r.stats);
        let k = mm_rand_partitions(arch, sp);
        let (rand_ms, rand_run) = time_min(reps, || {
            maximal_matching_opts(g, MmAlgorithm::Rand { partitions: k }, arch, seed, &opts)
        });
        check_maximal_matching(g, &rand_run.mate).expect("MM-Rand invalid");
        let rand_ms = effective_ms(arch, rand_ms, &rand_run.stats);
        let (degk_ms, r2) = time_min(reps, || {
            maximal_matching_opts(g, MmAlgorithm::Degk { k: 2 }, arch, seed, &opts)
        });
        check_maximal_matching(g, &r2.mate).expect("MM-Degk invalid");
        let degk_ms = effective_ms(arch, degk_ms, &r2.stats);

        dump_trace(
            trace_dir,
            &format!("fig3_{arch}_{}_baseline", sp.name),
            |t| {
                let topts = SolveOpts {
                    trace: t,
                    frontier: mode,
                };
                maximal_matching_opts(g, MmAlgorithm::Baseline, arch, seed, &topts)
            },
        );
        dump_trace(trace_dir, &format!("fig3_{arch}_{}_rand", sp.name), |t| {
            let topts = SolveOpts {
                trace: t,
                frontier: mode,
            };
            maximal_matching_opts(g, MmAlgorithm::Rand { partitions: k }, arch, seed, &topts)
        });

        let speedup = base_ms / rand_ms;
        if !matches!(sp.id, GraphId::Rgg23 | GraphId::Rgg24) {
            speedups.push(speedup);
        }
        t.row(vec![
            sp.name.into(),
            fmt_ms(base_ms),
            fmt_ms(bridge_ms),
            fmt_ms(rand_ms),
            fmt_ms(degk_ms),
            fmt_x(speedup),
            base.stats.counters.rounds.to_string(),
            rand_run.stats.counters.rounds.to_string(),
        ]);
    }
    (t, mean(&speedups))
}

/// Figure 4: coloring — VB/EB baseline vs the composites. The paper's
/// headline: COLOR-Degk speedup on the CPU, COLOR-Rand on the GPU.
pub fn coloring_figure(
    suite: &Suite,
    arch: Arch,
    seed: u64,
    reps: usize,
    trace_dir: Option<&Path>,
    mode: FrontierMode,
) -> (Table, Option<f64>) {
    let opts = SolveOpts::with_mode(mode);
    let mut t = schemas::fig4(arch).table();
    let mut speedups = Vec::new();
    for (sp, g) in &suite.graphs {
        let (base_ms, base) = time_min(reps, || {
            vertex_coloring_opts(g, ColorAlgorithm::Baseline, arch, seed, &opts)
        });
        check_coloring(g, &base.color).expect("baseline coloring invalid");
        let base_ms = effective_ms(arch, base_ms, &base.stats);
        let (bridge_ms, rb) = time_min(reps, || {
            vertex_coloring_opts(g, ColorAlgorithm::Bridge, arch, seed, &opts)
        });
        check_coloring(g, &rb.color).expect("COLOR-Bridge invalid");
        let bridge_ms = effective_ms(arch, bridge_ms, &rb.stats);
        let kp = color_rand_partitions(arch);
        let (rand_ms, rr) = time_min(reps, || {
            vertex_coloring_opts(
                g,
                ColorAlgorithm::Rand { partitions: kp },
                arch,
                seed,
                &opts,
            )
        });
        check_coloring(g, &rr.color).expect("COLOR-Rand invalid");
        let rand_ms = effective_ms(arch, rand_ms, &rr.stats);
        let (degk_ms, rd) = time_min(reps, || {
            vertex_coloring_opts(g, ColorAlgorithm::Degk { k: 2 }, arch, seed, &opts)
        });
        check_coloring(g, &rd.color).expect("COLOR-Degk invalid");
        let degk_ms = effective_ms(arch, degk_ms, &rd.stats);

        let (winner_ms, winner_colors) = match arch {
            Arch::Cpu => (degk_ms, color_count(&rd.color)),
            Arch::GpuSim => (rand_ms, color_count(&rr.color)),
        };
        let winner_algo = match arch {
            Arch::Cpu => ColorAlgorithm::Degk { k: 2 },
            Arch::GpuSim => ColorAlgorithm::Rand { partitions: kp },
        };
        dump_trace(
            trace_dir,
            &format!("fig4_{arch}_{}_baseline", sp.name),
            |t| {
                let topts = SolveOpts {
                    trace: t,
                    frontier: mode,
                };
                vertex_coloring_opts(g, ColorAlgorithm::Baseline, arch, seed, &topts)
            },
        );
        dump_trace(trace_dir, &format!("fig4_{arch}_{}_winner", sp.name), |t| {
            let topts = SolveOpts {
                trace: t,
                frontier: mode,
            };
            vertex_coloring_opts(g, winner_algo, arch, seed, &topts)
        });
        let speedup = base_ms / winner_ms;
        speedups.push(speedup);
        t.row(vec![
            sp.name.into(),
            fmt_ms(base_ms),
            fmt_ms(bridge_ms),
            fmt_ms(rand_ms),
            fmt_ms(degk_ms),
            fmt_x(speedup),
            color_count(&base.color).to_string(),
            winner_colors.to_string(),
        ]);
    }
    (t, mean(&speedups))
}

/// Figure 5: MIS — LubyMIS baseline vs the composites; headline is the
/// MIS-Deg2 speedup. The GPU average excludes the outlier instances c-73
/// and lp1 as in the paper (footnote 2).
pub fn mis_figure(
    suite: &Suite,
    arch: Arch,
    seed: u64,
    reps: usize,
    trace_dir: Option<&Path>,
    mode: FrontierMode,
) -> (Table, Option<f64>) {
    let opts = SolveOpts::with_mode(mode);
    let mut t = schemas::fig5(arch).table();
    let mut speedups = Vec::new();
    for (sp, g) in &suite.graphs {
        let (base_ms, base) = time_min(reps, || {
            maximal_independent_set_opts(g, MisAlgorithm::Baseline, arch, seed, &opts)
        });
        check_maximal_independent_set(g, &base.in_set).expect("LubyMIS invalid");
        let base_ms = effective_ms(arch, base_ms, &base.stats);
        let (bridge_ms, r) = time_min(reps, || {
            maximal_independent_set_opts(g, MisAlgorithm::Bridge, arch, seed, &opts)
        });
        check_maximal_independent_set(g, &r.in_set).expect("MIS-Bridge invalid");
        let bridge_ms = effective_ms(arch, bridge_ms, &r.stats);
        let k = mis_rand_partitions(arch);
        let (rand_ms, r2) = time_min(reps, || {
            maximal_independent_set_opts(g, MisAlgorithm::Rand { partitions: k }, arch, seed, &opts)
        });
        check_maximal_independent_set(g, &r2.in_set).expect("MIS-Rand invalid");
        let rand_ms = effective_ms(arch, rand_ms, &r2.stats);
        let (deg2_ms, r3) = time_min(reps, || {
            maximal_independent_set_opts(g, MisAlgorithm::Degk { k: 2 }, arch, seed, &opts)
        });
        check_maximal_independent_set(g, &r3.in_set).expect("MIS-Deg2 invalid");
        let deg2_ms = effective_ms(arch, deg2_ms, &r3.stats);

        dump_trace(
            trace_dir,
            &format!("fig5_{arch}_{}_baseline", sp.name),
            |t| {
                let topts = SolveOpts {
                    trace: t,
                    frontier: mode,
                };
                maximal_independent_set_opts(g, MisAlgorithm::Baseline, arch, seed, &topts)
            },
        );
        dump_trace(trace_dir, &format!("fig5_{arch}_{}_deg2", sp.name), |t| {
            let topts = SolveOpts {
                trace: t,
                frontier: mode,
            };
            maximal_independent_set_opts(g, MisAlgorithm::Degk { k: 2 }, arch, seed, &topts)
        });

        let speedup = base_ms / deg2_ms;
        let excluded = arch == Arch::GpuSim && matches!(sp.id, GraphId::C73 | GraphId::Lp1);
        if !excluded {
            speedups.push(speedup);
        }
        t.row(vec![
            sp.name.into(),
            fmt_ms(base_ms),
            fmt_ms(bridge_ms),
            fmt_ms(rand_ms),
            fmt_ms(deg2_ms),
            fmt_x(speedup),
            base.stats.counters.rounds.to_string(),
        ]);
    }
    (t, mean(&speedups))
}

/// Table I: best decomposition + average speedup per (problem, arch),
/// assembled by running the three figures on both architectures.
pub fn table1(suite: &Suite, seed: u64, reps: usize, mode: FrontierMode) -> Table {
    let mut t = schemas::table1().table();
    let (_, mm_cpu) = matching_figure(suite, Arch::Cpu, seed, reps, None, mode);
    let (_, mm_gpu) = matching_figure(suite, Arch::GpuSim, seed, reps, None, mode);
    let (_, col_cpu) = coloring_figure(suite, Arch::Cpu, seed, reps, None, mode);
    let (_, col_gpu) = coloring_figure(suite, Arch::GpuSim, seed, reps, None, mode);
    let (_, mis_cpu) = mis_figure(suite, Arch::Cpu, seed, reps, None, mode);
    let (_, mis_gpu) = mis_figure(suite, Arch::GpuSim, seed, reps, None, mode);
    let f = |x: Option<f64>| x.map_or("-".into(), fmt_x);
    t.row(vec![
        "MM".into(),
        "RAND".into(),
        f(mm_cpu),
        "RAND".into(),
        f(mm_gpu),
        "RAND 3.5x".into(),
        "RAND 2.53x".into(),
    ]);
    t.row(vec![
        "COLOR".into(),
        "DEGk".into(),
        f(col_cpu),
        "RAND".into(),
        f(col_gpu),
        "DEGk 1.27x".into(),
        "RAND 1x".into(),
    ]);
    t.row(vec![
        "MIS".into(),
        "DEGk".into(),
        f(mis_cpu),
        "DEGk".into(),
        f(mis_gpu),
        "DEGk 3.39x".into(),
        "DEGk 2.16x".into(),
    ]);
    t
}

/// Table I's batched twin: for every suite graph, run the paper's three
/// headline composites (MM-Rand at the paper's partition count, COLOR-Deg2,
/// MIS-Deg2) as one `sb-engine` batch, cached vs fresh. The three jobs
/// share one graph ingestion and — for COLOR/MIS — one DEG2 decomposition,
/// so the report's speedup column quantifies what the cache amortizes.
///
/// `scale`/`graph_seed` must match how the suite was generated so the job
/// keys resolve to the same graphs (`--data-dir` file suites regenerate).
pub fn engine_amortization(
    suite: &Suite,
    arch: Arch,
    seed: u64,
    scale: f64,
    mode: FrontierMode,
) -> Result<sb_engine::BatchReport, String> {
    use sb_engine::{run_batch_compare, BatchOptions, EngineConfig, JobSpec, Solver};

    let mut jobs = Vec::new();
    for (sp, _) in &suite.graphs {
        let job = |tag: &str, solver: Solver| JobSpec {
            label: format!("{}-{tag}", sp.name.replace('/', "_")),
            graph: format!("gen:{}", sp.name),
            scale,
            graph_seed: Some(seed),
            solver,
            arch,
            frontier: mode,
            seed,
            threads: None,
            timeout_ms: None,
        };
        let k = mm_rand_partitions(arch, sp);
        jobs.push(job("mm", Solver::Mm(MmAlgorithm::Rand { partitions: k })));
        jobs.push(job("color", Solver::Color(ColorAlgorithm::Degk { k: 2 })));
        jobs.push(job("mis", Solver::Mis(MisAlgorithm::Degk { k: 2 })));
    }
    run_batch_compare(&jobs, EngineConfig::default(), &BatchOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{load_suite, BenchConfig};
    use sb_datasets::suite::Scale;

    fn tiny_suite(filter: &str) -> Suite {
        load_suite(&BenchConfig {
            scale: Scale::Tiny,
            filter: filter.into(),
            ..Default::default()
        })
    }

    #[test]
    fn table2_has_row_per_graph() {
        let suite = tiny_suite("lp1");
        let t = table2(&suite);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0][0], "lp1");
    }

    #[test]
    fn decomposition_figure_runs() {
        let suite = tiny_suite("c-73");
        let t = decomposition_figure(&suite, 1, 1);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    fn matching_figure_verifies_and_reports() {
        let suite = tiny_suite("webbase");
        for mode in [
            FrontierMode::Dense,
            FrontierMode::Compact,
            FrontierMode::Bitset,
        ] {
            let (t, avg) = matching_figure(&suite, Arch::Cpu, 3, 1, None, mode);
            assert_eq!(t.rows.len(), 1);
            assert!(avg.unwrap() > 0.0);
        }
    }

    #[test]
    fn coloring_and_mis_figures_run_gpu() {
        let suite = tiny_suite("coAuthors");
        for mode in [
            FrontierMode::Dense,
            FrontierMode::Compact,
            FrontierMode::Bitset,
        ] {
            let (t, s) = coloring_figure(&suite, Arch::GpuSim, 3, 1, None, mode);
            assert_eq!(t.rows.len(), 1);
            assert!(s.unwrap() > 0.0);
            let (t, s) = mis_figure(&suite, Arch::GpuSim, 3, 1, None, mode);
            assert_eq!(t.rows.len(), 1);
            assert!(s.unwrap() > 0.0);
        }
    }

    #[test]
    fn trace_dir_saves_a_jsonl_per_algo() {
        let dir = std::env::temp_dir().join("sb-bench-test-traces");
        std::fs::remove_dir_all(&dir).ok();
        let suite = tiny_suite("lp1");
        let _ = matching_figure(&suite, Arch::Cpu, 3, 1, Some(&dir), FrontierMode::Compact);
        let base = dir.join("fig3_cpu_lp1_baseline.jsonl");
        let rand = dir.join("fig3_cpu_lp1_rand.jsonl");
        for p in [&base, &rand] {
            let text = std::fs::read_to_string(p).unwrap_or_else(|e| panic!("{p:?}: {e}"));
            let events = sb_trace::parse_jsonl(&text).unwrap();
            assert!(!events.is_empty(), "{p:?} must hold events");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn engine_amortization_batches_three_jobs_per_graph() {
        let suite = tiny_suite("lp1");
        let rep = engine_amortization(&suite, Arch::Cpu, 42, 0.05, FrontierMode::Compact).unwrap();
        assert_eq!(rep.jobs.len(), 3);
        assert!(rep.all_ok());
        assert!(rep.speedup().is_some());
        // COLOR-Deg2 and MIS-Deg2 share one DEG2 decomposition: the later
        // job must hit the cache.
        assert!(rep.jobs.iter().any(|j| j.decomp_cached == Some(true)));
        // All three share one graph ingestion.
        assert!(rep.jobs.iter().filter(|j| j.graph_cached).count() >= 2);
    }

    #[test]
    fn mis_gpu_average_excludes_outliers() {
        // With only the excluded graphs in the suite, the average is None.
        let mut cfg = BenchConfig {
            scale: Scale::Tiny,
            filter: "lp1".into(),
            ..Default::default()
        };
        cfg.arch = Arch::GpuSim;
        let suite = load_suite(&cfg);
        let (_, avg) = mis_figure(&suite, Arch::GpuSim, 1, 1, None, FrontierMode::Compact);
        assert!(avg.is_none());
    }
}
