//! Table formatting and persistence for the bench binaries.

use std::fs;
use std::path::Path;

/// A simple result table, printed as markdown and saved as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption (printed above the table).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells, one inner vector per row.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = format!("\n## {}\n\n", self.title);
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.to_markdown());
    }

    /// Save as `results/<name>.csv` relative to `dir` (created on demand).
    /// Errors name the path that failed, not just the raw io error.
    pub fn save_csv(&self, dir: &Path, name: &str) -> Result<(), String> {
        let path = dir.join(format!("{name}.csv"));
        ensure_parent(&path)?;
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            out.push_str(&escaped.join(","));
            out.push('\n');
        }
        fs::write(&path, out).map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    /// Save as `<dir>/<name>.json` (created on demand): the title plus one
    /// record per row, keyed by the column headers — the machine-readable
    /// twin of [`Table::save_csv`]. Errors name the path that failed.
    pub fn save_json(&self, dir: &Path, name: &str) -> Result<(), String> {
        self.save_json_extra(dir, name, &[])
    }

    /// [`Table::save_json`] with extra top-level fields appended after the
    /// title. Values are emitted verbatim (raw JSON), so callers can attach
    /// booleans or numbers — e.g. `("host_limited", "true")`.
    pub fn save_json_extra(
        &self,
        dir: &Path,
        name: &str,
        extra: &[(&str, String)],
    ) -> Result<(), String> {
        let path = dir.join(format!("{name}.json"));
        ensure_parent(&path)?;
        let records: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let fields: Vec<String> = self
                    .headers
                    .iter()
                    .zip(row)
                    .map(|(h, c)| format!("\"{}\":\"{}\"", json_escape(h), json_escape(c)))
                    .collect();
                format!("{{{}}}", fields.join(","))
            })
            .collect();
        let mut head = format!("\"title\":\"{}\"", json_escape(&self.title));
        for (k, v) in extra {
            head.push_str(&format!(",\"{}\":{v}", json_escape(k)));
        }
        let body = format!("{{{head},\"records\":[{}]}}\n", records.join(","));
        fs::write(&path, body).map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    /// Print and save under `results/` in the current directory.
    pub fn emit(&self, name: &str) {
        self.print();
        if let Err(e) = self.save_csv(Path::new("results"), name) {
            eprintln!("warning: could not save results/{name}.csv: {e}");
        } else {
            println!("\n[saved results/{name}.csv]");
        }
        if let Err(e) = self.save_json(Path::new("results"), name) {
            eprintln!("warning: could not save results/{name}.json: {e}");
        } else {
            println!("[saved results/{name}.json]");
        }
    }
}

/// Create the parent directory of `path`, naming the directory in the error.
fn ensure_parent(path: &Path) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create directory {}: {e}", dir.display()))?;
        }
    }
    Ok(())
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Format milliseconds with sensible precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.3}")
    }
}

/// Format a speedup multiplier.
pub fn fmt_x(x: f64) -> String {
    format!("{x:.2}x")
}

/// Format a speedup cell, refusing to present a clean multiplier when the
/// host had no real parallelism: every thread count ran on one core, so the
/// ratio measures pool overhead, not scaling.
pub fn fmt_speedup(x: f64, host_limited: bool) -> String {
    if host_limited {
        format!("{} (host-limited)", fmt_x(x))
    } else {
        fmt_x(x)
    }
}

/// Arithmetic mean (the paper's "average speedup"); `None` when empty.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "hello".into()]);
        let md = t.to_markdown();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| a | b"));
        assert!(md.contains("| 1 | hello |"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_saving_escapes() {
        let dir = std::env::temp_dir().join("sb-bench-test-csv");
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["va,l".into(), "pl\"ain".into()]);
        t.save_csv(&dir, "t").unwrap();
        let got = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(got, "a,b\n\"va,l\",\"pl\"\"ain\"\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_saving_keys_records_by_header() {
        let dir = std::env::temp_dir().join("sb-bench-test-json");
        let mut t = Table::new("Fig X — demo", &["graph", "ms"]);
        t.row(vec!["lp1".into(), "1.5".into()]);
        t.row(vec!["quo\"ted".into(), "2".into()]);
        t.save_json(&dir, "t").unwrap();
        let got = std::fs::read_to_string(dir.join("t.json")).unwrap();
        assert_eq!(
            got,
            "{\"title\":\"Fig X — demo\",\"records\":[\
             {\"graph\":\"lp1\",\"ms\":\"1.5\"},\
             {\"graph\":\"quo\\\"ted\",\"ms\":\"2\"}]}\n"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_extra_fields_are_raw_values() {
        let dir = std::env::temp_dir().join("sb-bench-test-json-extra");
        let mut t = Table::new("T", &["a"]);
        t.row(vec!["1".into()]);
        t.save_json_extra(&dir, "t", &[("host_limited", "true".into())])
            .unwrap();
        let got = std::fs::read_to_string(dir.join("t.json")).unwrap();
        assert_eq!(
            got,
            "{\"title\":\"T\",\"host_limited\":true,\"records\":[{\"a\":\"1\"}]}\n"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn speedup_annotates_host_limited_hosts() {
        assert_eq!(fmt_speedup(2.5, false), "2.50x");
        assert_eq!(fmt_speedup(1.02, true), "1.02x (host-limited)");
    }

    #[test]
    fn json_escape_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn save_creates_parents_and_errors_name_the_path() {
        let dir = std::env::temp_dir()
            .join("sb-bench-test-parents")
            .join("deep")
            .join("er");
        std::fs::remove_dir_all(std::env::temp_dir().join("sb-bench-test-parents")).ok();
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into()]);
        t.save_csv(&dir, "t").unwrap();
        t.save_json(&dir, "t").unwrap();
        assert!(dir.join("t.csv").is_file());
        assert!(dir.join("t.json").is_file());

        // A file where a directory must go: both writers fail, and the
        // message carries the offending path so the user can act on it.
        let clash_root = std::env::temp_dir().join("sb-bench-test-parents-clash");
        std::fs::remove_dir_all(&clash_root).ok();
        std::fs::create_dir_all(&clash_root).unwrap();
        let file_as_dir = clash_root.join("not-a-dir");
        std::fs::write(&file_as_dir, "occupied").unwrap();
        let err = t.save_json(&file_as_dir, "t").unwrap_err();
        assert!(
            err.contains("not-a-dir"),
            "error should name the path, got: {err}"
        );
        let err = t.save_csv(&file_as_dir, "t").unwrap_err();
        assert!(err.contains("not-a-dir"), "got: {err}");
        std::fs::remove_dir_all(std::env::temp_dir().join("sb-bench-test-parents")).ok();
        std::fs::remove_dir_all(&clash_root).ok();
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ms(123.4), "123");
        assert_eq!(fmt_ms(12.34), "12.3");
        assert_eq!(fmt_ms(0.1234), "0.123");
        assert_eq!(fmt_x(2.5), "2.50x");
        assert_eq!(mean(&[1.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }
}
