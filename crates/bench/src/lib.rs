//! Benchmark harness for the symmetry-breaking study.
//!
//! One binary per table/figure of the paper (see DESIGN.md §4):
//!
//! | Binary | Reproduces |
//! |--------|------------|
//! | `table2` | Table II — dataset statistics |
//! | `fig2` | Figure 2 — decomposition times |
//! | `fig3` | Figure 3 — maximal matching (`--arch cpu` / `--arch gpu`) |
//! | `fig4` | Figure 4 — coloring |
//! | `fig5` | Figure 5 — MIS |
//! | `table1` | Table I — best decomposition + average speedup summary |
//! | `color_overhead` | §IV-D color-count overhead discussion |
//! | `ablate_partitions` | §III-D / §IV-D partition-count sweeps |
//! | `ablate_iterations` | §III-C iteration-count narrative (vain tendency) |
//! | `ablate_bicc` | extension: BRIDGE vs BICC composites |
//! | `ablate_threads` | extension: strong scaling over rayon pool sizes |
//! | `ablate_frontier` | extension: dense full-sweep rounds vs compacted worklists (writes `results/BENCH_frontier.json`, self-asserts the edge-scan reduction) |
//! | `model_report` | GPU cost-model audit: raw counter breakdown per algorithm |
//!
//! Shared flags (all binaries): `--scale <f>` (dataset size multiplier,
//! default 1.0), `--seed <u64>`, `--graphs <substring>` (filter), `--reps
//! <n>` (timing repetitions, minimum is reported), `--data-dir <path>`
//! (directory of real SuiteSparse `.mtx` files, used when present),
//! `--frontier dense|compact|bitset` (solver round representation, default
//! `compact`). Figure binaries also take `--arch cpu|gpu`.
//!
//! Every run verifies every solution it times and writes its table to
//! `results/<name>.csv` next to printing it.

pub mod harness;
pub mod perfdiff;
pub mod report;
pub mod runners;
pub mod schemas;
