//! Shared configuration and dataset loading for the bench binaries.

use sb_core::common::{Arch, FrontierMode};
use sb_datasets::suite::{load_or_generate, spec, DatasetSpec, GraphId, Scale};
use sb_engine::{Engine, EngineConfig, GraphSource};
use sb_graph::csr::Graph;
use std::path::PathBuf;
use std::sync::Arc;

/// Configuration shared by all bench binaries, parsed from CLI arguments.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Dataset size multiplier (1.0 = the default laptop-scale suite).
    pub scale: Scale,
    /// Seed for generators and randomized algorithms.
    pub seed: u64,
    /// Execution model under test (figure binaries).
    pub arch: Arch,
    /// Substring filter on graph names (empty = all).
    pub filter: String,
    /// Timing repetitions; the minimum is reported.
    pub reps: usize,
    /// Optional directory of real SuiteSparse `.mtx` files.
    pub data_dir: Option<PathBuf>,
    /// When set, figure runners save a per-(graph, algorithm) trace JSONL
    /// under this directory (from an extra untimed run, so the reported
    /// timings stay trace-free).
    pub trace_dir: Option<PathBuf>,
    /// Thread counts to run at (`--threads 1,2,4`). Empty means the
    /// binary's default axis: powers of two up to the host parallelism for
    /// scaling harnesses, the host default for single-pool binaries.
    pub threads: Vec<usize>,
    /// Round-loop live-set strategy (`--frontier dense|compact|bitset`):
    /// compacted worklists (the default) vs full dense rescans vs u64-bitset
    /// live sets, for A/B/C comparison.
    pub frontier: FrontierMode,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            scale: Scale::Default,
            seed: 42,
            arch: Arch::Cpu,
            filter: String::new(),
            reps: 1,
            data_dir: None,
            trace_dir: None,
            threads: Vec::new(),
            frontier: FrontierMode::default(),
        }
    }
}

/// The flags every bench binary accepts, for usage errors.
pub const BENCH_USAGE: &str = "flags: --scale <float> --seed <u64> --arch cpu|gpu \
     --graphs <substring> --reps <n> --data-dir <dir> --trace-dir <dir> \
     --threads <n[,n,…]> --frontier dense|compact|bitset";

impl BenchConfig {
    /// Parse `--scale`, `--seed`, `--arch`, `--graphs`, `--reps`,
    /// `--data-dir`, `--trace-dir` from an argument list. Any unknown flag,
    /// missing value, or malformed value is a hard error naming the
    /// offending flag — never a silent fallback.
    pub fn try_from_args<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut cfg = Self::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            let mut val = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
            match a.as_str() {
                "--scale" => {
                    let raw = val("--scale")?;
                    let f: f64 = raw
                        .parse()
                        .map_err(|_| format!("--scale takes a float, got '{raw}'"))?;
                    cfg.scale = Scale::Factor(f);
                }
                "--seed" => {
                    let raw = val("--seed")?;
                    cfg.seed = raw
                        .parse()
                        .map_err(|_| format!("--seed takes a u64, got '{raw}'"))?;
                }
                "--arch" => {
                    cfg.arch = match val("--arch")?.as_str() {
                        "cpu" => Arch::Cpu,
                        "gpu" => Arch::GpuSim,
                        other => return Err(format!("--arch must be cpu or gpu, got '{other}'")),
                    }
                }
                "--graphs" => cfg.filter = val("--graphs")?,
                "--reps" => {
                    let raw = val("--reps")?;
                    cfg.reps = raw
                        .parse()
                        .map_err(|_| format!("--reps takes a usize, got '{raw}'"))?;
                }
                "--data-dir" => cfg.data_dir = Some(PathBuf::from(val("--data-dir")?)),
                "--trace-dir" => cfg.trace_dir = Some(PathBuf::from(val("--trace-dir")?)),
                "--threads" => {
                    let raw = val("--threads")?;
                    cfg.threads = raw
                        .split(',')
                        .map(|p| match p.trim().parse::<usize>() {
                            Ok(n) if n >= 1 => Ok(n),
                            _ => Err(format!(
                                "--threads takes positive integers, got '{p}' in '{raw}'"
                            )),
                        })
                        .collect::<Result<Vec<usize>, String>>()?;
                }
                "--frontier" => {
                    let raw = val("--frontier")?;
                    cfg.frontier = raw.parse().map_err(|_| {
                        format!("--frontier must be dense, compact, or bitset, got '{raw}'")
                    })?;
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(cfg)
    }

    /// [`Self::try_from_args`], panicking with the usage line on malformed
    /// input (for tests and programmatic callers).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        match Self::try_from_args(args) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}\n{BENCH_USAGE}"),
        }
    }

    /// Parse from `std::env::args` (skipping the binary name); prints the
    /// error plus usage and exits with status 2 on malformed input.
    pub fn from_env() -> Self {
        match Self::try_from_args(std::env::args().skip(1)) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("error: {e}\n{BENCH_USAGE}");
                std::process::exit(2)
            }
        }
    }
}

/// The loaded dataset suite: Table II specs paired with their (generated or
/// loaded) graphs. Graphs are `Arc`-shared so the suite, the engine's graph
/// cache, and batch jobs can all hold the same ingestion without copying.
pub struct Suite {
    /// Spec + graph, in Table II order.
    pub graphs: Vec<(DatasetSpec, Arc<Graph>)>,
}

/// Load (or generate) every suite graph passing the config's filter.
///
/// Generated graphs route through [`load_suite_with`] and an engine's graph
/// cache, so a runner that also drives `sb-engine` batches (the Table I
/// amortization report) pays ingestion once per graph.
pub fn load_suite(cfg: &BenchConfig) -> Suite {
    load_suite_with(cfg, &mut Engine::new(EngineConfig::default()))
}

/// [`load_suite`] against a caller-owned engine: generated graphs go through
/// `engine.graph(..)` keyed by `(name, scale, seed)`, so later batch jobs on
/// the same engine hit the cache. Graphs from `--data-dir` files bypass the
/// engine (their identity is the path, not the generator key).
pub fn load_suite_with(cfg: &BenchConfig, engine: &mut Engine) -> Suite {
    let graphs = GraphId::ALL
        .into_iter()
        .map(spec)
        .filter(|sp| cfg.filter.is_empty() || sp.name.contains(&cfg.filter))
        .map(|sp| {
            let g = if cfg.data_dir.is_some() {
                Arc::new(load_or_generate(
                    sp.id,
                    cfg.data_dir.as_deref(),
                    cfg.scale,
                    cfg.seed,
                ))
            } else {
                let src = GraphSource::Gen {
                    id: sp.id,
                    name: sp.name.to_string(),
                    scale: cfg.scale.factor(),
                    seed: cfg.seed,
                };
                let (g, _fingerprint, _cached) = engine
                    .graph(&src)
                    .unwrap_or_else(|e| panic!("cannot load {}: {e}", sp.name));
                g
            };
            (sp, g)
        })
        .collect();
    Suite { graphs }
}

/// Thread-count axis for scaling harnesses: the config's `--threads` list
/// when given, else powers of two up to the host's available parallelism.
pub fn thread_counts(cfg: &BenchConfig) -> Vec<usize> {
    if !cfg.threads.is_empty() {
        return cfg.threads.clone();
    }
    let max = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut ts = vec![1usize];
    while ts.last().unwrap() * 2 <= max {
        ts.push(ts.last().unwrap() * 2);
    }
    ts
}

/// The RAND partition count the paper uses for matching: 10 on the CPU, 4
/// on the GPU, and 100 on the high-average-degree kron instances (§III-C).
pub fn mm_rand_partitions(arch: Arch, sp: &DatasetSpec) -> usize {
    if matches!(sp.id, GraphId::KronLogn20 | GraphId::KronLogn21) {
        100
    } else {
        match arch {
            Arch::Cpu => 10,
            Arch::GpuSim => 4,
        }
    }
}

/// Partition count for COLOR-Rand (§IV-C experiments with two partitions;
/// more partitions only add conflicts).
pub fn color_rand_partitions(_arch: Arch) -> usize {
    2
}

/// Partition count for MIS-Rand (same setting as matching).
pub fn mis_rand_partitions(arch: Arch) -> usize {
    match arch {
        Arch::Cpu => 10,
        Arch::GpuSim => 4,
    }
}

/// Time `f` over `reps` repetitions, returning the minimum duration and the
/// last result.
pub fn time_min<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(reps >= 1);
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let sw = std::time::Instant::now();
        let r = f();
        best = best.min(sw.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing_roundtrip() {
        let cfg = BenchConfig::from_args(
            [
                "--scale", "0.5", "--seed", "7", "--arch", "gpu", "--graphs", "kron", "--reps", "3",
            ]
            .map(String::from),
        );
        assert_eq!(cfg.scale, Scale::Factor(0.5));
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.arch, Arch::GpuSim);
        assert_eq!(cfg.filter, "kron");
        assert_eq!(cfg.reps, 3);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown_flag() {
        BenchConfig::from_args(["--bogus".to_string()]);
    }

    #[test]
    fn errors_name_the_offending_flag() {
        let e = BenchConfig::try_from_args(["--bogus".to_string()]).unwrap_err();
        assert!(e.contains("--bogus"), "got: {e}");
        let e = BenchConfig::try_from_args(["--seed".to_string()]).unwrap_err();
        assert!(
            e.contains("--seed") && e.contains("needs a value"),
            "got: {e}"
        );
        let e =
            BenchConfig::try_from_args(["--scale".to_string(), "fast".to_string()]).unwrap_err();
        assert!(e.contains("--scale") && e.contains("'fast'"), "got: {e}");
        let e = BenchConfig::try_from_args(["--reps".to_string(), "-1".to_string()]).unwrap_err();
        assert!(e.contains("--reps"), "got: {e}");
        let e = BenchConfig::try_from_args(["--arch".to_string(), "tpu".to_string()]).unwrap_err();
        assert!(e.contains("--arch") && e.contains("'tpu'"), "got: {e}");
        let e = BenchConfig::try_from_args(["--frontier".to_string(), "sparse".to_string()])
            .unwrap_err();
        assert!(
            e.contains("--frontier") && e.contains("'sparse'"),
            "got: {e}"
        );
    }

    #[test]
    fn frontier_flag_parses_and_defaults_to_compact() {
        assert_eq!(BenchConfig::default().frontier, FrontierMode::Compact);
        let cfg = BenchConfig::from_args(["--frontier", "dense"].map(String::from));
        assert_eq!(cfg.frontier, FrontierMode::Dense);
        let cfg = BenchConfig::from_args(["--frontier", "compact"].map(String::from));
        assert_eq!(cfg.frontier, FrontierMode::Compact);
        let cfg = BenchConfig::from_args(["--frontier", "bitset"].map(String::from));
        assert_eq!(cfg.frontier, FrontierMode::Bitset);
    }

    #[test]
    fn threads_flag_parses_lists() {
        let cfg = BenchConfig::from_args(["--threads", "1,2,4"].map(String::from));
        assert_eq!(cfg.threads, vec![1, 2, 4]);
        assert_eq!(thread_counts(&cfg), vec![1, 2, 4]);
        let cfg = BenchConfig::from_args(["--threads", "8"].map(String::from));
        assert_eq!(cfg.threads, vec![8]);
        let e = BenchConfig::try_from_args(["--threads".into(), "1,0".into()]).unwrap_err();
        assert!(e.contains("--threads") && e.contains("'0'"), "got: {e}");
        let e = BenchConfig::try_from_args(["--threads".into(), "two".into()]).unwrap_err();
        assert!(e.contains("'two'"), "got: {e}");
    }

    #[test]
    fn default_thread_axis_is_powers_of_two() {
        let ts = thread_counts(&BenchConfig::default());
        assert_eq!(ts[0], 1);
        for w in ts.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
        let max = std::thread::available_parallelism().map_or(1, |p| p.get());
        assert!(*ts.last().unwrap() <= max);
    }

    #[test]
    fn trace_dir_parses() {
        let cfg =
            BenchConfig::from_args(["--trace-dir", "/tmp/traces", "--reps", "2"].map(String::from));
        assert_eq!(cfg.trace_dir, Some(PathBuf::from("/tmp/traces")));
        assert_eq!(cfg.reps, 2);
        assert_eq!(
            BenchConfig::from_args(std::iter::empty::<String>()).trace_dir,
            None
        );
    }

    #[test]
    fn filtered_suite_loads_only_matches() {
        let cfg = BenchConfig {
            scale: Scale::Tiny,
            filter: "lp1".into(),
            ..Default::default()
        };
        let suite = load_suite(&cfg);
        assert_eq!(suite.graphs.len(), 1);
        assert_eq!(suite.graphs[0].0.name, "lp1");
        assert!(suite.graphs[0].1.num_vertices() > 0);
    }

    #[test]
    fn partition_choices_follow_paper() {
        let kron = spec(GraphId::KronLogn20);
        let rgg = spec(GraphId::Rgg23);
        assert_eq!(mm_rand_partitions(Arch::Cpu, &kron), 100);
        assert_eq!(mm_rand_partitions(Arch::Cpu, &rgg), 10);
        assert_eq!(mm_rand_partitions(Arch::GpuSim, &rgg), 4);
        assert_eq!(color_rand_partitions(Arch::Cpu), 2);
    }

    #[test]
    fn time_min_returns_minimum() {
        let mut calls = 0;
        let (ms, v) = time_min(3, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 3);
        assert_eq!(v, 3);
        assert!(ms >= 0.0);
    }
}
