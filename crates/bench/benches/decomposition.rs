//! Criterion micro-benchmarks for the four decomposition techniques
//! (the per-kernel view behind Figure 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sb_datasets::suite::{generate, GraphId, Scale};
use sb_decompose::{
    decompose_bicc, decompose_bridge, decompose_degk, decompose_metis_like, decompose_rand,
};
use sb_par::counters::Counters;
use std::hint::black_box;

fn bench_decompositions(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposition");
    group.sample_size(10);
    for id in [GraphId::C73, GraphId::GermanyOsm, GraphId::WebGoogle] {
        let g = generate(id, Scale::Factor(0.2), 42);
        let name = format!("{id:?}");
        group.bench_with_input(BenchmarkId::new("bridge", &name), &g, |b, g| {
            b.iter(|| black_box(decompose_bridge(g, &Counters::new())))
        });
        group.bench_with_input(BenchmarkId::new("rand10", &name), &g, |b, g| {
            b.iter(|| black_box(decompose_rand(g, 10, 7, &Counters::new())))
        });
        group.bench_with_input(BenchmarkId::new("deg2", &name), &g, |b, g| {
            b.iter(|| black_box(decompose_degk(g, 2, &Counters::new())))
        });
        group.bench_with_input(BenchmarkId::new("metis_like8", &name), &g, |b, g| {
            b.iter(|| black_box(decompose_metis_like(g, 8, &Counters::new())))
        });
        group.bench_with_input(BenchmarkId::new("bicc", &name), &g, |b, g| {
            b.iter(|| black_box(decompose_bicc(g, &Counters::new())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decompositions);
criterion_main!(benches);
