//! Criterion micro-benchmarks for the MIS algorithms (Figure 5's
//! per-algorithm view), plus the greedy-baseline and oriented-vs-Luby
//! ablations from DESIGN.md §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sb_core::common::Arch;
use sb_core::mis::greedy::greedy_mis;
use sb_core::mis::luby::{luby_extend, luby_extend_compacted};
use sb_core::mis::oriented::oriented_mis_extend;
use sb_core::mis::{maximal_independent_set, MisAlgorithm};
use sb_datasets::suite::{generate, GraphId, Scale};
use sb_par::counters::Counters;
use std::hint::black_box;

fn bench_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis");
    group.sample_size(10);
    for id in [GraphId::Lp1, GraphId::WebGoogle] {
        let g = generate(id, Scale::Factor(0.2), 42);
        let name = format!("{id:?}");
        for (algo, label) in [
            (MisAlgorithm::Baseline, "luby"),
            (MisAlgorithm::Bridge, "bridge"),
            (MisAlgorithm::Rand { partitions: 10 }, "rand10"),
            (MisAlgorithm::Degk { k: 2 }, "deg2"),
        ] {
            for arch in [Arch::Cpu, Arch::GpuSim] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{label}/{arch}"), &name),
                    &g,
                    |b, g| b.iter(|| black_box(maximal_independent_set(g, algo, arch, 7))),
                );
            }
        }
    }
    group.finish();
}

fn bench_low_degree_solvers(c: &mut Criterion) {
    // Ablation: on a pure degree-≤2 graph, the deterministic oriented
    // algorithm vs Luby — the source of MIS-Deg2's wins.
    let mut group = c.benchmark_group("mis_low_degree_solver");
    group.sample_size(10);
    let g = generate(GraphId::GermanyOsm, Scale::Factor(0.2), 42);
    let d = sb_decompose::decompose_degk(&g, 2, &Counters::new());
    let low_side: Vec<bool> = d.is_high.iter().map(|&h| !h).collect();
    group.bench_function("oriented", |b| {
        b.iter(|| {
            let mut st = vec![0u8; g.num_vertices()];
            oriented_mis_extend(&g, d.low_view(), &mut st, Some(&low_side), &Counters::new());
            black_box(st)
        })
    });
    group.bench_function("luby", |b| {
        b.iter(|| {
            let mut st = vec![0u8; g.num_vertices()];
            luby_extend(
                &g,
                d.low_view(),
                &mut st,
                Some(&low_side),
                7,
                &Counters::new(),
            );
            black_box(st)
        })
    });
    group.finish();
}

fn bench_baseline_engineering(c: &mut Criterion) {
    // The reproduction finding (EXPERIMENTS.md): how much of the paper's
    // MIS speedup is an artifact of the classic full-sweep baseline vs
    // modern baseline engineering.
    let mut group = c.benchmark_group("mis_baseline_engineering");
    group.sample_size(10);
    let g = generate(GraphId::CoAuthorsCiteseer, Scale::Factor(0.2), 42);
    group.bench_function("classic_luby_full_sweep", |b| {
        b.iter(|| {
            let mut st = vec![0u8; g.num_vertices()];
            luby_extend(
                &g,
                sb_graph::view::EdgeView::full(),
                &mut st,
                None,
                7,
                &Counters::new(),
            );
            black_box(st)
        })
    });
    group.bench_function("local_min_compacted", |b| {
        b.iter(|| {
            let mut st = vec![0u8; g.num_vertices()];
            luby_extend_compacted(
                &g,
                sb_graph::view::EdgeView::full(),
                &mut st,
                None,
                7,
                &Counters::new(),
            );
            black_box(st)
        })
    });
    group.bench_function("greedy_static_priorities", |b| {
        b.iter(|| {
            let mut st = vec![0u8; g.num_vertices()];
            greedy_mis(&g, &mut st, 7, &Counters::new());
            black_box(st)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mis,
    bench_low_degree_solvers,
    bench_baseline_engineering
);
criterion_main!(benches);
