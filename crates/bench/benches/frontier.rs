//! Criterion micro-benchmarks for the frontier-compaction primitive:
//! `compact_active` (two-pass blocked count + scatter) against the naive
//! dense scan (`filter` + `collect` over the whole index range), across
//! worklist sizes and survivor densities, plus an end-to-end dense vs
//! compact solve of LubyMIS (the DESIGN.md §10 headline comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sb_core::common::{Arch, FrontierMode, SolveOpts};
use sb_core::mis::{maximal_independent_set_opts, MisAlgorithm};
use sb_datasets::suite::{generate, GraphId, Scale};
use sb_par::frontier::compact_active;
use sb_par::rng::hash3;
use std::hint::black_box;

fn bench_compact_primitive(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontier_compact");
    group.sample_size(20);
    for n in [1usize << 12, 1 << 16, 1 << 20] {
        let src: Vec<u32> = (0..n as u32).collect();
        // Survivor fraction per item, decided by a cheap deterministic hash
        // so both variants do identical predicate work.
        for keep_pct in [5u64, 50, 95] {
            let threshold = u64::MAX / 100 * keep_pct;
            let keep = move |v: u32| hash3(9, 9, v as u64) < threshold;
            group.bench_with_input(
                BenchmarkId::new(format!("compact_active/{keep_pct}pct"), n),
                &src,
                |b, src| {
                    let mut dst = Vec::new();
                    b.iter(|| {
                        compact_active(src, keep, &mut dst);
                        black_box(dst.len())
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("dense_scan/{keep_pct}pct"), n),
                &src,
                |b, src| {
                    b.iter(|| {
                        let out: Vec<u32> = src.iter().copied().filter(|&v| keep(v)).collect();
                        black_box(out.len())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_mode_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontier_mode");
    group.sample_size(10);
    let g = generate(GraphId::Rgg23, Scale::Factor(0.2), 42);
    for mode in [
        FrontierMode::Dense,
        FrontierMode::Compact,
        FrontierMode::Bitset,
    ] {
        let opts = SolveOpts::with_mode(mode);
        group.bench_function(format!("luby/{mode}"), |b| {
            b.iter(|| {
                black_box(maximal_independent_set_opts(
                    &g,
                    MisAlgorithm::Baseline,
                    Arch::Cpu,
                    7,
                    &opts,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compact_primitive, bench_mode_end_to_end);
criterion_main!(benches);
