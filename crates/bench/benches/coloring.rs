//! Criterion micro-benchmarks for the coloring algorithms (Figure 4's
//! per-algorithm view), plus the FORBIDDEN-window and Jones–Plassmann
//! ablations from DESIGN.md §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sb_core::coloring::jp::{jp_color_ordered, JpOrdering};
use sb_core::coloring::vb::vb_extend;
use sb_core::coloring::{vertex_coloring, ColorAlgorithm};
use sb_core::common::Arch;
use sb_datasets::suite::{generate, GraphId, Scale};
use sb_graph::csr::INVALID;
use sb_par::counters::Counters;
use std::hint::black_box;

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring");
    group.sample_size(10);
    for id in [GraphId::GermanyOsm, GraphId::WebGoogle] {
        let g = generate(id, Scale::Factor(0.2), 42);
        let name = format!("{id:?}");
        for (algo, label) in [
            (ColorAlgorithm::Baseline, "baseline"),
            (ColorAlgorithm::Bridge, "bridge"),
            (ColorAlgorithm::Rand { partitions: 2 }, "rand2"),
            (ColorAlgorithm::Degk { k: 2 }, "deg2"),
        ] {
            for arch in [Arch::Cpu, Arch::GpuSim] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{label}/{arch}"), &name),
                    &g,
                    |b, g| b.iter(|| black_box(vertex_coloring(g, algo, arch, 7))),
                );
            }
        }
    }
    group.finish();
}

fn bench_forbidden_window(c: &mut Criterion) {
    // Ablation: VB's FORBIDDEN-window size (the paper sets it to the
    // average degree on the CPU).
    let mut group = c.benchmark_group("coloring_forbidden_window");
    group.sample_size(10);
    let g = generate(GraphId::CitPatents, Scale::Factor(0.15), 42);
    for window in [2usize, 4, 8, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter(|| {
                let mut color = vec![INVALID; g.num_vertices()];
                vb_extend(
                    &g,
                    sb_graph::view::EdgeView::full(),
                    &mut color,
                    g.vertices().collect(),
                    w,
                    0,
                    &Counters::new(),
                );
                black_box(color)
            })
        });
    }
    group.finish();
}

fn bench_jones_plassmann(c: &mut Criterion) {
    // Hasenplaugh et al. ordering heuristics vs the speculative baseline.
    let mut group = c.benchmark_group("coloring_jp_vs_vb");
    group.sample_size(10);
    let g = generate(GraphId::CoAuthorsCiteseer, Scale::Factor(0.2), 42);
    for (ordering, label) in [
        (JpOrdering::Random, "jp_random"),
        (JpOrdering::LargestDegreeFirst, "jp_largest_first"),
        (JpOrdering::SmallestDegreeLast, "jp_smallest_last"),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| black_box(jp_color_ordered(&g, ordering, 7, &Counters::new())))
        });
    }
    group.bench_function("vb", |b| {
        b.iter(|| black_box(vertex_coloring(&g, ColorAlgorithm::Baseline, Arch::Cpu, 7)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_coloring,
    bench_forbidden_window,
    bench_jones_plassmann
);
criterion_main!(benches);
