//! Criterion micro-benchmarks for the matching algorithms (Figure 3's
//! per-algorithm view), plus the DEGk-threshold and proposal-rule
//! ablations from DESIGN.md §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sb_core::common::Arch;
use sb_core::matching::gm::{gm_extend, gm_random_extend};
use sb_core::matching::ii::ii_extend;
use sb_core::matching::{maximal_matching, MmAlgorithm};
use sb_datasets::suite::{generate, GraphId, Scale};
use sb_graph::csr::INVALID;
use sb_par::counters::Counters;
use std::hint::black_box;

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    group.sample_size(10);
    for id in [GraphId::Webbase1M, GraphId::CoAuthorsCiteseer] {
        let g = generate(id, Scale::Factor(0.2), 42);
        let name = format!("{id:?}");
        for (algo, label) in [
            (MmAlgorithm::Baseline, "baseline"),
            (MmAlgorithm::Bridge, "bridge"),
            (MmAlgorithm::Rand { partitions: 10 }, "rand10"),
            (MmAlgorithm::Degk { k: 2 }, "deg2"),
        ] {
            for arch in [Arch::Cpu, Arch::GpuSim] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{label}/{arch}"), &name),
                    &g,
                    |b, g| b.iter(|| black_box(maximal_matching(g, algo, arch, 7))),
                );
            }
        }
    }
    group.finish();
}

fn bench_proposal_rules(c: &mut Criterion) {
    // Ablation: lowest-id proposals (vain tendency) vs random priorities.
    let mut group = c.benchmark_group("matching_proposal_rule");
    group.sample_size(10);
    let g = generate(GraphId::Rgg23, Scale::Factor(0.1), 42);
    group.bench_function("lowest_id", |b| {
        b.iter(|| {
            let mut mate = vec![INVALID; g.num_vertices()];
            gm_extend(
                &g,
                sb_graph::view::EdgeView::full(),
                &mut mate,
                None,
                &Counters::new(),
            );
            black_box(mate)
        })
    });
    group.bench_function("random_priority", |b| {
        b.iter(|| {
            let mut mate = vec![INVALID; g.num_vertices()];
            gm_random_extend(
                &g,
                sb_graph::view::EdgeView::full(),
                &mut mate,
                None,
                7,
                &Counters::new(),
            );
            black_box(mate)
        })
    });
    group.bench_function("israeli_itai", |b| {
        b.iter(|| {
            let mut mate = vec![INVALID; g.num_vertices()];
            ii_extend(
                &g,
                sb_graph::view::EdgeView::full(),
                &mut mate,
                None,
                7,
                &Counters::new(),
            );
            black_box(mate)
        })
    });
    group.finish();
}

fn bench_degk_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching_degk_threshold");
    group.sample_size(10);
    let g = generate(GraphId::RoadCentral, Scale::Factor(0.15), 42);
    for k in [1usize, 2, 3, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(maximal_matching(&g, MmAlgorithm::Degk { k }, Arch::Cpu, 7)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matching,
    bench_proposal_rules,
    bench_degk_threshold
);
criterion_main!(benches);
