//! `sb-fuzz` — differential fuzzing oracle for the symmetry-breaking
//! solvers (DESIGN.md §11).
//!
//! The harness sweeps adversarial graphs ([`gen`]) across the full
//! registered solver matrix ([`config`]), runs each configuration at
//! dense/compact × 1/N threads, and cross-checks validity, the
//! byte-equality contract, and sb-trace round/counter accounting
//! ([`oracle`]). Each case also runs the **engine axis**
//! ([`oracle::check_engine_case`]): the same configuration through
//! `sb-engine` with a warm decomposition cache and with caching disabled
//! (`cache cap 0`), asserting cached and fresh outputs are byte-identical
//! with identical verify outcomes. A failing case is minimized by delta-debugging
//! ([`shrink`]) and written as a replayable case file plus a
//! ready-to-paste regression test ([`case`]).
//!
//! Entry points: [`run_fuzz`] (library), `sbreak fuzz` (CLI), and the
//! `fuzz_smoke` binary (CI: planted-bug self-test, then a budgeted clean
//! sweep).

pub mod case;
pub mod config;
pub mod gen;
pub mod oracle;
pub mod shrink;

pub use case::CaseFile;
pub use config::SolverConfig;
pub use oracle::{Failure, Mutation};

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Options for one fuzzing sweep.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Master seed: per-case solver seeds are derived from it, so a sweep
    /// is reproducible from this one number.
    pub master_seed: u64,
    /// Wall-clock budget; the sweep stops cleanly when it runs out.
    pub budget: Option<Duration>,
    /// Hard cap on cases run (handy for quick smoke tests).
    pub max_cases: Option<usize>,
    /// The N in the 1-vs-N thread matrix.
    pub wide_threads: usize,
    /// Seeds tried per (graph, configuration) pair.
    pub seeds_per_config: usize,
    /// Where counterexample files go; `None` keeps them in memory only.
    pub out_dir: Option<PathBuf>,
    /// Planted solver corruption (harness self-validation).
    pub mutation: Mutation,
    /// Stop after this many counterexamples.
    pub max_counterexamples: usize,
    /// Oracle evaluations the shrinker may spend per counterexample.
    pub shrink_evals: usize,
    /// Also run the engine configuration axis per case: cached vs cap-0
    /// fresh `sb-engine` runs must be byte-identical with identical
    /// verify outcomes (see [`oracle::check_engine_case`]).
    pub engine_axis: bool,
    /// Also run the serve axis: every [`SERVE_INTERVAL`]-th case is
    /// routed through a resident loopback `sbreak serve` daemon as an
    /// `inline:` graph and its solution text byte-compared against an
    /// in-process engine (see [`oracle::check_serve_case`]).
    pub serve_axis: bool,
    /// Also run the edit axis per case: chain a derived random edit
    /// sequence over the graph, repairing the prior solution per batch,
    /// and check validity, repaired-vs-fresh agreement, and frontier-mode
    /// invariance (see [`oracle::check_edit_case`]).
    pub edit_axis: bool,
}

/// One in [`SERVE_INTERVAL`] cases rides the serve axis: the wire adds
/// real latency per case, so the sweep samples it rather than paying it
/// everywhere.
pub const SERVE_INTERVAL: u64 = 16;

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions {
            master_seed: 0xF022_5EED,
            budget: None,
            max_cases: None,
            wide_threads: 4,
            seeds_per_config: 2,
            out_dir: None,
            mutation: Mutation::None,
            max_counterexamples: 5,
            shrink_evals: 400,
            engine_axis: true,
            serve_axis: true,
            edit_axis: true,
        }
    }
}

/// The full per-case oracle: the solver matrix cross-check, then (when
/// enabled) the engine cached-vs-fresh axis, then — when a daemon is
/// supplied — the serve wire axis. Used by the sweep and by the shrinker,
/// so minimization preserves whichever axis failed.
fn full_check(
    g: &sb_graph::csr::Graph,
    cfg: &SolverConfig,
    seed: u64,
    opts: &FuzzOptions,
    serve: Option<&oracle::ServeOracle>,
) -> Result<(), oracle::Failure> {
    oracle::check_case(g, cfg, seed, opts.wide_threads, opts.mutation)?;
    if opts.engine_axis {
        oracle::check_engine_case(g, cfg, seed, opts.mutation)?;
    }
    if opts.edit_axis {
        oracle::check_edit_case(g, cfg, seed, opts.wide_threads, opts.mutation)?;
    }
    if let Some(daemon) = serve {
        oracle::check_serve_case(g, cfg, seed, opts.mutation, daemon)?;
    }
    Ok(())
}

/// One confirmed, minimized contract violation.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Failing configuration label.
    pub config: String,
    /// Generator shape the failure was found on.
    pub graph: String,
    /// Solver seed.
    pub seed: u64,
    /// Failure kind (`validity`, `equality`, `accounting`, `rounds`).
    pub kind: String,
    /// Full failure description from the *original* (unshrunk) case.
    pub detail: String,
    /// Original case size.
    pub orig_n: usize,
    /// Minimized case.
    pub shrunk: shrink::Shrunk,
    /// For edit-axis failures: the ddmin-minimized edit sequence over the
    /// shrunk graph, batches in wire form joined with `;`.
    pub edits: Option<String>,
    /// Where the case file was written, if an output dir was given.
    pub case_path: Option<PathBuf>,
    /// Ready-to-paste regression test for the minimized case.
    pub regression: String,
}

impl Counterexample {
    /// The minimized case as a writable/replayable file.
    pub fn case_file(&self, threads: usize) -> CaseFile {
        CaseFile {
            config: self.config.clone(),
            seed: self.seed,
            threads,
            failure: format!("{}: {}", self.kind, self.detail),
            n: self.shrunk.n,
            edges: self.shrunk.edges.clone(),
            edits: self.edits.clone(),
        }
    }
}

/// Outcome of a sweep.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cases run (one case = one graph × configuration × seed, i.e. four
    /// solver executions).
    pub cases_run: usize,
    /// Distinct solver configurations exercised at least once.
    pub configs_covered: usize,
    /// Confirmed violations, minimized.
    pub counterexamples: Vec<Counterexample>,
    /// Wall time of the sweep.
    pub elapsed: Duration,
    /// True if the sweep stopped on budget/max-cases before exhausting
    /// the matrix.
    pub truncated: bool,
}

/// Run one fuzzing sweep over the adversarial suite × solver matrix.
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzReport {
    use sb_par::rng::hash2;

    let start = Instant::now();
    let suite = gen::adversarial_suite(opts.master_seed);
    let configs = SolverConfig::all();
    let mut report = FuzzReport {
        cases_run: 0,
        configs_covered: 0,
        counterexamples: Vec::new(),
        elapsed: Duration::ZERO,
        truncated: false,
    };
    let mut covered = vec![false; configs.len()];
    let mut case_index = 0u64;
    // One resident daemon serves every sampled case of the sweep; a bind
    // failure downgrades the sweep rather than failing it.
    let serve = if opts.serve_axis {
        oracle::ServeOracle::spawn()
            .map_err(|e| eprintln!("sb-fuzz: serve axis disabled: {e}"))
            .ok()
    } else {
        None
    };

    'sweep: for case in &suite {
        let g = case.build();
        for (ci, cfg) in configs.iter().enumerate() {
            for _ in 0..opts.seeds_per_config.max(1) {
                if opts.max_cases.is_some_and(|m| report.cases_run >= m)
                    || opts.budget.is_some_and(|b| start.elapsed() >= b)
                {
                    report.truncated = true;
                    break 'sweep;
                }
                let seed = hash2(opts.master_seed, case_index);
                let serve_this = serve
                    .as_ref()
                    .filter(|_| case_index.is_multiple_of(SERVE_INTERVAL));
                case_index += 1;
                report.cases_run += 1;
                covered[ci] = true;

                let failure = match full_check(&g, cfg, seed, opts, serve_this) {
                    Ok(()) => continue,
                    Err(f) => f,
                };

                let cex = minimize(case, cfg, seed, failure, opts, serve.as_ref());
                report.counterexamples.push(cex);
                if report.counterexamples.len() >= opts.max_counterexamples {
                    report.truncated = true;
                    break 'sweep;
                }
            }
        }
    }

    if let Some(daemon) = serve {
        daemon.stop();
    }
    report.configs_covered = covered.iter().filter(|&&c| c).count();
    report.elapsed = start.elapsed();
    report
}

/// Shrink one observed failure and package it (writing the case file when
/// an output directory is configured).
fn minimize(
    case: &gen::CaseGraph,
    cfg: &SolverConfig,
    seed: u64,
    failure: Failure,
    opts: &FuzzOptions,
    serve: Option<&oracle::ServeOracle>,
) -> Counterexample {
    let kind = failure.kind;
    // Shrink attempts only pay the wire round-trip when the failure being
    // preserved is a serve-axis failure.
    let serve = serve.filter(|_| kind == "serve");
    let shrunk = shrink::shrink_case(
        case.n,
        &case.edges,
        |n, edges| {
            let g = sb_graph::builder::from_edge_list(n, edges);
            matches!(full_check(&g, cfg, seed, opts, serve), Err(f) if f.kind == kind)
        },
        opts.shrink_evals,
    );
    let mut cex = Counterexample {
        config: cfg.label(),
        graph: case.name.clone(),
        seed,
        kind: kind.to_string(),
        detail: failure.detail,
        orig_n: case.n,
        shrunk,
        edits: None,
        case_path: None,
        regression: String::new(),
    };
    // Edit-axis failures additionally ddmin the edit *sequence*: the
    // graph shrink above re-derived the sequence per candidate graph, so
    // on the final graph we re-derive once more and strip every edit the
    // failure does not need (empty batches are legal and stay in place so
    // batch boundaries survive).
    if kind.starts_with("edit") {
        let g = sb_graph::builder::from_edge_list(cex.shrunk.n, &cex.shrunk.edges);
        let seq = gen::edit_sequence(&g, seed, oracle::EDIT_BATCHES, oracle::EDIT_BATCH_SIZE);
        let flat: Vec<(usize, sb_graph::editlog::Edit)> = seq
            .iter()
            .enumerate()
            .flat_map(|(i, log)| log.edits().iter().map(move |&e| (i, e)))
            .collect();
        let rebuild = |subset: &[(usize, sb_graph::editlog::Edit)]| {
            let mut out = vec![sb_graph::editlog::EditLog::new(); seq.len()];
            for &(i, e) in subset {
                out[i].push(e);
            }
            out
        };
        let (min_flat, _, _) = shrink::ddmin_list(
            &flat,
            |subset| {
                let candidate = rebuild(subset);
                matches!(
                    oracle::check_edit_chain(
                        &g, cfg, seed, opts.wide_threads, opts.mutation, &candidate
                    ),
                    Err(f) if f.kind == kind
                )
            },
            opts.shrink_evals,
        );
        cex.edits = Some(
            rebuild(&min_flat)
                .iter()
                .map(|l| l.wire())
                .collect::<Vec<_>>()
                .join(";"),
        );
    }
    let file = cex.case_file(opts.wide_threads);
    cex.regression = file.regression_skeleton();
    if let Some(dir) = &opts.out_dir {
        match file.write_to(dir) {
            Ok(path) => cex.case_path = Some(path),
            Err(e) => eprintln!("sb-fuzz: could not write case file: {e}"),
        }
    }
    cex
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mutation: Mutation, max_cases: usize) -> FuzzOptions {
        FuzzOptions {
            master_seed: 11,
            max_cases: Some(max_cases),
            wide_threads: 2,
            seeds_per_config: 1,
            mutation,
            max_counterexamples: 1,
            shrink_evals: 300,
            ..FuzzOptions::default()
        }
    }

    #[test]
    fn planted_matching_bug_is_caught_and_minimized() {
        // Harness self-validation: with the matching corruption planted,
        // the very first mm configuration on the first edge-bearing graph
        // must fail validity, and the shrinker must reduce it to a
        // near-minimal graph (acceptance bound: ≤ 8 vertices).
        let report = run_fuzz(&quick(Mutation::CorruptMatching, 40));
        assert!(
            !report.counterexamples.is_empty(),
            "planted bug not caught in {} cases",
            report.cases_run
        );
        let cex = &report.counterexamples[0];
        assert_eq!(cex.kind, "validity");
        assert!(cex.config.starts_with("mm-"), "{}", cex.config);
        assert!(
            cex.shrunk.n <= 8,
            "shrunk to {} vertices, want ≤ 8",
            cex.shrunk.n
        );
        assert!(!cex.shrunk.edges.is_empty(), "corruption needs an edge");
        assert!(cex.regression.contains(&cex.config));
    }

    #[test]
    fn planted_bug_on_a_large_shape_shrinks_to_a_single_edge() {
        // The smoke path happens to surface the planted bug on the
        // already-minimal single-edge shape; this pins the shrinker's
        // actual minimization power. The corruption fails on any graph
        // with an edge, so a 129-vertex path must collapse to one edge.
        let suite = gen::adversarial_suite(5);
        let case = suite.iter().find(|c| c.name == "path-129").unwrap();
        let cfg = SolverConfig::parse("mm-baseline@cpu").unwrap();
        let g = case.build();
        let failure = oracle::check_case(&g, &cfg, 3, 2, Mutation::CorruptMatching).unwrap_err();
        assert_eq!(failure.kind, "validity");
        let opts = FuzzOptions {
            wide_threads: 2,
            mutation: Mutation::CorruptMatching,
            shrink_evals: 2000,
            ..FuzzOptions::default()
        };
        let cex = minimize(case, &cfg, 3, failure, &opts, None);
        assert_eq!(cex.orig_n, 129);
        assert_eq!(
            cex.shrunk.n, 2,
            "want the minimal edge, got {:?}",
            cex.shrunk
        );
        assert_eq!(cex.shrunk.edges, vec![(0, 1)]);
        assert!(!cex.shrunk.budget_exhausted);
    }

    #[test]
    fn planted_stale_repair_is_caught_and_the_edit_sequence_minimized() {
        // With the stale-repair mutation planted, the edit axis must
        // surface a counterexample within the first configurations, and
        // the minimizer must emit an explicit (ddmin'd) edit sequence.
        let report = run_fuzz(&quick(Mutation::StaleRepair, 60));
        assert!(
            !report.counterexamples.is_empty(),
            "planted stale repair not caught in {} cases",
            report.cases_run
        );
        let cex = &report.counterexamples[0];
        assert!(cex.kind.starts_with("edit"), "{}: {}", cex.kind, cex.detail);
        let edits = cex.edits.as_deref().expect("edit-axis cex carries edits");
        assert!(!edits.is_empty(), "minimized sequence should keep an edit");
        assert!(cex.regression.contains("check_edit_chain"));
    }

    #[test]
    fn clean_sweep_over_first_configs_finds_nothing() {
        let report = run_fuzz(&quick(Mutation::None, 35));
        assert_eq!(report.cases_run, 35, "sweep stopped early: {report:?}");
        assert!(
            report.counterexamples.is_empty(),
            "unexpected counterexample: {:?}",
            report.counterexamples[0]
        );
    }
}
