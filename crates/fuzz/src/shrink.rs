//! Counterexample minimization: delta-debugging over the raw edge list,
//! then vertex deletion with id compaction, iterated to a fixpoint.
//!
//! The predicate is "the case still fails the oracle *with the same
//! failure kind*" — holding the kind fixed keeps the minimizer from
//! wandering onto an unrelated failure mid-shrink. Each predicate
//! evaluation re-runs the full mode × thread matrix, so the whole search
//! is bounded by an evaluation budget rather than a size target.

/// Result of a shrink: the minimized case plus search statistics.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// Minimized vertex count.
    pub n: usize,
    /// Minimized raw edge list.
    pub edges: Vec<(u32, u32)>,
    /// Predicate evaluations spent.
    pub evals: usize,
    /// True if the search stopped on budget rather than at a fixpoint.
    pub budget_exhausted: bool,
}

/// Minimize `(n, edges)` while `fails` keeps returning true. `fails` must
/// be true for the input case (the caller just observed the failure).
pub fn shrink_case(
    n: usize,
    edges: &[(u32, u32)],
    mut fails: impl FnMut(usize, &[(u32, u32)]) -> bool,
    max_evals: usize,
) -> Shrunk {
    let mut cur_n = n;
    let mut cur: Vec<(u32, u32)> = edges.to_vec();
    let mut evals = 0usize;
    let mut out_of_budget = false;
    let mut try_eval = |n: usize, e: &[(u32, u32)], evals: &mut usize| -> Option<bool> {
        if *evals >= max_evals {
            return None;
        }
        *evals += 1;
        Some(fails(n, e))
    };

    loop {
        let mut changed = false;

        // Pass 1: ddmin over edges — delete chunks, halving the chunk
        // size; a deletion that keeps the failure restarts at that size.
        let mut chunk = cur.len().div_ceil(2).max(1);
        'edges: while chunk >= 1 {
            let mut i = 0;
            while i < cur.len() {
                let end = (i + chunk).min(cur.len());
                let mut candidate = cur.clone();
                candidate.drain(i..end);
                match try_eval(cur_n, &candidate, &mut evals) {
                    None => {
                        out_of_budget = true;
                        break 'edges;
                    }
                    Some(true) => {
                        cur = candidate;
                        changed = true;
                    }
                    Some(false) => i = end,
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Pass 2: delete single vertices (dropping incident edges,
        // compacting ids above them).
        let mut v = 0u32;
        while (v as usize) < cur_n && !out_of_budget {
            let candidate: Vec<(u32, u32)> = cur
                .iter()
                .filter(|&&(a, b)| a != v && b != v)
                .map(|&(a, b)| (a - u32::from(a > v), b - u32::from(b > v)))
                .collect();
            match try_eval(cur_n - 1, &candidate, &mut evals) {
                None => out_of_budget = true,
                Some(true) => {
                    cur_n -= 1;
                    cur = candidate;
                    changed = true;
                }
                Some(false) => v += 1,
            }
        }

        if !changed || out_of_budget {
            break;
        }
    }

    Shrunk {
        n: cur_n,
        edges: cur,
        evals,
        budget_exhausted: out_of_budget,
    }
}

/// One-dimensional ddmin over an arbitrary item list: delete chunks while
/// `fails` keeps returning true, halving the chunk size down to single
/// items. Used by the edit axis to minimize the edit *sequence* after the
/// graph itself has been shrunk. Returns the minimized list, predicate
/// evaluations spent, and whether the budget stopped the search.
pub fn ddmin_list<T: Clone>(
    items: &[T],
    mut fails: impl FnMut(&[T]) -> bool,
    max_evals: usize,
) -> (Vec<T>, usize, bool) {
    let mut cur: Vec<T> = items.to_vec();
    let mut evals = 0usize;
    let mut out_of_budget = false;
    let mut chunk = cur.len().div_ceil(2).max(1);
    'outer: while chunk >= 1 {
        let mut i = 0;
        while i < cur.len() {
            if evals >= max_evals {
                out_of_budget = true;
                break 'outer;
            }
            evals += 1;
            let end = (i + chunk).min(cur.len());
            let mut candidate = cur.clone();
            candidate.drain(i..end);
            if fails(&candidate) {
                cur = candidate;
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    (cur, evals, out_of_budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddmin_list_keeps_only_the_failing_items() {
        // Failure: "contains both 7 and 13". Everything else must go.
        let items: Vec<u32> = (0..40).collect();
        let (min, _, oob) = ddmin_list(
            &items,
            |s| s.contains(&7) && s.contains(&13),
            10_000,
        );
        assert_eq!(min, vec![7, 13]);
        assert!(!oob);
    }

    #[test]
    fn shrinks_to_the_failing_core() {
        // Failure: "contains the edge literally named (3, 4)". The edge
        // pass must strip the other 18 edges; the vertex pass can only
        // delete vertices above 4 (deleting a lower one would rename the
        // edge and lose the failure).
        let edges: Vec<(u32, u32)> = (0..19).map(|i| (i, i + 1)).collect();
        let s = shrink_case(
            20,
            &edges,
            |_, e| e.iter().any(|&(a, b)| (a, b) == (3, 4)),
            10_000,
        );
        assert_eq!(s.edges, vec![(3, 4)]);
        assert_eq!(s.n, 5);
        assert!(!s.budget_exhausted);
    }

    #[test]
    fn budget_stops_the_search() {
        let edges: Vec<(u32, u32)> = (0..99).map(|i| (i, i + 1)).collect();
        let s = shrink_case(100, &edges, |_, e| !e.is_empty(), 5);
        assert!(s.budget_exhausted);
        assert_eq!(s.evals, 5);
        assert!(!s.edges.is_empty());
    }

    #[test]
    fn vertex_pass_drops_isolated_vertices() {
        // Failure depends only on one edge existing; the 8 isolated
        // vertices must all be deleted by the vertex pass.
        let s = shrink_case(10, &[(4, 7)], |_, e| !e.is_empty(), 10_000);
        assert_eq!(s.n, 2);
        assert_eq!(s.edges, vec![(0, 1)]);
    }
}
