//! Adversarial graph library for the differential fuzzer.
//!
//! Every case is a *raw* edge list plus an explicit vertex count — kept in
//! builder input form (duplicates, self-loops, and both orientations
//! allowed) so the fuzzer exercises the same normalization path as file
//! ingestion, and so shrunk counterexamples replay byte-for-byte through
//! `sb_graph::io::read_edge_list`.
//!
//! The shapes target the failure modes symmetry-breaking solvers actually
//! have: empty inputs (phase loops that assume at least one round), stars
//! (one vertex in every conflict), long paths (worst-case round counts for
//! local rules), cliques (every round settles one thing), disconnected
//! unions (frontier compaction across dead components), duplicate- and
//! self-loop-heavy raw lists (builder normalization), and hub degrees
//! straddling the 255/256 byte boundary (mask/class width assumptions).
//! Two Table II stand-ins are drawn at a tiny scale so the generator
//! library also covers "realistic" degree distributions.

use sb_datasets::suite::generate;
use sb_datasets::{GraphId, Scale};
use sb_graph::editlog::EditLog;
use sb_graph::Graph;
use sb_par::rng::{bounded, hash3};

/// One fuzz input: a named raw edge list.
#[derive(Debug, Clone)]
pub struct CaseGraph {
    /// Shape name, stable across runs (used in case files and labels).
    pub name: String,
    /// Vertex count (ids in `edges` are `< n`).
    pub n: usize,
    /// Raw undirected edges; duplicates and self-loops permitted.
    pub edges: Vec<(u32, u32)>,
}

impl CaseGraph {
    fn new(name: &str, n: usize, edges: Vec<(u32, u32)>) -> CaseGraph {
        CaseGraph {
            name: name.to_string(),
            n,
            edges,
        }
    }

    /// Normalize into a CSR graph (dedup, drop self-loops, symmetrize).
    pub fn build(&self) -> Graph {
        sb_graph::builder::from_edge_list(self.n, &self.edges)
    }
}

/// A path on `n` vertices.
fn path(n: u32) -> Vec<(u32, u32)> {
    (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect()
}

/// A star: vertex 0 joined to `leaves` leaves.
fn star(leaves: u32) -> Vec<(u32, u32)> {
    (1..=leaves).map(|v| (0, v)).collect()
}

/// Complete graph on `n` vertices.
fn clique(n: u32) -> Vec<(u32, u32)> {
    let mut e = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            e.push((i, j));
        }
    }
    e
}

/// Complete bipartite graph K(a, b); left ids `0..a`, right `a..a+b`.
fn bipartite(a: u32, b: u32) -> Vec<(u32, u32)> {
    let mut e = Vec::new();
    for i in 0..a {
        for j in 0..b {
            e.push((i, a + j));
        }
    }
    e
}

/// Sparse random multigraph: `m` raw draws over `n` vertices, duplicates
/// and self-loops left in deliberately.
fn random_raw(n: u32, m: usize, seed: u64) -> Vec<(u32, u32)> {
    (0..m)
        .map(|i| {
            let u = bounded(hash3(seed, 0, i as u64), n as u64) as u32;
            let v = bounded(hash3(seed, 1, i as u64), n as u64) as u32;
            (u, v)
        })
        .collect()
}

/// Extract the undirected edge pairs of a built graph (u < v).
fn edge_pairs(g: &Graph) -> Vec<(u32, u32)> {
    g.edge_list().iter().map(|&[u, v]| (u, v)).collect()
}

/// Tiny draw of a Table II stand-in (the `.max(64)` floor in the dataset
/// scaler keeps this around 64–80 vertices).
fn dataset_case(name: &str, id: GraphId, seed: u64) -> CaseGraph {
    let g = generate(id, Scale::Factor(0.002), seed);
    CaseGraph::new(name, g.num_vertices(), edge_pairs(&g))
}

/// The full adversarial suite, ordered so edge-bearing shapes come first
/// (a planted bug should surface within the first handful of cases) and
/// the comparatively expensive dataset draws come last.
pub fn adversarial_suite(seed: u64) -> Vec<CaseGraph> {
    let mut union = vec![(0, 1), (1, 2), (2, 0)]; // triangle
    union.extend([(4, 5), (5, 6)]); // short path
    union.push((8, 9)); // lone edge; 3, 7, 10, 11 stay isolated

    let mut two_cliques = clique(5);
    two_cliques.extend(clique(5).into_iter().map(|(u, v)| (u + 5, v + 5)));
    two_cliques.push((4, 5)); // the bridge

    let dup_heavy = {
        // Every edge of a 6-path four times, in both orientations, with a
        // self-loop on every vertex.
        let mut e = Vec::new();
        for (u, v) in path(6) {
            e.extend([(u, v), (v, u), (u, v), (v, u)]);
        }
        e.extend((0..6).map(|v| (v, v)));
        e
    };

    vec![
        CaseGraph::new("single-edge", 2, vec![(0, 1)]),
        CaseGraph::new("triangle", 3, clique(3)),
        CaseGraph::new("star-64", 65, star(64)),
        CaseGraph::new("path-129", 129, path(129)),
        CaseGraph::new("cycle-32", 32, {
            let mut e = path(32);
            e.push((31, 0));
            e
        }),
        CaseGraph::new("clique-12", 12, clique(12)),
        CaseGraph::new("bipartite-5x7", 12, bipartite(5, 7)),
        CaseGraph::new("disconnected-union", 12, union),
        CaseGraph::new("two-cliques-bridge", 10, two_cliques),
        CaseGraph::new("dup-selfloop-heavy", 6, dup_heavy),
        // Hub degrees straddling the u8 boundary: 255, 256, 257 leaves.
        CaseGraph::new("hub-255", 256, star(255)),
        CaseGraph::new("hub-256", 257, star(256)),
        CaseGraph::new("hub-257", 258, star(257)),
        CaseGraph::new("random-sparse", 60, random_raw(60, 120, seed ^ 0xA5)),
        CaseGraph::new("random-denser", 40, random_raw(40, 200, seed ^ 0x5A)),
        CaseGraph::new("empty-0", 0, Vec::new()),
        CaseGraph::new("single-vertex", 1, Vec::new()),
        CaseGraph::new("isolated-16", 16, Vec::new()),
        dataset_case("rgg-tiny", GraphId::Rgg23, seed),
        dataset_case("kron-tiny", GraphId::KronLogn20, seed),
    ]
}

/// Derive a deterministic random edit sequence for `g`: `batches` edit
/// batches of up to `batch_size` entries each, drawn from the graph's
/// current shape as the sequence advances (removals target edges that
/// exist, additions are drawn over the live vertex range, and an
/// occasional batch grows the vertex set). Additions may duplicate
/// existing edges and may be self-loops — the edit layer's net-effect
/// normalization is part of what the axis fuzzes.
pub fn edit_sequence(g: &Graph, seed: u64, batches: usize, batch_size: usize) -> Vec<EditLog> {
    let mut n = g.num_vertices() as u64;
    let mut live: Vec<(u32, u32)> = edge_pairs(g);
    let mut seq = Vec::with_capacity(batches);
    let mut draw = 0u64;
    let mut rng = |bound: u64| {
        draw += 1;
        bounded(hash3(seed ^ 0xED17, draw, bound), bound.max(1))
    };
    for _ in 0..batches {
        let mut log = EditLog::new();
        for _ in 0..batch_size.max(1) {
            let kind = rng(10);
            if n == 0 || kind >= 9 {
                // Grow: one fresh isolated vertex, occasionally wired in.
                n += 1;
                log.add_vertex(n as usize);
                if n > 1 && kind >= 9 {
                    let u = rng(n - 1) as u32;
                    log.add_edge(u, (n - 1) as u32);
                    live.push((u, (n - 1) as u32));
                }
            } else if kind >= 5 || live.is_empty() {
                // Add: random pair over the live range (dup/self-loop ok).
                let (u, v) = (rng(n) as u32, rng(n) as u32);
                log.add_edge(u, v);
                if u != v {
                    live.push((u.min(v), u.max(v)));
                }
            } else {
                // Remove: an edge that (net of this very sequence) exists.
                let i = rng(live.len() as u64) as usize;
                let (u, v) = live.swap_remove(i);
                log.remove_edge(u, v);
            }
        }
        seq.push(log);
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_sequences_are_deterministic_and_applicable() {
        for case in adversarial_suite(3) {
            let g = case.build();
            let a = edit_sequence(&g, 7, 3, 4);
            let b = edit_sequence(&g, 7, 3, 4);
            assert_eq!(a.len(), 3, "{}", case.name);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.wire(), y.wire(), "{}", case.name);
            }
            // The whole chain materializes without panicking, batch by
            // batch (ids stay in range as the sequence advances).
            let mut cur = g;
            for log in &a {
                cur = log.materialize(&cur);
            }
        }
    }

    #[test]
    fn suite_shapes_are_as_labeled() {
        let suite = adversarial_suite(7);
        assert!(suite.len() >= 15);
        for case in &suite {
            let g = case.build();
            assert_eq!(g.num_vertices(), case.n, "{}", case.name);
            g.validate().unwrap();
        }
        let hub = suite.iter().find(|c| c.name == "hub-257").unwrap();
        assert_eq!(hub.build().max_degree(), 257);
        let dup = suite
            .iter()
            .find(|c| c.name == "dup-selfloop-heavy")
            .unwrap();
        // 4× duplication and the self-loops all normalize away.
        assert_eq!(dup.build().num_edges(), 5);
    }

    #[test]
    fn suite_is_seed_deterministic() {
        let a = adversarial_suite(3);
        let b = adversarial_suite(3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.edges, y.edges, "{}", x.name);
        }
    }
}
