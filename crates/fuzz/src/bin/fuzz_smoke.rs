//! `fuzz_smoke` — the CI entry point for the differential fuzzer.
//!
//! Two phases, both required to pass:
//!
//! 1. **Planted-bug self-tests**: a short sweep with the
//!    `CorruptMatching` mutation planted (the oracle must catch it and
//!    the shrinker minimize it to ≤ 8 vertices), a stale decomposition
//!    cache entry on the engine axis, a bitset word-boundary off-by-one
//!    (vertices 63/64/65) on the frontier-mode matrix, and a stale
//!    repair (the pre-edit solution served unrepaired) on the edit axis
//!    — per solver family. A harness that cannot find a known bug
//!    proves nothing with a clean run.
//! 2. **Clean sweep**: the real solvers over the adversarial suite ×
//!    configuration matrix under a wall-clock budget. Any counterexample
//!    fails the run; its minimized case file and regression skeleton are
//!    printed (and written under `--out`).
//!
//! ```text
//! fuzz_smoke [--seed S] [--budget-secs T] [--threads N] [--out DIR]
//!            [--min-cases K] [--seeds-per-config C] [--axes all|edit]
//! ```
//!
//! `--axes edit` narrows the run to the dynamic-graph layer: only the
//! stale-repair self-test runs in phase 1, and the clean sweep drops the
//! engine and serve axes so the budget is spent chaining edit sequences.

use sb_fuzz::{run_fuzz, FuzzOptions, Mutation};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    seed: u64,
    budget_secs: u64,
    threads: usize,
    out: PathBuf,
    min_cases: usize,
    seeds_per_config: usize,
    edit_only: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 0xF022_5EED,
        budget_secs: 60,
        threads: 4,
        out: PathBuf::from("results/fuzz"),
        min_cases: 500,
        seeds_per_config: 2,
        edit_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--budget-secs" => {
                args.budget_secs = val("--budget-secs")?
                    .parse()
                    .map_err(|e| format!("--budget-secs: {e}"))?
            }
            "--threads" => {
                args.threads = val("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--out" => args.out = PathBuf::from(val("--out")?),
            "--min-cases" => {
                args.min_cases = val("--min-cases")?
                    .parse()
                    .map_err(|e| format!("--min-cases: {e}"))?
            }
            "--seeds-per-config" => {
                args.seeds_per_config = val("--seeds-per-config")?
                    .parse()
                    .map_err(|e| format!("--seeds-per-config: {e}"))?
            }
            "--axes" => {
                args.edit_only = match val("--axes")?.as_str() {
                    "all" => false,
                    "edit" => true,
                    other => return Err(format!("--axes takes 'all' or 'edit', got '{other}'")),
                }
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz_smoke: {e}");
            return ExitCode::from(2);
        }
    };

    // Phase 1: the harness must catch and minimize a planted bug.
    // (Skipped with --axes edit, which self-tests only the edit layer.)
    if !args.edit_only {
        if let Err(code) = run_static_self_tests(&args) {
            return code;
        }
    }

    // Phase 1d: the edit axis must catch a planted stale repair — the
    // dynamic-graph layer answering from the pre-edit solution — for
    // every solver family. Two disjoint triangles; the batch dismantles
    // the first and wires vertex 0 into every vertex of the second, which
    // invalidates any prior matching, MIS, or greedy coloring.
    {
        use sb_core::coloring::ColorAlgorithm;
        use sb_core::matching::MmAlgorithm;
        use sb_core::mis::MisAlgorithm;
        use sb_core::Arch;
        use sb_fuzz::SolverConfig;
        use sb_graph::editlog::EditLog;
        let g = sb_graph::builder::from_edge_list(
            6,
            &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)],
        );
        let seq = [EditLog::parse("-0-1,-0-2,-1-2,+0-3,+0-4,+0-5").unwrap()];
        for cfg in [
            SolverConfig::Mm(MmAlgorithm::Baseline, Arch::Cpu),
            SolverConfig::Mis(MisAlgorithm::Baseline, Arch::Cpu),
            SolverConfig::Color(ColorAlgorithm::Baseline, Arch::Cpu),
        ] {
            match sb_fuzz::oracle::check_edit_chain(
                &g,
                &cfg,
                9,
                args.threads,
                Mutation::StaleRepair,
                &seq,
            ) {
                Err(f) => println!(
                    "self-test: planted stale repair caught on {} ({f})",
                    cfg.label()
                ),
                Ok(()) => {
                    eprintln!(
                        "self-test FAILED: stale repair not caught on {}",
                        cfg.label()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    // Phase 2: budgeted clean sweep of the real solvers.
    let report = run_fuzz(&FuzzOptions {
        master_seed: args.seed,
        budget: Some(Duration::from_secs(args.budget_secs)),
        wide_threads: args.threads,
        seeds_per_config: args.seeds_per_config,
        out_dir: Some(args.out.clone()),
        engine_axis: !args.edit_only,
        serve_axis: !args.edit_only,
        ..FuzzOptions::default()
    });
    println!(
        "clean sweep{}: {} cases ({} configs covered) in {:.1}s{}",
        if args.edit_only { " [edit axis]" } else { "" },
        report.cases_run,
        report.configs_covered,
        report.elapsed.as_secs_f64(),
        if report.truncated { " [truncated]" } else { "" }
    );

    if !report.counterexamples.is_empty() {
        for cex in &report.counterexamples {
            eprintln!(
                "\ncounterexample: {} on '{}' seed {} — {}: {}",
                cex.config, cex.graph, cex.seed, cex.kind, cex.detail
            );
            eprintln!(
                "  minimized to n={} m={} ({} evals{})",
                cex.shrunk.n,
                cex.shrunk.edges.len(),
                cex.shrunk.evals,
                if cex.shrunk.budget_exhausted {
                    ", shrink budget exhausted"
                } else {
                    ""
                }
            );
            if let Some(path) = &cex.case_path {
                eprintln!("  case file: {}", path.display());
            }
            eprintln!("  regression skeleton:\n{}", cex.regression);
        }
        return ExitCode::FAILURE;
    }
    if report.cases_run < args.min_cases {
        eprintln!(
            "clean sweep ran only {} cases (< {}): raise --budget-secs",
            report.cases_run, args.min_cases
        );
        return ExitCode::FAILURE;
    }
    println!("zero counterexamples");
    ExitCode::SUCCESS
}

/// Phases 1–1c: planted bugs in the static layers (matching corruption,
/// stale engine cache, bitset word boundary). Returns `Err` with the
/// failing exit code so `main` can bubble it with `?`.
fn run_static_self_tests(args: &Args) -> Result<(), ExitCode> {
    let planted = run_fuzz(&FuzzOptions {
        master_seed: args.seed,
        max_cases: Some(60),
        wide_threads: args.threads,
        seeds_per_config: 1,
        mutation: Mutation::CorruptMatching,
        max_counterexamples: 1,
        shrink_evals: 300,
        ..FuzzOptions::default()
    });
    match planted.counterexamples.first() {
        Some(cex) if cex.shrunk.n <= 8 => {
            println!(
                "self-test: planted matching bug caught on '{}' ({}), shrunk {} -> {} vertices \
                 in {} oracle evals",
                cex.graph, cex.config, cex.orig_n, cex.shrunk.n, cex.shrunk.evals
            );
        }
        Some(cex) => {
            eprintln!(
                "self-test FAILED: planted bug caught but only shrunk to {} vertices (want <= 8)",
                cex.shrunk.n
            );
            return Err(ExitCode::FAILURE);
        }
        None => {
            eprintln!(
                "self-test FAILED: planted matching bug not caught in {} cases",
                planted.cases_run
            );
            return Err(ExitCode::FAILURE);
        }
    }

    // Phase 1b: the engine axis must catch a planted stale cache entry.
    // A chain with chord edges is dense enough that a corrupted RAND
    // decomposition visibly changes the coloring.
    {
        use sb_core::coloring::ColorAlgorithm;
        use sb_core::Arch;
        use sb_fuzz::SolverConfig;
        let n = 32u32;
        let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.extend((0..n).map(|i| (i, (i * 7 + 3) % n)));
        let g = sb_graph::builder::from_edge_list(n as usize, &edges);
        let cfg = SolverConfig::Color(ColorAlgorithm::Rand { partitions: 3 }, Arch::Cpu);
        match sb_fuzz::oracle::check_engine_case(&g, &cfg, 9, Mutation::StaleDecompCache) {
            Err(f) => println!("self-test: planted stale decomposition cache caught ({f})"),
            Ok(()) => {
                eprintln!("self-test FAILED: stale decomposition cache not caught");
                return Err(ExitCode::FAILURE);
            }
        }
    }

    // Phase 1c: the mode matrix must catch a planted word-boundary
    // off-by-one in the bitset frontier path — MIS bits flipped at
    // vertices 63/64/65, the seam between u64 words 0 and 1.
    {
        use sb_core::mis::MisAlgorithm;
        use sb_core::Arch;
        use sb_fuzz::SolverConfig;
        let n = 70u32;
        let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.extend((0..n).map(|i| (i, (i * 7 + 3) % n)));
        let g = sb_graph::builder::from_edge_list(n as usize, &edges);
        let cfg = SolverConfig::Mis(MisAlgorithm::Baseline, Arch::Cpu);
        match sb_fuzz::oracle::check_case(&g, &cfg, 9, args.threads, Mutation::BitsetWordBoundary) {
            Err(f) => println!("self-test: planted bitset word-boundary bug caught ({f})"),
            Ok(()) => {
                eprintln!("self-test FAILED: bitset word-boundary off-by-one not caught");
                return Err(ExitCode::FAILURE);
            }
        }
    }

    Ok(())
}
