//! The differential oracle: run one solver configuration across the
//! frontier-mode × thread-count matrix and cross-check everything the
//! project's contracts promise (DESIGN.md §10–§11).
//!
//! Per case the oracle runs all three frontier modes (dense, compact,
//! bitset) at 1 and N threads — six runs — and checks:
//!
//! 1. **Validity + maximality** of every run against the sequential
//!    oracles in `sb_core::verify`.
//! 2. **Byte-equality** where the contract promises it: all six runs for
//!    matching and MIS; the 1-thread runs across all three modes for
//!    coloring (VB's speculative conflict resolution is
//!    interleaving-dependent at N).
//! 3. **Trace/counter accounting**: the top-level span deltas of the
//!    trace must sum to exactly the run's counter snapshot.
//! 4. **Round accounting**: per-phase round records are thread-invariant
//!    within a mode (matching and MIS), and *productive* round counts are
//!    frontier-mode-invariant for the LMAX (GPU-sim) matching family.

use crate::config::SolverConfig;
use sb_core::coloring::vertex_coloring_opts;
use sb_core::common::{FrontierMode, RunStats, SolveOpts};
use sb_core::matching::maximal_matching_opts;
use sb_core::mis::maximal_independent_set_opts;
use sb_core::verify;
use sb_core::Arch;
use sb_graph::csr::{Graph, INVALID};
use sb_par::with_threads;
use sb_trace::{total_delta, TraceEvent, TraceSink};
use std::sync::Arc;

/// A deliberate solver corruption, used to self-validate the harness: the
/// planted bug must be caught by the oracle and minimized by the shrinker
/// before any clean run is trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// No corruption: the real solvers.
    #[default]
    None,
    /// Un-match the lowest matched pair after every matching solve,
    /// leaving an edge with two free endpoints — a maximality violation
    /// on any graph with at least one edge.
    CorruptMatching,
    /// Corrupt every cached decomposition in the engine between priming
    /// and the cache-hit run ([`check_engine_case`]) — simulating a stale
    /// or mis-keyed cache entry. The engine axis must catch the resulting
    /// cached-vs-fresh divergence; the solver matrix ignores it.
    StaleDecompCache,
    /// Flip the MIS membership of vertices 63/64/65 after every
    /// *bitset-mode* solve — the footprint of the classic `i & 63` /
    /// `i >> 6` off-by-one at the u64 word seam. Flipping any bit of a
    /// maximal independent set breaks independence or maximality, so the
    /// oracle must flag it on any graph whose universe reaches word 1
    /// (and must stay clean on graphs that never do).
    BitsetWordBoundary,
    /// Serve the stream's *prior* solution instead of running the repair
    /// on every edit batch ([`check_edit_chain`]) — the footprint of a
    /// stale-stream bug where a dynamic-graph service answers from the
    /// pre-edit solution. The edit axis must flag it whenever a batch
    /// actually invalidates the prior (and must stay clean when every
    /// batch happens to preserve it).
    StaleRepair,
}

/// One contract violation found by the oracle.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which check tripped: `validity`, `equality`, `accounting`,
    /// `rounds`, or `serve`.
    pub kind: &'static str,
    /// Human-readable description naming the runs involved.
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// Solver output in family-agnostic form.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Output {
    Mate(Vec<u32>),
    Set(Vec<bool>),
    Color(Vec<u32>),
}

struct RunOutput {
    tag: String,
    mode: FrontierMode,
    threads: usize,
    out: Output,
    stats: RunStats,
    events: Vec<TraceEvent>,
}

fn run_one(
    g: &Graph,
    cfg: &SolverConfig,
    seed: u64,
    mode: FrontierMode,
    threads: usize,
    mutation: Mutation,
) -> RunOutput {
    with_threads(threads, || {
        let sink = Arc::new(TraceSink::enabled());
        let opts = SolveOpts {
            trace: Some(sink.clone()),
            frontier: mode,
        };
        let (out, stats) = match *cfg {
            SolverConfig::Mm(algo, arch) => {
                let run = maximal_matching_opts(g, algo, arch, seed, &opts);
                let mut mate = run.mate;
                if mutation == Mutation::CorruptMatching {
                    if let Some(v) = mate.iter().position(|&m| m != INVALID) {
                        let m = mate[v] as usize;
                        mate[v] = INVALID;
                        mate[m] = INVALID;
                    }
                }
                (Output::Mate(mate), run.stats)
            }
            SolverConfig::Mis(algo, arch) => {
                let run = maximal_independent_set_opts(g, algo, arch, seed, &opts);
                let mut in_set = run.in_set;
                if mutation == Mutation::BitsetWordBoundary && mode == FrontierMode::Bitset {
                    for v in [63usize, 64, 65] {
                        if let Some(b) = in_set.get_mut(v) {
                            *b = !*b;
                        }
                    }
                }
                (Output::Set(in_set), run.stats)
            }
            SolverConfig::Color(algo, arch) => {
                let run = vertex_coloring_opts(g, algo, arch, seed, &opts);
                (Output::Color(run.color), run.stats)
            }
        };
        RunOutput {
            tag: format!("{mode}@{threads}t"),
            mode,
            threads,
            out,
            stats,
            events: sink.events(),
        }
    })
}

fn check_valid(g: &Graph, run: &RunOutput) -> Result<(), Failure> {
    let res = match &run.out {
        Output::Mate(mate) => verify::check_maximal_matching(g, mate),
        Output::Set(in_set) => verify::check_maximal_independent_set(g, in_set),
        Output::Color(color) => verify::check_coloring(g, color),
    };
    res.map_err(|e| Failure {
        kind: "validity",
        detail: format!("{}: {e}", run.tag),
    })
}

/// Run `cfg` on `g` across the mode × thread matrix and cross-check every
/// documented contract. `wide` is the N used for the wide runs (1 means
/// the matrix degenerates to the two modes at one thread — still useful,
/// but thread-invariance becomes vacuous).
pub fn check_case(
    g: &Graph,
    cfg: &SolverConfig,
    seed: u64,
    wide: usize,
    mutation: Mutation,
) -> Result<(), Failure> {
    let combos = [
        (FrontierMode::Dense, 1),
        (FrontierMode::Compact, 1),
        (FrontierMode::Bitset, 1),
        (FrontierMode::Dense, wide.max(1)),
        (FrontierMode::Compact, wide.max(1)),
        (FrontierMode::Bitset, wide.max(1)),
    ];
    let runs: Vec<RunOutput> = combos
        .iter()
        .map(|&(mode, t)| run_one(g, cfg, seed, mode, t, mutation))
        .collect();

    // 1. Every run valid and maximal.
    for run in &runs {
        check_valid(g, run)?;
    }

    // 2. Byte-equality where the contract promises it.
    match cfg {
        SolverConfig::Mm(..) | SolverConfig::Mis(..) => {
            for run in &runs[1..] {
                if run.out != runs[0].out {
                    return Err(Failure {
                        kind: "equality",
                        detail: format!("{} differs from {}", run.tag, runs[0].tag),
                    });
                }
            }
        }
        SolverConfig::Color(..) => {
            // VB's conflict-fix loop is interleaving-dependent, so the
            // contract only promises cross-mode identity at one thread.
            for run in runs.iter().filter(|r| r.threads == 1).skip(1) {
                if run.out != runs[0].out {
                    return Err(Failure {
                        kind: "equality",
                        detail: format!("{} differs from {}", run.tag, runs[0].tag),
                    });
                }
            }
        }
    }

    // 3. Trace/counter accounting: top-level span deltas must sum to the
    // run's counter snapshot (every counted unit of work happens inside
    // some phase span).
    for run in &runs {
        let td = total_delta(&run.events);
        let c = &run.stats.counters;
        if (
            td.rounds,
            td.kernel_launches,
            td.work_items,
            td.edges_scanned,
        ) != (c.rounds, c.kernel_launches, c.work_items, c.edges_scanned)
        {
            return Err(Failure {
                kind: "accounting",
                detail: format!(
                    "{}: span deltas {td:?} != counter snapshot \
                     (rounds {}, launches {}, work {}, edges {})",
                    run.tag, c.rounds, c.kernel_launches, c.work_items, c.edges_scanned
                ),
            });
        }
    }

    // 4a. Per-phase round records are thread-invariant within a mode for
    // the seed-deterministic families (matching, MIS).
    if !matches!(cfg, SolverConfig::Color(..)) {
        for mode in [
            FrontierMode::Dense,
            FrontierMode::Compact,
            FrontierMode::Bitset,
        ] {
            let pair: Vec<&RunOutput> = runs.iter().filter(|r| r.mode == mode).collect();
            let a = sb_trace::rounds_per_phase(&pair[0].events);
            let b = sb_trace::rounds_per_phase(&pair[1].events);
            if a != b {
                return Err(Failure {
                    kind: "rounds",
                    detail: format!(
                        "{mode} rounds vary with threads: {a:?} at {}t vs {b:?} at {}t",
                        pair[0].threads, pair[1].threads
                    ),
                });
            }
        }
    }

    // 4b. Productive (non-vacuous) round counts are frontier-mode
    // invariant for the LMAX matching family on the GPU-sim pipeline —
    // the §10 contract this PR's vacuous-round fix establishes.
    if matches!(cfg, SolverConfig::Mm(..)) && cfg.arch() == Arch::GpuSim {
        let base = sb_trace::productive_rounds_per_phase(&runs[0].events);
        for run in &runs[1..] {
            let got = sb_trace::productive_rounds_per_phase(&run.events);
            if got != base {
                return Err(Failure {
                    kind: "rounds",
                    detail: format!(
                        "productive rounds differ: {base:?} ({}) vs {got:?} ({})",
                        runs[0].tag, run.tag
                    ),
                });
            }
        }
    }

    Ok(())
}

/// The engine configuration axis: run `cfg` once through a cap-0 engine
/// (never caches — the fresh reference), then through a caching engine
/// twice (prime, then cache hit), and check the cached-vs-fresh contract:
///
/// 1. The primed and cache-hit solutions are **byte-identical** to the
///    fresh one — a decomposition served from the cache must not change
///    any output bit.
/// 2. All three solutions have identical `verify` outcomes (and for the
///    real solvers, all must verify).
/// 3. For decomposed solvers the hit run actually *was* a cache hit —
///    otherwise the axis silently tested nothing.
///
/// [`Mutation::StaleDecompCache`] corrupts every cached decomposition
/// between priming and the hit run; this check must then fail (the
/// planted-bug self-test for the axis).
pub fn check_engine_case(
    g: &Graph,
    cfg: &SolverConfig,
    seed: u64,
    mutation: Mutation,
) -> Result<(), Failure> {
    use sb_engine::engine::DecompSpec;
    use sb_engine::{Engine, EngineConfig, Solver};

    let solver = match *cfg {
        SolverConfig::Mm(a, _) => Solver::Mm(a),
        SolverConfig::Mis(a, _) => Solver::Mis(a),
        SolverConfig::Color(a, _) => Solver::Color(a),
    };
    let arch = cfg.arch();
    let g = Arc::new(g.clone());
    let opts = SolveOpts::default();

    // Fresh reference: a cap-0 engine never caches anything.
    let mut fresh_engine = Engine::with_cap(0);
    let fresh = fresh_engine.solve_on(&g, solver, arch, seed, &opts);

    // Cached path: prime, (maybe corrupt,) then solve again on the hit.
    let mut cached_engine = Engine::new(EngineConfig::default());
    let primed = cached_engine.solve_on(&g, solver, arch, seed, &opts);
    if mutation == Mutation::StaleDecompCache {
        cached_engine.corrupt_cached_decompositions();
    }
    let hit = cached_engine.solve_on(&g, solver, arch, seed, &opts);

    let decomposed = solver.decomp_spec() != DecompSpec::None;
    if decomposed && hit.decomp_cached != Some(true) {
        return Err(Failure {
            kind: "accounting",
            detail: format!(
                "engine axis: second solve did not hit the decomposition \
                 cache (decomp_cached = {:?})",
                hit.decomp_cached
            ),
        });
    }

    for (tag, sol) in [("primed", &primed.solution), ("cache-hit", &hit.solution)] {
        if sol != &fresh.solution {
            return Err(Failure {
                kind: "equality",
                detail: format!("engine axis: {tag} output differs from cap-0 fresh output"),
            });
        }
    }
    let fresh_verify = fresh.solution.verify(&g);
    for (tag, sol) in [("primed", &primed.solution), ("cache-hit", &hit.solution)] {
        let v = sol.verify(&g);
        if v.is_ok() != fresh_verify.is_ok() {
            return Err(Failure {
                kind: "validity",
                detail: format!(
                    "engine axis: {tag} verify outcome {v:?} differs from fresh {fresh_verify:?}"
                ),
            });
        }
    }
    if let Err(e) = fresh_verify {
        return Err(Failure {
            kind: "validity",
            detail: format!("engine axis: fresh solution fails verification: {e}"),
        });
    }
    Ok(())
}

/// The edit axis driven by an explicit edit sequence: chain `seq` over
/// `g` per frontier mode, repairing the prior solution across each batch
/// with the family's `sb_core::repair` entry point, and check the
/// dynamic-graph contracts (DESIGN.md §16):
///
/// 1. **Validity + maximality per batch**: every repaired solution must
///    pass the sequential oracle *on the edited graph*.
/// 2. **Repaired-vs-fresh agreement**: a fresh solve of the edited graph
///    must agree with the repaired solution on validity (both verify) —
///    checked on the first mode so each batch pays one fresh solve, not
///    three.
/// 3. **Mode-invariance**: repairs are sequential and deterministic, and
///    single-thread initial solves are mode-invariant for every family,
///    so the final repaired output must be byte-identical across
///    frontier modes.
///
/// [`Mutation::StaleRepair`] serves the prior unrepaired instead; any
/// batch that invalidates the prior must then trip check 1 or 2.
pub fn check_edit_chain(
    g: &Graph,
    cfg: &SolverConfig,
    seed: u64,
    wide: usize,
    mutation: Mutation,
    seq: &[sb_graph::editlog::EditLog],
) -> Result<(), Failure> {
    use sb_core::repair;

    let modes = [
        FrontierMode::Dense,
        FrontierMode::Compact,
        FrontierMode::Bitset,
    ];
    let mut finals: Vec<(FrontierMode, Output)> = Vec::new();
    for (mi, &mode) in modes.iter().enumerate() {
        let opts = SolveOpts {
            trace: None,
            frontier: mode,
        };
        let mut cur = g.clone();
        let mut prior = run_one(g, cfg, seed, mode, 1, Mutation::None).out;
        for (bi, batch) in seq.iter().enumerate() {
            let next = batch.materialize(&cur);
            let repaired = if mutation == Mutation::StaleRepair {
                prior.clone()
            } else {
                match &prior {
                    Output::Mate(mate) => {
                        Output::Mate(repair::repair_matching(&cur, batch, mate, &opts).mate)
                    }
                    Output::Set(in_set) => {
                        Output::Set(repair::repair_mis(&cur, batch, in_set, &opts).in_set)
                    }
                    Output::Color(color) => {
                        Output::Color(repair::repair_coloring(&cur, batch, color, &opts).color)
                    }
                }
            };
            let tag = format!("{mode} batch {bi} [{}]", batch.wire());
            let repaired_check = match &repaired {
                Output::Mate(mate) => {
                    verify::check_maximal_matching(&next, mate).map_err(|e| e.to_string())
                }
                Output::Set(in_set) => verify::check_maximal_independent_set(&next, in_set)
                    .map_err(|e| e.to_string()),
                Output::Color(color) => {
                    verify::check_coloring(&next, color).map_err(|e| e.to_string())
                }
            };
            if mi == 0 {
                let fresh = run_one(&next, cfg, seed, mode, wide.max(1), Mutation::None);
                let fresh_ok = check_valid(&next, &fresh).is_ok();
                if repaired_check.is_ok() != fresh_ok {
                    return Err(Failure {
                        kind: "edit-validity",
                        detail: format!(
                            "{tag}: repaired ({}) and fresh ({}) disagree on validity: {}",
                            if repaired_check.is_ok() { "valid" } else { "invalid" },
                            if fresh_ok { "valid" } else { "invalid" },
                            repaired_check.err().unwrap_or_else(|| "-".into()),
                        ),
                    });
                }
            }
            if let Err(e) = repaired_check {
                return Err(Failure {
                    kind: "edit-validity",
                    detail: format!("{tag}: repaired solution invalid on the edited graph: {e}"),
                });
            }
            cur = next;
            prior = repaired;
        }
        finals.push((mode, prior));
    }
    for (mode, out) in &finals[1..] {
        if out != &finals[0].1 {
            return Err(Failure {
                kind: "edit-equality",
                detail: format!(
                    "final repaired output at {mode} differs from {}",
                    finals[0].0
                ),
            });
        }
    }
    Ok(())
}

/// Batches per derived edit sequence ([`check_edit_case`]); the
/// minimizer re-derives with the same shape.
pub const EDIT_BATCHES: usize = 2;
/// Edits per derived batch.
pub const EDIT_BATCH_SIZE: usize = 3;

/// The edit axis with the sequence derived from `(g, seed)` — what the
/// sweep runs per case. Two batches of up to three edits keep the axis
/// roughly as expensive as one extra mode pass.
pub fn check_edit_case(
    g: &Graph,
    cfg: &SolverConfig,
    seed: u64,
    wide: usize,
    mutation: Mutation,
) -> Result<(), Failure> {
    let seq = crate::gen::edit_sequence(g, seed, EDIT_BATCHES, EDIT_BATCH_SIZE);
    check_edit_chain(g, cfg, seed, wide, mutation, &seq)
}

/// A resident loopback `sbreak serve` daemon shared by every serve-axis
/// check of one fuzz sweep, so the sweep pays the bind/connect cost once
/// and the daemon's caches accumulate real cross-case traffic.
pub struct ServeOracle {
    handle: sb_engine::ServerHandle,
    client: std::sync::Mutex<sb_engine::Client>,
}

impl ServeOracle {
    /// Bind a loopback daemon with default serve settings.
    pub fn spawn() -> Result<ServeOracle, String> {
        let handle = sb_engine::Server::spawn(sb_engine::ServeConfig::default())
            .map_err(|e| format!("cannot spawn serve oracle: {e}"))?;
        let client = sb_engine::Client::connect(handle.addr())
            .map_err(|e| format!("cannot connect to serve oracle: {e}"))?;
        Ok(ServeOracle {
            handle,
            client: std::sync::Mutex::new(client),
        })
    }

    /// Shut the daemon down and join its threads.
    pub fn stop(self) {
        self.handle.shutdown();
        drop(self.client);
        self.handle.join();
    }
}

/// Recover the undirected edge list from a CSR graph (each edge once,
/// lower endpoint first) — the form `inline:` graph sources carry.
fn edge_list(g: &Graph) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for u in 0..g.num_vertices() as u32 {
        for &v in g.neighbors(u) {
            if u < v {
                edges.push((u, v));
            }
        }
    }
    edges
}

/// The algo string in `sbreak` wire form (`rand:3`, `degk:2`, `bicc`, …).
fn wire_algo(cfg: &SolverConfig) -> String {
    let label = cfg.label();
    let algo = label
        .split_once('@')
        .and_then(|(body, _)| body.split_once('-'))
        .map(|(_, algo)| algo)
        .unwrap_or_default();
    if let Some(p) = algo.strip_prefix("rand") {
        format!("rand:{p}")
    } else if let Some(k) = algo.strip_prefix("degk") {
        format!("degk:{k}")
    } else {
        algo.to_string()
    }
}

/// The serve axis: route the case through the loopback daemon as an
/// `inline:` graph with `want_solution`, and byte-compare the returned
/// solution text against an in-process cap-0 engine running the *same*
/// `JobSpec`. Any divergence — outcome, detail, or a single solution
/// byte — is a `serve` failure: the wire protocol, admission pipeline,
/// and shared caches must be invisible to the solver contract.
///
/// [`Mutation::CorruptMatching`] corrupts the in-process reference before
/// the comparison, so the planted-bug self-test covers this axis too.
pub fn check_serve_case(
    g: &Graph,
    cfg: &SolverConfig,
    seed: u64,
    mutation: Mutation,
    serve: &ServeOracle,
) -> Result<(), Failure> {
    use sb_engine::protocol::SolveParams;
    use sb_engine::{Engine, GraphSource, Solution};

    let fail = |detail: String| Failure {
        kind: "serve",
        detail,
    };
    // JSON numbers are f64 on both ends of the wire, and the protocol
    // rejects integers above 2^53-1 rather than rounding them; fold the
    // fuzzer's full-width seed into the representable range.
    let seed = seed & sb_engine::protocol::MAX_SAFE_JSON_INT;
    let mut params = SolveParams::new(
        &GraphSource::encode_inline(g.num_vertices(), &edge_list(g)),
        cfg.family(),
        &wire_algo(cfg),
    );
    params.id = format!("fuzz-{}-{seed}", cfg.label());
    params.arch = cfg.arch().to_string();
    params.seed = seed;
    params.want_solution = true;
    let job = params
        .to_job_spec()
        .map_err(|e| fail(format!("config does not cross the wire: {e}")))?;

    let mut fresh = Engine::with_cap(0);
    let mut reference = fresh.run_job(&job, None);
    if mutation == Mutation::CorruptMatching {
        if let Some(Solution::Mate(mate)) = &mut reference.solution {
            if let Some(v) = mate.iter().position(|&m| m != INVALID) {
                let m = mate[v] as usize;
                mate[v] = INVALID;
                mate[m] = INVALID;
            }
        }
    }

    let reply = lock_client(&serve.client)
        .solve(&params)
        .map_err(|e| fail(format!("daemon round-trip failed: {e}")))?;
    if reply.status() != "ok" {
        return Err(fail(format!(
            "daemon answered {:?} ({:?}) but the in-process engine ran \
             to {:?}",
            reply.status(),
            reply.str_field("detail").unwrap_or_default(),
            reference.outcome
        )));
    }
    let expected = reference
        .solution
        .as_ref()
        .map(|s| s.render())
        .unwrap_or_default();
    let served = reply.str_field("solution").unwrap_or_default();
    if served != expected {
        return Err(fail(format!(
            "served solution differs from the in-process engine \
             ({} served bytes vs {} expected)",
            served.len(),
            expected.len()
        )));
    }
    if reply.str_field("detail") != Some(reference.detail.as_str()) {
        return Err(fail(format!(
            "served detail {:?} differs from in-process detail {:?}",
            reply.str_field("detail"),
            reference.detail
        )));
    }
    Ok(())
}

fn lock_client(
    m: &std::sync::Mutex<sb_engine::Client>,
) -> std::sync::MutexGuard<'_, sb_engine::Client> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_core::matching::MmAlgorithm;
    use sb_graph::builder::from_edge_list;

    #[test]
    fn clean_solver_passes_on_a_path() {
        let g = from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        for cfg in SolverConfig::all() {
            check_case(&g, &cfg, 7, 2, Mutation::None)
                .unwrap_or_else(|f| panic!("{}: {f}", cfg.label()));
        }
    }

    #[test]
    fn planted_corruption_is_caught_as_validity_failure() {
        let g = from_edge_list(2, &[(0, 1)]);
        let cfg = SolverConfig::Mm(MmAlgorithm::Baseline, Arch::Cpu);
        let f = check_case(&g, &cfg, 7, 2, Mutation::CorruptMatching).unwrap_err();
        assert_eq!(f.kind, "validity");
    }

    /// A chain with chord edges: dense enough that a corrupted
    /// decomposition visibly changes solver output (a bare chain's
    /// matchings are too rigid to diverge).
    fn chorded_graph() -> Graph {
        let n = 32u32;
        let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.extend((0..n).map(|i| (i, (i * 7 + 3) % n)));
        from_edge_list(n as usize, &edges)
    }

    #[test]
    fn planted_word_boundary_bug_is_caught() {
        // A universe reaching into u64 word 1 (70 > 65): the planted
        // bitset off-by-one at vertices 63/64/65 must trip the oracle as
        // a validity or cross-mode equality failure.
        let n = 70u32;
        let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.extend((0..n).map(|i| (i, (i * 7 + 3) % n)));
        let g = from_edge_list(n as usize, &edges);
        let cfg = SolverConfig::Mis(sb_core::mis::MisAlgorithm::Baseline, Arch::Cpu);
        let f = check_case(&g, &cfg, 7, 2, Mutation::BitsetWordBoundary).unwrap_err();
        assert!(
            f.kind == "validity" || f.kind == "equality",
            "want a word-boundary violation, got {f}"
        );
    }

    #[test]
    fn word_boundary_bug_needs_a_second_word() {
        // The mutation targets bits 63/64/65; a 5-vertex universe never
        // reaches them, so the planted bug is a no-op and the sweep must
        // stay clean — pinning that the self-test really is about the
        // word seam, not generic corruption.
        let g = from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let cfg = SolverConfig::Mis(sb_core::mis::MisAlgorithm::Baseline, Arch::Cpu);
        check_case(&g, &cfg, 7, 2, Mutation::BitsetWordBoundary).unwrap();
    }

    #[test]
    fn engine_axis_clean_solvers_pass() {
        let g = chorded_graph();
        for cfg in SolverConfig::all() {
            check_engine_case(&g, &cfg, 9, Mutation::None)
                .unwrap_or_else(|f| panic!("{}: {f}", cfg.label()));
        }
    }

    #[test]
    fn engine_axis_catches_planted_stale_cache() {
        use sb_core::coloring::ColorAlgorithm;
        let g = chorded_graph();
        let cfg = SolverConfig::Color(ColorAlgorithm::Rand { partitions: 3 }, Arch::Cpu);
        let f = check_engine_case(&g, &cfg, 9, Mutation::StaleDecompCache).unwrap_err();
        assert!(
            f.kind == "equality" || f.kind == "validity",
            "want cached-vs-fresh divergence, got {f}"
        );
    }

    #[test]
    fn engine_axis_stale_cache_is_noop_for_undecomposed_solvers() {
        // Baseline solvers cache no decomposition, so the planted stale
        // entry has nothing to corrupt: the check must still pass.
        let g = chorded_graph();
        let cfg = SolverConfig::Mm(MmAlgorithm::Baseline, Arch::Cpu);
        check_engine_case(&g, &cfg, 9, Mutation::StaleDecompCache).unwrap();
    }

    #[test]
    fn edit_axis_clean_matrix_passes() {
        // Every registered configuration survives a derived edit chain:
        // repairs verify per batch, agree with fresh solves, and are
        // mode-invariant.
        let g = chorded_graph();
        for cfg in SolverConfig::all() {
            check_edit_case(&g, &cfg, 9, 2, Mutation::None)
                .unwrap_or_else(|f| panic!("{}: {f}", cfg.label()));
        }
    }

    /// Two disjoint triangles: dismantling the first and wiring vertex 0
    /// into every vertex of the second invalidates any pre-edit solution
    /// of every family, whatever the solver chose. A maximal matching
    /// matches exactly one triangle-1 edge (now gone); a MIS takes
    /// exactly one triangle-1 vertex (0 becomes adjacent to the whole
    /// second triangle, 1/2 leave an isolated unclaimed vertex); a
    /// greedy coloring gives each triangle the palette {0,1,2}, so 0
    /// must collide with one of its three new neighbors.
    fn stale_repair_case() -> (Graph, [sb_graph::editlog::EditLog; 1]) {
        let g = from_edge_list(6, &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]);
        let seq = [sb_graph::editlog::EditLog::parse("-0-1,-0-2,-1-2,+0-3,+0-4,+0-5").unwrap()];
        (g, seq)
    }

    #[test]
    fn edit_axis_catches_a_planted_stale_repair_per_family() {
        use sb_core::coloring::ColorAlgorithm;
        use sb_core::mis::MisAlgorithm;

        let (g, seq) = stale_repair_case();
        for cfg in [
            SolverConfig::Mm(MmAlgorithm::Baseline, Arch::Cpu),
            SolverConfig::Mis(MisAlgorithm::Baseline, Arch::Cpu),
            SolverConfig::Color(ColorAlgorithm::Baseline, Arch::Cpu),
        ] {
            let f = match check_edit_chain(&g, &cfg, 7, 2, Mutation::StaleRepair, &seq) {
                Err(f) => f,
                Ok(()) => panic!("{}: stale repair not caught", cfg.label()),
            };
            assert_eq!(f.kind, "edit-validity", "{}: {f}", cfg.label());
            // The same chain with the real repair passes.
            check_edit_chain(&g, &cfg, 7, 2, Mutation::None, &seq)
                .unwrap_or_else(|f| panic!("{}: {f}", cfg.label()));
        }
    }

    #[test]
    fn edit_axis_stale_repair_is_noop_on_a_net_noop_batch() {
        // A batch whose net effect is empty (remove then re-add the same
        // edge) leaves the graph unchanged, so the unrepaired prior stays
        // valid and the planted bug must NOT fire — pinning that the
        // self-test is about edits that matter, not generic corruption.
        use sb_graph::editlog::EditLog;
        let g = from_edge_list(2, &[(0, 1)]);
        let seq = [EditLog::parse("-0-1,+0-1").unwrap()];
        let cfg = SolverConfig::Mm(MmAlgorithm::Baseline, Arch::Cpu);
        check_edit_chain(&g, &cfg, 7, 2, Mutation::StaleRepair, &seq).unwrap();
    }

    #[test]
    fn serve_axis_clean_matrix_passes_through_one_daemon() {
        // Every registered configuration crosses the wire cleanly, all
        // through one resident daemon — cross-case cache reuse included.
        let g = chorded_graph();
        let daemon = ServeOracle::spawn().unwrap();
        for cfg in SolverConfig::all() {
            check_serve_case(&g, &cfg, 9, Mutation::None, &daemon)
                .unwrap_or_else(|f| panic!("{}: {f}", cfg.label()));
        }
        daemon.stop();
    }

    #[test]
    fn serve_axis_catches_a_diverging_solution() {
        // Planted-bug self-test: corrupting the in-process reference must
        // surface as a byte-level serve divergence.
        let g = chorded_graph();
        let daemon = ServeOracle::spawn().unwrap();
        let cfg = SolverConfig::Mm(MmAlgorithm::Baseline, Arch::Cpu);
        let f = check_serve_case(&g, &cfg, 9, Mutation::CorruptMatching, &daemon).unwrap_err();
        assert_eq!(f.kind, "serve");
        assert!(f.detail.contains("differs"), "{f}");
        daemon.stop();
    }
}
