//! The solver configuration matrix the fuzzer sweeps, with stable string
//! labels so counterexample files can name — and replay — the exact
//! configuration that failed.

use sb_core::coloring::ColorAlgorithm;
use sb_core::matching::MmAlgorithm;
use sb_core::mis::MisAlgorithm;
use sb_core::Arch;

/// One solver configuration: problem family × algorithm × architecture.
/// Frontier mode and thread count are *not* part of the configuration —
/// the oracle runs every configuration at dense/compact/bitset × 1/N and
/// cross-checks, which is the whole point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverConfig {
    /// Maximal matching.
    Mm(MmAlgorithm, Arch),
    /// Maximal independent set.
    Mis(MisAlgorithm, Arch),
    /// Vertex coloring.
    Color(ColorAlgorithm, Arch),
}

/// RAND partition count used across the fuzz matrix (small, so tiny
/// graphs still split into several non-trivial pieces).
pub const FUZZ_PARTITIONS: usize = 3;
/// DEGk threshold used across the fuzz matrix (the paper's k = 2).
pub const FUZZ_K: usize = 2;

impl SolverConfig {
    /// Every registered configuration: 3 families × 5 algorithms × 2
    /// architectures = 30, matching the dispatch tables in `sb_core`.
    pub fn all() -> Vec<SolverConfig> {
        let mut v = Vec::with_capacity(30);
        for arch in [Arch::Cpu, Arch::GpuSim] {
            v.extend(
                [
                    MmAlgorithm::Baseline,
                    MmAlgorithm::Bridge,
                    MmAlgorithm::Rand {
                        partitions: FUZZ_PARTITIONS,
                    },
                    MmAlgorithm::Degk { k: FUZZ_K },
                    MmAlgorithm::Bicc,
                ]
                .map(|a| SolverConfig::Mm(a, arch)),
            );
        }
        for arch in [Arch::Cpu, Arch::GpuSim] {
            v.extend(
                [
                    MisAlgorithm::Baseline,
                    MisAlgorithm::Bridge,
                    MisAlgorithm::Rand {
                        partitions: FUZZ_PARTITIONS,
                    },
                    MisAlgorithm::Degk { k: FUZZ_K },
                    MisAlgorithm::Bicc,
                ]
                .map(|a| SolverConfig::Mis(a, arch)),
            );
        }
        for arch in [Arch::Cpu, Arch::GpuSim] {
            v.extend(
                [
                    ColorAlgorithm::Baseline,
                    ColorAlgorithm::Bridge,
                    ColorAlgorithm::Rand {
                        partitions: FUZZ_PARTITIONS,
                    },
                    ColorAlgorithm::Degk { k: FUZZ_K },
                    ColorAlgorithm::Bicc,
                ]
                .map(|a| SolverConfig::Color(a, arch)),
            );
        }
        v
    }

    /// Architecture of this configuration.
    pub fn arch(&self) -> Arch {
        match *self {
            SolverConfig::Mm(_, a) | SolverConfig::Mis(_, a) | SolverConfig::Color(_, a) => a,
        }
    }

    /// Problem family as a short tag.
    pub fn family(&self) -> &'static str {
        match self {
            SolverConfig::Mm(..) => "mm",
            SolverConfig::Mis(..) => "mis",
            SolverConfig::Color(..) => "color",
        }
    }

    /// Stable label, e.g. `mm-rand3@gpu`. [`SolverConfig::parse`] inverts it.
    pub fn label(&self) -> String {
        let algo = match *self {
            SolverConfig::Mm(a, _) => match a {
                MmAlgorithm::Baseline => "baseline".to_string(),
                MmAlgorithm::Bridge => "bridge".to_string(),
                MmAlgorithm::Rand { partitions } => format!("rand{partitions}"),
                MmAlgorithm::Degk { k } => format!("degk{k}"),
                MmAlgorithm::Bicc => "bicc".to_string(),
            },
            SolverConfig::Mis(a, _) => match a {
                MisAlgorithm::Baseline => "baseline".to_string(),
                MisAlgorithm::Bridge => "bridge".to_string(),
                MisAlgorithm::Rand { partitions } => format!("rand{partitions}"),
                MisAlgorithm::Degk { k } => format!("degk{k}"),
                MisAlgorithm::Bicc => "bicc".to_string(),
            },
            SolverConfig::Color(a, _) => match a {
                ColorAlgorithm::Baseline => "baseline".to_string(),
                ColorAlgorithm::Bridge => "bridge".to_string(),
                ColorAlgorithm::Rand { partitions } => format!("rand{partitions}"),
                ColorAlgorithm::Degk { k } => format!("degk{k}"),
                ColorAlgorithm::Bicc => "bicc".to_string(),
            },
        };
        format!("{}-{}@{}", self.family(), algo, self.arch())
    }

    /// Parse a [`SolverConfig::label`] back into a configuration.
    pub fn parse(s: &str) -> Result<SolverConfig, String> {
        let err = || format!("bad config label '{s}' (expected e.g. mm-rand3@gpu)");
        let (body, arch) = s.split_once('@').ok_or_else(err)?;
        let arch = match arch {
            "cpu" => Arch::Cpu,
            "gpu" => Arch::GpuSim,
            _ => return Err(err()),
        };
        let (family, algo) = body.split_once('-').ok_or_else(err)?;
        // `(variant, numeric parameter)`; parameterless variants get 0.
        let (kind, param) = if let Some(p) = algo.strip_prefix("rand") {
            ("rand", p.parse::<usize>().map_err(|_| err())?)
        } else if let Some(k) = algo.strip_prefix("degk") {
            ("degk", k.parse::<usize>().map_err(|_| err())?)
        } else {
            (algo, 0)
        };
        let cfg = match (family, kind) {
            ("mm", "baseline") => SolverConfig::Mm(MmAlgorithm::Baseline, arch),
            ("mm", "bridge") => SolverConfig::Mm(MmAlgorithm::Bridge, arch),
            ("mm", "rand") => SolverConfig::Mm(MmAlgorithm::Rand { partitions: param }, arch),
            ("mm", "degk") => SolverConfig::Mm(MmAlgorithm::Degk { k: param }, arch),
            ("mm", "bicc") => SolverConfig::Mm(MmAlgorithm::Bicc, arch),
            ("mis", "baseline") => SolverConfig::Mis(MisAlgorithm::Baseline, arch),
            ("mis", "bridge") => SolverConfig::Mis(MisAlgorithm::Bridge, arch),
            ("mis", "rand") => SolverConfig::Mis(MisAlgorithm::Rand { partitions: param }, arch),
            ("mis", "degk") => SolverConfig::Mis(MisAlgorithm::Degk { k: param }, arch),
            ("mis", "bicc") => SolverConfig::Mis(MisAlgorithm::Bicc, arch),
            ("color", "baseline") => SolverConfig::Color(ColorAlgorithm::Baseline, arch),
            ("color", "bridge") => SolverConfig::Color(ColorAlgorithm::Bridge, arch),
            ("color", "rand") => {
                SolverConfig::Color(ColorAlgorithm::Rand { partitions: param }, arch)
            }
            ("color", "degk") => SolverConfig::Color(ColorAlgorithm::Degk { k: param }, arch),
            ("color", "bicc") => SolverConfig::Color(ColorAlgorithm::Bicc, arch),
            _ => return Err(err()),
        };
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_complete_and_labels_round_trip() {
        let all = SolverConfig::all();
        assert_eq!(all.len(), 30);
        for cfg in all {
            let label = cfg.label();
            assert_eq!(SolverConfig::parse(&label).unwrap(), cfg, "{label}");
        }
    }

    #[test]
    fn bad_labels_are_rejected() {
        for bad in ["", "mm-rand3", "mm-randx@gpu", "tsp-baseline@cpu", "mm@cpu"] {
            assert!(SolverConfig::parse(bad).is_err(), "{bad}");
        }
    }
}
