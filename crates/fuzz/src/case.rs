//! Reproducible counterexample files.
//!
//! A case file is a plain edge list with `#` header comments, so the body
//! loads through `sb_graph::io::read_edge_list` unchanged while the
//! header carries everything needed to replay the exact failing
//! configuration (`sbreak fuzz --replay <file>`):
//!
//! ```text
//! # sb-fuzz counterexample
//! # config: mm-rand3@gpu
//! # seed: 1234
//! # threads: 4
//! # failure: validity: dense@1t: matching not maximal ...
//! # n: 2
//! 0 1
//! ```

use std::io;
use std::path::{Path, PathBuf};

/// One replayable counterexample: failing configuration plus the
/// (usually shrunk) graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseFile {
    /// Configuration label (`SolverConfig::parse` accepts it).
    pub config: String,
    /// Solver seed the failure was observed with.
    pub seed: u64,
    /// Wide thread count of the failing matrix.
    pub threads: usize,
    /// The oracle failure, kind-prefixed.
    pub failure: String,
    /// Vertex count.
    pub n: usize,
    /// Raw edge list.
    pub edges: Vec<(u32, u32)>,
    /// Edit-axis failures only: the minimized edit sequence, batches in
    /// `EditLog` wire form joined with `;` (replay with
    /// `oracle::check_edit_chain`).
    pub edits: Option<String>,
}

impl CaseFile {
    /// Serialize to the case-file format.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("# sb-fuzz counterexample\n");
        s.push_str(&format!("# config: {}\n", self.config));
        s.push_str(&format!("# seed: {}\n", self.seed));
        s.push_str(&format!("# threads: {}\n", self.threads));
        // Header values are line-oriented; keep multi-line failure text on
        // one comment line.
        s.push_str(&format!(
            "# failure: {}\n",
            self.failure.replace('\n', " | ")
        ));
        if let Some(edits) = &self.edits {
            s.push_str(&format!("# edits: {edits}\n"));
        }
        s.push_str(&format!("# n: {}\n", self.n));
        for &(u, v) in &self.edges {
            s.push_str(&format!("{u} {v}\n"));
        }
        s
    }

    /// Parse a rendered case file back.
    pub fn parse(text: &str) -> Result<CaseFile, String> {
        let mut config = None;
        let mut seed = None;
        let mut threads = None;
        let mut failure = String::new();
        let mut n = None;
        let mut edges = Vec::new();
        let mut edits = None;
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                let rest = rest.trim();
                if let Some(v) = rest.strip_prefix("config:") {
                    config = Some(v.trim().to_string());
                } else if let Some(v) = rest.strip_prefix("seed:") {
                    seed = Some(v.trim().parse::<u64>().map_err(|e| format!("seed: {e}"))?);
                } else if let Some(v) = rest.strip_prefix("threads:") {
                    threads = Some(
                        v.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("threads: {e}"))?,
                    );
                } else if let Some(v) = rest.strip_prefix("failure:") {
                    failure = v.trim().to_string();
                } else if let Some(v) = rest.strip_prefix("edits:") {
                    edits = Some(v.trim().to_string());
                } else if let Some(v) = rest.strip_prefix("n:") {
                    n = Some(v.trim().parse::<usize>().map_err(|e| format!("n: {e}"))?);
                }
                continue;
            }
            let mut it = line.split_whitespace();
            let (u, v) = (it.next(), it.next());
            match (u, v) {
                (Some(u), Some(v)) => {
                    let u = u
                        .parse::<u32>()
                        .map_err(|e| format!("line {}: {e}", idx + 1))?;
                    let v = v
                        .parse::<u32>()
                        .map_err(|e| format!("line {}: {e}", idx + 1))?;
                    edges.push((u, v));
                }
                _ => return Err(format!("line {}: expected 'u v'", idx + 1)),
            }
        }
        Ok(CaseFile {
            config: config.ok_or("missing '# config:' header")?,
            seed: seed.ok_or("missing '# seed:' header")?,
            threads: threads.unwrap_or(4),
            failure,
            n: n.ok_or("missing '# n:' header")?,
            edges,
            edits,
        })
    }

    /// Load a case file from disk.
    pub fn load(path: &Path) -> Result<CaseFile, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        CaseFile::parse(&text)
    }

    /// Write under `dir` as `case-<config>-<seed>.txt` (config label
    /// sanitized for filenames); creates `dir` if needed.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let safe = self.config.replace(['@', ':'], "-");
        let path = dir.join(format!("case-{}-{}.txt", safe, self.seed));
        std::fs::write(&path, self.render())?;
        Ok(path)
    }

    /// A ready-to-paste regression test exercising this case through the
    /// oracle (drop into `tests/fuzz.rs` or a crate test module). Edit-axis
    /// cases replay their minimized edit sequence through
    /// `check_edit_chain`; everything else replays the mode × thread
    /// matrix through `check_case`.
    pub fn regression_skeleton(&self) -> String {
        let name = self.config.replace(['-', '@'], "_");
        let edges = self
            .edges
            .iter()
            .map(|&(u, v)| format!("({u}, {v})"))
            .collect::<Vec<_>>()
            .join(", ");
        let check = match &self.edits {
            Some(wire) => format!(
                "\x20   let seq: Vec<_> = \"{wire}\"\n\
                 \x20       .split(';')\n\
                 \x20       .map(|w| sb_graph::editlog::EditLog::parse(w).unwrap())\n\
                 \x20       .collect();\n\
                 \x20   sb_fuzz::oracle::check_edit_chain(&g, &cfg, {seed}, {threads}, \
                 sb_fuzz::Mutation::None, &seq)\n",
                wire = wire,
                seed = self.seed,
                threads = self.threads,
            ),
            None => format!(
                "\x20   sb_fuzz::oracle::check_case(&g, &cfg, {seed}, {threads}, \
                 sb_fuzz::Mutation::None)\n",
                seed = self.seed,
                threads = self.threads,
            ),
        };
        format!(
            "#[test]\n\
             fn fuzz_regression_{name}_{seed}() {{\n\
            \x20   // {failure}\n\
            \x20   let g = sb_graph::builder::from_edge_list({n}, &[{edges}]);\n\
            \x20   let cfg = sb_fuzz::SolverConfig::parse(\"{config}\").unwrap();\n\
             {check}\
            \x20       .unwrap_or_else(|f| panic!(\"still failing: {{f}}\"));\n\
             }}\n",
            name = name,
            seed = self.seed,
            failure = self.failure.replace('\n', " | "),
            n = self.n,
            edges = edges,
            config = self.config,
            check = check,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case() -> CaseFile {
        CaseFile {
            config: "mm-rand3@gpu".to_string(),
            seed: 42,
            threads: 4,
            failure: "equality: compact@4t differs from dense@1t".to_string(),
            n: 3,
            edges: vec![(0, 1), (1, 2)],
            edits: None,
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let c = case();
        assert_eq!(CaseFile::parse(&c.render()).unwrap(), c);
    }

    #[test]
    fn body_loads_through_graph_io() {
        let c = case();
        let g = sb_graph::io::read_edge_list(c.render().as_bytes(), Some(c.n)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn skeleton_names_the_config_and_edges() {
        let skel = case().regression_skeleton();
        assert!(skel.contains("fuzz_regression_mm_rand3_gpu_42"));
        assert!(skel.contains("(0, 1), (1, 2)"));
        assert!(skel.contains("mm-rand3@gpu"));
        assert!(skel.contains("check_case"));
    }

    #[test]
    fn edit_case_round_trips_and_replays_through_the_chain() {
        let mut c = case();
        c.failure = "edit-validity: dense batch 0 [-0-1]: ...".to_string();
        c.edits = Some("-0-1;+1-2".to_string());
        let parsed = CaseFile::parse(&c.render()).unwrap();
        assert_eq!(parsed, c);
        let skel = c.regression_skeleton();
        assert!(skel.contains("check_edit_chain"), "{skel}");
        assert!(skel.contains("-0-1;+1-2"), "{skel}");
    }
}
