//! Jones–Plassmann coloring — ablation baseline.
//!
//! The classic independent-set-based colorer (§IV-A of the paper reviews
//! it): vertices get priorities; each round, every uncolored vertex whose
//! priority beats all its uncolored neighbors takes the smallest color
//! unused in its neighborhood. No conflicts are ever produced, at the cost
//! of more rounds than speculative coloring. Kept as a comparison point for
//! the VB/EB baselines, together with the ordering heuristics of
//! Hasenplaugh et al. (the paper's reference \[14\]): largest-degree-first
//! and smallest-degree-last.

use crate::common::FrontierMode;
use sb_graph::csr::{Graph, VertexId, INVALID};
use sb_par::atomic::as_atomic_u32;
use sb_par::counters::Counters;
use sb_par::frontier::{ActiveSet, BitFrontier, Frontier, Scratch};
use sb_par::rng::hash2;
use std::sync::atomic::Ordering;

/// Vertex-ordering heuristic for Jones–Plassmann (Hasenplaugh et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JpOrdering {
    /// Uniform random priorities (the original Jones–Plassmann).
    Random,
    /// Largest-degree-first: high-degree vertices color early, which tends
    /// to reduce the color count on skewed-degree graphs.
    LargestDegreeFirst,
    /// Smallest-degree-last: iteratively peel minimum-degree vertices; the
    /// peel level (latest peeled = highest priority) approximates the
    /// degeneracy ordering and bounds colors by the graph's degeneracy + 1.
    SmallestDegreeLast,
}

/// Per-vertex priority keys for an ordering (higher = colors earlier).
fn priorities(g: &Graph, ordering: JpOrdering, seed: u64, counters: &Counters) -> Vec<u64> {
    let n = g.num_vertices();
    match ordering {
        JpOrdering::Random => (0..n).map(|v| hash2(seed, v as u64)).collect(),
        JpOrdering::LargestDegreeFirst => (0..n)
            .map(|v| {
                // Degree in the high bits, hash tiebreak in the low bits.
                ((g.degree(v as VertexId) as u64) << 32) | (hash2(seed, v as u64) & 0xFFFF_FFFF)
            })
            .collect(),
        JpOrdering::SmallestDegreeLast => {
            // Degeneracy-style peel: raise a threshold k; while any vertex
            // has residual degree ≤ k, peel it (cascading through a
            // worklist, so each vertex and arc is touched O(1) times —
            // a per-round full rescan would be quadratic on paths).
            let mut level = vec![u32::MAX; n];
            let mut residual: Vec<u32> = (0..n).map(|v| g.degree(v as VertexId) as u32).collect();
            let mut remaining = n;
            let mut k = 0u32;
            let mut round = 0u32;
            while remaining > 0 {
                counters.add_rounds(1);
                let mut frontier: Vec<VertexId> = (0..n as u32)
                    .filter(|&v| level[v as usize] == u32::MAX && residual[v as usize] <= k)
                    .collect();
                for &v in &frontier {
                    level[v as usize] = round;
                }
                while let Some(v) = frontier.pop() {
                    remaining -= 1;
                    for &w in g.neighbors(v) {
                        if level[w as usize] == u32::MAX {
                            residual[w as usize] -= 1;
                            if residual[w as usize] <= k {
                                level[w as usize] = round;
                                frontier.push(w);
                            }
                        }
                    }
                }
                k += 1;
                round += 1;
            }
            // Latest-peeled (dense core) gets the highest priority.
            (0..n)
                .map(|v| ((level[v] as u64) << 32) | (hash2(seed, v as u64) & 0xFFFF_FFFF))
                .collect()
        }
    }
}

/// Color `g` with Jones–Plassmann under the given ordering heuristic.
pub fn jp_color_ordered(
    g: &Graph,
    ordering: JpOrdering,
    seed: u64,
    counters: &Counters,
) -> Vec<u32> {
    jp_color_ordered_opts(g, ordering, seed, counters, FrontierMode::default())
}

/// [`jp_color_ordered`] with an explicit live-set representation. `Dense`
/// and `Compact` run the worklist form (JP's worklist *is* its frontier —
/// there is no separate dense sweep); `Bitset` runs the identical rounds
/// over a [`BitFrontier`]. Outputs are byte-identical across modes and
/// thread counts: decisions are double-buffered through a proposal array,
/// so they depend only on pre-round colors, never on iteration order.
pub fn jp_color_ordered_opts(
    g: &Graph,
    ordering: JpOrdering,
    seed: u64,
    counters: &Counters,
    mode: FrontierMode,
) -> Vec<u32> {
    let mut scratch = Scratch::new();
    match mode {
        FrontierMode::Dense | FrontierMode::Compact => {
            jp_color_ordered_impl::<Frontier>(g, ordering, seed, counters, &mut scratch)
        }
        FrontierMode::Bitset => {
            jp_color_ordered_impl::<BitFrontier>(g, ordering, seed, counters, &mut scratch)
        }
    }
}

fn jp_color_ordered_impl<W: ActiveSet>(
    g: &Graph,
    ordering: JpOrdering,
    seed: u64,
    counters: &Counters,
    scratch: &mut Scratch,
) -> Vec<u32> {
    let n = g.num_vertices();
    let keys = priorities(g, ordering, seed, counters);
    let prio = |v: VertexId| (keys[v as usize], v);
    let mut color = vec![INVALID; n];
    let mut proposal = scratch.take_u32(n, INVALID);
    let mut work = W::take(scratch);
    work.reset_range(n, |_| true);

    while !work.is_empty() {
        let round = counters.round_scope(work.len() as u64);
        let before = work.len();
        counters.add_rounds(1);
        counters.add_work(work.len() as u64);
        {
            let color_at = as_atomic_u32(&mut color);
            let prop_at = as_atomic_u32(&mut proposal);
            // Pass A — double-buffered decision: only local maxima among
            // uncolored neighbors propose a color, reading pre-round colors
            // only, so no conflicts can arise.
            work.for_each(|v| {
                counters.add_edges(g.degree(v) as u64);
                let pv = prio(v);
                let mut is_max = true;
                for &w in g.neighbors(v) {
                    if color_at[w as usize].load(Ordering::Relaxed) == INVALID && prio(w) > pv {
                        is_max = false;
                        break;
                    }
                }
                if !is_max {
                    return;
                }
                // Smallest color unused by (colored) neighbors.
                let deg = g.degree(v);
                let mut used = vec![false; deg + 1];
                for &w in g.neighbors(v) {
                    let c = color_at[w as usize].load(Ordering::Relaxed);
                    if c != INVALID && (c as usize) <= deg {
                        used[c as usize] = true;
                    }
                }
                let c = used.iter().position(|&u| !u).unwrap() as u32;
                prop_at[v as usize].store(c, Ordering::Relaxed);
            });
            // Pass B — apply and clear proposals (disjoint per-vertex
            // writes, so parallel application equals sequential).
            work.for_each(|v| {
                let p = prop_at[v as usize].load(Ordering::Relaxed);
                if p != INVALID {
                    color_at[v as usize].store(p, Ordering::Relaxed);
                    prop_at[v as usize].store(INVALID, Ordering::Relaxed);
                }
            });
        }
        {
            // Order-stable live-set compaction, so output is unchanged.
            let color_ro: &[u32] = &color;
            work.retain(|v| color_ro[v as usize] == INVALID);
        }
        counters.finish_round(round, || (before - work.len()) as u64);
    }
    work.recycle(scratch);
    scratch.recycle_u32(proposal);
    color
}

/// Color `g` with the original random-priority Jones–Plassmann.
pub fn jp_color(g: &Graph, seed: u64, counters: &Counters) -> Vec<u32> {
    jp_color_ordered(g, JpOrdering::Random, seed, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_coloring, color_count};
    use sb_graph::builder::from_edge_list;

    #[test]
    fn proper_on_path_cycle_clique() {
        let path = from_edge_list(30, &(0..29u32).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let c = jp_color(&path, 1, &Counters::new());
        check_coloring(&path, &c).unwrap();
        assert!(color_count(&c) <= 3);

        let mut edges: Vec<(u32, u32)> = (0..29).map(|i| (i, i + 1)).collect();
        edges.push((29, 0));
        let cyc = from_edge_list(30, &edges);
        let c = jp_color(&cyc, 2, &Counters::new());
        check_coloring(&cyc, &c).unwrap();

        let mut k6 = Vec::new();
        for i in 0..6u32 {
            for j in i + 1..6 {
                k6.push((i, j));
            }
        }
        let g = from_edge_list(6, &k6);
        let c = jp_color(&g, 3, &Counters::new());
        check_coloring(&g, &c).unwrap();
        assert_eq!(color_count(&c), 6);
    }

    #[test]
    fn never_exceeds_delta_plus_one() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for trial in 0..5 {
            let n = 200;
            let edges: Vec<(u32, u32)> = (0..n * 4)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = from_edge_list(n, &edges);
            let c = jp_color(&g, trial, &Counters::new());
            check_coloring(&g, &c).unwrap();
            assert!(color_count(&c) <= g.max_degree() + 1);
        }
    }

    #[test]
    fn all_orderings_proper_and_sl_bounds_degeneracy() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let n = 300;
        let edges: Vec<(u32, u32)> = (0..n * 5)
            .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
            .collect();
        let g = from_edge_list(n, &edges);
        for ordering in [
            JpOrdering::Random,
            JpOrdering::LargestDegreeFirst,
            JpOrdering::SmallestDegreeLast,
        ] {
            let c = jp_color_ordered(&g, ordering, 4, &Counters::new());
            check_coloring(&g, &c).unwrap_or_else(|e| panic!("{ordering:?}: {e}"));
            assert!(color_count(&c) <= g.max_degree() + 1, "{ordering:?}");
        }
    }

    #[test]
    fn sl_uses_few_colors_on_star_of_cliques() {
        // A 2-degenerate-ish shape where peel order matters: a hub joined
        // to many triangles. SL must stay within a small palette even
        // though the hub degree is large.
        let mut edges = Vec::new();
        for t in 0..20u32 {
            let a = 1 + 2 * t;
            let b = a + 1;
            edges.push((0, a));
            edges.push((a, b));
            edges.push((0, b));
        }
        let g = from_edge_list(41, &edges);
        let c = jp_color_ordered(&g, JpOrdering::SmallestDegreeLast, 3, &Counters::new());
        check_coloring(&g, &c).unwrap();
        assert!(
            color_count(&c) <= 4,
            "SL should track degeneracy, used {}",
            color_count(&c)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = from_edge_list(50, &(0..49u32).map(|i| (i, i + 1)).collect::<Vec<_>>());
        assert_eq!(
            jp_color(&g, 4, &Counters::new()),
            jp_color(&g, 4, &Counters::new())
        );
    }
}
