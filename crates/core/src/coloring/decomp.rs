//! Decomposition-based coloring (Algorithms 7–9 of the paper).

use super::{eb, vb, vb_window, ColoringRun};
use crate::common::{counters_for_opts, Arch, FrontierMode, RunStats, SolveOpts};
use crate::matching::materialize_for_gpu;
use rayon::prelude::*;
use sb_decompose::bicc::{decompose_bicc, BiccDecomposition};
use sb_decompose::bridge::{decompose_bridge, BridgeDecomposition};
use sb_decompose::degk::{decompose_degk, DegkDecomposition};
use sb_decompose::rand_part::{decompose_rand, RandDecomposition};
use sb_graph::csr::{Graph, VertexId, INVALID};
use sb_graph::view::EdgeView;
use sb_par::bsp::BspExecutor;
use sb_par::counters::{Counters, Stopwatch};
use sb_par::frontier::Scratch;
use sb_trace::TraceSink;
use std::sync::Arc;
use std::time::Duration;

/// Color the vertices of `worklist` against the edges of `view`, with the
/// architecture's baseline, drawing colors from `base` upward using a
/// FORBIDDEN window of `window` entries (CPU/VB only; EB's window is its
/// 32-bit mask). In `Dense` mode GPU phases over a filtered view
/// materialize the piece first (streaming is cheap on-device; see
/// `matching::base_extend`); in `Compact` mode both architectures run
/// worklist-compacted solvers zero-copy against the masked view.
#[allow(clippy::too_many_arguments)]
fn base_color_extend(
    g: &Graph,
    view: EdgeView<'_>,
    color: &mut [u32],
    worklist: Vec<VertexId>,
    base: u32,
    window: usize,
    arch: Arch,
    counters: &Counters,
    mode: FrontierMode,
    scratch: &mut Scratch,
) {
    match (arch, mode) {
        (Arch::Cpu, FrontierMode::Dense) => {
            vb::vb_extend(g, view, color, worklist, window, base, counters)
        }
        (Arch::Cpu, FrontierMode::Compact) => {
            vb::vb_extend_frontier(g, view, color, worklist, window, base, counters, scratch)
        }
        (Arch::GpuSim, FrontierMode::Dense) => {
            let exec = BspExecutor::inheriting(counters);
            if view.is_full() {
                eb::eb_extend(g, EdgeView::full(), color, worklist, base, &exec);
            } else {
                let sub = materialize_for_gpu(g, view, exec.counters());
                eb::eb_extend(&sub, EdgeView::full(), color, worklist, base, &exec);
            }
            counters.merge(exec.counters());
        }
        (Arch::GpuSim, FrontierMode::Compact) => {
            let exec = BspExecutor::inheriting(counters);
            eb::eb_extend_frontier(g, view, color, worklist, base, &exec, scratch);
            counters.merge(exec.counters());
        }
        (Arch::Cpu, FrontierMode::Bitset) => {
            vb::vb_extend_bitset(g, view, color, worklist, window, base, counters, scratch)
        }
        (Arch::GpuSim, FrontierMode::Bitset) => {
            let exec = BspExecutor::inheriting(counters);
            eb::eb_extend_bitset(g, view, color, worklist, base, &exec, scratch);
            counters.merge(exec.counters());
        }
    }
}

/// The architecture's baseline colorer on the whole graph (Figure 4's bar).
pub fn baseline_run(g: &Graph, arch: Arch, seed: u64) -> ColoringRun {
    baseline_run_traced(g, arch, seed, None)
}

/// [`baseline_run`] reporting into `trace` when given.
pub fn baseline_run_traced(
    g: &Graph,
    arch: Arch,
    seed: u64,
    trace: Option<Arc<TraceSink>>,
) -> ColoringRun {
    baseline_run_opts(g, arch, seed, &SolveOpts::traced(trace))
}

/// [`baseline_run`] with full per-run options.
pub fn baseline_run_opts(g: &Graph, arch: Arch, _seed: u64, opts: &SolveOpts) -> ColoringRun {
    let counters = counters_for_opts(opts);
    let mut scratch = Scratch::new();
    let sw = Stopwatch::start();
    let mut color = vec![INVALID; g.num_vertices()];
    {
        let _span = counters.phase("solve");
        base_color_extend(
            g,
            EdgeView::full(),
            &mut color,
            g.vertices().collect(),
            0,
            vb_window(g),
            arch,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    let solve_time = sw.elapsed();
    ColoringRun {
        color,
        stats: RunStats::from_counters(std::time::Duration::ZERO, solve_time, &counters)
            .with_scratch(scratch.stats()),
    }
}

/// Uncolor the lower-id endpoint of every monochromatic edge admitted by
/// `removed` (the decomposition's dropped edges); returns the uncolored
/// vertices. This is the "validity of C is tested with respect to G" step
/// of Algorithms 7 and 8 — only removed edges can actually conflict.
fn reset_conflicts(
    g: &Graph,
    removed: EdgeView<'_>,
    removed_count: usize,
    color: &mut [u32],
    counters: &Counters,
) -> Vec<VertexId> {
    counters.add_kernel(g.num_edges() as u64);
    counters.add_edges(2 * removed_count as u64);
    let mut losers: Vec<VertexId> = g
        .edge_list()
        .par_iter()
        .enumerate()
        .filter_map(|(e, &[u, v])| {
            if !removed.admits(e as u32) {
                return None;
            }
            let cu = color[u as usize];
            (cu != INVALID && cu == color[v as usize]).then_some(u.min(v))
        })
        .collect();
    losers.par_sort_unstable();
    losers.dedup();
    for &v in &losers {
        color[v as usize] = INVALID;
    }
    losers
}

/// Algorithm 7 — COLOR-Bridge.
///
/// Color `G_c` (the 2-edge-connected components share one palette), test
/// validity against the bridges, recolor the conflicted vertices in `G`.
pub fn color_bridge(g: &Graph, arch: Arch, seed: u64) -> ColoringRun {
    color_bridge_traced(g, arch, seed, None)
}

/// [`color_bridge`] reporting into `trace` when given.
pub fn color_bridge_traced(
    g: &Graph,
    arch: Arch,
    seed: u64,
    trace: Option<Arc<TraceSink>>,
) -> ColoringRun {
    color_bridge_opts(g, arch, seed, &SolveOpts::traced(trace))
}

/// [`color_bridge`] with full per-run options.
pub fn color_bridge_opts(g: &Graph, arch: Arch, seed: u64, opts: &SolveOpts) -> ColoringRun {
    let counters = counters_for_opts(opts);
    let sw = Stopwatch::start();
    let d = {
        let _span = counters.phase("decompose");
        decompose_bridge(g, &counters)
    };
    let decompose_time = sw.elapsed();
    color_bridge_solve(g, &d, arch, seed, opts, counters, decompose_time)
}

/// [`color_bridge`] against a precomputed decomposition (solve phases
/// only; zero reported decomposition time, byte-identical coloring).
pub fn color_bridge_with(
    g: &Graph,
    d: &BridgeDecomposition,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
) -> ColoringRun {
    let counters = counters_for_opts(opts);
    color_bridge_solve(g, d, arch, seed, opts, counters, Duration::ZERO)
}

fn color_bridge_solve(
    g: &Graph,
    d: &BridgeDecomposition,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
    counters: Counters,
    decompose_time: Duration,
) -> ColoringRun {
    let mut scratch = Scratch::new();
    let sw = Stopwatch::start();
    let mut color = vec![INVALID; g.num_vertices()];
    {
        let _span = counters.phase("induced-solve");
        base_color_extend(
            g,
            d.component_view(),
            &mut color,
            g.vertices().collect(),
            0,
            vb_window(g),
            arch,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    let _ = seed;
    // Only bridge edges can conflict.
    {
        let _span = counters.phase("cross-solve");
        let conflicted =
            reset_conflicts(g, d.bridge_view(), d.bridges.len(), &mut color, &counters);
        base_color_extend(
            g,
            EdgeView::full(),
            &mut color,
            conflicted,
            0,
            vb_window(g),
            arch,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    let solve_time = sw.elapsed();

    ColoringRun {
        color,
        stats: RunStats::from_counters(decompose_time, solve_time, &counters)
            .with_scratch(scratch.stats()),
    }
}

/// Algorithm 8 — COLOR-Rand.
///
/// Color the induced partition subgraphs with an identical palette, then
/// recolor the endpoints that conflict across cross edges.
pub fn color_rand(g: &Graph, partitions: usize, arch: Arch, seed: u64) -> ColoringRun {
    color_rand_traced(g, partitions, arch, seed, None)
}

/// [`color_rand`] reporting into `trace` when given.
pub fn color_rand_traced(
    g: &Graph,
    partitions: usize,
    arch: Arch,
    seed: u64,
    trace: Option<Arc<TraceSink>>,
) -> ColoringRun {
    color_rand_opts(g, partitions, arch, seed, &SolveOpts::traced(trace))
}

/// [`color_rand`] with full per-run options.
pub fn color_rand_opts(
    g: &Graph,
    partitions: usize,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
) -> ColoringRun {
    let counters = counters_for_opts(opts);
    let sw = Stopwatch::start();
    let d = {
        let _span = counters.phase("decompose");
        decompose_rand(g, partitions, seed, &counters)
    };
    let decompose_time = sw.elapsed();
    color_rand_solve(g, &d, arch, seed, opts, counters, decompose_time)
}

/// [`color_rand`] against a precomputed decomposition. `d` must come from
/// `decompose_rand(g, partitions, seed, …)` with this same `seed`.
pub fn color_rand_with(
    g: &Graph,
    d: &RandDecomposition,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
) -> ColoringRun {
    let counters = counters_for_opts(opts);
    color_rand_solve(g, d, arch, seed, opts, counters, Duration::ZERO)
}

fn color_rand_solve(
    g: &Graph,
    d: &RandDecomposition,
    arch: Arch,
    _seed: u64,
    opts: &SolveOpts,
    counters: Counters,
    decompose_time: Duration,
) -> ColoringRun {
    let mut scratch = Scratch::new();
    let sw = Stopwatch::start();
    let mut color = vec![INVALID; g.num_vertices()];
    {
        let _span = counters.phase("induced-solve");
        base_color_extend(
            g,
            d.induced_view(),
            &mut color,
            g.vertices().collect(),
            0,
            vb_window(g),
            arch,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    // Only cross edges can conflict.
    {
        let _span = counters.phase("cross-solve");
        let conflicted = reset_conflicts(g, d.cross_view(), d.m_cross, &mut color, &counters);
        base_color_extend(
            g,
            EdgeView::full(),
            &mut color,
            conflicted,
            0,
            vb_window(g),
            arch,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    let solve_time = sw.elapsed();

    ColoringRun {
        color,
        stats: RunStats::from_counters(decompose_time, solve_time, &counters)
            .with_scratch(scratch.stats()),
    }
}

/// Algorithm 9 — COLOR-Degk.
///
/// Color `G_H` with the baseline; the cross edges cannot conflict because
/// `G_L` is then colored with a fresh palette of `k + 1` colors above
/// `max(C_H)` using a `(k+1)`-entry FORBIDDEN window (degree ≤ k inside
/// `G_L` guarantees the palette suffices).
pub fn color_degk(g: &Graph, k: usize, arch: Arch, seed: u64) -> ColoringRun {
    color_degk_traced(g, k, arch, seed, None)
}

/// [`color_degk`] reporting into `trace` when given.
pub fn color_degk_traced(
    g: &Graph,
    k: usize,
    arch: Arch,
    seed: u64,
    trace: Option<Arc<TraceSink>>,
) -> ColoringRun {
    color_degk_opts(g, k, arch, seed, &SolveOpts::traced(trace))
}

/// [`color_degk`] with full per-run options.
pub fn color_degk_opts(
    g: &Graph,
    k: usize,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
) -> ColoringRun {
    let counters = counters_for_opts(opts);
    let sw = Stopwatch::start();
    let d = {
        let _span = counters.phase("decompose");
        decompose_degk(g, k, &counters)
    };
    let decompose_time = sw.elapsed();
    let _ = seed;
    color_degk_solve(g, &d, arch, opts, counters, decompose_time)
}

/// [`color_degk`] against a precomputed decomposition. The decomposition
/// carries its own `k` (palette window `d.k + 1` on the low side).
pub fn color_degk_with(
    g: &Graph,
    d: &DegkDecomposition,
    arch: Arch,
    _seed: u64,
    opts: &SolveOpts,
) -> ColoringRun {
    let counters = counters_for_opts(opts);
    color_degk_solve(g, d, arch, opts, counters, Duration::ZERO)
}

fn color_degk_solve(
    g: &Graph,
    d: &DegkDecomposition,
    arch: Arch,
    opts: &SolveOpts,
    counters: Counters,
    decompose_time: Duration,
) -> ColoringRun {
    let k = d.k;
    let sw = Stopwatch::start();
    let mut scratch = Scratch::new();
    let mut color = vec![INVALID; g.num_vertices()];
    {
        let _span = counters.phase("induced-solve");
        let high: Vec<VertexId> = d.high_vertices();
        // Window for the high phase: the average degree of G_H (the paper's
        // VB rule applied to the graph actually being colored).
        let high_window = if high.is_empty() {
            2
        } else {
            (2 * d.m_high).div_ceil(high.len()).max(2)
        };
        base_color_extend(
            g,
            d.high_view(),
            &mut color,
            high,
            0,
            high_window,
            arch,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    {
        let _span = counters.phase("fringe-peel");
        let base = color
            .par_iter()
            .filter(|&&c| c != INVALID)
            .max()
            .map_or(0, |&c| c + 1);
        // Low side: small palette, (k+1)-entry FORBIDDEN window. Only G_L
        // edges can conflict (cross edges lead to colors below `base`), so
        // the window scan runs on the low view.
        let low: Vec<VertexId> = d.low_vertices();
        base_color_extend(
            g,
            d.low_view(),
            &mut color,
            low,
            base,
            k + 1,
            arch,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    let solve_time = sw.elapsed();

    ColoringRun {
        color,
        stats: RunStats::from_counters(decompose_time, solve_time, &counters)
            .with_scratch(scratch.stats()),
    }
}

/// COLOR-Bicc (extension, after Hochbaum \[16\]).
///
/// Phase 1 colors the non-articulation vertices: with the articulation
/// vertices withheld, the remaining pieces (block interiors) are pairwise
/// disconnected and share one palette; no conflicts are possible across
/// blocks. Phase 2 colors the (few) articulation vertices against their
/// already-colored neighborhoods.
pub fn color_bicc(g: &Graph, arch: Arch, seed: u64) -> ColoringRun {
    color_bicc_traced(g, arch, seed, None)
}

/// [`color_bicc`] reporting into `trace` when given.
pub fn color_bicc_traced(
    g: &Graph,
    arch: Arch,
    seed: u64,
    trace: Option<Arc<TraceSink>>,
) -> ColoringRun {
    color_bicc_opts(g, arch, seed, &SolveOpts::traced(trace))
}

/// [`color_bicc`] with full per-run options.
pub fn color_bicc_opts(g: &Graph, arch: Arch, seed: u64, opts: &SolveOpts) -> ColoringRun {
    let counters = counters_for_opts(opts);
    let sw = Stopwatch::start();
    let d = {
        let _span = counters.phase("decompose");
        decompose_bicc(g, &counters)
    };
    let decompose_time = sw.elapsed();
    let _ = seed;
    color_bicc_solve(g, &d, arch, opts, counters, decompose_time)
}

/// [`color_bicc`] against a precomputed decomposition.
pub fn color_bicc_with(
    g: &Graph,
    d: &BiccDecomposition,
    arch: Arch,
    _seed: u64,
    opts: &SolveOpts,
) -> ColoringRun {
    let counters = counters_for_opts(opts);
    color_bicc_solve(g, d, arch, opts, counters, Duration::ZERO)
}

fn color_bicc_solve(
    g: &Graph,
    d: &BiccDecomposition,
    arch: Arch,
    opts: &SolveOpts,
    counters: Counters,
    decompose_time: Duration,
) -> ColoringRun {
    let mut scratch = Scratch::new();
    let sw = Stopwatch::start();
    let mut color = vec![INVALID; g.num_vertices()];
    {
        let _span = counters.phase("induced-solve");
        let interior: Vec<VertexId> = (0..g.num_vertices() as u32)
            .filter(|&v| !d.is_articulation[v as usize])
            .collect();
        // The interior pieces must not see the withheld articulation
        // vertices as neighbors (they are uncolored anyway), so the full
        // view is safe.
        base_color_extend(
            g,
            EdgeView::full(),
            &mut color,
            interior,
            0,
            vb_window(g),
            arch,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    {
        let _span = counters.phase("cleanup");
        let cuts: Vec<VertexId> = (0..g.num_vertices() as u32)
            .filter(|&v| d.is_articulation[v as usize])
            .collect();
        base_color_extend(
            g,
            EdgeView::full(),
            &mut color,
            cuts,
            0,
            vb_window(g),
            arch,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    let solve_time = sw.elapsed();

    ColoringRun {
        color,
        stats: RunStats::from_counters(decompose_time, solve_time, &counters)
            .with_scratch(scratch.stats()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::{vertex_coloring, ColorAlgorithm};
    use crate::verify::check_coloring;
    use sb_graph::builder::from_edge_list;

    fn random_graph(n: usize, m: usize, seed: u64) -> Graph {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
            .collect();
        from_edge_list(n, &edges)
    }

    #[test]
    fn all_algorithms_proper_both_archs() {
        let graphs = [
            random_graph(300, 1200, 1),
            random_graph(400, 800, 2),
            from_edge_list(50, &(0..49u32).map(|i| (i, i + 1)).collect::<Vec<_>>()),
        ];
        let algos = [
            ColorAlgorithm::Baseline,
            ColorAlgorithm::Bridge,
            ColorAlgorithm::Rand { partitions: 3 },
            ColorAlgorithm::Degk { k: 2 },
            ColorAlgorithm::Bicc,
        ];
        for (gi, g) in graphs.iter().enumerate() {
            for algo in algos {
                for arch in [Arch::Cpu, Arch::GpuSim] {
                    let run = vertex_coloring(g, algo, arch, 11);
                    check_coloring(g, &run.color)
                        .unwrap_or_else(|e| panic!("graph {gi}, {algo:?} on {arch}: {e}"));
                }
            }
        }
    }

    #[test]
    fn degk_uses_small_palette_on_low_side() {
        // Star of chains: the low side is huge; Degk must stay within
        // max(C_H) + k + 1 colors total.
        let mut edges = vec![];
        for c in 0..20u32 {
            // chains of length 3 off hub 0: vertices 1 + 3c .. 3c+3
            let b = 1 + 3 * c;
            edges.push((0, b));
            edges.push((b, b + 1));
            edges.push((b + 1, b + 2));
        }
        let g = from_edge_list(61, &edges);
        let run = color_degk(&g, 2, Arch::Cpu, 5);
        check_coloring(&g, &run.color).unwrap();
        assert!(
            run.num_colors() <= 5,
            "Degk palette should be tiny, used {}",
            run.num_colors()
        );
    }

    #[test]
    fn color_counts_stay_close_to_baseline() {
        // §IV-D: decomposition algorithms use only a few percent more colors.
        let g = random_graph(500, 3000, 3);
        let base = baseline_run(&g, Arch::Cpu, 1).num_colors();
        for algo in [
            ColorAlgorithm::Bridge,
            ColorAlgorithm::Rand { partitions: 4 },
            ColorAlgorithm::Degk { k: 2 },
        ] {
            let c = vertex_coloring(&g, algo, Arch::Cpu, 1).num_colors();
            assert!(
                c <= base + base / 2 + 3,
                "{algo:?} used {c} colors vs baseline {base}"
            );
        }
    }

    #[test]
    fn bridge_coloring_on_tree() {
        // A tree: every edge is a bridge, G_c is edgeless — everything is
        // colored in the conflict-fix phase.
        let g = from_edge_list(15, &(0..14u32).map(|i| (i / 2, i + 1)).collect::<Vec<_>>());
        for arch in [Arch::Cpu, Arch::GpuSim] {
            let run = color_bridge(&g, arch, 2);
            check_coloring(&g, &run.color).unwrap();
        }
    }

    #[test]
    fn rand_partitions_sweep() {
        let g = random_graph(300, 1500, 4);
        for k in [1, 2, 4, 8] {
            let run = color_rand(&g, k, Arch::Cpu, 6);
            check_coloring(&g, &run.color).unwrap();
        }
    }

    #[test]
    fn degk_k_sweep_both_archs() {
        let g = random_graph(300, 900, 5);
        for k in [1, 2, 3, 8] {
            for arch in [Arch::Cpu, Arch::GpuSim] {
                let run = color_degk(&g, k, arch, 7);
                check_coloring(&g, &run.color).unwrap_or_else(|e| panic!("k={k} {arch}: {e}"));
            }
        }
    }
}
