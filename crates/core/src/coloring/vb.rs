//! Algorithm VB — vertex-based speculative coloring (Deveci et al.),
//! the multicore-CPU baseline.
//!
//! Each round, every uncolored vertex scans its neighbors' *current* colors,
//! marks the ones falling in its FORBIDDEN window `[offset, offset+s)`, and
//! speculatively takes the smallest free color in the window (bumping the
//! window by `s` when it is saturated). A detection pass then uncolors the
//! lower-id endpoint of every monochromatic edge; the survivors are final.
//!
//! Reading live colors (rather than double-buffering) is the behavior of
//! the published speculative colorers: within one worker's chunk the scan
//! is effectively sequential-greedy, so conflicts arise only from genuine
//! cross-thread races — which is why these algorithms converge in a handful
//! of rounds in practice.

use rayon::prelude::*;
use sb_graph::csr::{Graph, VertexId, INVALID};
use sb_graph::view::EdgeView;
use sb_par::atomic::as_atomic_u32;
use sb_par::counters::Counters;
use sb_par::frontier::{ActiveSet, BitFrontier, Frontier, Scratch};
use std::sync::atomic::Ordering;

/// Color every vertex in `worklist` (which must currently be uncolored),
/// respecting the existing colors in `color`, using FORBIDDEN windows of
/// `window` entries starting at `base`.
///
/// Colors are drawn from `base` upward. Pass `base = 0` for a fresh
/// coloring; COLOR-Degk passes `base = max(C_H) + 1` and `window = k + 1`.
pub fn vb_extend(
    g: &Graph,
    view: EdgeView<'_>,
    color: &mut [u32],
    worklist: Vec<VertexId>,
    window: usize,
    base: u32,
    counters: &Counters,
) {
    assert!(window >= 1);
    assert_eq!(color.len(), g.num_vertices());
    let mut work = worklist;
    let mut offset: Vec<u32> = vec![base; g.num_vertices()];

    while !work.is_empty() {
        let round = counters.round_scope(work.len() as u64);
        let before = work.len();
        counters.add_rounds(1);
        counters.add_work(work.len() as u64);
        {
            let color_at = as_atomic_u32(color);

            // Speculative coloring pass.
            work.par_iter().for_each(|&v| {
                counters.add_edges(g.degree(v) as u64);
                let off = offset[v as usize];
                // FORBIDDEN window as a small bitset (window is the average
                // degree or k+1 — tens of entries, so a few u64 words).
                let words = window.div_ceil(64);
                let mut forb = [0u64; 4];
                let mut heap_forb;
                let forb: &mut [u64] = if words <= 4 {
                    &mut forb[..words]
                } else {
                    heap_forb = vec![0u64; words];
                    &mut heap_forb
                };
                for (w, _) in view.arcs(g, v) {
                    let c = color_at[w as usize].load(Ordering::Relaxed);
                    if c != INVALID && c >= off {
                        let d = (c - off) as usize;
                        if d < window {
                            forb[d / 64] |= 1 << (d % 64);
                        }
                    }
                }
                let mut pick = INVALID;
                for (wi, &word) in forb.iter().enumerate() {
                    let limit = (window - wi * 64).min(64);
                    // Lowest clear bit; if it falls past the window edge,
                    // no free color exists in this word.
                    let b = (!word).trailing_zeros() as usize;
                    if b < limit {
                        pick = off + (wi * 64 + b) as u32;
                        break;
                    }
                }
                color_at[v as usize].store(pick, Ordering::Relaxed);
            });
        }

        // Window bump for saturated vertices (sequential over work is fine —
        // saturation is rare).
        for &v in &work {
            if color[v as usize] == INVALID {
                offset[v as usize] += window as u32;
            }
        }

        // Conflict detection: the lower-id endpoint of a monochromatic edge
        // goes back to the worklist.
        let next: Vec<VertexId> = {
            let color_ref: &[u32] = color;
            work.par_iter()
                .copied()
                .filter(|&v| {
                    let c = color_ref[v as usize];
                    if c == INVALID {
                        return true; // window saturated, retry with bumped offset
                    }
                    view.arcs(g, v)
                        .any(|(w, _)| color_ref[w as usize] == c && w > v)
                })
                .collect()
        };
        // Uncolor the losers before the next round.
        for &v in &next {
            color[v as usize] = INVALID;
        }
        work = next;
        counters.finish_round(round, || (before - work.len()) as u64);
    }
}

/// Frontier form of [`vb_extend`]: the same speculative rounds over a
/// ping-pong compacted worklist, with the per-call `offset` array borrowed
/// from `scratch` instead of freshly allocated.
///
/// The round logic is statement-for-statement the dense form's (speculate,
/// bump saturated windows, keep conflicted vertices); the only change is
/// that the retry worklist is produced by [`sb_par::Frontier::compact`]
/// rather than a fresh `collect`. On one thread the outputs are
/// byte-identical to [`vb_extend`]; across threads VB is the documented
/// interleaving-dependent exception (it reads live colors), in both modes.
#[allow(clippy::too_many_arguments)]
pub fn vb_extend_frontier(
    g: &Graph,
    view: EdgeView<'_>,
    color: &mut [u32],
    worklist: Vec<VertexId>,
    window: usize,
    base: u32,
    counters: &Counters,
    scratch: &mut Scratch,
) {
    vb_extend_frontier_impl::<Frontier>(g, view, color, worklist, window, base, counters, scratch);
}

/// Bitset form of [`vb_extend_frontier`] (the [`BitFrontier`]
/// instantiation). Same 1-thread byte-identity / N-thread
/// interleaving-dependence caveats as the worklist form.
#[allow(clippy::too_many_arguments)]
pub fn vb_extend_bitset(
    g: &Graph,
    view: EdgeView<'_>,
    color: &mut [u32],
    worklist: Vec<VertexId>,
    window: usize,
    base: u32,
    counters: &Counters,
    scratch: &mut Scratch,
) {
    vb_extend_frontier_impl::<BitFrontier>(
        g, view, color, worklist, window, base, counters, scratch,
    );
}

#[allow(clippy::too_many_arguments)]
fn vb_extend_frontier_impl<W: ActiveSet>(
    g: &Graph,
    view: EdgeView<'_>,
    color: &mut [u32],
    worklist: Vec<VertexId>,
    window: usize,
    base: u32,
    counters: &Counters,
    scratch: &mut Scratch,
) {
    assert!(window >= 1);
    assert_eq!(color.len(), g.num_vertices());
    let mut work = W::take(scratch);
    work.reset_from(&worklist, g.num_vertices());
    let mut offset = scratch.take_u32(g.num_vertices(), base);

    while !work.is_empty() {
        let round = counters.round_scope(work.len() as u64);
        let before = work.len();
        counters.add_rounds(1);
        counters.add_work(work.len() as u64);
        {
            let color_at = as_atomic_u32(color);

            // Speculative coloring pass (identical to the dense form).
            work.for_each(|v| {
                counters.add_edges(g.degree(v) as u64);
                let off = offset[v as usize];
                let words = window.div_ceil(64);
                let mut forb = [0u64; 4];
                let mut heap_forb;
                let forb: &mut [u64] = if words <= 4 {
                    &mut forb[..words]
                } else {
                    heap_forb = vec![0u64; words];
                    &mut heap_forb
                };
                for (w, _) in view.arcs(g, v) {
                    let c = color_at[w as usize].load(Ordering::Relaxed);
                    if c != INVALID && c >= off {
                        let d = (c - off) as usize;
                        if d < window {
                            forb[d / 64] |= 1 << (d % 64);
                        }
                    }
                }
                let mut pick = INVALID;
                for (wi, &word) in forb.iter().enumerate() {
                    let limit = (window - wi * 64).min(64);
                    let b = (!word).trailing_zeros() as usize;
                    if b < limit {
                        pick = off + (wi * 64 + b) as u32;
                        break;
                    }
                }
                color_at[v as usize].store(pick, Ordering::Relaxed);
            });
        }

        // Window bump for saturated vertices.
        work.for_each_seq(|v| {
            if color[v as usize] == INVALID {
                offset[v as usize] += window as u32;
            }
        });

        // Conflict detection by frontier compaction over the unmodified
        // colors, then uncolor the survivors — the same reads and writes
        // the dense form performs via filter-collect.
        {
            let color_ref: &[u32] = color;
            work.retain(|v| {
                let c = color_ref[v as usize];
                if c == INVALID {
                    return true; // window saturated, retry with bumped offset
                }
                view.arcs(g, v)
                    .any(|(w, _)| color_ref[w as usize] == c && w > v)
            });
        }
        work.for_each_seq(|v| {
            color[v as usize] = INVALID;
        });
        counters.finish_round(round, || (before - work.len()) as u64);
    }
    scratch.recycle_u32(offset);
    work.recycle(scratch);
}

/// Fresh VB coloring of the whole graph with the paper's CPU window size
/// (average degree).
pub fn vb_color(g: &Graph, counters: &Counters) -> Vec<u32> {
    let mut color = vec![INVALID; g.num_vertices()];
    let worklist: Vec<VertexId> = g.vertices().collect();
    let window = super::vb_window(g);
    vb_extend(
        g,
        EdgeView::full(),
        &mut color,
        worklist,
        window,
        0,
        counters,
    );
    color
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_coloring, color_count};
    use sb_graph::builder::from_edge_list;

    #[test]
    fn colors_a_path_with_two_colors_mostly() {
        let n = 100u32;
        let g = from_edge_list(
            n as usize,
            &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        );
        let c = vb_color(&g, &Counters::new());
        check_coloring(&g, &c).unwrap();
        assert!(color_count(&c) <= 3);
    }

    #[test]
    fn colors_complete_graph_with_exactly_n() {
        let n = 8u32;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                edges.push((i, j));
            }
        }
        let g = from_edge_list(n as usize, &edges);
        let c = vb_color(&g, &Counters::new());
        check_coloring(&g, &c).unwrap();
        assert_eq!(color_count(&c), n as usize);
    }

    #[test]
    fn window_smaller_than_degree_still_terminates() {
        // K8 with window 2: every vertex needs offset bumps.
        let n = 8u32;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                edges.push((i, j));
            }
        }
        let g = from_edge_list(n as usize, &edges);
        let mut color = vec![INVALID; 8];
        vb_extend(
            &g,
            EdgeView::full(),
            &mut color,
            g.vertices().collect(),
            2,
            0,
            &Counters::new(),
        );
        check_coloring(&g, &color).unwrap();
    }

    #[test]
    fn respects_existing_colors_and_base() {
        // Star: center pre-colored 0; leaves colored from base 5 with window 3.
        let g = from_edge_list(4, &[(0, 1), (0, 2), (0, 3)]);
        let mut color = vec![INVALID; 4];
        color[0] = 0;
        vb_extend(
            &g,
            EdgeView::full(),
            &mut color,
            vec![1, 2, 3],
            3,
            5,
            &Counters::new(),
        );
        check_coloring(&g, &color).unwrap();
        for &c in &color[1..4] {
            assert!(c >= 5, "leaf colored {c} below base");
        }
    }

    #[test]
    fn valid_on_random_graphs() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for trial in 0..6 {
            let n = 200 + 70 * trial;
            let edges: Vec<(u32, u32)> = (0..n * 5)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = from_edge_list(n, &edges);
            let c = vb_color(&g, &Counters::new());
            check_coloring(&g, &c).unwrap();
            // Greedy bound: at most Δ+1 colors.
            assert!(color_count(&c) <= g.max_degree() + 1);
        }
    }

    #[test]
    fn empty_worklist_noop() {
        let g = from_edge_list(3, &[(0, 1)]);
        let mut color = vec![7, 8, 9];
        vb_extend(
            &g,
            EdgeView::full(),
            &mut color,
            vec![],
            4,
            0,
            &Counters::new(),
        );
        assert_eq!(color, vec![7, 8, 9]);
    }
}
