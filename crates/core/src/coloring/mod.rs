//! Vertex coloring (Section IV of the paper).
//!
//! Baselines: [`vb`] (Algorithm VB — the vertex-based speculative colorer of
//! Deveci et al. with a fixed-size FORBIDDEN window, which the paper found
//! to be the best multicore-CPU baseline), [`eb`] (Algorithm EB — the
//! edge-based variant with a 32-bit availability mask, the GPU baseline),
//! and [`jp`] (Jones–Plassmann, kept as an ablation baseline).
//!
//! Composites ([`decomp`]): COLOR-Bridge, COLOR-Rand, COLOR-Degk
//! (Algorithms 7–9). COLOR-Degk is the paper's CPU winner: after coloring
//! `G_H`, the degree-≤k remainder needs only a (k+1)-entry FORBIDDEN window
//! above `max(C_H)`.

pub mod decomp;
pub mod eb;
pub mod jp;
pub mod vb;

use crate::common::{Arch, RunStats, SolveOpts};
use sb_graph::csr::Graph;

/// Which coloring algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorAlgorithm {
    /// The architecture's baseline: VB on CPU, EB on GPU-sim.
    Baseline,
    /// COLOR-Bridge (Algorithm 7).
    Bridge,
    /// COLOR-Rand (Algorithm 8) with the given partition count.
    Rand {
        /// Number of RAND partitions.
        partitions: usize,
    },
    /// COLOR-Degk (Algorithm 9) with the given degree threshold.
    Degk {
        /// Degree threshold (paper: 2 → FORBIDDEN window of 3).
        k: usize,
    },
    /// COLOR-Bicc (extension): color the block interiors with a shared
    /// palette (they are pairwise disconnected once the articulation
    /// vertices are removed), then color the articulation vertices.
    /// Not part of the paper's evaluated set.
    Bicc,
}

/// Result of a coloring run.
#[derive(Debug, Clone)]
pub struct ColoringRun {
    /// Color per vertex (dense from 0; no `INVALID` left on success).
    pub color: Vec<u32>,
    /// Timing and counters.
    pub stats: RunStats,
}

impl ColoringRun {
    /// Number of distinct colors used.
    pub fn num_colors(&self) -> usize {
        crate::verify::color_count(&self.color)
    }
}

/// Run a vertex-coloring algorithm on `g`.
pub fn vertex_coloring(g: &Graph, algo: ColorAlgorithm, arch: Arch, seed: u64) -> ColoringRun {
    vertex_coloring_traced(g, algo, arch, seed, None)
}

/// [`vertex_coloring`] reporting phase spans and round records into `trace`
/// when given (see `sb_trace`). Passing `None` — or a disabled sink — is
/// identical to the untraced entry point.
pub fn vertex_coloring_traced(
    g: &Graph,
    algo: ColorAlgorithm,
    arch: Arch,
    seed: u64,
    trace: Option<std::sync::Arc<sb_trace::TraceSink>>,
) -> ColoringRun {
    vertex_coloring_opts(g, algo, arch, seed, &SolveOpts::traced(trace))
}

/// [`vertex_coloring`] with full per-run options: trace sink and frontier
/// mode (dense full-sweep rounds vs compacted worklists — see
/// [`crate::common::FrontierMode`]).
pub fn vertex_coloring_opts(
    g: &Graph,
    algo: ColorAlgorithm,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
) -> ColoringRun {
    match algo {
        ColorAlgorithm::Baseline => decomp::baseline_run_opts(g, arch, seed, opts),
        ColorAlgorithm::Bridge => decomp::color_bridge_opts(g, arch, seed, opts),
        ColorAlgorithm::Rand { partitions } => {
            decomp::color_rand_opts(g, partitions, arch, seed, opts)
        }
        ColorAlgorithm::Degk { k } => decomp::color_degk_opts(g, k, arch, seed, opts),
        ColorAlgorithm::Bicc => decomp::color_bicc_opts(g, arch, seed, opts),
    }
}

/// FORBIDDEN-window size the paper uses for VB on the CPU: the average
/// degree of the graph being colored (at least 2).
pub(crate) fn vb_window(g: &Graph) -> usize {
    (g.avg_degree().ceil() as usize).max(2)
}
