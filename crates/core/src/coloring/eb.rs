//! Algorithm EB — edge-based coloring (Deveci et al.), the GPU baseline.
//!
//! Designed for SIMD machines: the speculative pass gives every uncolored
//! vertex the smallest color available in a 32-color window tracked as one
//! 32-bit availability integer; conflict detection is a flat kernel over
//! the *edges*, resetting the lower-id endpoint of every monochromatic
//! edge. Expressed as bulk-synchronous kernels on the GPU-sim executor.

use sb_graph::csr::{Graph, VertexId, INVALID};
use sb_graph::view::EdgeView;
use sb_par::atomic::as_atomic_u32;
use sb_par::bsp::BspExecutor;
use sb_par::frontier::{ActiveSet, BitFrontier, Frontier, Scratch};
use std::sync::atomic::Ordering;

/// Color every vertex in `targets` (currently uncolored), respecting
/// existing colors, with colors drawn from `base` upward.
///
/// Full-sweep rounds: every kernel runs device-wide over the vertex (or
/// edge) range, skipping non-targets with an O(1) check — the structure of
/// the published SIMD colorer.
pub fn eb_extend(
    g: &Graph,
    view: EdgeView<'_>,
    color: &mut [u32],
    targets: Vec<VertexId>,
    base: u32,
    exec: &BspExecutor,
) {
    let n = g.num_vertices();
    assert_eq!(color.len(), n);
    let mut offset: Vec<u32> = vec![base; n];
    let mut remaining = targets.len();
    let counters = exec.counters();

    while remaining > 0 {
        let scope = counters.round_scope(remaining as u64);
        let before = remaining;
        {
            let color_at = as_atomic_u32(color);
            let off_at = as_atomic_u32(&mut offset);

            // Kernel 1: speculative assignment from the 32-bit window,
            // swept over the (static) target list each round.
            exec.kernel_over(&targets, |v| {
                if color_at[v as usize].load(Ordering::Relaxed) != INVALID {
                    return;
                }
                exec.counters().add_edges(g.degree(v) as u64);
                let off = off_at[v as usize].load(Ordering::Relaxed);
                let mut forbidden: u32 = 0;
                for (w, _) in view.arcs(g, v as VertexId) {
                    let c = color_at[w as usize].load(Ordering::Relaxed);
                    if c != INVALID && c >= off {
                        let d = c - off;
                        if d < 32 {
                            forbidden |= 1 << d;
                        }
                    }
                }
                if forbidden != u32::MAX {
                    let bit = (!forbidden).trailing_zeros();
                    color_at[v as usize].store(off + bit, Ordering::Relaxed);
                } else {
                    // Window saturated: widen next round.
                    off_at[v as usize].store(off + 32, Ordering::Relaxed);
                    color_at[v as usize].store(INVALID, Ordering::Relaxed);
                }
            });

            // Kernel 2: edge-based conflict detection; the lower-id endpoint
            // of a monochromatic edge is reset.
            let edges = g.edge_list();
            exec.counters().add_edges(2 * edges.len() as u64);
            exec.kernel(edges.len(), |e| {
                if !view.admits(e as u32) {
                    return;
                }
                let [u, v] = edges[e];
                let cu = color_at[u as usize].load(Ordering::Relaxed);
                if cu != INVALID && cu == color_at[v as usize].load(Ordering::Relaxed) {
                    color_at[u.min(v) as usize].store(INVALID, Ordering::Relaxed);
                }
            });
        }

        // Kernel 3: count of still-uncolored targets.
        remaining = {
            let color_ref: &[u32] = color;
            exec.counters().add_kernel(targets.len() as u64);
            targets
                .iter()
                .filter(|&&v| color_ref[v as usize] == INVALID)
                .count()
        };
        exec.end_round();
        counters.finish_round(scope, || before.saturating_sub(remaining) as u64);
    }
}

/// Frontier form of [`eb_extend`]: the speculative kernel runs over a
/// compacted worklist of still-uncolored targets, and conflict detection
/// runs over a *live edge list* — admitted edges whose endpoints are both
/// uncolored targets — instead of the full device-wide edge sweep, killing
/// the dense form's per-round `2m` edge charge.
///
/// Restricting detection to live edges is lossless because a monochromatic
/// edge can only arise between two vertices freshly colored in the *same*
/// round: a fresh pick lies in the picker's 32-color window with every
/// in-window stable neighbor color masked, and stable colors outside the
/// window cannot collide with an in-window pick. Both endpoints of such an
/// edge are uncolored targets at round start, i.e. the edge is on the live
/// list. This assumes the entry coloring is proper on admitted edges among
/// already-colored vertices — the composites guarantee it (they reset
/// conflicted vertices before recoloring); the dense form would silently
/// repair an improper entry, this form does not.
pub fn eb_extend_frontier(
    g: &Graph,
    view: EdgeView<'_>,
    color: &mut [u32],
    targets: Vec<VertexId>,
    base: u32,
    exec: &BspExecutor,
    scratch: &mut Scratch,
) {
    eb_extend_frontier_impl::<Frontier>(g, view, color, targets, base, exec, scratch);
}

/// Bitset form of [`eb_extend_frontier`] (the [`BitFrontier`]
/// instantiation): both the vertex live set and the live *edge* set are
/// held as u64 bitset words over their respective index spaces.
pub fn eb_extend_bitset(
    g: &Graph,
    view: EdgeView<'_>,
    color: &mut [u32],
    targets: Vec<VertexId>,
    base: u32,
    exec: &BspExecutor,
    scratch: &mut Scratch,
) {
    eb_extend_frontier_impl::<BitFrontier>(g, view, color, targets, base, exec, scratch);
}

fn eb_extend_frontier_impl<W: ActiveSet>(
    g: &Graph,
    view: EdgeView<'_>,
    color: &mut [u32],
    targets: Vec<VertexId>,
    base: u32,
    exec: &BspExecutor,
    scratch: &mut Scratch,
) {
    let n = g.num_vertices();
    assert_eq!(color.len(), n);
    let mut offset = scratch.take_u32(n, base);
    let mut is_target = scratch.take_u8(n, 0);
    for &v in &targets {
        is_target[v as usize] = 1;
    }
    let mut vfront = W::take(scratch);
    vfront.reset_from(&targets, n);
    let edges = g.edge_list();
    let mut efront = W::take(scratch);
    {
        let color_ro: &[u32] = color;
        let is_t: &[u8] = &is_target;
        efront.reset_range(edges.len(), |e| {
            if !view.admits(e) {
                return false;
            }
            let [u, v] = edges[e as usize];
            is_t[u as usize] == 1
                && is_t[v as usize] == 1
                && color_ro[u as usize] == INVALID
                && color_ro[v as usize] == INVALID
        });
    }
    let counters = exec.counters();

    while !vfront.is_empty() {
        let before = vfront.len();
        let scope = counters.round_scope(before as u64);
        {
            let color_at = as_atomic_u32(color);
            let off_at = as_atomic_u32(&mut offset);

            // Kernel 1: speculative assignment over the live targets (every
            // one is uncolored by the frontier invariant).
            exec.kernel_over_set(&vfront, |v| {
                exec.counters().add_edges(g.degree(v) as u64);
                let off = off_at[v as usize].load(Ordering::Relaxed);
                let mut forbidden: u32 = 0;
                for (w, _) in view.arcs(g, v as VertexId) {
                    let c = color_at[w as usize].load(Ordering::Relaxed);
                    if c != INVALID && c >= off {
                        let d = c - off;
                        if d < 32 {
                            forbidden |= 1 << d;
                        }
                    }
                }
                if forbidden != u32::MAX {
                    let bit = (!forbidden).trailing_zeros();
                    color_at[v as usize].store(off + bit, Ordering::Relaxed);
                } else {
                    // Window saturated: widen next round.
                    off_at[v as usize].store(off + 32, Ordering::Relaxed);
                    color_at[v as usize].store(INVALID, Ordering::Relaxed);
                }
            });

            // Kernel 2: conflict detection over the live edges only.
            exec.counters().add_edges(2 * efront.len() as u64);
            exec.kernel_over_set(&efront, |e| {
                let [u, v] = edges[e as usize];
                let cu = color_at[u as usize].load(Ordering::Relaxed);
                if cu != INVALID && cu == color_at[v as usize].load(Ordering::Relaxed) {
                    color_at[u.min(v) as usize].store(INVALID, Ordering::Relaxed);
                }
            });
        }

        // Kernel 3: compaction of both live lists — takes the place of the
        // dense form's uncolored-count kernel.
        exec.counters()
            .add_kernel((vfront.len() + efront.len()) as u64);
        {
            let color_ro: &[u32] = color;
            vfront.retain(|v| color_ro[v as usize] == INVALID);
            efront.retain(|e| {
                let [u, v] = edges[e as usize];
                color_ro[u as usize] == INVALID && color_ro[v as usize] == INVALID
            });
        }
        exec.end_round();
        counters.finish_round(scope, || (before - vfront.len()) as u64);
    }
    scratch.recycle_u32(offset);
    scratch.recycle_u8(is_target);
    vfront.recycle(scratch);
    efront.recycle(scratch);
}

/// Fresh EB coloring of the whole graph.
pub fn eb_color(g: &Graph, exec: &BspExecutor) -> Vec<u32> {
    let mut color = vec![INVALID; g.num_vertices()];
    let worklist: Vec<VertexId> = g.vertices().collect();
    eb_extend(g, EdgeView::full(), &mut color, worklist, 0, exec);
    color
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_coloring, color_count};
    use sb_graph::builder::from_edge_list;

    #[test]
    fn path_and_cycle() {
        let n = 50u32;
        let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = from_edge_list(n as usize, &edges);
        let c = eb_color(&g, &BspExecutor::new());
        check_coloring(&g, &c).unwrap();

        edges.push((n - 1, 0));
        let cy = from_edge_list(n as usize, &edges);
        let c = eb_color(&cy, &BspExecutor::new());
        check_coloring(&cy, &c).unwrap();
        assert!(color_count(&c) <= 3);
    }

    #[test]
    fn clique_larger_than_window_terminates() {
        // K40 needs 40 colors — more than one 32-bit window.
        let n = 40u32;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                edges.push((i, j));
            }
        }
        let g = from_edge_list(n as usize, &edges);
        let c = eb_color(&g, &BspExecutor::new());
        check_coloring(&g, &c).unwrap();
        assert_eq!(color_count(&c), 40);
    }

    #[test]
    fn respects_existing_colors() {
        let g = from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut color = vec![INVALID; 4];
        color[1] = 0;
        color[2] = 1;
        eb_extend(
            &g,
            EdgeView::full(),
            &mut color,
            vec![0, 3],
            0,
            &BspExecutor::new(),
        );
        check_coloring(&g, &color).unwrap();
        assert_eq!(color[1], 0);
        assert_eq!(color[2], 1);
    }

    #[test]
    fn kernel_accounting_present() {
        let g = from_edge_list(10, &(0..9u32).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let exec = BspExecutor::new();
        let _ = eb_color(&g, &exec);
        let s = exec.counters().snapshot();
        assert!(s.kernel_launches >= 3, "at least one round of 3 kernels");
        assert!(s.rounds >= 1);
    }

    #[test]
    fn valid_on_random_graphs() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for trial in 0..6 {
            let n = 150 + 80 * trial;
            let edges: Vec<(u32, u32)> = (0..n * 6)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = from_edge_list(n, &edges);
            let c = eb_color(&g, &BspExecutor::new());
            check_coloring(&g, &c).unwrap();
            assert!(color_count(&c) <= g.max_degree() + 1);
        }
    }
}
