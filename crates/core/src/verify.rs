//! Independent solution verifiers.
//!
//! These deliberately share no code with the solvers: each checks the
//! textbook definition directly against the graph. Tests and the bench
//! harness verify every solution they produce.

use rayon::prelude::*;
use sb_graph::csr::{Graph, VertexId, INVALID};

/// Check that `mate` encodes a matching of `g`: symmetric, self-avoiding,
/// and every matched pair is an actual edge.
pub fn check_matching(g: &Graph, mate: &[u32]) -> Result<(), String> {
    if mate.len() != g.num_vertices() {
        return Err("mate array length mismatch".into());
    }
    for v in g.vertices() {
        let m = mate[v as usize];
        if m == INVALID {
            continue;
        }
        if m as usize >= g.num_vertices() {
            return Err(format!("vertex {v} matched to out-of-range {m}"));
        }
        if m == v {
            return Err(format!("vertex {v} matched to itself"));
        }
        if mate[m as usize] != v {
            return Err(format!("matching not symmetric at ({v}, {m})"));
        }
        if !g.has_edge(v, m) {
            return Err(format!("matched pair ({v}, {m}) is not an edge"));
        }
    }
    Ok(())
}

/// Check that the matching is maximal: no edge has both endpoints unmatched.
pub fn check_maximal_matching(g: &Graph, mate: &[u32]) -> Result<(), String> {
    check_matching(g, mate)?;
    // find_any returns *some* violating edge, not the first: pieces race
    // and the earliest hit cancels the rest. Fine here — maximality is a
    // yes/no question and any witness makes the error message concrete.
    let offender = g
        .edge_list()
        .par_iter()
        .find_any(|&&[u, v]| mate[u as usize] == INVALID && mate[v as usize] == INVALID);
    match offender {
        Some(&[u, v]) => Err(format!("edge ({u}, {v}) could extend the matching")),
        None => Ok(()),
    }
}

/// Number of matched edges in a mate array.
pub fn matching_cardinality(mate: &[u32]) -> usize {
    mate.iter().filter(|&&m| m != INVALID).count() / 2
}

/// Check that `color` is a proper coloring: every vertex colored, no edge
/// monochromatic.
pub fn check_coloring(g: &Graph, color: &[u32]) -> Result<(), String> {
    if color.len() != g.num_vertices() {
        return Err("color array length mismatch".into());
    }
    if let Some(v) = (0..g.num_vertices()).find(|&v| color[v] == INVALID) {
        return Err(format!("vertex {v} uncolored"));
    }
    // Any-match contract: which monochromatic edge gets reported may vary
    // across runs/thread counts; existence does not.
    let offender = g
        .edge_list()
        .par_iter()
        .find_any(|&&[u, v]| color[u as usize] == color[v as usize]);
    match offender {
        Some(&[u, v]) => Err(format!(
            "edge ({u}, {v}) monochromatic with color {}",
            color[u as usize]
        )),
        None => Ok(()),
    }
}

/// Number of distinct colors used.
pub fn color_count(color: &[u32]) -> usize {
    let mut cs: Vec<u32> = color.iter().copied().filter(|&c| c != INVALID).collect();
    cs.sort_unstable();
    cs.dedup();
    cs.len()
}

/// Check that `in_set` is an independent set of `g`.
pub fn check_independent_set(g: &Graph, in_set: &[bool]) -> Result<(), String> {
    if in_set.len() != g.num_vertices() {
        return Err("membership array length mismatch".into());
    }
    // Any-match contract (see check_maximal_matching): any adjacent
    // in-set pair proves dependence.
    let offender = g
        .edge_list()
        .par_iter()
        .find_any(|&&[u, v]| in_set[u as usize] && in_set[v as usize]);
    match offender {
        Some(&[u, v]) => Err(format!("adjacent vertices {u} and {v} both in set")),
        None => Ok(()),
    }
}

/// Check maximality: every vertex is in the set or has a neighbor in it.
pub fn check_maximal_independent_set(g: &Graph, in_set: &[bool]) -> Result<(), String> {
    check_independent_set(g, in_set)?;
    // Any-match contract: any uncovered vertex disproves maximality.
    let uncovered = (0..g.num_vertices() as VertexId)
        .into_par_iter()
        .find_any(|&v| !in_set[v as usize] && !g.neighbors(v).iter().any(|&w| in_set[w as usize]));
    match uncovered {
        Some(v) => Err(format!("vertex {v} could join the independent set")),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_graph::builder::from_edge_list;

    fn path4() -> Graph {
        from_edge_list(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn matching_checks() {
        let g = path4();
        let good = vec![1, 0, 3, 2];
        check_maximal_matching(&g, &good).unwrap();
        assert_eq!(matching_cardinality(&good), 2);

        // Not symmetric.
        assert!(check_matching(&g, &[1, INVALID, INVALID, INVALID]).is_err());
        // Not an edge.
        assert!(check_matching(&g, &[3, INVALID, INVALID, 0]).is_err());
        // Valid but not maximal: edge (2,3) free... only edge (0,1) matched.
        let not_max = vec![1, 0, INVALID, INVALID];
        check_matching(&g, &not_max).unwrap();
        assert!(check_maximal_matching(&g, &not_max).is_err());
        // Self-match.
        assert!(check_matching(&g, &[0, INVALID, INVALID, INVALID]).is_err());
        // Empty matching on edgeless graph is maximal.
        let e = Graph::empty(3);
        check_maximal_matching(&e, &[INVALID; 3]).unwrap();
    }

    #[test]
    fn coloring_checks() {
        let g = path4();
        check_coloring(&g, &[0, 1, 0, 1]).unwrap();
        assert_eq!(color_count(&[0, 1, 0, 1]), 2);
        // Monochromatic edge.
        assert!(check_coloring(&g, &[0, 0, 1, 0]).is_err());
        // Uncolored vertex.
        assert!(check_coloring(&g, &[0, 1, INVALID, 1]).is_err());
        // Wasteful but proper coloring passes; count reflects it.
        check_coloring(&g, &[0, 1, 2, 3]).unwrap();
        assert_eq!(color_count(&[0, 1, 2, 3]), 4);
    }

    #[test]
    fn independent_set_checks() {
        let g = path4();
        let mis = vec![true, false, true, false];
        check_maximal_independent_set(&g, &mis).unwrap();
        // Adjacent pair in set.
        assert!(check_independent_set(&g, &[true, true, false, false]).is_err());
        // Independent but not maximal (vertex 3 could join {0}).
        let not_max = vec![true, false, false, false];
        check_independent_set(&g, &not_max).unwrap();
        assert!(check_maximal_independent_set(&g, &not_max).is_err());
        // Isolated vertices must be in any maximal set.
        let e = Graph::empty(2);
        assert!(check_maximal_independent_set(&e, &[true, false]).is_err());
        check_maximal_independent_set(&e, &[true, true]).unwrap();
    }
}
