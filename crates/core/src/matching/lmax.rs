//! Algorithm LMAX — the GPU matching baseline (Birn et al.).
//!
//! Every vertex points at its heaviest live incident edge (weights are
//! random, fixed per seed); an edge whose two endpoints point at each other
//! is a local maximum and enters the matching. Expressed as flat
//! device-wide kernels per round (point, match) on the bulk-synchronous
//! executor — full sweeps over the vertex range each round, the structure
//! of the era's CUDA codes (and the cost structure the decomposition-based
//! composites attack).
//!
//! Unlike GM's lowest-id rule, random weights give a constant expected
//! fraction of matches per round, so LMAX needs O(log n) rounds; the paper
//! exploits the *similarity* of the two proposal models to transfer the
//! MM-Rand conclusions from CPU to GPU.

use sb_graph::csr::{Graph, INVALID};
use sb_graph::view::EdgeView;
use sb_par::atomic::as_atomic_u32;
use sb_par::bsp::BspExecutor;
use sb_par::frontier::{ActiveSet, BitFrontier, Frontier, Scratch};
use sb_par::rng::hash2;
use std::sync::atomic::Ordering;

/// Extend `mate` to a maximal matching of the subgraph of `g` induced by
/// unmatched vertices passing `allowed`, using local-max rounds on the
/// BSP executor.
pub fn lmax_extend(
    g: &Graph,
    view: EdgeView<'_>,
    mate: &mut [u32],
    allowed: Option<&[bool]>,
    seed: u64,
    exec: &BspExecutor,
) {
    lmax_extend_with_ids(g, view, mate, allowed, seed, exec, None);
}

/// [`lmax_extend`] with an explicit edge-identity map: `weight_ids[e]` is
/// the id to key edge `e`'s random weight by (and to break weight ties
/// with). Callers running LMAX on a *materialized* subgraph pass the
/// new-id → original-id map (`EdgeView::admitted_edge_ids`) so the solve
/// is byte-identical to running zero-copy against the masked view of the
/// parent: materialization renumbers edges by rank among the kept ones —
/// a strictly increasing map — so per-edge weights and tie-break order
/// both transfer exactly. `None` keys weights by the local edge id.
pub fn lmax_extend_with_ids(
    g: &Graph,
    view: EdgeView<'_>,
    mate: &mut [u32],
    allowed: Option<&[bool]>,
    seed: u64,
    exec: &BspExecutor,
    weight_ids: Option<&[u32]>,
) {
    let n = g.num_vertices();
    assert_eq!(mate.len(), n);
    if let Some(ids) = weight_ids {
        assert_eq!(ids.len(), g.num_edges());
    }
    let allow = |v: usize| allowed.is_none_or(|a| a[v]);
    let weight = |e: u32| {
        let id = weight_ids.map_or(e, |ids| ids[e as usize]);
        (hash2(seed, id as u64), id)
    };

    // The vertex set of the (sub)graph being matched, fixed at entry (the
    // composites pass already-reduced instances; there is no per-round
    // worklist compaction).
    let participants: Vec<u32> = (0..n as u32)
        .filter(|&v| mate[v as usize] == INVALID && allow(v as usize) && view.has_arc(g, v))
        .collect();
    let mut pointer = vec![INVALID; n];
    let counters = exec.counters();
    let unmatched = |mate: &[u32]| {
        participants
            .iter()
            .filter(|&&v| mate[v as usize] == INVALID)
            .count() as u64
    };

    while !participants.is_empty() {
        let active = if counters.tracing() {
            unmatched(mate)
        } else {
            0
        };
        let scope = counters.round_scope(active);
        let any_pointer;
        {
            let mate_at = as_atomic_u32(mate);
            let ptr_at = as_atomic_u32(&mut pointer);

            // Kernel 1: every unmatched vertex points at its heaviest live
            // incident edge; the device-wide flag records whether any live
            // edge remains.
            let flag = std::sync::atomic::AtomicBool::new(false);
            exec.kernel_over(&participants, |v| {
                if mate_at[v as usize].load(Ordering::Relaxed) != INVALID {
                    ptr_at[v as usize].store(INVALID, Ordering::Relaxed);
                    return;
                }
                exec.counters().add_edges(g.degree(v) as u64);
                let mut best = INVALID;
                let mut best_key = (0u64, 0u32);
                let mut first = true;
                for (w, e) in view.arcs(g, v) {
                    if mate_at[w as usize].load(Ordering::Relaxed) == INVALID && allow(w as usize) {
                        let key = weight(e);
                        if first || key > best_key {
                            best_key = key;
                            best = w;
                            first = false;
                        }
                    }
                }
                ptr_at[v as usize].store(best, Ordering::Relaxed);
                if best != INVALID {
                    flag.store(true, Ordering::Relaxed);
                }
            });
            any_pointer = flag.load(Ordering::Relaxed);

            // Kernel 2: mutual pointers match.
            if any_pointer {
                exec.kernel_over(&participants, |v| {
                    if mate_at[v as usize].load(Ordering::Relaxed) != INVALID {
                        return;
                    }
                    let p = ptr_at[v as usize].load(Ordering::Relaxed);
                    if p != INVALID && v < p && ptr_at[p as usize].load(Ordering::Relaxed) == v {
                        mate_at[v as usize].store(p, Ordering::Relaxed);
                        mate_at[p as usize].store(v, Ordering::Relaxed);
                    }
                });
            }
        }
        exec.end_round();
        // A no-pointer sweep settles nothing and only observes that the
        // solve is finished: mark it vacuous so cross-mode round
        // accounting can discount it (the frontier form skips this sweep
        // whenever its worklist empties first).
        counters.finish_round_flagged(scope, !any_pointer, || {
            active.saturating_sub(unmatched(mate))
        });
        if !any_pointer {
            break;
        }
    }
}

/// Frontier form of [`lmax_extend`]: the same point/match kernels per
/// round, launched over a compacted worklist of still-unmatched
/// participants, with the `pointer` array borrowed from `scratch`.
///
/// Byte-identical to [`lmax_extend`] for any seed and thread count: edge
/// weights are keyed by edge id (unaffected by compaction), and a kernel-2
/// read of `pointer[p]` only ever targets a vertex that was unmatched at
/// round start — i.e. a frontier member with a fresh kernel-1 pointer — so
/// the stale pointers of matched vertices are never consulted. The
/// productive round structure is preserved exactly; the dense form's
/// final no-pointer sweep is skipped whenever the worklist empties first,
/// and is marked `vacuous` in the trace when either form does run it.
/// Compaction is charged as a third kernel over the live set.
pub fn lmax_extend_frontier(
    g: &Graph,
    view: EdgeView<'_>,
    mate: &mut [u32],
    allowed: Option<&[bool]>,
    seed: u64,
    exec: &BspExecutor,
    scratch: &mut Scratch,
) {
    lmax_extend_frontier_impl::<Frontier>(g, view, mate, allowed, seed, exec, scratch);
}

/// Bitset form of [`lmax_extend_frontier`] (the [`BitFrontier`]
/// instantiation): same point/match kernels, live set as u64 bitset words.
pub fn lmax_extend_bitset(
    g: &Graph,
    view: EdgeView<'_>,
    mate: &mut [u32],
    allowed: Option<&[bool]>,
    seed: u64,
    exec: &BspExecutor,
    scratch: &mut Scratch,
) {
    lmax_extend_frontier_impl::<BitFrontier>(g, view, mate, allowed, seed, exec, scratch);
}

fn lmax_extend_frontier_impl<W: ActiveSet>(
    g: &Graph,
    view: EdgeView<'_>,
    mate: &mut [u32],
    allowed: Option<&[bool]>,
    seed: u64,
    exec: &BspExecutor,
    scratch: &mut Scratch,
) {
    let n = g.num_vertices();
    assert_eq!(mate.len(), n);
    let allow = |v: usize| allowed.is_none_or(|a| a[v]);
    let weight = |e: u32| (hash2(seed, e as u64), e);

    let mut live = W::take(scratch);
    {
        let mate_ro: &[u32] = mate;
        live.reset_range(n, |v| {
            mate_ro[v as usize] == INVALID && allow(v as usize) && view.has_arc(g, v)
        });
    }
    let mut pointer = scratch.take_u32(n, INVALID);
    let counters = exec.counters();

    while !live.is_empty() {
        // Every live vertex is unmatched by the frontier invariant, so the
        // dense form's tracing-only unmatched count is just the live count.
        let active = live.len() as u64;
        let scope = counters.round_scope(active);
        let any_pointer;
        {
            let mate_at = as_atomic_u32(mate);
            let ptr_at = as_atomic_u32(&mut pointer);

            // Kernel 1: point at the heaviest live incident edge.
            let flag = std::sync::atomic::AtomicBool::new(false);
            exec.kernel_over_set(&live, |v| {
                exec.counters().add_edges(g.degree(v) as u64);
                let mut best = INVALID;
                let mut best_key = (0u64, 0u32);
                let mut first = true;
                for (w, e) in view.arcs(g, v) {
                    if mate_at[w as usize].load(Ordering::Relaxed) == INVALID && allow(w as usize) {
                        let key = weight(e);
                        if first || key > best_key {
                            best_key = key;
                            best = w;
                            first = false;
                        }
                    }
                }
                ptr_at[v as usize].store(best, Ordering::Relaxed);
                if best != INVALID {
                    flag.store(true, Ordering::Relaxed);
                }
            });
            any_pointer = flag.load(Ordering::Relaxed);

            // Kernel 2: mutual pointers match.
            if any_pointer {
                exec.kernel_over_set(&live, |v| {
                    if mate_at[v as usize].load(Ordering::Relaxed) != INVALID {
                        return;
                    }
                    let p = ptr_at[v as usize].load(Ordering::Relaxed);
                    if p != INVALID && v < p && ptr_at[p as usize].load(Ordering::Relaxed) == v {
                        mate_at[v as usize].store(p, Ordering::Relaxed);
                        mate_at[p as usize].store(v, Ordering::Relaxed);
                    }
                });
            }
        }
        if any_pointer {
            // Kernel 3: frontier compaction (the dense form instead rescans
            // the full participant list inside the next kernel 1).
            exec.counters().add_kernel(live.len() as u64);
            let mate_ro: &[u32] = mate;
            live.retain(|v| mate_ro[v as usize] == INVALID);
        }
        exec.end_round();
        counters.finish_round_flagged(scope, !any_pointer, || active - live.len() as u64);
        if !any_pointer {
            break;
        }
    }
    scratch.recycle_u32(pointer);
    live.recycle(scratch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_maximal_matching, matching_cardinality};
    use sb_graph::builder::from_edge_list;

    fn run_lmax(g: &Graph, seed: u64) -> (Vec<u32>, u64) {
        let exec = BspExecutor::new();
        let mut mate = vec![INVALID; g.num_vertices()];
        lmax_extend(g, EdgeView::full(), &mut mate, None, seed, &exec);
        (mate, exec.counters().rounds())
    }

    #[test]
    fn single_edge_and_triangle() {
        let g = from_edge_list(2, &[(0, 1)]);
        let (mate, _) = run_lmax(&g, 1);
        assert_eq!(mate, vec![1, 0]);

        let t = from_edge_list(3, &[(0, 1), (1, 2), (0, 2)]);
        let (mate, _) = run_lmax(&t, 1);
        check_maximal_matching(&t, &mate).unwrap();
        assert_eq!(matching_cardinality(&mate), 1);
    }

    #[test]
    fn maximal_on_random_graphs_all_seeds() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for trial in 0..6 {
            let n = 200 + 50 * trial;
            let edges: Vec<(u32, u32)> = (0..n * 4)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = from_edge_list(n, &edges);
            let (mate, _) = run_lmax(&g, trial as u64);
            check_maximal_matching(&g, &mate).unwrap();
        }
    }

    #[test]
    fn logarithmic_rounds_on_path() {
        // Random weights avoid GM's linear-round pathology on paths.
        let n: u32 = 512;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = from_edge_list(n as usize, &edges);
        let (mate, rounds) = run_lmax(&g, 3);
        check_maximal_matching(&g, &mate).unwrap();
        assert!(
            rounds < 64,
            "local-max on a path should need O(log n) rounds, got {rounds}"
        );
    }

    #[test]
    fn respects_mask_and_partial_matching() {
        let g = from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut mate = vec![INVALID; 5];
        mate[0] = 1;
        mate[1] = 0;
        let allowed = vec![true, true, true, true, false];
        let exec = BspExecutor::new();
        lmax_extend(&g, EdgeView::full(), &mut mate, Some(&allowed), 9, &exec);
        // (0,1) untouched; only (2,3) can match; 4 is masked out.
        assert_eq!(mate, vec![1, 0, 3, 2, INVALID]);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = from_edge_list(64, &(0..63u32).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let (a, _) = run_lmax(&g, 5);
        let (b, _) = run_lmax(&g, 5);
        assert_eq!(a, b);
    }
}
