//! Maximal matching (Section III of the paper).
//!
//! Baselines: [`gm`] (Algorithm GM — the greedy lowest-id proposal matcher
//! used on multicore CPUs, plus the random-edge-priority variant of Blelloch
//! et al. as an ablation) and [`lmax`] (Algorithm LMAX — the local-max
//! matcher of Birn et al., expressed as bulk-synchronous kernels for the
//! GPU-sim executor).
//!
//! Composites ([`decomp`]): MM-Bridge, MM-Rand, MM-Degk (Algorithms 4–6),
//! each of which decomposes the input, matches the pieces, and extends the
//! partial matching over what remains.

pub mod decomp;
pub mod gm;
pub mod ii;
pub mod lmax;

use crate::common::{Arch, FrontierMode, RunStats, SolveOpts};
use sb_graph::csr::{Graph, INVALID};
use sb_graph::view::EdgeView;
use sb_par::bsp::BspExecutor;
use sb_par::counters::Counters;
use sb_par::frontier::Scratch;

/// Which maximal-matching algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmAlgorithm {
    /// The architecture's baseline: GM on CPU, LMAX on GPU-sim.
    Baseline,
    /// MM-Bridge (Algorithm 4).
    Bridge,
    /// MM-Rand (Algorithm 5) with the given partition count.
    Rand {
        /// Number of RAND partitions (paper: 10 on CPU, 4 on GPU, 100 on kron).
        partitions: usize,
    },
    /// MM-Degk (Algorithm 6) with the given degree threshold.
    Degk {
        /// Degree threshold (paper: 2).
        k: usize,
    },
    /// MM-Bicc (extension): the Hochbaum-style block decomposition — match
    /// the blocks minus their articulation vertices in parallel, then
    /// extend over the rest. Not part of the paper's evaluated set.
    Bicc,
}

/// Result of a matching run: the mate array plus timing/work breakdown.
#[derive(Debug, Clone)]
pub struct MatchingRun {
    /// `mate[v]` is `v`'s partner or `INVALID`.
    pub mate: Vec<u32>,
    /// Timing and counters.
    pub stats: RunStats,
}

impl MatchingRun {
    /// Number of matched edges.
    pub fn cardinality(&self) -> usize {
        crate::verify::matching_cardinality(&self.mate)
    }
}

/// Run a maximal-matching algorithm on `g`.
///
/// `seed` drives every random choice (RAND partition, LMAX edge weights),
/// making runs reproducible independent of thread count.
pub fn maximal_matching(g: &Graph, algo: MmAlgorithm, arch: Arch, seed: u64) -> MatchingRun {
    maximal_matching_traced(g, algo, arch, seed, None)
}

/// [`maximal_matching`] reporting phase spans and round records into
/// `trace` when given (see `sb_trace`). Passing `None` — or a disabled
/// sink — is identical to the untraced entry point.
pub fn maximal_matching_traced(
    g: &Graph,
    algo: MmAlgorithm,
    arch: Arch,
    seed: u64,
    trace: Option<std::sync::Arc<sb_trace::TraceSink>>,
) -> MatchingRun {
    maximal_matching_opts(g, algo, arch, seed, &SolveOpts::traced(trace))
}

/// [`maximal_matching`] with full per-run options: trace sink and frontier
/// mode (dense full-sweep rounds vs compacted worklists — see
/// [`crate::common::FrontierMode`]).
pub fn maximal_matching_opts(
    g: &Graph,
    algo: MmAlgorithm,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
) -> MatchingRun {
    match algo {
        MmAlgorithm::Baseline => decomp::baseline_run_opts(g, arch, seed, opts),
        MmAlgorithm::Bridge => decomp::mm_bridge_opts(g, arch, seed, opts),
        MmAlgorithm::Rand { partitions } => decomp::mm_rand_opts(g, partitions, arch, seed, opts),
        MmAlgorithm::Degk { k } => decomp::mm_degk_opts(g, k, arch, seed, opts),
        MmAlgorithm::Bicc => decomp::mm_bicc_opts(g, arch, seed, opts),
    }
}

/// Extend the partial matching in `mate` to a maximal matching of the
/// subgraph of `g` restricted to `view` and to unmatched vertices passing
/// `allowed`, using the baseline solver of `arch`.
///
/// On the CPU, GM runs directly against the filtered view (its adjacency
/// cursor skips non-admitted arcs amortized-free). The GPU pipeline first
/// materializes the admitted piece — on-device that is a handful of cheap
/// streaming passes, whereas per-arc class checks inside the solver's
/// kernels would be gathers; the materialization work is charged to the
/// counters (and hence to the modeled device time).
/// In `Compact` mode the GPU pipeline instead runs the frontier LMAX
/// zero-copy against the masked view: per-arc admit checks ride along the
/// already-compacted worklist sweeps, so no induced CSR is built. Both
/// paths key LMAX edge weights by *original* edge id — the dense path
/// carries the new-id → original-id map of the materialization — so dense
/// and compact are byte-identical on masked views too (pinned by
/// `tests/frontier.rs`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn base_extend(
    g: &Graph,
    view: EdgeView<'_>,
    mate: &mut [u32],
    allowed: Option<&[bool]>,
    arch: Arch,
    seed: u64,
    counters: &Counters,
    mode: FrontierMode,
    scratch: &mut Scratch,
) {
    match (arch, mode) {
        (Arch::Cpu, FrontierMode::Dense) => gm::gm_extend(g, view, mate, allowed, counters),
        (Arch::Cpu, FrontierMode::Compact) => {
            gm::gm_extend_frontier(g, view, mate, allowed, counters, scratch)
        }
        (Arch::GpuSim, FrontierMode::Dense) => {
            let exec = BspExecutor::inheriting(counters);
            if view.is_full() {
                lmax::lmax_extend(g, EdgeView::full(), mate, allowed, seed, &exec);
            } else {
                // Weights must be keyed by the parent's edge ids, not the
                // renumbered ones, to match the zero-copy compact path.
                let orig_ids = view.admitted_edge_ids(g);
                let sub = materialize_for_gpu(g, view, exec.counters());
                lmax::lmax_extend_with_ids(
                    &sub,
                    EdgeView::full(),
                    mate,
                    allowed,
                    seed,
                    &exec,
                    Some(&orig_ids),
                );
            }
            counters.merge(exec.counters());
        }
        (Arch::GpuSim, FrontierMode::Compact) => {
            let exec = BspExecutor::inheriting(counters);
            lmax::lmax_extend_frontier(g, view, mate, allowed, seed, &exec, scratch);
            counters.merge(exec.counters());
        }
        (Arch::Cpu, FrontierMode::Bitset) => {
            gm::gm_extend_bitset(g, view, mate, allowed, counters, scratch)
        }
        (Arch::GpuSim, FrontierMode::Bitset) => {
            let exec = BspExecutor::inheriting(counters);
            lmax::lmax_extend_bitset(g, view, mate, allowed, seed, &exec, scratch);
            counters.merge(exec.counters());
        }
    }
}

/// Materialize a filtered view for a GPU pipeline phase, charging the
/// streaming passes (classify scan + CSR fill) to `counters`.
pub(crate) fn materialize_for_gpu(g: &Graph, view: EdgeView<'_>, counters: &Counters) -> Graph {
    let sub = view.materialize(g);
    counters.add_kernel(g.num_edges() as u64);
    counters.add_kernel(4 * sub.num_edges() as u64);
    sub
}

/// Shared helper: the initial all-unmatched mate array.
pub(crate) fn fresh_mate(n: usize) -> Vec<u32> {
    vec![INVALID; n]
}

/// The paper's rule of thumb for MM-Rand's partition count (§III-B):
/// "we use the partition size k close to the average degree of the graph".
/// Clamped to `[2, 128]` so degenerate graphs stay usable.
pub fn suggested_partitions(g: &Graph) -> usize {
    (g.avg_degree().round() as usize).clamp(2, 128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_graph::builder::from_edge_list;

    #[test]
    fn suggested_partitions_tracks_average_degree() {
        // Cycle: average degree 2.
        let c = from_edge_list(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(suggested_partitions(&c), 2);
        // K6: average degree 5.
        let mut e = Vec::new();
        for i in 0..6u32 {
            for j in i + 1..6 {
                e.push((i, j));
            }
        }
        let k6 = from_edge_list(6, &e);
        assert_eq!(suggested_partitions(&k6), 5);
        // Edgeless: clamped to 2.
        assert_eq!(suggested_partitions(&Graph::empty(4)), 2);
    }

    #[test]
    fn rand_with_suggested_partitions_is_maximal() {
        let g = from_edge_list(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 0)]);
        let k = suggested_partitions(&g);
        let run = maximal_matching(&g, MmAlgorithm::Rand { partitions: k }, Arch::Cpu, 3);
        crate::verify::check_maximal_matching(&g, &run.mate).unwrap();
    }
}
