//! Decomposition-based maximal matching (Algorithms 4–6 of the paper).
//!
//! Each composite runs the decomposition (timed separately), matches the
//! decomposition pieces with the architecture's baseline solver, and then
//! extends the partial matching over the remaining edges. The pieces live
//! on the parent graph's vertex ids, so one `mate` array flows through all
//! phases.

use super::{base_extend, fresh_mate, MatchingRun};
use crate::common::{counters_for_opts, Arch, RunStats, SolveOpts};
use sb_decompose::bicc::{decompose_bicc, BiccDecomposition};
use sb_decompose::bridge::{decompose_bridge, BridgeDecomposition};
use sb_decompose::degk::{decompose_degk, DegkDecomposition};
use sb_decompose::rand_part::{decompose_rand, RandDecomposition};
use sb_graph::csr::{Graph, INVALID};
use sb_graph::view::EdgeView;
use sb_par::counters::{Counters, Stopwatch};
use sb_par::frontier::Scratch;
use sb_trace::TraceSink;
use std::sync::Arc;
use std::time::Duration;

/// Run the architecture's baseline matcher on the whole graph (no
/// decomposition). This is the comparison bar in Figure 3.
pub fn baseline_run(g: &Graph, arch: Arch, seed: u64) -> MatchingRun {
    baseline_run_traced(g, arch, seed, None)
}

/// [`baseline_run`] reporting into `trace` when given.
pub fn baseline_run_traced(
    g: &Graph,
    arch: Arch,
    seed: u64,
    trace: Option<Arc<TraceSink>>,
) -> MatchingRun {
    baseline_run_opts(g, arch, seed, &SolveOpts::traced(trace))
}

/// [`baseline_run`] with full per-run options.
pub fn baseline_run_opts(g: &Graph, arch: Arch, seed: u64, opts: &SolveOpts) -> MatchingRun {
    let counters = counters_for_opts(opts);
    let mut scratch = Scratch::new();
    let mut mate = fresh_mate(g.num_vertices());
    let sw = Stopwatch::start();
    {
        let _span = counters.phase("solve");
        base_extend(
            g,
            EdgeView::full(),
            &mut mate,
            None,
            arch,
            seed,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    let solve_time = sw.elapsed();
    MatchingRun {
        mate,
        stats: RunStats::from_counters(std::time::Duration::ZERO, solve_time, &counters)
            .with_scratch(scratch.stats()),
    }
}

/// Algorithm 4 — MM-Bridge.
///
/// Match the 2-edge-connected components `G_c`, then maximally match the
/// subgraph of `G` induced by the still-unmatched bridge vertices.
pub fn mm_bridge(g: &Graph, arch: Arch, seed: u64) -> MatchingRun {
    mm_bridge_traced(g, arch, seed, None)
}

/// [`mm_bridge`] reporting into `trace` when given.
pub fn mm_bridge_traced(
    g: &Graph,
    arch: Arch,
    seed: u64,
    trace: Option<Arc<TraceSink>>,
) -> MatchingRun {
    mm_bridge_opts(g, arch, seed, &SolveOpts::traced(trace))
}

/// [`mm_bridge`] with full per-run options.
pub fn mm_bridge_opts(g: &Graph, arch: Arch, seed: u64, opts: &SolveOpts) -> MatchingRun {
    let counters = counters_for_opts(opts);
    let sw = Stopwatch::start();
    let d = {
        let _span = counters.phase("decompose");
        decompose_bridge(g, &counters)
    };
    let decompose_time = sw.elapsed();
    mm_bridge_solve(g, &d, arch, seed, opts, counters, decompose_time)
}

/// [`mm_bridge`] against a precomputed decomposition (e.g. from a cache):
/// the solve phases only, with zero reported decomposition time. The mate
/// array is byte-identical to [`mm_bridge_opts`] at the same seed — the
/// solve depends only on `(g, d, arch, seed, frontier)`.
pub fn mm_bridge_with(
    g: &Graph,
    d: &BridgeDecomposition,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
) -> MatchingRun {
    let counters = counters_for_opts(opts);
    mm_bridge_solve(g, d, arch, seed, opts, counters, Duration::ZERO)
}

fn mm_bridge_solve(
    g: &Graph,
    d: &BridgeDecomposition,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
    counters: Counters,
    decompose_time: Duration,
) -> MatchingRun {
    let mut scratch = Scratch::new();
    let sw = Stopwatch::start();
    let mut mate = fresh_mate(g.num_vertices());
    // Phase 1: M_c on the components.
    {
        let _span = counters.phase("induced-solve");
        base_extend(
            g,
            d.component_view(),
            &mut mate,
            None,
            arch,
            seed,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    // Phase 2: M_b on G[V'], V' = unmatched bridge vertices.
    {
        let _span = counters.phase("cross-solve");
        let mut allowed = vec![false; g.num_vertices()];
        for v in d.bridge_vertices(g) {
            if mate[v as usize] == INVALID {
                allowed[v as usize] = true;
            }
        }
        base_extend(
            g,
            EdgeView::full(),
            &mut mate,
            Some(&allowed),
            arch,
            seed ^ 1,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    let solve_time = sw.elapsed();

    MatchingRun {
        mate,
        stats: RunStats::from_counters(decompose_time, solve_time, &counters)
            .with_scratch(scratch.stats()),
    }
}

/// Algorithm 5 — MM-Rand.
///
/// Match the union of the induced partition subgraphs, then extend over the
/// cross-edge subgraph `G_{k+1}`.
pub fn mm_rand(g: &Graph, partitions: usize, arch: Arch, seed: u64) -> MatchingRun {
    mm_rand_traced(g, partitions, arch, seed, None)
}

/// [`mm_rand`] reporting into `trace` when given.
pub fn mm_rand_traced(
    g: &Graph,
    partitions: usize,
    arch: Arch,
    seed: u64,
    trace: Option<Arc<TraceSink>>,
) -> MatchingRun {
    mm_rand_opts(g, partitions, arch, seed, &SolveOpts::traced(trace))
}

/// [`mm_rand`] with full per-run options.
pub fn mm_rand_opts(
    g: &Graph,
    partitions: usize,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
) -> MatchingRun {
    let counters = counters_for_opts(opts);
    let sw = Stopwatch::start();
    let d = {
        let _span = counters.phase("decompose");
        decompose_rand(g, partitions, seed, &counters)
    };
    let decompose_time = sw.elapsed();
    mm_rand_solve(g, &d, arch, seed, opts, counters, decompose_time)
}

/// [`mm_rand`] against a precomputed decomposition. `d` must come from
/// `decompose_rand(g, partitions, seed, …)` with this same `seed` for the
/// output to match [`mm_rand_opts`] byte for byte.
pub fn mm_rand_with(
    g: &Graph,
    d: &RandDecomposition,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
) -> MatchingRun {
    let counters = counters_for_opts(opts);
    mm_rand_solve(g, d, arch, seed, opts, counters, Duration::ZERO)
}

fn mm_rand_solve(
    g: &Graph,
    d: &RandDecomposition,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
    counters: Counters,
    decompose_time: Duration,
) -> MatchingRun {
    let mut scratch = Scratch::new();
    let sw = Stopwatch::start();
    let mut mate = fresh_mate(g.num_vertices());
    // Phase 1: M_IS on G[V_1] ∪ … ∪ G[V_k].
    {
        let _span = counters.phase("induced-solve");
        base_extend(
            g,
            d.induced_view(),
            &mut mate,
            None,
            arch,
            seed ^ 2,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    // Phase 2: M_{k+1} on the unmatched part of G_{k+1} (the solver skips
    // matched endpoints, which is exactly the G_{k+1}[V'] restriction).
    {
        let _span = counters.phase("cross-solve");
        base_extend(
            g,
            d.cross_view(),
            &mut mate,
            None,
            arch,
            seed ^ 3,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    let solve_time = sw.elapsed();

    MatchingRun {
        mate,
        stats: RunStats::from_counters(decompose_time, solve_time, &counters)
            .with_scratch(scratch.stats()),
    }
}

/// Algorithm 6 — MM-Degk.
///
/// Match `G_H` first, then extend over `G_L ∪ G_C` restricted to unmatched
/// vertices.
pub fn mm_degk(g: &Graph, k: usize, arch: Arch, seed: u64) -> MatchingRun {
    mm_degk_traced(g, k, arch, seed, None)
}

/// [`mm_degk`] reporting into `trace` when given.
pub fn mm_degk_traced(
    g: &Graph,
    k: usize,
    arch: Arch,
    seed: u64,
    trace: Option<Arc<TraceSink>>,
) -> MatchingRun {
    mm_degk_opts(g, k, arch, seed, &SolveOpts::traced(trace))
}

/// [`mm_degk`] with full per-run options.
pub fn mm_degk_opts(g: &Graph, k: usize, arch: Arch, seed: u64, opts: &SolveOpts) -> MatchingRun {
    let counters = counters_for_opts(opts);
    let sw = Stopwatch::start();
    let d = {
        let _span = counters.phase("decompose");
        decompose_degk(g, k, &counters)
    };
    let decompose_time = sw.elapsed();
    mm_degk_solve(g, &d, arch, seed, opts, counters, decompose_time)
}

/// [`mm_degk`] against a precomputed decomposition.
pub fn mm_degk_with(
    g: &Graph,
    d: &DegkDecomposition,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
) -> MatchingRun {
    let counters = counters_for_opts(opts);
    mm_degk_solve(g, d, arch, seed, opts, counters, Duration::ZERO)
}

fn mm_degk_solve(
    g: &Graph,
    d: &DegkDecomposition,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
    counters: Counters,
    decompose_time: Duration,
) -> MatchingRun {
    let mut scratch = Scratch::new();
    let sw = Stopwatch::start();
    let mut mate = fresh_mate(g.num_vertices());
    // Phase 1: M_H on G_H.
    {
        let _span = counters.phase("induced-solve");
        base_extend(
            g,
            d.high_view(),
            &mut mate,
            None,
            arch,
            seed ^ 4,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    // Phase 2: M_LC on G_LC = G_L ∪ G_C (every edge with a low endpoint —
    // the low-degree fringe).
    {
        let _span = counters.phase("fringe-peel");
        base_extend(
            g,
            d.low_cross_view(),
            &mut mate,
            None,
            arch,
            seed ^ 5,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    let solve_time = sw.elapsed();

    MatchingRun {
        mate,
        stats: RunStats::from_counters(decompose_time, solve_time, &counters)
            .with_scratch(scratch.stats()),
    }
}

/// MM-Bicc (extension, after Hochbaum \[16\]).
///
/// Removing the articulation vertices splits the graph into the interiors
/// of its blocks, which are pairwise disconnected — a maximal matching of
/// that remainder is found in one parallel solve, then extended over the
/// articulation vertices and their edges.
pub fn mm_bicc(g: &Graph, arch: Arch, seed: u64) -> MatchingRun {
    mm_bicc_traced(g, arch, seed, None)
}

/// [`mm_bicc`] reporting into `trace` when given.
pub fn mm_bicc_traced(
    g: &Graph,
    arch: Arch,
    seed: u64,
    trace: Option<Arc<TraceSink>>,
) -> MatchingRun {
    mm_bicc_opts(g, arch, seed, &SolveOpts::traced(trace))
}

/// [`mm_bicc`] with full per-run options.
pub fn mm_bicc_opts(g: &Graph, arch: Arch, seed: u64, opts: &SolveOpts) -> MatchingRun {
    let counters = counters_for_opts(opts);
    let sw = Stopwatch::start();
    let d = {
        let _span = counters.phase("decompose");
        decompose_bicc(g, &counters)
    };
    let decompose_time = sw.elapsed();
    mm_bicc_solve(g, &d, arch, seed, opts, counters, decompose_time)
}

/// [`mm_bicc`] against a precomputed decomposition.
pub fn mm_bicc_with(
    g: &Graph,
    d: &BiccDecomposition,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
) -> MatchingRun {
    let counters = counters_for_opts(opts);
    mm_bicc_solve(g, d, arch, seed, opts, counters, Duration::ZERO)
}

fn mm_bicc_solve(
    g: &Graph,
    d: &BiccDecomposition,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
    counters: Counters,
    decompose_time: Duration,
) -> MatchingRun {
    let mut scratch = Scratch::new();
    let sw = Stopwatch::start();
    let mut mate = fresh_mate(g.num_vertices());
    // Phase 1: block interiors (non-articulation vertices).
    {
        let _span = counters.phase("induced-solve");
        let interior: Vec<bool> = d.is_articulation.iter().map(|&a| !a).collect();
        base_extend(
            g,
            EdgeView::full(),
            &mut mate,
            Some(&interior),
            arch,
            seed,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    // Phase 2: extend over the articulation vertices.
    {
        let _span = counters.phase("cleanup");
        base_extend(
            g,
            EdgeView::full(),
            &mut mate,
            None,
            arch,
            seed ^ 1,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    let solve_time = sw.elapsed();

    MatchingRun {
        mate,
        stats: RunStats::from_counters(decompose_time, solve_time, &counters)
            .with_scratch(scratch.stats()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{maximal_matching, MmAlgorithm};
    use crate::verify::check_maximal_matching;
    use sb_graph::builder::from_edge_list;

    fn random_graph(n: usize, m: usize, seed: u64) -> Graph {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
            .collect();
        from_edge_list(n, &edges)
    }

    #[test]
    fn all_algorithms_produce_maximal_matchings_both_archs() {
        let graphs = [
            random_graph(300, 900, 1),
            random_graph(500, 700, 2),
            from_edge_list(64, &(0..63u32).map(|i| (i, i + 1)).collect::<Vec<_>>()),
        ];
        let algos = [
            MmAlgorithm::Baseline,
            MmAlgorithm::Bridge,
            MmAlgorithm::Rand { partitions: 4 },
            MmAlgorithm::Degk { k: 2 },
            MmAlgorithm::Bicc,
        ];
        for (gi, g) in graphs.iter().enumerate() {
            for algo in algos {
                for arch in [Arch::Cpu, Arch::GpuSim] {
                    let run = maximal_matching(g, algo, arch, 42);
                    check_maximal_matching(g, &run.mate)
                        .unwrap_or_else(|e| panic!("graph {gi}, {algo:?} on {arch}: {e}"));
                }
            }
        }
    }

    #[test]
    fn decomposition_time_reported_separately() {
        let g = random_graph(400, 1200, 3);
        let run = mm_rand(&g, 4, Arch::Cpu, 7);
        assert!(run.stats.decompose_time > std::time::Duration::ZERO);
        assert!(run.stats.solve_time > std::time::Duration::ZERO);
        let base = baseline_run(&g, Arch::Cpu, 7);
        assert_eq!(base.stats.decompose_time, std::time::Duration::ZERO);
    }

    #[test]
    fn mm_bridge_on_tree_matches_via_bridge_phase() {
        // A tree is all bridges: phase 1 has nothing to do, phase 2 must
        // still deliver a maximal matching.
        let g = from_edge_list(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]);
        let run = mm_bridge(&g, Arch::Cpu, 1);
        check_maximal_matching(&g, &run.mate).unwrap();
        assert!(run.cardinality() >= 2);
    }

    #[test]
    fn mm_rand_single_partition_degenerates_to_baseline_shape() {
        let g = random_graph(200, 600, 5);
        let run = mm_rand(&g, 1, Arch::Cpu, 9);
        check_maximal_matching(&g, &run.mate).unwrap();
    }

    #[test]
    fn mm_degk_various_k() {
        let g = random_graph(300, 1500, 8);
        for k in [0, 1, 2, 4, 16] {
            let run = mm_degk(&g, k, Arch::Cpu, 3);
            check_maximal_matching(&g, &run.mate).unwrap_or_else(|e| panic!("k = {k}: {e}"));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = random_graph(250, 800, 10);
        let a = maximal_matching(&g, MmAlgorithm::Rand { partitions: 5 }, Arch::GpuSim, 77);
        let b = maximal_matching(&g, MmAlgorithm::Rand { partitions: 5 }, Arch::GpuSim, 77);
        assert_eq!(a.mate, b.mate);
    }
}
