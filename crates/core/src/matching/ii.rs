//! Israeli–Itai randomized matching — ablation baseline.
//!
//! The classic O(log n)-round randomized matcher (§III-A's reference \[17\],
//! the ancestor of the Auer–Bisseling GPU matcher). Each round, every
//! unmatched vertex flips a coin for a *proposer* or *acceptor* role;
//! proposers pick a uniformly random live acceptor neighbor, acceptors
//! accept one proposer (the highest per-round hash), and each accepted
//! proposal is a matched pair. The role split makes the pair writes
//! race-free (a vertex can match through exactly one role per round), and
//! fresh randomness every round means no proposal chain can persist — the
//! structural contrast to GM's deterministic lowest-id rule, and the reason
//! this baseline does not exhibit the *vain tendency*.

use rayon::prelude::*;
use sb_graph::csr::{Graph, VertexId, INVALID};
use sb_graph::view::EdgeView;
use sb_par::atomic::as_atomic_u32;
use sb_par::counters::Counters;
use sb_par::rng::{bounded, hash3};
use std::sync::atomic::Ordering;

/// Extend `mate` to a maximal matching of the subgraph of `g` restricted to
/// `view` and unmatched vertices passing `allowed`, with Israeli–Itai
/// propose/accept rounds.
pub fn ii_extend(
    g: &Graph,
    view: EdgeView<'_>,
    mate: &mut [u32],
    allowed: Option<&[bool]>,
    seed: u64,
    counters: &Counters,
) {
    let n = g.num_vertices();
    assert_eq!(mate.len(), n);
    let allow = |v: usize| allowed.is_none_or(|a| a[v]);

    let participants: Vec<VertexId> = (0..n as u32)
        .filter(|&v| mate[v as usize] == INVALID && allow(v as usize) && view.has_arc(g, v))
        .collect();
    // proposal[v] = the neighbor v proposes to this round; accept[v] = the
    // proposer v accepts.
    let mut proposal = vec![INVALID; n];
    let mut accept = vec![INVALID; n];
    let mut round = 0u64;

    // Unmatched-participant count: the round-record "active"/"settled"
    // quantities, computed only when tracing is live.
    let unmatched = |mate: &[u32]| {
        participants
            .iter()
            .filter(|&&v| mate[v as usize] == INVALID)
            .count() as u64
    };

    loop {
        round += 1;
        let active = if counters.tracing() {
            unmatched(mate)
        } else {
            0
        };
        let scope = counters.round_scope(active);
        counters.add_rounds(1);
        counters.add_work(participants.len() as u64);
        let live_edges;
        {
            let mate_at = as_atomic_u32(mate);
            let prop_at = as_atomic_u32(&mut proposal);
            let acc_at = as_atomic_u32(&mut accept);

            // Role coin for this round: true = proposer, false = acceptor.
            let is_proposer = |v: VertexId| hash3(seed ^ 0xC01, round, v as u64) & 1 == 1;

            // Phase 1: proposers pick a uniformly random live acceptor
            // neighbor; the termination flag records whether any live edge
            // remains at all (role-independent — a round where every live
            // pair drew equal coins must not terminate the loop).
            let any: Vec<bool> = participants
                .par_iter()
                .map(|&v| {
                    if mate_at[v as usize].load(Ordering::Relaxed) != INVALID {
                        prop_at[v as usize].store(INVALID, Ordering::Relaxed);
                        return false;
                    }
                    counters.add_edges(g.degree(v) as u64);
                    let mut has_live_neighbor = false;
                    let mut acceptors: Vec<VertexId> = Vec::new();
                    for (w, _) in view.arcs(g, v) {
                        if mate_at[w as usize].load(Ordering::Relaxed) == INVALID
                            && allow(w as usize)
                        {
                            has_live_neighbor = true;
                            if !is_proposer(w) {
                                acceptors.push(w);
                            }
                        }
                    }
                    let pick = if is_proposer(v) && !acceptors.is_empty() {
                        acceptors
                            [bounded(hash3(seed, round, v as u64), acceptors.len() as u64) as usize]
                    } else {
                        INVALID
                    };
                    prop_at[v as usize].store(pick, Ordering::Relaxed);
                    has_live_neighbor
                })
                .collect();
            live_edges = any.iter().any(|&b| b);

            // Phase 2: acceptors accept the proposer with the highest
            // per-round hash.
            participants.par_iter().for_each(|&v| {
                acc_at[v as usize].store(INVALID, Ordering::Relaxed);
                if mate_at[v as usize].load(Ordering::Relaxed) != INVALID || is_proposer(v) {
                    return;
                }
                let mut best = INVALID;
                let mut best_key = 0u64;
                for (w, _) in view.arcs(g, v) {
                    if prop_at[w as usize].load(Ordering::Relaxed) == v {
                        let key = hash3(seed ^ 0xACCE, round, w as u64);
                        if best == INVALID || key > best_key {
                            best = w;
                            best_key = key;
                        }
                    }
                }
                acc_at[v as usize].store(best, Ordering::Relaxed);
            });

            // Phase 3: an accepted proposal is a matched pair. Race-free:
            // only the proposer v with acc[w] == v writes the pair, v
            // proposes to exactly one w, and a proposer is never an
            // acceptor in the same round.
            participants.par_iter().for_each(|&v| {
                if mate_at[v as usize].load(Ordering::Relaxed) != INVALID {
                    return;
                }
                let w = prop_at[v as usize].load(Ordering::Relaxed);
                if w != INVALID && acc_at[w as usize].load(Ordering::Relaxed) == v {
                    mate_at[v as usize].store(w, Ordering::Relaxed);
                    mate_at[w as usize].store(v, Ordering::Relaxed);
                }
            });
        }
        counters.finish_round(scope, || active.saturating_sub(unmatched(mate)));
        if !live_edges {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_maximal_matching, matching_cardinality};
    use sb_graph::builder::from_edge_list;

    fn run_ii(g: &Graph, seed: u64) -> (Vec<u32>, u64) {
        let c = Counters::new();
        let mut mate = vec![INVALID; g.num_vertices()];
        ii_extend(g, EdgeView::full(), &mut mate, None, seed, &c);
        (mate, c.rounds())
    }

    #[test]
    fn maximal_on_basic_shapes() {
        for (n, edges) in [
            (2usize, vec![(0u32, 1u32)]),
            (5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]),
            (6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]),
        ] {
            let g = from_edge_list(n, &edges);
            let (mate, _) = run_ii(&g, 7);
            check_maximal_matching(&g, &mate).unwrap();
        }
    }

    #[test]
    fn no_vain_tendency_on_increasing_path() {
        // The instance that serializes GM: II's fresh per-round randomness
        // matches it in O(log n) rounds.
        let n: u32 = 1024;
        let g = from_edge_list(
            n as usize,
            &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        );
        let (mate, rounds) = run_ii(&g, 5);
        check_maximal_matching(&g, &mate).unwrap();
        assert!(rounds < 80, "II should need O(log n) rounds, got {rounds}");
        assert!(matching_cardinality(&mate) >= (n as usize) / 3);
    }

    #[test]
    fn maximal_on_random_graphs_many_seeds() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for trial in 0..8 {
            let n = 150 + 50 * trial;
            let edges: Vec<(u32, u32)> = (0..n * 3)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = from_edge_list(n, &edges);
            let (mate, _) = run_ii(&g, trial as u64);
            check_maximal_matching(&g, &mate).unwrap();
        }
    }

    #[test]
    fn respects_mask_and_partial_matching() {
        let g = from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut mate = vec![INVALID; 5];
        mate[0] = 1;
        mate[1] = 0;
        let allowed = vec![true, true, true, true, false];
        ii_extend(
            &g,
            EdgeView::full(),
            &mut mate,
            Some(&allowed),
            3,
            &Counters::new(),
        );
        assert_eq!(mate, vec![1, 0, 3, 2, INVALID]);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = from_edge_list(100, &(0..99u32).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let (a, _) = run_ii(&g, 11);
        let (b, _) = run_ii(&g, 11);
        assert_eq!(a, b);
    }
}
