//! Algorithm GM — the multicore-CPU matching baseline.
//!
//! The paper's implementation of the Blelloch et al. greedy matcher: every
//! unmatched vertex proposes to its lowest-id unmatched neighbor; mutual
//! proposals become matches; repeat. Proposal chains with strictly
//! decreasing ids guarantee at least one match per round, but long chains
//! match only one edge each — the *vain tendency* (§III-C) that makes GM
//! take ~14 000 rounds on the rgg instances and that MM-Rand's
//! sparsification breaks.
//!
//! [`gm_random_extend`] is the random-edge-priority variant closer to the
//! original Blelloch formulation, kept as an ablation: it shows the vain
//! tendency is a property of the deterministic lowest-id rule.

use rayon::prelude::*;
use sb_graph::csr::{Graph, VertexId, INVALID};
use sb_graph::view::EdgeView;
use sb_par::atomic::{as_atomic_u32, as_atomic_usize};
use sb_par::counters::Counters;
use sb_par::frontier::{ActiveSet, BitFrontier, Frontier, MarkSet, Scratch};
use sb_par::rng::hash2;
use std::sync::atomic::Ordering;

/// Extend `mate` to a maximal matching of the subgraph of `g` restricted to
/// the edges admitted by `view` and the unmatched vertices passing
/// `allowed` (lowest-id proposal rule).
pub fn gm_extend(
    g: &Graph,
    view: EdgeView<'_>,
    mate: &mut [u32],
    allowed: Option<&[bool]>,
    counters: &Counters,
) {
    let n = g.num_vertices();
    assert_eq!(mate.len(), n);
    let allow = |v: usize| allowed.is_none_or(|a| a[v]);

    // Live vertices: unmatched, allowed, with at least one admitted arc.
    let mut live: Vec<VertexId> = (0..n)
        .filter(|&v| mate[v] == INVALID && allow(v) && view.has_arc(g, v as VertexId))
        .map(|v| v as VertexId)
        .collect();

    // Proposal target per vertex (only entries of live vertices are read in
    // the round they were written).
    let mut proposal = vec![INVALID; n];
    // Cursor into the sorted adjacency list: matched/disallowed neighbors
    // never come back, so each vertex's scan is amortized O(degree).
    let mut cursor = vec![0usize; n];

    while !live.is_empty() {
        let round = counters.round_scope(live.len() as u64);
        let before = live.len();
        counters.add_rounds(1);
        counters.add_work(live.len() as u64);
        {
            let mate_at = as_atomic_u32(mate);
            let prop_at = as_atomic_u32(&mut proposal);
            let cur_at = as_atomic_usize(&mut cursor);

            // Phase 1: propose to the lowest-id live neighbor. Non-admitted
            // arcs are skipped permanently (the view is static), so the
            // cursor scan stays amortized O(degree) per vertex.
            live.par_iter().for_each(|&v| {
                let nbrs = g.neighbors(v);
                let eids = g.edge_ids_of(v);
                let mut c = cur_at[v as usize].load(Ordering::Relaxed);
                let mut scanned = 0u64;
                while c < nbrs.len() {
                    let w = nbrs[c] as usize;
                    if view.admits(eids[c])
                        && mate_at[w].load(Ordering::Relaxed) == INVALID
                        && allow(w)
                    {
                        break;
                    }
                    c += 1;
                    scanned += 1;
                }
                counters.add_edges(scanned + 1);
                cur_at[v as usize].store(c, Ordering::Relaxed);
                let p = if c < nbrs.len() { nbrs[c] } else { INVALID };
                prop_at[v as usize].store(p, Ordering::Relaxed);
            });

            // Phase 2: mutual proposals match. Pairs are disjoint, so the
            // two stores per pair race with nothing.
            live.par_iter().for_each(|&v| {
                let p = prop_at[v as usize].load(Ordering::Relaxed);
                if p != INVALID && v < p && prop_at[p as usize].load(Ordering::Relaxed) == v {
                    mate_at[v as usize].store(p, Ordering::Relaxed);
                    mate_at[p as usize].store(v, Ordering::Relaxed);
                }
            });
        }

        // Phase 3: drop matched vertices and vertices with no live neighbor
        // (their neighborhoods can only shrink further).
        live = live
            .into_par_iter()
            .filter(|&v| mate[v as usize] == INVALID && proposal[v as usize] != INVALID)
            .collect();
        counters.finish_round(round, || (before - live.len()) as u64);
    }
}

/// Frontier form of [`gm_extend`]: the same lowest-id proposal rounds over
/// a ping-pong compacted worklist, with proposals *cached* across rounds.
///
/// The dense form recomputes every live vertex's proposal each round even
/// though almost all of them are unchanged — on the rgg instances GM runs
/// ~14 000 rounds, so that rescan dominates `edges_scanned`. Here a live
/// vertex re-runs its cursor scan only when it is *dirty*: a neighbor
/// matched since the cached proposal was computed (every fresh match
/// scatters dirty marks over its neighborhood in phase 2b, amortized one
/// scatter per vertex over the whole run). A clean vertex's cached proposal
/// is provably what the dense rescan would produce — dead prefix stays dead
/// and its target is still unmatched, or it would have been dirtied — so
/// outputs are byte-identical to [`gm_extend`] for any thread count, while
/// total `edges_scanned` drops from O(rounds · live) to O(m).
pub fn gm_extend_frontier(
    g: &Graph,
    view: EdgeView<'_>,
    mate: &mut [u32],
    allowed: Option<&[bool]>,
    counters: &Counters,
    scratch: &mut Scratch,
) {
    gm_extend_frontier_impl::<Frontier>(g, view, mate, allowed, counters, scratch);
}

/// Bitset form of [`gm_extend_frontier`]: the identical dirty-cache proposal
/// rounds with the live set held as u64 bitset words ([`BitFrontier`]) and
/// the dirty marks as a word bitset. Iteration walks nonzero words by
/// trailing zeros in ascending order — the same order as the worklist form —
/// so outputs stay byte-identical to [`gm_extend`].
pub fn gm_extend_bitset(
    g: &Graph,
    view: EdgeView<'_>,
    mate: &mut [u32],
    allowed: Option<&[bool]>,
    counters: &Counters,
    scratch: &mut Scratch,
) {
    gm_extend_frontier_impl::<BitFrontier>(g, view, mate, allowed, counters, scratch);
}

fn gm_extend_frontier_impl<W: ActiveSet>(
    g: &Graph,
    view: EdgeView<'_>,
    mate: &mut [u32],
    allowed: Option<&[bool]>,
    counters: &Counters,
    scratch: &mut Scratch,
) {
    let n = g.num_vertices();
    assert_eq!(mate.len(), n);
    let allow = |v: usize| allowed.is_none_or(|a| a[v]);

    let mut live = W::take(scratch);
    {
        let mate_ro: &[u32] = mate;
        live.reset_range(n, |v| {
            mate_ro[v as usize] == INVALID && allow(v as usize) && view.has_arc(g, v)
        });
    }
    let mut proposal = scratch.take_u32(n, INVALID);
    let mut cursor = scratch.take_usize(n, 0);
    // Dirty = the cached proposal may be stale; everything starts dirty.
    let dirty = W::take_marks(scratch, n, true);

    while !live.is_empty() {
        let round = counters.round_scope(live.len() as u64);
        let before = live.len();
        counters.add_rounds(1);
        counters.add_work(live.len() as u64);
        {
            let mate_at = as_atomic_u32(mate);
            let prop_at = as_atomic_u32(&mut proposal);
            let cur_at = as_atomic_usize(&mut cursor);
            let dirty_mk = &dirty;

            // Phase 1: re-propose only where the cache is invalid.
            live.for_each(|v| {
                if !dirty_mk.get(v) {
                    return;
                }
                dirty_mk.put(v, false);
                let nbrs = g.neighbors(v);
                let eids = g.edge_ids_of(v);
                let mut c = cur_at[v as usize].load(Ordering::Relaxed);
                let mut scanned = 0u64;
                while c < nbrs.len() {
                    let w = nbrs[c] as usize;
                    if view.admits(eids[c])
                        && mate_at[w].load(Ordering::Relaxed) == INVALID
                        && allow(w)
                    {
                        break;
                    }
                    c += 1;
                    scanned += 1;
                }
                counters.add_edges(scanned + 1);
                cur_at[v as usize].store(c, Ordering::Relaxed);
                let p = if c < nbrs.len() { nbrs[c] } else { INVALID };
                prop_at[v as usize].store(p, Ordering::Relaxed);
            });

            // Phase 2: mutual proposals match, exactly as in the dense form.
            live.for_each(|v| {
                let p = prop_at[v as usize].load(Ordering::Relaxed);
                if p != INVALID && v < p && prop_at[p as usize].load(Ordering::Relaxed) == v {
                    mate_at[v as usize].store(p, Ordering::Relaxed);
                    mate_at[p as usize].store(v, Ordering::Relaxed);
                }
            });

            // Phase 2b: every vertex matched this round invalidates its
            // neighbors' cached proposals. Each vertex matches at most once,
            // so these scatters total O(m) over the whole run.
            live.for_each(|v| {
                if mate_at[v as usize].load(Ordering::Relaxed) == INVALID {
                    return;
                }
                counters.add_edges(g.degree(v) as u64);
                for (w, _) in view.arcs(g, v) {
                    dirty_mk.put(w, true);
                }
            });
        }

        // Phase 3: in-place compaction under the dense form's predicate.
        {
            let mate_ro: &[u32] = mate;
            let prop_ro: &[u32] = &proposal;
            live.retain(|v| mate_ro[v as usize] == INVALID && prop_ro[v as usize] != INVALID);
        }
        counters.finish_round(round, || (before - live.len()) as u64);
    }
    scratch.recycle_u32(proposal);
    scratch.recycle_usize(cursor);
    W::recycle_marks(dirty, scratch);
    live.recycle(scratch);
}

/// The random-edge-priority variant (Blelloch-style): each vertex proposes
/// along its minimum-weight live incident edge, weights fixed per `seed`.
pub fn gm_random_extend(
    g: &Graph,
    view: EdgeView<'_>,
    mate: &mut [u32],
    allowed: Option<&[bool]>,
    seed: u64,
    counters: &Counters,
) {
    let n = g.num_vertices();
    assert_eq!(mate.len(), n);
    let allow = |v: usize| allowed.is_none_or(|a| a[v]);
    let weight = |e: u32| hash2(seed, e as u64);

    let mut live: Vec<VertexId> = (0..n)
        .filter(|&v| mate[v] == INVALID && allow(v) && view.has_arc(g, v as VertexId))
        .map(|v| v as VertexId)
        .collect();
    let mut proposal = vec![INVALID; n];

    while !live.is_empty() {
        let round = counters.round_scope(live.len() as u64);
        let before = live.len();
        counters.add_rounds(1);
        counters.add_work(live.len() as u64);
        {
            let mate_at = as_atomic_u32(mate);
            let prop_at = as_atomic_u32(&mut proposal);

            live.par_iter().for_each(|&v| {
                counters.add_edges(g.degree(v) as u64);
                let mut best = INVALID;
                let mut best_key = (u64::MAX, u32::MAX);
                for (w, e) in view.arcs(g, v) {
                    if mate_at[w as usize].load(Ordering::Relaxed) == INVALID && allow(w as usize) {
                        let key = (weight(e), e);
                        if key < best_key {
                            best_key = key;
                            best = w;
                        }
                    }
                }
                prop_at[v as usize].store(best, Ordering::Relaxed);
            });

            live.par_iter().for_each(|&v| {
                let p = prop_at[v as usize].load(Ordering::Relaxed);
                if p != INVALID && v < p && prop_at[p as usize].load(Ordering::Relaxed) == v {
                    mate_at[v as usize].store(p, Ordering::Relaxed);
                    mate_at[p as usize].store(v, Ordering::Relaxed);
                }
            });
        }
        live = live
            .into_par_iter()
            .filter(|&v| mate[v as usize] == INVALID && proposal[v as usize] != INVALID)
            .collect();
        counters.finish_round(round, || (before - live.len()) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_maximal_matching, matching_cardinality};
    use sb_graph::builder::from_edge_list;

    fn run_gm(g: &Graph) -> Vec<u32> {
        let mut mate = vec![INVALID; g.num_vertices()];
        gm_extend(g, EdgeView::full(), &mut mate, None, &Counters::new());
        mate
    }

    #[test]
    fn path_matches_maximally() {
        let g = from_edge_list(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let mate = run_gm(&g);
        check_maximal_matching(&g, &mate).unwrap();
        assert!(matching_cardinality(&mate) >= 2);
    }

    #[test]
    fn single_edge() {
        let g = from_edge_list(2, &[(0, 1)]);
        let mate = run_gm(&g);
        assert_eq!(mate, vec![1, 0]);
    }

    #[test]
    fn star_matches_exactly_one() {
        let g = from_edge_list(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let mate = run_gm(&g);
        check_maximal_matching(&g, &mate).unwrap();
        assert_eq!(matching_cardinality(&mate), 1);
    }

    #[test]
    fn respects_allowed_mask() {
        // Only vertices {2, 3} allowed: the matching may touch nothing else.
        let g = from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut mate = vec![INVALID; 4];
        let allowed = vec![false, false, true, true];
        gm_extend(
            &g,
            EdgeView::full(),
            &mut mate,
            Some(&allowed),
            &Counters::new(),
        );
        assert_eq!(mate, vec![INVALID, INVALID, 3, 2]);
    }

    #[test]
    fn extends_existing_matching_without_touching_it() {
        let g = from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut mate = vec![INVALID; 4];
        mate[1] = 2;
        mate[2] = 1;
        gm_extend(&g, EdgeView::full(), &mut mate, None, &Counters::new());
        // (1,2) already matched; 0 and 3 have no unmatched neighbors.
        assert_eq!(mate, vec![INVALID, 2, 1, INVALID]);
        check_maximal_matching(&g, &mate).unwrap();
    }

    #[test]
    fn vain_tendency_visible_on_path() {
        // Lowest-id proposals serialize along an increasing-id path: rounds
        // grow linearly. This is the measured pathology the paper describes.
        let n = 64;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = from_edge_list(n as usize, &edges);
        let c = Counters::new();
        let mut mate = vec![INVALID; n as usize];
        gm_extend(&g, EdgeView::full(), &mut mate, None, &c);
        check_maximal_matching(&g, &mate).unwrap();
        assert!(
            c.rounds() >= (n as u64) / 4,
            "expected vain-tendency round blowup, got {} rounds",
            c.rounds()
        );

        // The random-priority variant should need far fewer rounds.
        let c2 = Counters::new();
        let mut mate2 = vec![INVALID; n as usize];
        gm_random_extend(&g, EdgeView::full(), &mut mate2, None, 7, &c2);
        check_maximal_matching(&g, &mate2).unwrap();
        assert!(
            c2.rounds() * 2 < c.rounds(),
            "random priorities ({}) should beat lowest-id ({})",
            c2.rounds(),
            c.rounds()
        );
    }

    #[test]
    fn random_variant_valid_on_random_graphs() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for trial in 0..6 {
            let n = 150 + trial * 60;
            let edges: Vec<(u32, u32)> = (0..n * 3)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = from_edge_list(n, &edges);
            let mut mate = vec![INVALID; n];
            gm_random_extend(
                &g,
                EdgeView::full(),
                &mut mate,
                None,
                trial as u64,
                &Counters::new(),
            );
            check_maximal_matching(&g, &mate).unwrap();
            let mut mate2 = vec![INVALID; n];
            gm_extend(&g, EdgeView::full(), &mut mate2, None, &Counters::new());
            check_maximal_matching(&g, &mate2).unwrap();
        }
    }

    #[test]
    fn empty_graph_noop() {
        let g = Graph::empty(3);
        let mut mate = vec![INVALID; 3];
        gm_extend(&g, EdgeView::full(), &mut mate, None, &Counters::new());
        assert_eq!(mate, vec![INVALID; 3]);
    }
}
