//! Decomposition-based parallel symmetry breaking.
//!
//! This crate is the reproduction of the paper's contribution: for each of
//! the three symmetry-breaking problems it provides the published baseline
//! algorithms and the three decomposition-based composites built on top of
//! them, on both execution models (multicore-CPU via rayon, GPU-sim via the
//! bulk-synchronous executor in `sb_par::bsp`).
//!
//! | Problem | Baselines | Decomposition composites |
//! |---------|-----------|--------------------------|
//! | Maximal matching ([`matching`]) | GM (greedy proposal), LMAX (local-max), Israeli–Itai | MM-Bridge, MM-Rand, MM-Degk, MM-Bicc† |
//! | Vertex coloring ([`coloring`]) | VB (vertex-based), EB (edge-based), JP with LF/SL orderings | COLOR-Bridge, COLOR-Rand, COLOR-Degk, COLOR-Bicc† |
//! | Maximal independent set ([`mis`]) | LubyMIS (classic 1986), greedy (static priorities) | MIS-Bridge, MIS-Rand, MIS-Deg2, MIS-Bicc† |
//!
//! † `*-Bicc` are extensions beyond the paper's evaluated set, after the
//! Hochbaum-style block decomposition its related work builds on.
//!
//! Every solver *extends* a partial solution over a vertex mask, which is
//! how the composites (Algorithms 4–12 of the paper) chain phases without
//! remapping vertex ids: decomposition pieces share the parent graph's id
//! space (see `sb_graph::subgraph`), phase 1 fills part of the solution
//! array, and phase 2 continues on the rest.
//!
//! Use [`verify`] to check any produced solution against an independent
//! implementation of the problem definition.

pub mod coloring;
pub mod common;
pub mod matching;
pub mod mis;
pub mod repair;
pub mod verify;

pub use common::{Arch, RunStats};
