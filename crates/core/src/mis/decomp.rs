//! Decomposition-based MIS (Algorithms 10–12 of the paper).

use super::luby::{
    luby_extend, luby_extend_bitset, luby_extend_bsp, luby_extend_bsp_bitset,
    luby_extend_bsp_frontier, luby_extend_frontier,
};
use super::oriented::oriented_mis_extend_opts;
use super::status::{IN, OUT, UNDECIDED};
use super::MisRun;
use crate::common::{counters_for_opts, Arch, FrontierMode, RunStats, SolveOpts};
use crate::matching::materialize_for_gpu;
use rayon::prelude::*;
use sb_decompose::bicc::{decompose_bicc, BiccDecomposition};
use sb_decompose::bridge::{decompose_bridge, BridgeDecomposition};
use sb_decompose::degk::{decompose_degk, DegkDecomposition};
use sb_decompose::rand_part::{decompose_rand, RandDecomposition};
use sb_graph::csr::{Graph, VertexId};
use sb_graph::view::EdgeView;
use sb_par::atomic::as_atomic_u8;
use sb_par::bsp::BspExecutor;
use sb_par::counters::{Counters, Stopwatch};
use sb_par::frontier::Scratch;
use sb_trace::TraceSink;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Run the architecture's Luby form over the undecided vertices of `g`
/// passing `allowed`, restricted to the edges of `view`.
///
/// In `Dense` mode, GPU phases over a filtered view materialize the piece
/// first (see `matching::base_extend`). In `Compact` mode both
/// architectures solve against the view zero-copy: Luby's decisions depend
/// only on vertex ids and the admitted edge set, so skipping the induced
/// CSR build cannot change the output.
#[allow(clippy::too_many_arguments)]
fn base_mis_extend(
    g: &Graph,
    view: EdgeView<'_>,
    status: &mut [u8],
    allowed: Option<&[bool]>,
    arch: Arch,
    seed: u64,
    counters: &Counters,
    mode: FrontierMode,
    scratch: &mut Scratch,
) {
    match (arch, mode) {
        (Arch::Cpu, FrontierMode::Dense) => luby_extend(g, view, status, allowed, seed, counters),
        (Arch::Cpu, FrontierMode::Compact) => {
            luby_extend_frontier(g, view, status, allowed, seed, counters, scratch)
        }
        (Arch::GpuSim, FrontierMode::Dense) => {
            let exec = BspExecutor::inheriting(counters);
            if view.is_full() {
                luby_extend_bsp(g, EdgeView::full(), status, allowed, seed, &exec);
            } else {
                let sub = materialize_for_gpu(g, view, exec.counters());
                luby_extend_bsp(&sub, EdgeView::full(), status, allowed, seed, &exec);
            }
            counters.merge(exec.counters());
        }
        (Arch::GpuSim, FrontierMode::Compact) => {
            let exec = BspExecutor::inheriting(counters);
            luby_extend_bsp_frontier(g, view, status, allowed, seed, &exec, scratch);
            counters.merge(exec.counters());
        }
        (Arch::Cpu, FrontierMode::Bitset) => {
            luby_extend_bitset(g, view, status, allowed, seed, counters, scratch)
        }
        (Arch::GpuSim, FrontierMode::Bitset) => {
            let exec = BspExecutor::inheriting(counters);
            luby_extend_bsp_bitset(g, view, status, allowed, seed, &exec, scratch);
            counters.merge(exec.counters());
        }
    }
}

/// Exclude (in the full graph `g`) every undecided vertex with an IN
/// neighbor — the "remove from G vertices that are in I_A or have a
/// neighbor in I_A" step between phases.
fn exclude_dominated(g: &Graph, status: &mut [u8], counters: &Counters) {
    counters.add_edges(2 * g.num_edges() as u64);
    let st = as_atomic_u8(status);
    (0..g.num_vertices()).into_par_iter().for_each(|v| {
        if st[v].load(Ordering::Relaxed) != UNDECIDED {
            return;
        }
        if g.neighbors(v as VertexId)
            .iter()
            .any(|&w| st[w as usize].load(Ordering::Relaxed) == IN)
        {
            st[v].store(OUT, Ordering::Relaxed);
        }
    });
}

fn finish(
    status: Vec<u8>,
    decompose_time: std::time::Duration,
    sw: Stopwatch,
    counters: Counters,
    scratch: &Scratch,
) -> MisRun {
    let solve_time = sw.elapsed();
    MisRun {
        in_set: status.iter().map(|&s| s == IN).collect(),
        stats: RunStats::from_counters(decompose_time, solve_time, &counters)
            .with_scratch(scratch.stats()),
    }
}

/// LubyMIS on the whole graph — the Figure 5 baseline.
pub fn baseline_run(g: &Graph, arch: Arch, seed: u64) -> MisRun {
    baseline_run_traced(g, arch, seed, None)
}

/// [`baseline_run`] reporting into `trace` when given.
pub fn baseline_run_traced(
    g: &Graph,
    arch: Arch,
    seed: u64,
    trace: Option<Arc<TraceSink>>,
) -> MisRun {
    baseline_run_opts(g, arch, seed, &SolveOpts::traced(trace))
}

/// [`baseline_run`] with full per-run options.
pub fn baseline_run_opts(g: &Graph, arch: Arch, seed: u64, opts: &SolveOpts) -> MisRun {
    let counters = counters_for_opts(opts);
    let mut scratch = Scratch::new();
    let mut status = vec![UNDECIDED; g.num_vertices()];
    let sw = Stopwatch::start();
    {
        let _span = counters.phase("solve");
        base_mis_extend(
            g,
            EdgeView::full(),
            &mut status,
            None,
            arch,
            seed,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    finish(status, std::time::Duration::ZERO, sw, counters, &scratch)
}

/// Average degree over the non-isolated vertices of a view — the sparsity
/// measure the paper uses to pick which side to solve first.
fn busy_avg_degree(g: &Graph, view: EdgeView<'_>) -> f64 {
    let busy = (0..g.num_vertices())
        .into_par_iter()
        .filter(|&v| view.has_arc(g, v as VertexId))
        .count();
    if busy == 0 {
        0.0
    } else {
        2.0 * view.num_edges(g) as f64 / busy as f64
    }
}

/// Algorithm 10 — MIS-Bridge.
///
/// Solve `∪ H_i = G_c` minus bridge endpoints and the bridge graph `G_B`,
/// sparser side first, extending through the full graph in between.
pub fn mis_bridge(g: &Graph, arch: Arch, seed: u64) -> MisRun {
    mis_bridge_traced(g, arch, seed, None)
}

/// [`mis_bridge`] reporting into `trace` when given.
pub fn mis_bridge_traced(
    g: &Graph,
    arch: Arch,
    seed: u64,
    trace: Option<Arc<TraceSink>>,
) -> MisRun {
    mis_bridge_opts(g, arch, seed, &SolveOpts::traced(trace))
}

/// [`mis_bridge`] with full per-run options.
pub fn mis_bridge_opts(g: &Graph, arch: Arch, seed: u64, opts: &SolveOpts) -> MisRun {
    let counters = counters_for_opts(opts);
    let sw = Stopwatch::start();
    let d = {
        let _span = counters.phase("decompose");
        decompose_bridge(g, &counters)
    };
    let decompose_time = sw.elapsed();
    mis_bridge_solve(g, &d, arch, seed, opts, counters, decompose_time)
}

/// [`mis_bridge`] against a precomputed decomposition (solve phases only;
/// zero reported decomposition time, byte-identical set).
pub fn mis_bridge_with(
    g: &Graph,
    d: &BridgeDecomposition,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
) -> MisRun {
    let counters = counters_for_opts(opts);
    mis_bridge_solve(g, d, arch, seed, opts, counters, Duration::ZERO)
}

fn mis_bridge_solve(
    g: &Graph,
    d: &BridgeDecomposition,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
    counters: Counters,
    decompose_time: Duration,
) -> MisRun {
    let mut scratch = Scratch::new();
    let sw = Stopwatch::start();
    let n = g.num_vertices();
    let mut is_bridge_vertex = vec![false; n];
    for v in d.bridge_vertices(g) {
        is_bridge_vertex[v as usize] = true;
    }
    let mut status = vec![UNDECIDED; n];

    let comp_side: Vec<bool> = (0..n).map(|v| !is_bridge_vertex[v]).collect();
    if busy_avg_degree(g, d.component_view()) <= busy_avg_degree(g, d.bridge_view()) {
        // I_A on ∪ H_i first.
        {
            let _span = counters.phase("induced-solve");
            base_mis_extend(
                g,
                d.component_view(),
                &mut status,
                Some(&comp_side),
                arch,
                seed,
                &counters,
                opts.frontier,
                &mut scratch,
            );
        }
        let _span = counters.phase("cross-solve");
        exclude_dominated(g, &mut status, &counters);
        base_mis_extend(
            g,
            EdgeView::full(),
            &mut status,
            None,
            arch,
            seed ^ 1,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    } else {
        // I_B first. Note: an MIS of the bare bridge graph G_B would not be
        // independent in G (two bridge endpoints can share a non-bridge
        // edge), so I_B is computed on G restricted to the bridge vertices —
        // the subgraph Algorithm 10's "MIS of G_B" must mean for I_A ∪ I_B
        // to be an MIS of G.
        {
            let _span = counters.phase("induced-solve");
            base_mis_extend(
                g,
                EdgeView::full(),
                &mut status,
                Some(&is_bridge_vertex),
                arch,
                seed,
                &counters,
                opts.frontier,
                &mut scratch,
            );
        }
        let _span = counters.phase("cross-solve");
        exclude_dominated(g, &mut status, &counters);
        base_mis_extend(
            g,
            EdgeView::full(),
            &mut status,
            None,
            arch,
            seed ^ 1,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    finish(status, decompose_time, sw, counters, &scratch)
}

/// Algorithm 11 — MIS-Rand.
///
/// Solve `H = ∪ (G_i \ G_{k+1})` (induced subgraphs minus cross-edge
/// endpoints) and the cross graph, sparser side first.
pub fn mis_rand(g: &Graph, partitions: usize, arch: Arch, seed: u64) -> MisRun {
    mis_rand_traced(g, partitions, arch, seed, None)
}

/// [`mis_rand`] reporting into `trace` when given.
pub fn mis_rand_traced(
    g: &Graph,
    partitions: usize,
    arch: Arch,
    seed: u64,
    trace: Option<Arc<TraceSink>>,
) -> MisRun {
    mis_rand_opts(g, partitions, arch, seed, &SolveOpts::traced(trace))
}

/// [`mis_rand`] with full per-run options.
pub fn mis_rand_opts(
    g: &Graph,
    partitions: usize,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
) -> MisRun {
    let counters = counters_for_opts(opts);
    let sw = Stopwatch::start();
    let d = {
        let _span = counters.phase("decompose");
        decompose_rand(g, partitions, seed, &counters)
    };
    let decompose_time = sw.elapsed();
    mis_rand_solve(g, &d, arch, seed, opts, counters, decompose_time)
}

/// [`mis_rand`] against a precomputed decomposition. `d` must come from
/// `decompose_rand(g, partitions, seed, …)` with this same `seed`.
pub fn mis_rand_with(
    g: &Graph,
    d: &RandDecomposition,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
) -> MisRun {
    let counters = counters_for_opts(opts);
    mis_rand_solve(g, d, arch, seed, opts, counters, Duration::ZERO)
}

fn mis_rand_solve(
    g: &Graph,
    d: &RandDecomposition,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
    counters: Counters,
    decompose_time: Duration,
) -> MisRun {
    let mut scratch = Scratch::new();
    let sw = Stopwatch::start();
    let n = g.num_vertices();
    let cross_endpoint: Vec<bool> = {
        let mut m = vec![false; n];
        for (e, &[u, v]) in g.edge_list().iter().enumerate() {
            if d.class[e] == sb_decompose::rand_part::RandDecomposition::CROSS {
                m[u as usize] = true;
                m[v as usize] = true;
            }
        }
        m
    };
    let h_side: Vec<bool> = (0..n).map(|v| !cross_endpoint[v]).collect();
    let mut status = vec![UNDECIDED; n];

    if busy_avg_degree(g, d.induced_view()) <= busy_avg_degree(g, d.cross_view()) {
        {
            let _span = counters.phase("induced-solve");
            base_mis_extend(
                g,
                d.induced_view(),
                &mut status,
                Some(&h_side),
                arch,
                seed ^ 2,
                &counters,
                opts.frontier,
                &mut scratch,
            );
        }
        let _span = counters.phase("cross-solve");
        exclude_dominated(g, &mut status, &counters);
        base_mis_extend(
            g,
            EdgeView::full(),
            &mut status,
            None,
            arch,
            seed ^ 3,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    } else {
        // Same subtlety as MIS-Bridge: cross-edge endpoints can also share
        // intra-partition edges, so I_B runs on G restricted to them.
        {
            let _span = counters.phase("induced-solve");
            base_mis_extend(
                g,
                EdgeView::full(),
                &mut status,
                Some(&cross_endpoint),
                arch,
                seed ^ 2,
                &counters,
                opts.frontier,
                &mut scratch,
            );
        }
        let _span = counters.phase("cross-solve");
        exclude_dominated(g, &mut status, &counters);
        base_mis_extend(
            g,
            EdgeView::full(),
            &mut status,
            None,
            arch,
            seed ^ 3,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    finish(status, decompose_time, sw, counters, &scratch)
}

/// Algorithm 12 — MIS-Degk (the paper's MIS-Deg2 for k = 2).
///
/// Solve the degree-≤k side first — with the deterministic oriented
/// algorithm when k ≤ 2 (paths and cycles), otherwise with Luby — then
/// extend through the remainder.
pub fn mis_degk(g: &Graph, k: usize, arch: Arch, seed: u64) -> MisRun {
    mis_degk_traced(g, k, arch, seed, None)
}

/// [`mis_degk`] reporting into `trace` when given.
pub fn mis_degk_traced(
    g: &Graph,
    k: usize,
    arch: Arch,
    seed: u64,
    trace: Option<Arc<TraceSink>>,
) -> MisRun {
    mis_degk_opts(g, k, arch, seed, &SolveOpts::traced(trace))
}

/// [`mis_degk`] with full per-run options.
pub fn mis_degk_opts(g: &Graph, k: usize, arch: Arch, seed: u64, opts: &SolveOpts) -> MisRun {
    let counters = counters_for_opts(opts);
    let sw = Stopwatch::start();
    let d = {
        let _span = counters.phase("decompose");
        decompose_degk(g, k, &counters)
    };
    let decompose_time = sw.elapsed();
    mis_degk_solve(g, &d, arch, seed, opts, counters, decompose_time)
}

/// [`mis_degk`] against a precomputed decomposition. The decomposition
/// carries its own `k` (selects oriented vs Luby peeling for the fringe).
pub fn mis_degk_with(
    g: &Graph,
    d: &DegkDecomposition,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
) -> MisRun {
    let counters = counters_for_opts(opts);
    mis_degk_solve(g, d, arch, seed, opts, counters, Duration::ZERO)
}

fn mis_degk_solve(
    g: &Graph,
    d: &DegkDecomposition,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
    counters: Counters,
    decompose_time: Duration,
) -> MisRun {
    let k = d.k;
    let mut scratch = Scratch::new();
    let sw = Stopwatch::start();
    let n = g.num_vertices();
    let low_side: Vec<bool> = (0..n).map(|v| !d.is_high[v]).collect();
    let mut status = vec![UNDECIDED; n];

    // The degree-≤k fringe is peeled first (oriented Cole–Vishkin for
    // k ≤ 2, Luby otherwise).
    {
        let _span = counters.phase("fringe-peel");
        if k <= 2 {
            oriented_mis_extend_opts(
                g,
                d.low_view(),
                &mut status,
                Some(&low_side),
                &counters,
                opts.frontier,
            );
        } else {
            base_mis_extend(
                g,
                d.low_view(),
                &mut status,
                Some(&low_side),
                arch,
                seed ^ 4,
                &counters,
                opts.frontier,
                &mut scratch,
            );
        }
    }
    {
        let _span = counters.phase("cross-solve");
        exclude_dominated(g, &mut status, &counters);
        base_mis_extend(
            g,
            EdgeView::full(),
            &mut status,
            None,
            arch,
            seed ^ 5,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    finish(status, decompose_time, sw, counters, &scratch)
}

/// MIS-Bicc (extension, after Hochbaum \[16\]).
///
/// An MIS of the block interiors (the graph minus articulation vertices,
/// whose pieces are pairwise disconnected), then exclusion through the
/// full graph and a final solve over what remains.
pub fn mis_bicc(g: &Graph, arch: Arch, seed: u64) -> MisRun {
    mis_bicc_traced(g, arch, seed, None)
}

/// [`mis_bicc`] reporting into `trace` when given.
pub fn mis_bicc_traced(g: &Graph, arch: Arch, seed: u64, trace: Option<Arc<TraceSink>>) -> MisRun {
    mis_bicc_opts(g, arch, seed, &SolveOpts::traced(trace))
}

/// [`mis_bicc`] with full per-run options.
pub fn mis_bicc_opts(g: &Graph, arch: Arch, seed: u64, opts: &SolveOpts) -> MisRun {
    let counters = counters_for_opts(opts);
    let sw = Stopwatch::start();
    let d = {
        let _span = counters.phase("decompose");
        decompose_bicc(g, &counters)
    };
    let decompose_time = sw.elapsed();
    mis_bicc_solve(g, &d, arch, seed, opts, counters, decompose_time)
}

/// [`mis_bicc`] against a precomputed decomposition.
pub fn mis_bicc_with(
    g: &Graph,
    d: &BiccDecomposition,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
) -> MisRun {
    let counters = counters_for_opts(opts);
    mis_bicc_solve(g, d, arch, seed, opts, counters, Duration::ZERO)
}

fn mis_bicc_solve(
    g: &Graph,
    d: &BiccDecomposition,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
    counters: Counters,
    decompose_time: Duration,
) -> MisRun {
    let mut scratch = Scratch::new();
    let sw = Stopwatch::start();
    let n = g.num_vertices();
    let interior: Vec<bool> = d.is_articulation.iter().map(|&a| !a).collect();
    let mut status = vec![UNDECIDED; n];
    {
        let _span = counters.phase("induced-solve");
        base_mis_extend(
            g,
            EdgeView::full(),
            &mut status,
            Some(&interior),
            arch,
            seed,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    {
        let _span = counters.phase("cleanup");
        exclude_dominated(g, &mut status, &counters);
        base_mis_extend(
            g,
            EdgeView::full(),
            &mut status,
            None,
            arch,
            seed ^ 1,
            &counters,
            opts.frontier,
            &mut scratch,
        );
    }
    finish(status, decompose_time, sw, counters, &scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mis::{maximal_independent_set, MisAlgorithm};
    use crate::verify::check_maximal_independent_set;
    use sb_graph::builder::from_edge_list;

    fn random_graph(n: usize, m: usize, seed: u64) -> Graph {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
            .collect();
        from_edge_list(n, &edges)
    }

    #[test]
    fn all_algorithms_maximal_both_archs() {
        let graphs = [
            random_graph(300, 900, 1),
            random_graph(400, 600, 2),
            from_edge_list(80, &(0..79u32).map(|i| (i, i + 1)).collect::<Vec<_>>()),
        ];
        let algos = [
            MisAlgorithm::Baseline,
            MisAlgorithm::Bridge,
            MisAlgorithm::Rand { partitions: 4 },
            MisAlgorithm::Degk { k: 2 },
            MisAlgorithm::Bicc,
        ];
        for (gi, g) in graphs.iter().enumerate() {
            for algo in algos {
                for arch in [Arch::Cpu, Arch::GpuSim] {
                    let run = maximal_independent_set(g, algo, arch, 23);
                    check_maximal_independent_set(g, &run.in_set)
                        .unwrap_or_else(|e| panic!("graph {gi}, {algo:?} on {arch}: {e}"));
                }
            }
        }
    }

    #[test]
    fn deg2_on_chain_heavy_graph_uses_oriented_path_fast() {
        // Hub with many chains — the lp1 shape where MIS-Deg2 shines.
        let mut edges = vec![];
        for c in 0..30u32 {
            let b = 1 + 4 * c;
            edges.push((0, b));
            edges.push((b, b + 1));
            edges.push((b + 1, b + 2));
            edges.push((b + 2, b + 3));
        }
        let g = from_edge_list(121, &edges);
        let run = mis_degk(&g, 2, Arch::Cpu, 3);
        check_maximal_independent_set(&g, &run.in_set).unwrap();
        // Chains alone guarantee a large independent set.
        assert!(run.size() >= 60);
    }

    #[test]
    fn degk_with_large_k_falls_back_to_luby() {
        let g = random_graph(200, 800, 5);
        let run = mis_degk(&g, 8, Arch::Cpu, 7);
        check_maximal_independent_set(&g, &run.in_set).unwrap();
    }

    #[test]
    fn bridge_on_tree_and_on_cycle() {
        let tree = from_edge_list(15, &(0..14u32).map(|i| (i / 2, i + 1)).collect::<Vec<_>>());
        let run = mis_bridge(&tree, Arch::Cpu, 1);
        check_maximal_independent_set(&tree, &run.in_set).unwrap();

        let mut edges: Vec<(u32, u32)> = (0..19).map(|i| (i, i + 1)).collect();
        edges.push((19, 0));
        let cyc = from_edge_list(20, &edges);
        let run = mis_bridge(&cyc, Arch::GpuSim, 2);
        check_maximal_independent_set(&cyc, &run.in_set).unwrap();
    }

    #[test]
    fn rand_partition_sweep() {
        let g = random_graph(300, 1200, 9);
        for k in [1, 2, 5, 10] {
            let run = mis_rand(&g, k, Arch::Cpu, 11);
            check_maximal_independent_set(&g, &run.in_set)
                .unwrap_or_else(|e| panic!("k = {k}: {e}"));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = random_graph(250, 750, 12);
        let a = maximal_independent_set(&g, MisAlgorithm::Degk { k: 2 }, Arch::Cpu, 5);
        let b = maximal_independent_set(&g, MisAlgorithm::Degk { k: 2 }, Arch::Cpu, 5);
        assert_eq!(a.in_set, b.in_set);
    }

    #[test]
    fn stats_breakdown_present() {
        let g = random_graph(300, 900, 13);
        let run = mis_degk(&g, 2, Arch::Cpu, 3);
        assert!(run.stats.decompose_time > std::time::Duration::ZERO);
        assert!(run.stats.counters.rounds > 0);
    }
}
