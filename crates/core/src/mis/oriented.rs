//! Deterministic MIS for degree-≤2 subgraphs via id-orientation.
//!
//! MIS-Deg2 (Algorithm 12) solves the degree-≤2 piece `G_L` with the
//! orientation-based symmetry breaker of Kothapalli & Pindiproli \[21\]; as
//! in the paper, "vertex numbers induce the required orientation". This
//! module implements the canonical such algorithm:
//!
//! 1. Orient every edge from the lower to the higher endpoint. Splitting
//!    each vertex's (≤ 2) out-edges by head rank yields two rooted forests
//!    `F1`, `F2` that together cover every edge.
//! 2. Run Cole–Vishkin deterministic coin tossing on each forest —
//!    `O(log* n)` synchronous rounds reduce the initial id-coloring to ≤ 6
//!    colors per forest, giving a ≤ 36-color product coloring proper on all
//!    of `G_L`.
//! 3. Collapse to 3 colors class by class (a free color in `{0,1,2}` always
//!    exists at degree ≤ 2), then harvest the MIS color class by color
//!    class — a constant number of parallel rounds in total.
//!
//! No randomness anywhere: the speed of MIS-Deg2 on low-degree-heavy graphs
//! (lp1's 10.5× CPU speedup) comes from replacing Luby's O(log n) random
//! rounds with this O(log* n) deterministic schedule.

use super::status::{IN, OUT, UNDECIDED};
use super::undecided_participants;
use crate::common::FrontierMode;
use rayon::prelude::*;
use sb_graph::csr::{Graph, VertexId, INVALID};
use sb_graph::view::EdgeView;
use sb_par::atomic::as_atomic_u8;
use sb_par::counters::Counters;
use std::sync::atomic::{AtomicU8, Ordering};

/// One Cole–Vishkin step: the code of the lowest bit where `c` differs from
/// the parent's color `cp` (roots pass `cp = c ^ 1`).
#[inline]
fn cv_step(c: u32, cp: u32) -> u32 {
    let k = (c ^ cp).trailing_zeros();
    (k << 1) | ((c >> k) & 1)
}

/// Decide every undecided vertex passing `allowed` so the IN vertices form
/// an MIS of the subgraph of `g` induced by them.
///
/// Requires every participating vertex to have at most 2 participating
/// neighbors (the `G_L` guarantee of the DEG2 decomposition); panics in
/// debug builds otherwise.
pub fn oriented_mis_extend(
    g: &Graph,
    view: EdgeView<'_>,
    status: &mut [u8],
    allowed: Option<&[bool]>,
    counters: &Counters,
) {
    oriented_mis_extend_opts(g, view, status, allowed, counters, FrontierMode::default());
}

/// [`oriented_mis_extend`] with an explicit live-set representation. The
/// algorithm has no round-over-round frontier (the participant set is fixed
/// at entry), so the mode only selects how the participant *membership
/// mask* is held: `Dense`/`Compact` use the byte array, `Bitset` packs it
/// into u64 words probed with shift-and-mask. Outputs are identical — the
/// mask answers exactly the same membership queries either way.
pub fn oriented_mis_extend_opts(
    g: &Graph,
    view: EdgeView<'_>,
    status: &mut [u8],
    allowed: Option<&[bool]>,
    counters: &Counters,
    mode: FrontierMode,
) {
    let n = g.num_vertices();
    assert_eq!(status.len(), n);
    let parts: Vec<VertexId> = undecided_participants(status, allowed);
    if parts.is_empty() {
        return;
    }
    match mode {
        FrontierMode::Dense | FrontierMode::Compact => {
            let active: Vec<bool> = {
                let mut a = vec![false; n];
                for &v in &parts {
                    a[v as usize] = true;
                }
                a
            };
            oriented_mis_impl(g, view, status, counters, &parts, |w| active[w]);
        }
        FrontierMode::Bitset => {
            let words: Vec<u64> = {
                let mut w = vec![0u64; n.div_ceil(64)];
                for &v in &parts {
                    w[v as usize / 64] |= 1u64 << (v % 64);
                }
                w
            };
            oriented_mis_impl(g, view, status, counters, &parts, |w| {
                words[w / 64] >> (w % 64) & 1 == 1
            });
        }
    }
}

fn oriented_mis_impl<A: Fn(usize) -> bool + Sync>(
    g: &Graph,
    view: EdgeView<'_>,
    status: &mut [u8],
    counters: &Counters,
    parts: &[VertexId],
    active: A,
) {
    let n = g.num_vertices();
    // Step 1: id-orientation → two forests. parent1 = smaller out-neighbor,
    // parent2 = larger out-neighbor (out-neighbor = active neighbor with a
    // larger id). Parents have strictly larger ids → both relations are
    // acyclic, i.e. rooted forests.
    let parent_pairs: Vec<(u32, u32)> = parts
        .par_iter()
        .map(|&v| {
            counters.add_edges(g.degree(v) as u64);
            let mut outs = [INVALID; 2];
            let mut cnt = 0;
            let mut deg_active = 0;
            for (w, _) in view.arcs(g, v) {
                if active(w as usize) {
                    deg_active += 1;
                    if w > v {
                        debug_assert!(cnt < 2, "degree > 2 among participants at {v}");
                        if cnt < 2 {
                            outs[cnt] = w;
                            cnt += 1;
                        }
                    }
                }
            }
            debug_assert!(deg_active <= 2, "degree > 2 among participants at {v}");
            let _ = deg_active;
            if cnt == 2 && outs[0] > outs[1] {
                outs.swap(0, 1);
            }
            (outs[0], outs[1])
        })
        .collect();
    // Dense index of each participant for the color arrays.
    let mut dense = vec![u32::MAX; n];
    for (i, &v) in parts.iter().enumerate() {
        dense[v as usize] = i as u32;
    }

    // Step 2: Cole–Vishkin on both forests simultaneously.
    let mut c1: Vec<u32> = parts.to_vec();
    let mut c2: Vec<u32> = parts.to_vec();
    loop {
        let max1 = c1.par_iter().copied().max().unwrap();
        let max2 = c2.par_iter().copied().max().unwrap();
        if max1 < 6 && max2 < 6 {
            break;
        }
        let scope = counters.round_scope(parts.len() as u64);
        counters.add_rounds(1);
        counters.add_work(parts.len() as u64);
        let step = |colors: &Vec<u32>, which: usize| -> Vec<u32> {
            parts
                .par_iter()
                .enumerate()
                .map(|(i, _)| {
                    let p = if which == 0 {
                        parent_pairs[i].0
                    } else {
                        parent_pairs[i].1
                    };
                    let c = colors[i];
                    let cp = if p == INVALID {
                        c ^ 1
                    } else {
                        colors[dense[p as usize] as usize]
                    };
                    cv_step(c, cp)
                })
                .collect()
        };
        if max1 >= 6 {
            c1 = step(&c1, 0);
        }
        if max2 >= 6 {
            c2 = step(&c2, 1);
        }
        // Color-reduction rounds decide nothing; they only shrink the
        // palette.
        counters.finish_round(scope, || 0);
    }

    // Product coloring, proper on every participating edge.
    let mut color: Vec<u32> = c1.iter().zip(&c2).map(|(&a, &b)| a * 6 + b).collect();

    // Bucket participants by product color once, so the class-by-class
    // passes below touch each vertex O(1) times in total instead of
    // sweeping all participants per class.
    let buckets: Vec<Vec<u32>> = {
        let mut b: Vec<Vec<u32>> = vec![Vec::new(); 36];
        for (i, _) in parts.iter().enumerate() {
            b[color[i] as usize].push(i as u32);
        }
        b
    };

    // Step 3a: collapse 36 → 3 colors, one class at a time. Class members
    // are pairwise non-adjacent, so each pass is safely parallel.
    for bucket in buckets.iter().skip(3) {
        let scope = counters.round_scope(bucket.len() as u64);
        counters.add_rounds(1);
        let updates: Vec<(u32, u32)> = bucket
            .par_iter()
            .map(|&i| {
                let v = parts[i as usize];
                let mut used = [false; 3];
                for (w, _) in view.arcs(g, v) {
                    if active(w as usize) {
                        let cw = color[dense[w as usize] as usize];
                        if cw < 3 {
                            used[cw as usize] = true;
                        }
                    }
                }
                let free = used.iter().position(|&u| !u).expect("degree ≤ 2") as u32;
                (i, free)
            })
            .collect();
        for (i, c) in updates {
            color[i as usize] = c;
        }
        counters.finish_round(scope, || 0);
    }
    // Re-bucket into the final three classes.
    let classes: Vec<Vec<u32>> = {
        let mut b: Vec<Vec<u32>> = vec![Vec::new(); 3];
        for (i, _) in parts.iter().enumerate() {
            b[color[i] as usize].push(i as u32);
        }
        b
    };

    // Step 3b: harvest the MIS from the 3-coloring. Joining members
    // immediately exclude their active neighbors, so each class pass is
    // O(class size).
    {
        let st = as_atomic_u8(status);
        let undecided = |st: &[AtomicU8]| {
            parts
                .iter()
                .filter(|&&v| st[v as usize].load(Ordering::Relaxed) == UNDECIDED)
                .count() as u64
        };
        for class in classes {
            let live = if counters.tracing() { undecided(st) } else { 0 };
            let scope = counters.round_scope(live);
            counters.add_rounds(1);
            class.par_iter().for_each(|&i| {
                let v = parts[i as usize];
                if st[v as usize].load(Ordering::Relaxed) != UNDECIDED {
                    return;
                }
                // Join unless a neighbor already joined (any IN neighbor in
                // this graph blocks, whether or not it participates here).
                let blocked = view
                    .arcs(g, v)
                    .any(|(w, _)| st[w as usize].load(Ordering::Relaxed) == IN);
                if blocked {
                    st[v as usize].store(OUT, Ordering::Relaxed);
                    return;
                }
                st[v as usize].store(IN, Ordering::Relaxed);
                // Exclude active undecided neighbors (idempotent stores).
                for (w, _) in view.arcs(g, v) {
                    if active(w as usize) && st[w as usize].load(Ordering::Relaxed) == UNDECIDED {
                        st[w as usize].store(OUT, Ordering::Relaxed);
                    }
                }
            });
            counters.finish_round(scope, || live.saturating_sub(undecided(st)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_maximal_independent_set;
    use sb_graph::builder::from_edge_list;
    use sb_graph::csr::Graph;

    fn solve(g: &Graph) -> Vec<bool> {
        let mut st = vec![UNDECIDED; g.num_vertices()];
        oriented_mis_extend(g, EdgeView::full(), &mut st, None, &Counters::new());
        assert!(st.iter().all(|&s| s != UNDECIDED), "all must be decided");
        st.iter().map(|&s| s == IN).collect()
    }

    #[test]
    fn long_path() {
        let n = 1000u32;
        let g = from_edge_list(
            n as usize,
            &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        );
        let mis = solve(&g);
        check_maximal_independent_set(&g, &mis).unwrap();
        // MIS of a path has ≥ ⌈n/3⌉ vertices.
        assert!(mis.iter().filter(|&&b| b).count() >= (n as usize).div_ceil(3));
    }

    #[test]
    fn cycles_even_and_odd() {
        for n in [3u32, 4, 5, 6, 7, 100, 101] {
            let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
            edges.push((n - 1, 0));
            let g = from_edge_list(n as usize, &edges);
            let mis = solve(&g);
            check_maximal_independent_set(&g, &mis).unwrap_or_else(|e| panic!("n = {n}: {e}"));
        }
    }

    #[test]
    fn union_of_paths_cycles_isolated() {
        // Path 0-1-2, cycle 3-4-5-3, isolated 6,7.
        let g = from_edge_list(8, &[(0, 1), (1, 2), (3, 4), (4, 5), (3, 5)]);
        let mis = solve(&g);
        check_maximal_independent_set(&g, &mis).unwrap();
        assert!(mis[6] && mis[7]);
    }

    #[test]
    fn adversarial_id_orders() {
        // Paths where ids zig-zag — the case that breaks naive single-forest
        // orientations.
        let g = from_edge_list(6, &[(5, 0), (0, 3), (3, 1), (1, 4), (4, 2)]);
        let mis = solve(&g);
        check_maximal_independent_set(&g, &mis).unwrap();
    }

    #[test]
    fn respects_mask_and_prior_status() {
        let g = from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut st = vec![UNDECIDED; 5];
        st[0] = IN;
        st[1] = OUT;
        let allowed = vec![true, true, true, true, false];
        oriented_mis_extend(
            &g,
            EdgeView::full(),
            &mut st,
            Some(&allowed),
            &Counters::new(),
        );
        assert_eq!(st[0], IN);
        assert_eq!(st[4], UNDECIDED, "masked vertex untouched");
        // {2,3}: one of them joins.
        assert_eq!(usize::from(st[2] == IN) + usize::from(st[3] == IN), 1);
    }

    #[test]
    fn random_degree_two_graphs() {
        // Random unions of paths/cycles with shuffled ids.
        use rand::{seq::SliceRandom, RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for trial in 0..10 {
            let n = 300usize;
            let mut ids: Vec<u32> = (0..n as u32).collect();
            ids.shuffle(&mut rng);
            let mut edges = Vec::new();
            let mut i = 0;
            while i + 1 < n {
                let len = 2 + rng.random_range(0..6);
                let seg = &ids[i..n.min(i + len)];
                for w in seg.windows(2) {
                    edges.push((w[0], w[1]));
                }
                if seg.len() > 2 && rng.random_bool(0.3) {
                    edges.push((seg[0], *seg.last().unwrap())); // close a cycle
                }
                i += len;
            }
            let g = from_edge_list(n, &edges);
            assert!(g.max_degree() <= 2);
            let mis = solve(&g);
            check_maximal_independent_set(&g, &mis)
                .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        }
    }

    #[test]
    fn deterministic() {
        let g = from_edge_list(50, &(0..49u32).map(|i| (i, i + 1)).collect::<Vec<_>>());
        assert_eq!(solve(&g), solve(&g));
    }
}
