//! Parallelized greedy MIS (Blelloch, Fineman, Shun) — ablation baseline.
//!
//! The sequential greedy MIS over a random vertex permutation is "parallel
//! on average": a vertex can decide as soon as every earlier-permutation
//! neighbor has decided. With *static* random priorities (one draw per run,
//! unlike Luby's per-round draws) this resolves in O(log² n) rounds and
//! returns exactly the sequential greedy answer for the permutation.

use super::status::{IN, OUT, UNDECIDED};
use rayon::prelude::*;
use sb_graph::csr::{Graph, VertexId};
use sb_par::atomic::as_atomic_u8;
use sb_par::counters::Counters;
use sb_par::rng::hash2;
use std::sync::atomic::Ordering;

/// Decide all undecided vertices of `g` with the greedy-permutation MIS.
pub fn greedy_mis(g: &Graph, status: &mut [u8], seed: u64, counters: &Counters) {
    let n = g.num_vertices();
    assert_eq!(status.len(), n);
    let prio = |v: VertexId| (hash2(seed, v as u64), v);
    let mut work: Vec<VertexId> = (0..n as u32)
        .filter(|&v| status[v as usize] == UNDECIDED)
        .collect();

    while !work.is_empty() {
        let round = counters.round_scope(work.len() as u64);
        let before = work.len();
        counters.add_rounds(1);
        counters.add_work(work.len() as u64);
        {
            let st = as_atomic_u8(status);
            // A vertex joins when it precedes every undecided neighbor in
            // the permutation (an IN neighbor blocks — see luby.rs).
            work.par_iter().for_each(|&v| {
                counters.add_edges(g.degree(v) as u64);
                let pv = prio(v);
                let mut first = true;
                for &w in g.neighbors(v) {
                    let sw = st[w as usize].load(Ordering::Relaxed);
                    if sw == IN || (sw == UNDECIDED && prio(w) < pv) {
                        first = false;
                        break;
                    }
                }
                if first {
                    st[v as usize].store(IN, Ordering::Relaxed);
                }
            });
            work.par_iter().for_each(|&v| {
                if st[v as usize].load(Ordering::Relaxed) != UNDECIDED {
                    return;
                }
                if g.neighbors(v)
                    .iter()
                    .any(|&w| st[w as usize].load(Ordering::Relaxed) == IN)
                {
                    st[v as usize].store(OUT, Ordering::Relaxed);
                }
            });
        }
        work.retain(|&v| status[v as usize] == UNDECIDED);
        counters.finish_round(round, || (before - work.len()) as u64);
    }
}

/// Sequential greedy MIS over the same permutation — the reference the
/// parallel form must reproduce exactly.
pub fn greedy_mis_sequential(g: &Graph, seed: u64) -> Vec<bool> {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| (hash2(seed, v as u64), v));
    let mut in_set = vec![false; n];
    let mut blocked = vec![false; n];
    for v in order {
        if !blocked[v as usize] {
            in_set[v as usize] = true;
            blocked[v as usize] = true;
            for &w in g.neighbors(v) {
                blocked[w as usize] = true;
            }
        }
    }
    in_set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_maximal_independent_set;
    use sb_graph::builder::from_edge_list;

    #[test]
    fn parallel_equals_sequential_greedy() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for trial in 0..8 {
            let n = 150 + trial * 40;
            let edges: Vec<(u32, u32)> = (0..n * 3)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = from_edge_list(n, &edges);
            let mut st = vec![UNDECIDED; n];
            greedy_mis(&g, &mut st, trial as u64, &Counters::new());
            let got: Vec<bool> = st.iter().map(|&s| s == IN).collect();
            let want = greedy_mis_sequential(&g, trial as u64);
            assert_eq!(got, want, "trial {trial}");
            check_maximal_independent_set(&g, &got).unwrap();
        }
    }

    #[test]
    fn clique_single_member() {
        let mut edges = Vec::new();
        for i in 0..10u32 {
            for j in i + 1..10 {
                edges.push((i, j));
            }
        }
        let g = from_edge_list(10, &edges);
        let mut st = vec![UNDECIDED; 10];
        greedy_mis(&g, &mut st, 5, &Counters::new());
        assert_eq!(st.iter().filter(|&&s| s == IN).count(), 1);
    }
}
