//! Algorithm LubyMIS — the classic algorithm of Luby (1986), as the paper
//! cites it ("uses randomization to break symmetry… at least half the
//! vertices eliminated per iteration").
//!
//! Each round: every undecided vertex *marks* itself with probability
//! `1/(2d)` (`d` = its degree in the residual graph; degree-0 vertices join
//! outright); for every edge with both endpoints marked, the endpoint of
//! smaller `(degree, id)` unmarks; surviving marks join the set and their
//! neighbors drop out. Expected O(log n) rounds, with distinctly larger
//! constants than the modern local-minimum variant — this round count is
//! the cost the MIS composites attack.
//!
//! Both [`luby_extend`] forms are *full-sweep* over the graph being
//! solved, as in the era's published implementations: the participant list
//! is fixed once at entry (the vertex set of the — possibly reduced —
//! graph, e.g. Algorithm 11's "reduced graph R"), and every round sweeps
//! that whole list, skipping decided vertices with an O(1) status check,
//! until a counting pass finds no undecided participant. There is no
//! per-round worklist compaction.
//! [`luby_extend_compacted`] is the modern optimization of the problem
//! (worklist compaction + local-minimum selection), kept as an ablation —
//! it is strictly stronger than the published baselines.

use super::status::{IN, OUT, UNDECIDED};
use super::undecided_participants;
use rayon::prelude::*;
use sb_graph::csr::{Graph, VertexId};
use sb_graph::view::EdgeView;
use sb_par::atomic::as_atomic_u8;
use sb_par::bsp::BspExecutor;
use sb_par::counters::Counters;
use sb_par::frontier::{ActiveSet, BitFrontier, Frontier, MarkSet, Scratch};
use sb_par::rng::hash3;
use std::sync::atomic::Ordering;

/// Decide every undecided vertex passing `allowed` (IN or OUT) so that the
/// IN vertices form an MIS of the subgraph of `g` induced by those vertices
/// and the edges of `view`. Full-sweep rounds (see module docs).
pub fn luby_extend(
    g: &Graph,
    view: EdgeView<'_>,
    status: &mut [u8],
    allowed: Option<&[bool]>,
    seed: u64,
    counters: &Counters,
) {
    let n = g.num_vertices();
    assert_eq!(status.len(), n);
    let allow = |v: usize| allowed.is_none_or(|a| a[v]);
    // The vertex set of the (sub)graph being solved, fixed at entry.
    let participants: Vec<VertexId> = undecided_participants(status, allowed);
    // Residual degree and mark flag, refreshed each round.
    let mut degree = vec![0u32; n];
    let mut marked = vec![0u8; n];
    let mut round = 0u64;
    let mut undecided = participants.len();

    while !participants.is_empty() {
        round += 1;
        let scope = counters.round_scope(undecided as u64);
        counters.add_rounds(1);
        counters.add_work(3 * participants.len() as u64);
        let remaining;
        {
            let st = as_atomic_u8(status);
            let deg_at = sb_par::atomic::as_atomic_u32(&mut degree);
            let mk = as_atomic_u8(&mut marked);

            // Sweep 1: residual degree + probabilistic marking.
            participants.par_iter().for_each(|&v| {
                if st[v as usize].load(Ordering::Relaxed) != UNDECIDED {
                    mk[v as usize].store(0, Ordering::Relaxed);
                    return;
                }
                counters.add_edges(g.degree(v) as u64);
                let mut d = 0u32;
                for (w, _) in view.arcs(g, v) {
                    if st[w as usize].load(Ordering::Relaxed) == UNDECIDED && allow(w as usize) {
                        d += 1;
                    }
                }
                deg_at[v as usize].store(d, Ordering::Relaxed);
                let m = if d == 0 {
                    1 // isolated in the residual graph: always a candidate
                } else {
                    // Mark with probability 1/(2d).
                    u8::from(hash3(seed, round, v as u64) < u64::MAX / (2 * d as u64))
                };
                mk[v as usize].store(m, Ordering::Relaxed);
            });

            // Sweep 2: resolve marked conflicts — the endpoint of smaller
            // (residual degree, id) unmarks, so the survivors are the local
            // maxima among the marked and hence independent.
            let survives = |v: u32| -> bool {
                if mk[v as usize].load(Ordering::Relaxed) == 0 {
                    return false;
                }
                let dv = (deg_at[v as usize].load(Ordering::Relaxed), v);
                for (w, _) in view.arcs(g, v) {
                    let sw = st[w as usize].load(Ordering::Relaxed);
                    // A neighbor that already turned IN this round blocks
                    // (it was a marked competitor we may have missed).
                    if sw == IN
                        || (sw == UNDECIDED
                            && allow(w as usize)
                            && mk[w as usize].load(Ordering::Relaxed) == 1
                            && (deg_at[w as usize].load(Ordering::Relaxed), w) > dv)
                    {
                        return false;
                    }
                }
                true
            };
            participants.par_iter().for_each(|&v| {
                if st[v as usize].load(Ordering::Relaxed) != UNDECIDED {
                    return;
                }
                counters.add_edges(deg_at[v as usize].load(Ordering::Relaxed) as u64);
                if survives(v) {
                    st[v as usize].store(IN, Ordering::Relaxed);
                }
            });

            // Sweep 3: neighbors of fresh IN vertices drop out; count what
            // is still undecided for the termination test.
            remaining = participants
                .par_iter()
                .filter(|&&v| {
                    if st[v as usize].load(Ordering::Relaxed) != UNDECIDED {
                        return false;
                    }
                    for (w, _) in view.arcs(g, v) {
                        if st[w as usize].load(Ordering::Relaxed) == IN {
                            st[v as usize].store(OUT, Ordering::Relaxed);
                            return false;
                        }
                    }
                    true
                })
                .count();
        }
        counters.finish_round(scope, || (undecided - remaining) as u64);
        undecided = remaining;
        if remaining == 0 {
            break;
        }
    }
}

/// Flat bulk-synchronous form of [`luby_extend`] for the GPU-sim executor:
/// the same full-sweep rounds as three device-wide kernels.
pub fn luby_extend_bsp(
    g: &Graph,
    view: EdgeView<'_>,
    status: &mut [u8],
    allowed: Option<&[bool]>,
    seed: u64,
    exec: &BspExecutor,
) {
    let n = g.num_vertices();
    assert_eq!(status.len(), n);
    let allow = |v: usize| allowed.is_none_or(|a| a[v]);
    let participants: Vec<u32> = undecided_participants(status, allowed);
    let mut degree = vec![0u32; n];
    let mut marked = vec![0u8; n];
    let mut round = 0u64;
    let mut undecided = participants.len();
    let counters = exec.counters();

    while !participants.is_empty() {
        round += 1;
        let scope = counters.round_scope(undecided as u64);
        {
            let st = as_atomic_u8(status);
            let deg_at = sb_par::atomic::as_atomic_u32(&mut degree);
            let mk = as_atomic_u8(&mut marked);

            // Kernel 1: residual degree + probabilistic marking.
            exec.kernel_over(&participants, |v| {
                let vi = v as usize;
                if st[vi].load(Ordering::Relaxed) != UNDECIDED {
                    mk[vi].store(0, Ordering::Relaxed);
                    return;
                }
                exec.counters().add_edges(g.degree(v) as u64);
                let mut d = 0u32;
                for (w, _) in view.arcs(g, v) {
                    if st[w as usize].load(Ordering::Relaxed) == UNDECIDED && allow(w as usize) {
                        d += 1;
                    }
                }
                deg_at[vi].store(d, Ordering::Relaxed);
                let m = if d == 0 {
                    1
                } else {
                    u8::from(hash3(seed, round, v as u64) < u64::MAX / (2 * d as u64))
                };
                mk[vi].store(m, Ordering::Relaxed);
            });

            // Kernel 2: conflict resolution — local maxima among the marked
            // (by residual degree, then id) join the set.
            exec.kernel_over(&participants, |v| {
                let vi = v as usize;
                if st[vi].load(Ordering::Relaxed) != UNDECIDED
                    || mk[vi].load(Ordering::Relaxed) == 0
                {
                    return;
                }
                exec.counters()
                    .add_edges(deg_at[vi].load(Ordering::Relaxed) as u64);
                let dv = (deg_at[vi].load(Ordering::Relaxed), v);
                let beaten = view.arcs(g, v).any(|(w, _)| {
                    let sw = st[w as usize].load(Ordering::Relaxed);
                    sw == IN
                        || (sw == UNDECIDED
                            && allow(w as usize)
                            && mk[w as usize].load(Ordering::Relaxed) == 1
                            && (deg_at[w as usize].load(Ordering::Relaxed), w) > dv)
                });
                if !beaten {
                    st[vi].store(IN, Ordering::Relaxed);
                }
            });

            // Kernel 3: exclusion.
            exec.kernel_over(&participants, |v| {
                let vi = v as usize;
                if st[vi].load(Ordering::Relaxed) != UNDECIDED {
                    return;
                }
                exec.counters().add_edges(g.degree(v) as u64);
                if view
                    .arcs(g, v)
                    .any(|(w, _)| st[w as usize].load(Ordering::Relaxed) == IN)
                {
                    st[vi].store(OUT, Ordering::Relaxed);
                }
            });
        }

        // Kernel 4: termination count over the participant list.
        let remaining = {
            let st: &[u8] = status;
            exec.counters().add_kernel(participants.len() as u64);
            participants
                .iter()
                .filter(|&&v| st[v as usize] == UNDECIDED)
                .count()
        };
        exec.end_round();
        counters.finish_round(scope, || (undecided - remaining) as u64);
        undecided = remaining;
        if remaining == 0 {
            break;
        }
    }
}

/// Frontier form of [`luby_extend`]: identical marking/conflict/exclusion
/// rounds, but the live set is kept as a compacted worklist
/// (`sb_par::frontier`) instead of re-sweeping the full participant list,
/// and the per-call `degree`/`marked` arrays are borrowed from `scratch`.
///
/// Byte-identical to [`luby_extend`] for any seed and thread count: the
/// frontier holds exactly the undecided participants at every round start
/// (a vertex that leaves `UNDECIDED` never returns), and every read of
/// `marked`/`degree` in the dense form is guarded by an `UNDECIDED` status
/// check, so the stale entries of decided vertices are never consulted.
/// `hash3(seed, round, v)` uses the same round numbering. Only the counters
/// differ: each round charges the live set, not the whole participant list.
///
/// Beyond skipping decided vertices, this form scans strictly fewer arcs:
/// conflict resolution compacts down to the *marked* candidates (an
/// unmarked vertex can never join, and the dense form's `survives` bails
/// before touching its arcs), and exclusion runs as a scatter from the
/// round's winners rather than a gather over every live vertex. The
/// scatter is valid from round 2 on — a live vertex can only have acquired
/// an IN neighbor through this round's winners, because the previous
/// round's exclusion cleared all others. Round 1 gathers, so IN vertices
/// decided by *earlier* extend calls (outside `allowed`) still exclude
/// their neighbors exactly as in the dense form.
pub fn luby_extend_frontier(
    g: &Graph,
    view: EdgeView<'_>,
    status: &mut [u8],
    allowed: Option<&[bool]>,
    seed: u64,
    counters: &Counters,
    scratch: &mut Scratch,
) {
    luby_extend_frontier_impl::<Frontier>(g, view, status, allowed, seed, counters, scratch);
}

/// Bitset form of [`luby_extend_frontier`]: the same monomorphized round
/// loop instantiated with [`BitFrontier`], so the live set is u64 words,
/// the marked-candidate selection is a word-level AND (`select_marked_into`
/// with one-bit-per-vertex marks), and compaction emits word-index runs.
/// Byte-identical to the worklist form: both iterate members in increasing
/// vertex order wherever order matters.
pub fn luby_extend_bitset(
    g: &Graph,
    view: EdgeView<'_>,
    status: &mut [u8],
    allowed: Option<&[bool]>,
    seed: u64,
    counters: &Counters,
    scratch: &mut Scratch,
) {
    luby_extend_frontier_impl::<BitFrontier>(g, view, status, allowed, seed, counters, scratch);
}

fn luby_extend_frontier_impl<W: ActiveSet>(
    g: &Graph,
    view: EdgeView<'_>,
    status: &mut [u8],
    allowed: Option<&[bool]>,
    seed: u64,
    counters: &Counters,
    scratch: &mut Scratch,
) {
    let n = g.num_vertices();
    assert_eq!(status.len(), n);
    let allow = |v: usize| allowed.is_none_or(|a| a[v]);
    let mut work = W::take(scratch);
    work.reset_range(n, |v| status[v as usize] == UNDECIDED && allow(v as usize));
    let mut degree = scratch.take_u32(n, 0);
    let marked = W::take_marks(scratch, n, false);
    // Compacted marked-candidate / winner sets, reused across rounds.
    let mut cand = W::take(scratch);
    let mut winners = W::take(scratch);
    let mut round = 0u64;

    while !work.is_empty() {
        round += 1;
        let live = work.len();
        let scope = counters.round_scope(live as u64);
        counters.add_rounds(1);
        counters.add_work(3 * live as u64);
        {
            let st = as_atomic_u8(status);
            let deg_at = sb_par::atomic::as_atomic_u32(&mut degree);
            let mk = &marked;

            // Sweep 1: residual degree + probabilistic marking. Every live
            // vertex is undecided by the frontier invariant, so the dense
            // form's status check is vacuous here.
            work.for_each(|v| {
                counters.add_edges(g.degree(v) as u64);
                let mut d = 0u32;
                for (w, _) in view.arcs(g, v) {
                    if st[w as usize].load(Ordering::Relaxed) == UNDECIDED && allow(w as usize) {
                        d += 1;
                    }
                }
                deg_at[v as usize].store(d, Ordering::Relaxed);
                let m = d == 0 // isolated in the residual graph: always a candidate
                    || hash3(seed, round, v as u64) < u64::MAX / (2 * d.max(1) as u64);
                mk.put(v, m);
            });

            // Sweep 2: conflict resolution over the marked candidates only.
            // An unmarked vertex can never join, so the selection skips both
            // its closure invocation and its residual-degree charge. In
            // bitset mode this is live ∩ marked as one AND per word.
            work.select_marked_into(mk, &mut cand);
            cand.for_each(|v| {
                counters.add_edges(deg_at[v as usize].load(Ordering::Relaxed) as u64);
                let dv = (deg_at[v as usize].load(Ordering::Relaxed), v);
                let beaten = view.arcs(g, v).any(|(w, _)| {
                    let sw = st[w as usize].load(Ordering::Relaxed);
                    sw == IN
                        || (sw == UNDECIDED
                            && allow(w as usize)
                            && mk.get(w)
                            && (deg_at[w as usize].load(Ordering::Relaxed), w) > dv)
                });
                if !beaten {
                    st[v as usize].store(IN, Ordering::Relaxed);
                }
            });

            // Sweep 3: exclusion. Round 1 gathers over the live set so IN
            // vertices left by earlier extend calls still exclude their
            // neighbors; later rounds scatter from this round's winners —
            // the only possible source of new IN neighbors.
            if round == 1 {
                work.for_each(|v| {
                    if st[v as usize].load(Ordering::Relaxed) != UNDECIDED {
                        return;
                    }
                    if view
                        .arcs(g, v)
                        .any(|(w, _)| st[w as usize].load(Ordering::Relaxed) == IN)
                    {
                        st[v as usize].store(OUT, Ordering::Relaxed);
                    }
                });
            } else {
                cand.select_into(
                    |v| st[v as usize].load(Ordering::Relaxed) == IN,
                    &mut winners,
                );
                winners.for_each(|u| {
                    counters.add_edges(g.degree(u) as u64);
                    for (w, _) in view.arcs(g, u) {
                        if st[w as usize].load(Ordering::Relaxed) == UNDECIDED && allow(w as usize)
                        {
                            st[w as usize].store(OUT, Ordering::Relaxed);
                        }
                    }
                });
            }
        }
        let st_now: &[u8] = status;
        work.retain(|v| st_now[v as usize] == UNDECIDED);
        counters.finish_round(scope, || (live - work.len()) as u64);
    }
    scratch.recycle_u32(degree);
    W::recycle_marks(marked, scratch);
    winners.recycle(scratch);
    cand.recycle(scratch);
    work.recycle(scratch);
}

/// Frontier form of [`luby_extend_bsp`]: the same per-round kernels,
/// launched over the compacted live worklist, with the dense
/// termination-count kernel replaced by the compaction pass. Byte-identical
/// outputs to [`luby_extend_bsp`] (same argument as
/// [`luby_extend_frontier`]); kernel launch counts match the dense form
/// (four per round), but conflict resolution launches over the marked
/// candidates and exclusion scatters from the round's winners (round 1
/// gathers, as in [`luby_extend_frontier`]).
pub fn luby_extend_bsp_frontier(
    g: &Graph,
    view: EdgeView<'_>,
    status: &mut [u8],
    allowed: Option<&[bool]>,
    seed: u64,
    exec: &BspExecutor,
    scratch: &mut Scratch,
) {
    luby_extend_bsp_frontier_impl::<Frontier>(g, view, status, allowed, seed, exec, scratch);
}

/// Bitset form of [`luby_extend_bsp_frontier`] (the [`BitFrontier`]
/// instantiation); see [`luby_extend_bitset`] for the representation.
pub fn luby_extend_bsp_bitset(
    g: &Graph,
    view: EdgeView<'_>,
    status: &mut [u8],
    allowed: Option<&[bool]>,
    seed: u64,
    exec: &BspExecutor,
    scratch: &mut Scratch,
) {
    luby_extend_bsp_frontier_impl::<BitFrontier>(g, view, status, allowed, seed, exec, scratch);
}

fn luby_extend_bsp_frontier_impl<W: ActiveSet>(
    g: &Graph,
    view: EdgeView<'_>,
    status: &mut [u8],
    allowed: Option<&[bool]>,
    seed: u64,
    exec: &BspExecutor,
    scratch: &mut Scratch,
) {
    let n = g.num_vertices();
    assert_eq!(status.len(), n);
    let allow = |v: usize| allowed.is_none_or(|a| a[v]);
    let mut work = W::take(scratch);
    work.reset_range(n, |v| status[v as usize] == UNDECIDED && allow(v as usize));
    let mut degree = scratch.take_u32(n, 0);
    let marked = W::take_marks(scratch, n, false);
    let mut cand = W::take(scratch);
    let mut winners = W::take(scratch);
    let mut round = 0u64;
    let counters = exec.counters();

    while !work.is_empty() {
        round += 1;
        let live = work.len();
        let scope = counters.round_scope(live as u64);
        {
            let st = as_atomic_u8(status);
            let deg_at = sb_par::atomic::as_atomic_u32(&mut degree);
            let mk = &marked;

            // Kernel 1: residual degree + probabilistic marking.
            exec.kernel_over_set(&work, |v| {
                let vi = v as usize;
                exec.counters().add_edges(g.degree(v) as u64);
                let mut d = 0u32;
                for (w, _) in view.arcs(g, v) {
                    if st[w as usize].load(Ordering::Relaxed) == UNDECIDED && allow(w as usize) {
                        d += 1;
                    }
                }
                deg_at[vi].store(d, Ordering::Relaxed);
                let m = d == 0 || hash3(seed, round, v as u64) < u64::MAX / (2 * d.max(1) as u64);
                mk.put(v, m);
            });

            // Kernel 2: conflict resolution, launched over the marked
            // candidates only (an unmarked vertex can never join).
            work.select_marked_into(mk, &mut cand);
            exec.kernel_over_set(&cand, |v| {
                let vi = v as usize;
                exec.counters()
                    .add_edges(deg_at[vi].load(Ordering::Relaxed) as u64);
                let dv = (deg_at[vi].load(Ordering::Relaxed), v);
                let beaten = view.arcs(g, v).any(|(w, _)| {
                    let sw = st[w as usize].load(Ordering::Relaxed);
                    sw == IN
                        || (sw == UNDECIDED
                            && allow(w as usize)
                            && mk.get(w)
                            && (deg_at[w as usize].load(Ordering::Relaxed), w) > dv)
                });
                if !beaten {
                    st[vi].store(IN, Ordering::Relaxed);
                }
            });

            // Kernel 3: exclusion — round 1 gathers (stale IN vertices from
            // earlier extend calls exclude too), later rounds scatter from
            // the winners.
            if round == 1 {
                exec.kernel_over_set(&work, |v| {
                    let vi = v as usize;
                    if st[vi].load(Ordering::Relaxed) != UNDECIDED {
                        return;
                    }
                    exec.counters().add_edges(g.degree(v) as u64);
                    if view
                        .arcs(g, v)
                        .any(|(w, _)| st[w as usize].load(Ordering::Relaxed) == IN)
                    {
                        st[vi].store(OUT, Ordering::Relaxed);
                    }
                });
            } else {
                cand.select_into(
                    |v| st[v as usize].load(Ordering::Relaxed) == IN,
                    &mut winners,
                );
                exec.kernel_over_set(&winners, |u| {
                    exec.counters().add_edges(g.degree(u) as u64);
                    for (w, _) in view.arcs(g, u) {
                        if st[w as usize].load(Ordering::Relaxed) == UNDECIDED && allow(w as usize)
                        {
                            st[w as usize].store(OUT, Ordering::Relaxed);
                        }
                    }
                });
            }
        }

        // Kernel 4: frontier compaction — takes the place of the dense
        // form's termination-count kernel.
        exec.counters().add_kernel(live as u64);
        let st_now: &[u8] = status;
        work.retain(|v| st_now[v as usize] == UNDECIDED);
        exec.end_round();
        counters.finish_round(scope, || (live - work.len()) as u64);
    }
    scratch.recycle_u32(degree);
    W::recycle_marks(marked, scratch);
    winners.recycle(scratch);
    cand.recycle(scratch);
    work.recycle(scratch);
}

/// Worklist-compacted Luby — the modern optimization of the same algorithm,
/// kept as an ablation: every round touches only still-undecided vertices.
/// The reproduction's baselines do NOT use this (see module docs).
pub fn luby_extend_compacted(
    g: &Graph,
    view: EdgeView<'_>,
    status: &mut [u8],
    allowed: Option<&[bool]>,
    seed: u64,
    counters: &Counters,
) {
    let n = g.num_vertices();
    assert_eq!(status.len(), n);
    let allow = |v: usize| allowed.is_none_or(|a| a[v]);
    let mut work: Vec<VertexId> = undecided_participants(status, allowed);
    let mut round = 0u64;

    while !work.is_empty() {
        round += 1;
        let scope = counters.round_scope(work.len() as u64);
        let before = work.len();
        counters.add_rounds(1);
        counters.add_work(work.len() as u64);
        {
            let st = as_atomic_u8(status);
            let prio = |v: VertexId| (hash3(seed, round, v as u64), v);
            work.par_iter().for_each(|&v| {
                counters.add_edges(g.degree(v) as u64);
                let pv = prio(v);
                let mut is_min = true;
                for (w, _) in view.arcs(g, v) {
                    let sw = st[w as usize].load(Ordering::Relaxed);
                    if sw == IN || (sw == UNDECIDED && allow(w as usize) && prio(w) < pv) {
                        is_min = false;
                        break;
                    }
                }
                if is_min {
                    st[v as usize].store(IN, Ordering::Relaxed);
                }
            });
            work.par_iter().for_each(|&v| {
                if st[v as usize].load(Ordering::Relaxed) != UNDECIDED {
                    return;
                }
                if view
                    .arcs(g, v)
                    .any(|(w, _)| st[w as usize].load(Ordering::Relaxed) == IN)
                {
                    st[v as usize].store(OUT, Ordering::Relaxed);
                }
            });
        }
        work.retain(|&v| status[v as usize] == UNDECIDED);
        counters.finish_round(scope, || (before - work.len()) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_maximal_independent_set;
    use sb_graph::builder::from_edge_list;

    fn in_set_of(status: &[u8]) -> Vec<bool> {
        status.iter().map(|&s| s == IN).collect()
    }

    #[test]
    fn path_mis_valid() {
        let g = from_edge_list(20, &(0..19u32).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let mut st = vec![UNDECIDED; 20];
        luby_extend(&g, EdgeView::full(), &mut st, None, 3, &Counters::new());
        check_maximal_independent_set(&g, &in_set_of(&st)).unwrap();
        assert!(st.iter().all(|&s| s != UNDECIDED));
    }

    #[test]
    fn isolated_vertices_always_join() {
        let g = from_edge_list(5, &[(0, 1)]);
        let mut st = vec![UNDECIDED; 5];
        luby_extend(&g, EdgeView::full(), &mut st, None, 1, &Counters::new());
        assert_eq!(st[2], IN);
        assert_eq!(st[3], IN);
        assert_eq!(st[4], IN);
    }

    #[test]
    fn respects_allowed_mask() {
        let g = from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        let allowed = vec![false, true, true, false];
        let mut st = vec![UNDECIDED; 4];
        luby_extend(
            &g,
            EdgeView::full(),
            &mut st,
            Some(&allowed),
            2,
            &Counters::new(),
        );
        assert_eq!(st[0], UNDECIDED);
        assert_eq!(st[3], UNDECIDED);
        // Among {1, 2}: exactly one joins (they are adjacent).
        assert_eq!(usize::from(st[1] == IN) + usize::from(st[2] == IN), 1);
    }

    #[test]
    fn logarithmic_rounds_on_long_path() {
        let n: u32 = 2048;
        let g = from_edge_list(
            n as usize,
            &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        );
        let c = Counters::new();
        let mut st = vec![UNDECIDED; n as usize];
        luby_extend(&g, EdgeView::full(), &mut st, None, 5, &c);
        check_maximal_independent_set(&g, &in_set_of(&st)).unwrap();
        assert!(
            c.rounds() < 60,
            "Luby should finish fast, got {}",
            c.rounds()
        );
    }

    #[test]
    fn all_three_forms_valid_on_random_graphs() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for trial in 0..5 {
            let n = 200;
            let edges: Vec<(u32, u32)> = (0..600)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = from_edge_list(n, &edges);

            let mut st1 = vec![UNDECIDED; n];
            luby_extend(
                &g,
                EdgeView::full(),
                &mut st1,
                None,
                trial,
                &Counters::new(),
            );
            check_maximal_independent_set(&g, &in_set_of(&st1)).unwrap();

            let mut st2 = vec![UNDECIDED; n];
            luby_extend_bsp(
                &g,
                EdgeView::full(),
                &mut st2,
                None,
                trial,
                &BspExecutor::new(),
            );
            check_maximal_independent_set(&g, &in_set_of(&st2)).unwrap();

            let mut st3 = vec![UNDECIDED; n];
            luby_extend_compacted(
                &g,
                EdgeView::full(),
                &mut st3,
                None,
                trial,
                &Counters::new(),
            );
            check_maximal_independent_set(&g, &in_set_of(&st3)).unwrap();
        }
    }

    #[test]
    fn classic_needs_more_rounds_than_local_min() {
        // The published baseline's cost driver: classic 1/(2d) marking
        // converges in visibly more rounds than the modern local-minimum
        // rule on the same graph.
        let n = 4096u32;
        let g = from_edge_list(
            n as usize,
            &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        );
        let c_classic = Counters::new();
        let mut a = vec![UNDECIDED; n as usize];
        luby_extend(&g, EdgeView::full(), &mut a, None, 9, &c_classic);
        check_maximal_independent_set(&g, &in_set_of(&a)).unwrap();
        let c_modern = Counters::new();
        let mut b = vec![UNDECIDED; n as usize];
        luby_extend_compacted(&g, EdgeView::full(), &mut b, None, 9, &c_modern);
        check_maximal_independent_set(&g, &in_set_of(&b)).unwrap();
        assert!(
            c_classic.rounds() > c_modern.rounds(),
            "classic {} rounds vs local-min {}",
            c_classic.rounds(),
            c_modern.rounds()
        );
    }

    #[test]
    fn extends_partial_solution() {
        let g = from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut st = vec![UNDECIDED; 5];
        st[0] = IN;
        st[1] = OUT;
        luby_extend(&g, EdgeView::full(), &mut st, None, 9, &Counters::new());
        check_maximal_independent_set(&g, &in_set_of(&st)).unwrap();
        assert_eq!(st[0], IN, "pre-decided vertices untouched");
    }

    #[test]
    fn full_sweep_cost_reflects_whole_graph() {
        // The whole point: every round charges n work items even when only
        // a few vertices remain undecided.
        let g = from_edge_list(100, &(0..99u32).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let c = Counters::new();
        let mut st = vec![UNDECIDED; 100];
        luby_extend(&g, EdgeView::full(), &mut st, None, 4, &c);
        let s = c.snapshot();
        assert!(s.work_items >= 2 * 100 * s.rounds);
    }
}
