//! Maximal independent set (Section V of the paper).
//!
//! Baselines: [`luby`] (Algorithm LubyMIS — fresh random priorities each
//! round; worklist form for the CPU, flat-kernel form for the GPU-sim
//! executor) and [`greedy`] (the Blelloch et al. parallelized greedy with
//! static priorities, kept as an ablation).
//!
//! [`oriented`] implements the bounded-degree MIS used by MIS-Deg2 on the
//! degree-≤2 subgraph: deterministic Cole–Vishkin color reduction over the
//! vertex-id orientation (the documented substitute for Kothapalli &
//! Pindiproli \[21\]; the paper likewise uses "the vertex numbers to induce
//! the required orientation").
//!
//! Composites ([`decomp`]): MIS-Bridge, MIS-Rand, MIS-Deg2 (Algorithms
//! 10–12), including the paper's sparser-side-first ordering heuristic.

pub mod decomp;
pub mod greedy;
pub mod luby;
pub mod oriented;

use crate::common::{Arch, RunStats, SolveOpts};
use sb_graph::csr::Graph;

/// Shared live-set scan for the MIS solvers: the undecided vertices passing
/// `allowed`, as an order-stable compacted worklist. Every solver in this
/// family fixes its participant set with exactly this predicate; keeping the
/// scan in one place pins them to the same compaction primitive.
pub(crate) fn undecided_participants(status: &[u8], allowed: Option<&[bool]>) -> Vec<u32> {
    sb_par::frontier::compact_range(status.len(), |v| {
        status[v as usize] == status::UNDECIDED && allowed.is_none_or(|a| a[v as usize])
    })
}

/// Vertex status during MIS construction.
pub mod status {
    /// Not yet decided.
    pub const UNDECIDED: u8 = 0;
    /// In the independent set.
    pub const IN: u8 = 1;
    /// Excluded (has a neighbor in the set).
    pub const OUT: u8 = 2;
}

/// Which MIS algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisAlgorithm {
    /// LubyMIS on the whole graph (the paper's baseline on both archs).
    Baseline,
    /// MIS-Bridge (Algorithm 10).
    Bridge,
    /// MIS-Rand (Algorithm 11) with the given partition count.
    Rand {
        /// Number of RAND partitions.
        partitions: usize,
    },
    /// MIS-Degk (Algorithm 12; the paper uses k = 2). For k ≤ 2 the low
    /// subgraph is solved with the oriented bounded-degree algorithm,
    /// otherwise with Luby.
    Degk {
        /// Degree threshold.
        k: usize,
    },
    /// MIS-Bicc (extension): solve the block interiors (non-articulation
    /// vertices) first, then extend. Not part of the paper's evaluated set.
    Bicc,
}

/// Result of an MIS run.
#[derive(Debug, Clone)]
pub struct MisRun {
    /// Membership flags.
    pub in_set: Vec<bool>,
    /// Timing and counters.
    pub stats: RunStats,
}

impl MisRun {
    /// Number of vertices in the independent set.
    pub fn size(&self) -> usize {
        self.in_set.iter().filter(|&&b| b).count()
    }
}

/// Run an MIS algorithm on `g`.
pub fn maximal_independent_set(g: &Graph, algo: MisAlgorithm, arch: Arch, seed: u64) -> MisRun {
    maximal_independent_set_traced(g, algo, arch, seed, None)
}

/// [`maximal_independent_set`] reporting phase spans and round records into
/// `trace` when given (see `sb_trace`). Passing `None` — or a disabled sink
/// — is identical to the untraced entry point.
pub fn maximal_independent_set_traced(
    g: &Graph,
    algo: MisAlgorithm,
    arch: Arch,
    seed: u64,
    trace: Option<std::sync::Arc<sb_trace::TraceSink>>,
) -> MisRun {
    maximal_independent_set_opts(g, algo, arch, seed, &SolveOpts::traced(trace))
}

/// [`maximal_independent_set`] with full per-run options: trace sink and
/// frontier mode (dense full-sweep rounds vs compacted worklists — see
/// [`crate::common::FrontierMode`]).
pub fn maximal_independent_set_opts(
    g: &Graph,
    algo: MisAlgorithm,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
) -> MisRun {
    match algo {
        MisAlgorithm::Baseline => decomp::baseline_run_opts(g, arch, seed, opts),
        MisAlgorithm::Bridge => decomp::mis_bridge_opts(g, arch, seed, opts),
        MisAlgorithm::Rand { partitions } => decomp::mis_rand_opts(g, partitions, arch, seed, opts),
        MisAlgorithm::Degk { k } => decomp::mis_degk_opts(g, k, arch, seed, opts),
        MisAlgorithm::Bicc => decomp::mis_bicc_opts(g, arch, seed, opts),
    }
}
