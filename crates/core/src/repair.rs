//! Incremental solution repair for dynamic graphs.
//!
//! Given a base graph, an [`EditLog`], and a *valid, maximal* prior
//! solution for the base, each `repair_*` entry point produces a valid,
//! maximal solution for the *edited* graph by touching only the
//! neighborhood of the edits — never rebuilding the CSR (all structure
//! reads go through the zero-rebuild [`sb_graph::editlog::Overlay`]) and never re-running
//! the global round loops. This is the regime where greedy local
//! re-election is provably shallow (Blelloch–Fineman–Shun) and the
//! affected radius is bounded (Barenboim–Elkin–Pettie–Schneider): repair
//! cost scales with the edit batch, not the graph.
//!
//! Repairs are deterministic *sequential* passes in ascending vertex
//! order, so the result is byte-identical across thread counts,
//! frontier modes, and architectures — which is exactly what the
//! edit-sequence fuzz oracle pins. Each entry point threads through
//! [`SolveOpts`] like the static paths: work/edge counters accumulate
//! into the options' trace sink under a `"repair"` phase span, and the
//! returned run stats carry the usual counter snapshot.
//!
//! Correctness sketches live in DESIGN.md §16; the one-line versions:
//!
//! * **Matching** — removed matched edges free their endpoints; any edge
//!   left with two free endpoints must touch an edit (else the prior was
//!   not maximal), so one ascending greedy pass over the touched set
//!   restores maximality, and augmenting from freed vertices never
//!   unmatches anyone.
//! * **MIS** — added IN–IN edges demote the higher endpoint; domination
//!   is only lost by demotion or edge removal, so re-electing over
//!   demoted vertices' neighborhoods plus removed-edge endpoints plus
//!   new vertices (ascending; the set only grows) restores maximality.
//! * **Coloring** — removed edges never create conflicts; each added
//!   conflicting edge recolors its higher endpoint with the smallest
//!   color free in its edited neighborhood (palette extends implicitly),
//!   and a recolor chosen conflict-free stays conflict-free.

use crate::coloring::ColoringRun;
use crate::common::{counters_for_opts, RunStats, SolveOpts};
use crate::matching::MatchingRun;
use crate::mis::MisRun;
use sb_graph::csr::{Graph, INVALID};
use sb_graph::editlog::EditLog;
use sb_par::counters::Stopwatch;
use std::time::Duration;

/// Repair a maximal matching after `edits`.
///
/// `prior` must be a valid maximal matching of `base` (`mate[v]` is
/// `v`'s partner or [`INVALID`]); the result is a valid maximal
/// matching of `edits.materialize(base)`.
pub fn repair_matching(
    base: &Graph,
    edits: &EditLog,
    prior: &[u32],
    opts: &SolveOpts,
) -> MatchingRun {
    let counters = counters_for_opts(opts);
    let sw = Stopwatch::start();
    let ov = edits.apply(base);
    let n = ov.num_vertices();
    let mut mate = prior.to_vec();
    mate.resize(n, INVALID);
    {
        let _span = counters.phase("repair");
        // Free the endpoints of removed edges that were matched to each
        // other; both endpoints are in `touched()` already.
        for (u, v) in ov.removed_edges() {
            if mate[u as usize] == v {
                mate[u as usize] = INVALID;
                mate[v as usize] = INVALID;
            }
        }
        // One ascending greedy pass over the edit neighborhood: match
        // every still-free touched vertex to its first free neighbor.
        for v in ov.touched() {
            counters.add_work(1);
            if mate[v as usize] != INVALID {
                continue;
            }
            let row = ov.neighbors(v);
            counters.add_edges(row.len() as u64);
            if let Some(&w) = row.iter().find(|&&w| mate[w as usize] == INVALID) {
                mate[v as usize] = w;
                mate[w as usize] = v;
            }
        }
        counters.add_rounds(1);
    }
    MatchingRun {
        mate,
        stats: RunStats::from_counters(Duration::ZERO, sw.elapsed(), &counters),
    }
}

/// Repair a maximal independent set after `edits`.
///
/// `prior` must be a valid maximal independent set of `base`; the result
/// is a valid MIS of `edits.materialize(base)`.
pub fn repair_mis(base: &Graph, edits: &EditLog, prior: &[bool], opts: &SolveOpts) -> MisRun {
    let counters = counters_for_opts(opts);
    let sw = Stopwatch::start();
    let ov = edits.apply(base);
    let n = ov.num_vertices();
    let mut in_set = prior.to_vec();
    in_set.resize(n, false);
    {
        let _span = counters.phase("repair");
        // Phase A: an added edge inside the set is a violation — demote
        // the higher endpoint (deterministic), and queue its whole
        // neighborhood for re-election (they may have lost their only
        // IN neighbor).
        let mut work = ov.touched();
        for (u, v) in ov.added_edges() {
            if in_set[u as usize] && in_set[v as usize] {
                let demoted = u.max(v);
                in_set[demoted as usize] = false;
                let row = ov.neighbors(demoted);
                counters.add_edges(row.len() as u64);
                work.extend(row);
            }
        }
        work.sort_unstable();
        work.dedup();
        // Phase B: ascending re-election. The set only grows here, so a
        // vertex skipped because of an IN neighbor stays dominated.
        for v in work {
            counters.add_work(1);
            if in_set[v as usize] {
                continue;
            }
            let row = ov.neighbors(v);
            counters.add_edges(row.len() as u64);
            if row.iter().all(|&w| !in_set[w as usize]) {
                in_set[v as usize] = true;
            }
        }
        counters.add_rounds(1);
    }
    MisRun {
        in_set,
        stats: RunStats::from_counters(Duration::ZERO, sw.elapsed(), &counters),
    }
}

/// Repair a proper vertex coloring after `edits`.
///
/// `prior` must be a proper coloring of `base`; the result is a proper
/// coloring of `edits.materialize(base)`. The palette extends implicitly
/// when a conflicted vertex has no free color among the existing ones.
pub fn repair_coloring(
    base: &Graph,
    edits: &EditLog,
    prior: &[u32],
    opts: &SolveOpts,
) -> ColoringRun {
    let counters = counters_for_opts(opts);
    let sw = Stopwatch::start();
    let ov = edits.apply(base);
    let n = ov.num_vertices();
    let mut color = prior.to_vec();
    // New vertices carry a sentinel until their pass assigns a color;
    // sentinels are ignored when computing forbidden sets, and every
    // sentinel vertex is in the worklist, so none survives.
    color.resize(n, INVALID);
    {
        let _span = counters.phase("repair");
        // Removed edges never create conflicts; only added edges whose
        // endpoints collide — and brand-new vertices — need work.
        let mut work: Vec<u32> = (base.num_vertices() as u32..n as u32).collect();
        for (u, v) in ov.added_edges() {
            if color[u as usize] != INVALID && color[u as usize] == color[v as usize] {
                work.push(u.max(v));
            }
        }
        work.sort_unstable();
        work.dedup();
        for v in work {
            counters.add_work(1);
            let row = ov.neighbors(v);
            counters.add_edges(row.len() as u64);
            let mut used: Vec<u32> = row
                .iter()
                .map(|&w| color[w as usize])
                .filter(|&c| c != INVALID)
                .collect();
            used.sort_unstable();
            used.dedup();
            // Smallest color absent from the (sorted, deduplicated)
            // neighbor palette.
            let mut pick = 0u32;
            for c in used {
                if c == pick {
                    pick += 1;
                } else if c > pick {
                    break;
                }
            }
            color[v as usize] = pick;
        }
        counters.add_rounds(1);
    }
    ColoringRun {
        color,
        stats: RunStats::from_counters(Duration::ZERO, sw.elapsed(), &counters),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{
        check_coloring, check_maximal_independent_set, check_maximal_matching, matching_cardinality,
    };
    use crate::{coloring, matching, mis, Arch};
    use sb_graph::builder::from_edge_list;

    fn base_graph() -> Graph {
        // Two triangles joined by a path, plus a pendant.
        from_edge_list(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 4),
                (6, 7),
            ],
        )
    }

    fn edit_script() -> EditLog {
        let mut log = EditLog::new();
        log.remove_edge(2, 3)
            .add_edge(0, 7)
            .add_edge(8, 3)
            .add_vertex(10)
            .remove_edge(4, 5)
            .add_edge(9, 9); // self-loop no-op
        log
    }

    #[test]
    fn matching_repair_valid_and_maximal() {
        let g = base_graph();
        let prior = matching::maximal_matching(&g, matching::MmAlgorithm::Baseline, Arch::Cpu, 3);
        check_maximal_matching(&g, &prior.mate).unwrap();
        let log = edit_script();
        let repaired = repair_matching(&g, &log, &prior.mate, &SolveOpts::default());
        let edited = log.materialize(&g);
        check_maximal_matching(&edited, &repaired.mate).unwrap();
        assert!(matching_cardinality(&repaired.mate) >= 1);
    }

    #[test]
    fn mis_repair_valid_and_maximal() {
        let g = base_graph();
        let prior =
            mis::maximal_independent_set(&g, mis::MisAlgorithm::Baseline, Arch::Cpu, 3);
        check_maximal_independent_set(&g, &prior.in_set).unwrap();
        let log = edit_script();
        let repaired = repair_mis(&g, &log, &prior.in_set, &SolveOpts::default());
        let edited = log.materialize(&g);
        check_maximal_independent_set(&edited, &repaired.in_set).unwrap();
    }

    #[test]
    fn coloring_repair_proper() {
        let g = base_graph();
        let prior =
            coloring::vertex_coloring(&g, coloring::ColorAlgorithm::Baseline, Arch::Cpu, 3);
        check_coloring(&g, &prior.color).unwrap();
        let log = edit_script();
        let repaired = repair_coloring(&g, &log, &prior.color, &SolveOpts::default());
        let edited = log.materialize(&g);
        check_coloring(&edited, &repaired.color).unwrap();
        assert!(repaired.color.iter().all(|&c| c != INVALID));
    }

    #[test]
    fn empty_log_is_identity() {
        let g = base_graph();
        let log = EditLog::new();
        let pm = matching::maximal_matching(&g, matching::MmAlgorithm::Baseline, Arch::Cpu, 1);
        assert_eq!(
            repair_matching(&g, &log, &pm.mate, &SolveOpts::default()).mate,
            pm.mate
        );
        let ps = mis::maximal_independent_set(&g, mis::MisAlgorithm::Baseline, Arch::Cpu, 1);
        assert_eq!(
            repair_mis(&g, &log, &ps.in_set, &SolveOpts::default()).in_set,
            ps.in_set
        );
        let pc = coloring::vertex_coloring(&g, coloring::ColorAlgorithm::Baseline, Arch::Cpu, 1);
        assert_eq!(
            repair_coloring(&g, &log, &pc.color, &SolveOpts::default()).color,
            pc.color
        );
    }

    #[test]
    fn repair_counts_work_against_edit_batch() {
        // The whole point: repairing one edit on a big path touches a
        // handful of vertices, not O(n).
        let n = 10_000u32;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = from_edge_list(n as usize, &edges);
        let prior = mis::maximal_independent_set(&g, mis::MisAlgorithm::Baseline, Arch::Cpu, 5);
        let mut log = EditLog::new();
        log.add_edge(0, 2);
        let repaired = repair_mis(&g, &log, &prior.in_set, &SolveOpts::default());
        let edited = log.materialize(&g);
        check_maximal_independent_set(&edited, &repaired.in_set).unwrap();
        assert!(
            repaired.stats.counters.work_items < 64,
            "repair touched {} vertices for a single edit",
            repaired.stats.counters.work_items
        );
    }
}
