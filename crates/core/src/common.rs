//! Shared run configuration and reporting types.

use sb_par::counters::{CounterSnapshot, Counters};
use sb_par::frontier::ScratchStats;
use sb_trace::{TraceSink, TraceSummary};
use std::sync::Arc;
use std::time::Duration;

/// Which execution model a composite algorithm targets.
///
/// The paper evaluates every algorithm on a 20-core Xeon and a K40c GPU.
/// Here `Cpu` selects the CPU algorithm family (GM / VB / worklist Luby) on
/// the rayon pool, and `GpuSim` selects the GPU family (LMAX / EB / flat
/// Luby) expressed as bulk-synchronous kernels on `sb_par::bsp::BspExecutor`
/// — the documented K40c substitute (DESIGN.md §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Multicore-CPU algorithm family.
    Cpu,
    /// GPU-sim (bulk-synchronous kernel) algorithm family.
    GpuSim,
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Arch::Cpu => write!(f, "cpu"),
            Arch::GpuSim => write!(f, "gpu"),
        }
    }
}

/// How a solver's synchronous round loop tracks its live set.
///
/// `Dense` is the paper-faithful formulation: every round sweeps the full
/// participant list fixed at entry, skipping decided vertices with an O(1)
/// status check. `Compact` keeps the live set as a flat worklist compacted
/// between rounds (`sb_par::frontier`), borrows its per-call working arrays
/// from a scratch arena, and — on the GPU-sim pipeline — runs masked solves
/// directly against the zero-copy `EdgeView` instead of materializing an
/// induced CSR. `Bitset` runs the same round structure as `Compact` but
/// keeps the live set as u64 bitset words (`sb_par::frontier::BitFrontier`):
/// iteration is a trailing-zeros walk over the nonzero words, winner masks
/// are word-level ANDs, and compaction emits nonzero-word-index runs. All
/// modes produce valid solutions; for GM / LMAX / Luby / VB the outputs are
/// byte-identical across all three (pinned by `tests/frontier.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FrontierMode {
    /// Full-sweep rounds over a participant list fixed at entry.
    Dense,
    /// Worklist compaction between rounds + scratch-arena buffer reuse.
    #[default]
    Compact,
    /// u64-bitset live sets: trailing-zeros iteration, word-mask winner
    /// selection, word-index-run compaction.
    Bitset,
}

impl std::fmt::Display for FrontierMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontierMode::Dense => write!(f, "dense"),
            FrontierMode::Compact => write!(f, "compact"),
            FrontierMode::Bitset => write!(f, "bitset"),
        }
    }
}

impl std::str::FromStr for FrontierMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(FrontierMode::Dense),
            "compact" => Ok(FrontierMode::Compact),
            "bitset" => Ok(FrontierMode::Bitset),
            other => Err(format!(
                "frontier mode must be dense, compact, or bitset, got '{other}'"
            )),
        }
    }
}

/// Per-run options shared by the `*_opts` solver entry points.
#[derive(Debug, Clone, Default)]
pub struct SolveOpts {
    /// Trace sink for phase spans and round records (`None` = untraced).
    pub trace: Option<Arc<TraceSink>>,
    /// Live-set strategy for every round loop in the run.
    pub frontier: FrontierMode,
}

impl SolveOpts {
    /// Options for a traced run in the default (compact) mode — what the
    /// legacy `*_traced` entry points construct.
    pub fn traced(trace: Option<Arc<TraceSink>>) -> SolveOpts {
        SolveOpts {
            trace,
            ..SolveOpts::default()
        }
    }

    /// Options for an untraced run in the given mode.
    pub fn with_mode(frontier: FrontierMode) -> SolveOpts {
        SolveOpts {
            trace: None,
            frontier,
        }
    }
}

/// Timing and work breakdown of one solver run, reported next to every
/// result so benches can separate decomposition cost from solve cost —
/// the distinction Figures 2–5 of the paper turn on.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Time spent decomposing the input (zero for baselines).
    pub decompose_time: Duration,
    /// Time spent in the solver phases.
    pub solve_time: Duration,
    /// Work counters accumulated across decomposition and solving.
    pub counters: CounterSnapshot,
    /// Round-convergence digest, present when the run was traced (see
    /// `sb_trace`): rounds to converge, round-time percentiles, and
    /// settled-per-round histogram.
    pub trace: Option<TraceSummary>,
    /// Scratch-arena allocation behavior of the run (fresh allocations vs
    /// pool reuses) — zeroed when the composite predates the accounting.
    pub scratch: ScratchStats,
}

impl RunStats {
    /// Assemble the stats of a finished run from its counter block,
    /// attaching the trace digest when the run was traced.
    pub fn from_counters(
        decompose_time: Duration,
        solve_time: Duration,
        counters: &Counters,
    ) -> RunStats {
        RunStats {
            decompose_time,
            solve_time,
            counters: counters.snapshot(),
            trace: counters.trace_sink().and_then(|s| s.summary()),
            scratch: ScratchStats::default(),
        }
    }

    /// Attach the run's scratch-arena snapshot (builder style, so the
    /// composites' `from_counters` call sites stay one expression).
    pub fn with_scratch(mut self, scratch: ScratchStats) -> RunStats {
        self.scratch = scratch;
        self
    }

    /// Total wall-clock time.
    pub fn total_time(&self) -> Duration {
        self.decompose_time + self.solve_time
    }

    /// Total time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_time().as_secs_f64() * 1e3
    }

    /// Modeled K40c device time for this run's counters (see
    /// `sb_par::counters::GpuCostModel`). This is the figure reported for
    /// `Arch::GpuSim` runs: host wall-clock cannot express the
    /// coalesced-vs-gather bandwidth gap that governs real GPU graph codes,
    /// but the counters record exactly the traffic in each class.
    pub fn modeled_gpu_ms(&self) -> f64 {
        sb_par::counters::GpuCostModel::K40C.modeled_ms(&self.counters)
    }
}

/// Counter block for one run's options: reporting into the options' sink
/// when tracing was requested, plain otherwise.
pub(crate) fn counters_for_opts(opts: &SolveOpts) -> Counters {
    counters_for(opts.trace.clone())
}

/// Counter block for one run: reporting into `sink` when tracing was
/// requested, plain otherwise. Shared by every composite's entry points.
pub(crate) fn counters_for(trace: Option<Arc<TraceSink>>) -> Counters {
    match trace {
        Some(sink) => Counters::with_trace(sink),
        None => Counters::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_display() {
        assert_eq!(Arch::Cpu.to_string(), "cpu");
        assert_eq!(Arch::GpuSim.to_string(), "gpu");
    }

    #[test]
    fn runstats_total() {
        let s = RunStats {
            decompose_time: Duration::from_millis(3),
            solve_time: Duration::from_millis(7),
            counters: CounterSnapshot::default(),
            trace: None,
            scratch: ScratchStats::default(),
        };
        assert_eq!(s.total_time(), Duration::from_millis(10));
        assert!((s.total_ms() - 10.0).abs() < 1e-9);
    }
}
