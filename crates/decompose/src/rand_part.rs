//! RAND decomposition (Algorithm 2 of the paper).
//!
//! Every vertex independently picks one of `k` parts uniformly at random.
//! The decomposition output is a per-edge *classification* — intra-partition
//! (the union of the induced subgraphs `G[V_i]`, whose pieces are pairwise
//! disconnected) vs cross (`G_{k+1}`) — exposed as zero-copy
//! [`EdgeView`]s. Classification is two streaming passes, which is what
//! keeps RAND among the cheapest techniques in Figure 2.
//!
//! In expectation a fraction `1/k` of the edges is intra-partition, so the
//! induced union is a strong sparsification — the property the MM-Rand
//! algorithm exploits to escape Algorithm GM's *vain tendency*.

use rayon::prelude::*;
use sb_graph::csr::{Graph, VertexId};
use sb_graph::view::EdgeView;
use sb_par::counters::Counters;
use sb_par::prim::par_tabulate;
use sb_par::rng::{bounded, hash2};

/// Output of the RAND decomposition.
#[derive(Debug)]
pub struct RandDecomposition {
    /// Number of partitions `k`.
    pub k: usize,
    /// Partition id per vertex, in `0..k`.
    pub part: Vec<u32>,
    /// Per-edge class: [`RandDecomposition::INDUCED`] or
    /// [`RandDecomposition::CROSS`].
    pub class: Vec<u8>,
    /// Number of intra-partition edges.
    pub m_induced: usize,
    /// Number of cross edges.
    pub m_cross: usize,
}

impl RandDecomposition {
    /// Class of intra-partition edges (`G[V_1] ∪ … ∪ G[V_k]`).
    pub const INDUCED: u8 = 0;
    /// Class of cross edges (`G_{k+1}`).
    pub const CROSS: u8 = 1;

    /// View of the induced union `G_IS` (Algorithm 5's phase-1 graph).
    pub fn induced_view(&self) -> EdgeView<'_> {
        EdgeView::classes(&self.class, 1 << Self::INDUCED)
    }

    /// View of the cross-edge subgraph `G_{k+1}`.
    pub fn cross_view(&self) -> EdgeView<'_> {
        EdgeView::classes(&self.class, 1 << Self::CROSS)
    }

    /// Materialize the induced union on the parent's vertex ids.
    pub fn induced_graph(&self, g: &Graph) -> Graph {
        self.induced_view().materialize(g)
    }

    /// Materialize the cross-edge subgraph.
    pub fn cross_graph(&self, g: &Graph) -> Graph {
        self.cross_view().materialize(g)
    }

    /// Vertices of partition `i`.
    pub fn partition(&self, i: u32) -> Vec<VertexId> {
        self.part
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == i)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// Fraction of edges that stayed intra-partition.
    pub fn induced_edge_fraction(&self) -> f64 {
        let total = self.m_induced + self.m_cross;
        if total == 0 {
            0.0
        } else {
            self.m_induced as f64 / total as f64
        }
    }
}

/// Run the RAND decomposition with `k ≥ 1` parts.
///
/// Deterministic for a given `seed` regardless of thread count (the draw for
/// vertex `v` is the pure hash of `(seed, v)`).
pub fn decompose_rand(g: &Graph, k: usize, seed: u64, counters: &Counters) -> RandDecomposition {
    assert!(k >= 1, "RAND needs at least one partition");
    let n = g.num_vertices();
    let m = g.num_edges();
    // Accounting: one draw kernel over vertices, one classify kernel over
    // edges (each edge gathers its two endpoints' partition labels). One
    // synchronous round total.
    let round = counters.round_scope(n as u64);
    counters.add_rounds(1);
    counters.add_kernel(n as u64);
    counters.add_kernel(m as u64);
    counters.add_edges(2 * m as u64);
    let part: Vec<u32> = par_tabulate(n, |v| bounded(hash2(seed, v as u64), k as u64) as u32);
    let class: Vec<u8> = g
        .edge_list()
        .par_iter()
        .map(|&[u, v]| u8::from(part[u as usize] != part[v as usize]))
        .collect();
    let m_cross = class
        .par_iter()
        .filter(|&&c| c == RandDecomposition::CROSS)
        .count();
    counters.finish_round(round, || n as u64);
    RandDecomposition {
        k,
        part,
        m_induced: m - m_cross,
        m_cross,
        class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_graph::builder::from_edge_list;

    fn grid(w: usize, h: usize) -> Graph {
        let mut edges = Vec::new();
        let id = |x: usize, y: usize| (y * w + x) as u32;
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        from_edge_list(w * h, &edges)
    }

    #[test]
    fn pieces_partition_the_edges() {
        let g = grid(20, 20);
        let d = decompose_rand(&g, 4, 7, &Counters::new());
        assert_eq!(d.m_induced + d.m_cross, g.num_edges());
        let induced = d.induced_graph(&g);
        let cross = d.cross_graph(&g);
        assert_eq!(induced.num_edges(), d.m_induced);
        assert_eq!(cross.num_edges(), d.m_cross);
        for &[u, v] in induced.edge_list() {
            assert_eq!(d.part[u as usize], d.part[v as usize]);
        }
        for &[u, v] in cross.edge_list() {
            assert_ne!(d.part[u as usize], d.part[v as usize]);
        }
    }

    #[test]
    fn views_agree_with_classes() {
        let g = grid(10, 10);
        let d = decompose_rand(&g, 3, 5, &Counters::new());
        let iv = d.induced_view();
        let cv = d.cross_view();
        for e in 0..g.num_edges() as u32 {
            assert_ne!(iv.admits(e), cv.admits(e), "views must partition edges");
        }
        assert_eq!(iv.num_edges(&g), d.m_induced);
        assert_eq!(cv.num_edges(&g), d.m_cross);
    }

    #[test]
    fn part_ids_in_range_and_all_parts_used() {
        let g = grid(30, 30);
        let k = 5;
        let d = decompose_rand(&g, k, 11, &Counters::new());
        assert!(d.part.iter().all(|&p| (p as usize) < k));
        for i in 0..k as u32 {
            assert!(!d.partition(i).is_empty(), "partition {i} empty");
        }
    }

    #[test]
    fn k_equals_one_keeps_everything_induced() {
        let g = grid(10, 10);
        let d = decompose_rand(&g, 1, 3, &Counters::new());
        assert_eq!(d.m_induced, g.num_edges());
        assert_eq!(d.m_cross, 0);
        assert!((d.induced_edge_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn induced_fraction_near_one_over_k() {
        let g = grid(100, 100);
        let k = 10;
        let d = decompose_rand(&g, k, 42, &Counters::new());
        let f = d.induced_edge_fraction();
        assert!(
            (f - 1.0 / k as f64).abs() < 0.02,
            "fraction {f} far from {}",
            1.0 / k as f64
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let g = grid(15, 15);
        let a = decompose_rand(&g, 4, 9, &Counters::new());
        let b = decompose_rand(&g, 4, 9, &Counters::new());
        assert_eq!(a.part, b.part);
        assert_eq!(a.class, b.class);
        let c = decompose_rand(&g, 4, 10, &Counters::new());
        assert_ne!(a.part, c.part, "different seed should differ");
    }

    #[test]
    fn balanced_partition_sizes() {
        let g = grid(100, 100);
        let k = 8usize;
        let d = decompose_rand(&g, k, 5, &Counters::new());
        let expect = (g.num_vertices() / k) as f64;
        for i in 0..k as u32 {
            let size = d.partition(i).len() as f64;
            assert!(
                (size - expect).abs() / expect < 0.15,
                "partition {i} size {size} deviates from {expect}"
            );
        }
    }
}
