//! A METIS-like balanced partitioner.
//!
//! The paper excludes PMETIS from its study (Remark 1) because, for the
//! symmetry-breaking problems at hand, partitioning the graph with a
//! quality-first tool costs more than the baseline solvers take end to end.
//! To *reproduce* that remark we still need such a partitioner to time.
//!
//! This module implements a greedy BFS-grown `k`-way partitioner with a
//! single boundary-refinement sweep: seeds are picked round-robin from
//! unassigned vertices, each part grows breadth-first to the target size
//! `⌈n/k⌉`, and a final pass moves boundary vertices to the neighboring part
//! where they have the most neighbors (respecting a balance cap). It is a
//! deliberate stand-in: same role (low-cut balanced partitioning), same
//! cost class (multiple traversal passes over the whole graph, inherently
//! more work than RAND's single hash pass).

use rayon::prelude::*;
use sb_graph::csr::{Graph, VertexId, INVALID};
use sb_graph::view::EdgeView;
use sb_par::counters::Counters;
use std::collections::VecDeque;

/// Output of the METIS-like decomposition.
#[derive(Debug)]
pub struct MetisLikeDecomposition {
    /// Number of parts.
    pub k: usize,
    /// Partition id per vertex, in `0..k`.
    pub part: Vec<u32>,
    /// Per-edge class: 0 = intra-part, 1 = cut.
    pub class: Vec<u8>,
    /// Number of cut (cross) edges.
    pub cut: usize,
}

impl MetisLikeDecomposition {
    /// View of the intra-partition edges.
    pub fn induced_view(&self) -> EdgeView<'_> {
        EdgeView::classes(&self.class, 0b01)
    }

    /// View of the cut edges.
    pub fn cross_view(&self) -> EdgeView<'_> {
        EdgeView::classes(&self.class, 0b10)
    }

    /// Materialize the intra-partition union.
    pub fn induced_graph(&self, g: &Graph) -> Graph {
        self.induced_view().materialize(g)
    }

    /// Materialize the cut subgraph.
    pub fn cross_graph(&self, g: &Graph) -> Graph {
        self.cross_view().materialize(g)
    }
}

/// Run the METIS-like partitioner with `k ≥ 1` parts.
pub fn decompose_metis_like(g: &Graph, k: usize, counters: &Counters) -> MetisLikeDecomposition {
    assert!(k >= 1);
    let n = g.num_vertices();
    let target = n.div_ceil(k.max(1));
    let mut part = vec![INVALID; n];

    // Phase 1: BFS growth, one part at a time.
    let mut next_seed = 0usize;
    let mut assigned = 0usize;
    for p in 0..k as u32 {
        let round = counters.round_scope((n - assigned) as u64);
        let mut size = 0usize;
        let mut queue = VecDeque::new();
        while size < target {
            if queue.is_empty() {
                // Find a fresh seed; if none remain, this part stays small.
                while next_seed < n && part[next_seed] != INVALID {
                    next_seed += 1;
                }
                if next_seed == n {
                    break;
                }
                part[next_seed] = p;
                size += 1;
                queue.push_back(next_seed as VertexId);
                continue;
            }
            let v = queue.pop_front().unwrap();
            counters.add_edges(g.degree(v) as u64);
            for w in g.neighbors(v) {
                if size >= target {
                    break;
                }
                if part[*w as usize] == INVALID {
                    part[*w as usize] = p;
                    size += 1;
                    queue.push_back(*w);
                }
            }
        }
        counters.add_rounds(1);
        assigned += size;
        counters.finish_round(round, || size as u64);
    }
    // Any stragglers (possible when k parts filled early) go to the last part.
    for slot in part.iter_mut() {
        if *slot == INVALID {
            *slot = k as u32 - 1;
        }
    }

    // Phase 2: one boundary-refinement sweep (Kernighan–Lin flavored).
    let refine_round = counters.round_scope(n as u64);
    let mut sizes = vec![0usize; k];
    for &p in &part {
        sizes[p as usize] += 1;
    }
    let cap = target + target / 10 + 1;
    for v in 0..n as u32 {
        counters.add_edges(g.degree(v) as u64);
        let cur = part[v as usize];
        let mut gain_best = 0i64;
        let mut best = cur;
        // Count neighbors per adjacent part (small local map).
        let mut parts_seen: Vec<(u32, i64)> = Vec::new();
        for w in g.neighbors(v) {
            let pw = part[*w as usize];
            match parts_seen.iter_mut().find(|(q, _)| *q == pw) {
                Some((_, c)) => *c += 1,
                None => parts_seen.push((pw, 1)),
            }
        }
        let here = parts_seen
            .iter()
            .find(|(q, _)| *q == cur)
            .map_or(0, |&(_, c)| c);
        for &(q, c) in &parts_seen {
            if q != cur && c - here > gain_best && sizes[q as usize] < cap {
                gain_best = c - here;
                best = q;
            }
        }
        if best != cur {
            sizes[cur as usize] -= 1;
            sizes[best as usize] += 1;
            part[v as usize] = best;
        }
    }
    counters.add_rounds(1);
    // Refinement moves vertices between parts; nothing is "settled".
    counters.finish_round(refine_round, || 0);

    let class: Vec<u8> = g
        .edge_list()
        .par_iter()
        .map(|&[u, v]| u8::from(part[u as usize] != part[v as usize]))
        .collect();
    let cut = class.par_iter().filter(|&&c| c == 1).count();
    MetisLikeDecomposition {
        k,
        part,
        class,
        cut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_graph::builder::from_edge_list;

    fn grid(w: usize, h: usize) -> Graph {
        let mut edges = Vec::new();
        let id = |x: usize, y: usize| (y * w + x) as u32;
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        from_edge_list(w * h, &edges)
    }

    #[test]
    fn every_vertex_assigned_in_range() {
        let g = grid(16, 16);
        let d = decompose_metis_like(&g, 4, &Counters::new());
        assert!(d.part.iter().all(|&p| (p as usize) < 4));
    }

    #[test]
    fn pieces_partition_edges() {
        let g = grid(16, 16);
        let d = decompose_metis_like(&g, 4, &Counters::new());
        assert_eq!(
            d.induced_view().num_edges(&g) + d.cross_view().num_edges(&g),
            g.num_edges()
        );
        assert_eq!(d.cut, d.cross_view().num_edges(&g));
        assert_eq!(d.cross_graph(&g).num_edges(), d.cut);
    }

    #[test]
    fn parts_roughly_balanced() {
        let g = grid(20, 20);
        let k = 4;
        let d = decompose_metis_like(&g, k, &Counters::new());
        let mut sizes = vec![0usize; k];
        for &p in &d.part {
            sizes[p as usize] += 1;
        }
        let target = g.num_vertices() / k;
        for (i, &s) in sizes.iter().enumerate() {
            assert!(
                s >= target / 2 && s <= target * 2,
                "part {i} size {s} vs target {target}"
            );
        }
    }

    #[test]
    fn locality_beats_random_cut_on_grids() {
        // The whole point of a METIS-like partitioner: far fewer cut edges
        // than a random partition on a mesh.
        let g = grid(30, 30);
        let k = 4;
        let m = decompose_metis_like(&g, k, &Counters::new());
        let r = crate::rand_part::decompose_rand(&g, k, 7, &Counters::new());
        assert!(
            m.cut * 2 < r.m_cross,
            "metis-like cut {} should be well under random cut {}",
            m.cut,
            r.m_cross
        );
    }

    #[test]
    fn k_one_has_no_cut() {
        let g = grid(8, 8);
        let d = decompose_metis_like(&g, 1, &Counters::new());
        assert_eq!(d.cut, 0);
        assert_eq!(d.induced_view().num_edges(&g), g.num_edges());
    }

    #[test]
    fn handles_disconnected_input() {
        let g = from_edge_list(6, &[(0, 1), (2, 3), (4, 5)]);
        let d = decompose_metis_like(&g, 3, &Counters::new());
        assert!(d.part.iter().all(|&p| p < 3));
        assert_eq!(
            d.induced_view().num_edges(&g) + d.cross_view().num_edges(&g),
            g.num_edges()
        );
    }
}
