//! Light-weight graph decompositions (Section II of the paper).
//!
//! Four techniques, each producing subgraphs **on the parent's vertex id
//! space** (edge-filtered, see `sb_graph::subgraph`) so the composite
//! symmetry-breaking algorithms can pass partial solutions between phases
//! without id remapping:
//!
//! * [`bridge`] — **BRIDGE** (Algorithm 1): BFS tree + parallel LCA-walk
//!   marking; unmarked tree edges are the bridges; `G − B` splits into
//!   2-edge-connected components.
//! * [`rand_part`] — **RAND** (Algorithm 2): uniform random vertex partition
//!   into `k` parts; induced subgraphs `G[V_i]` plus the cross-edge subgraph
//!   `G_{k+1}`.
//! * [`degk`] — **DEGk** (Algorithm 3): split at degree threshold `k` into
//!   `G_H`, `G_L`, and the cross-edge subgraph `G_C`.
//! * [`metis_like`] — a greedy BFS-grown balanced partitioner standing in
//!   for PMETIS, used only to reproduce the paper's Remark 1 (a heavy
//!   partitioner costs more than the baseline solvers it would assist).
//! * [`bicc`] — biconnected components (blocks) and articulation points,
//!   the Hochbaum-style refinement of BRIDGE the paper's related work
//!   builds on (extension beyond the paper's evaluated set).

pub mod bicc;
pub mod bridge;
pub mod degk;
pub mod metis_like;
pub mod rand_part;

pub use bicc::{decompose_bicc, BiccDecomposition};
pub use bridge::{decompose_bridge, BridgeDecomposition};
pub use degk::{decompose_degk, DegkDecomposition};
pub use metis_like::{decompose_metis_like, MetisLikeDecomposition};
pub use rand_part::{decompose_rand, RandDecomposition};
