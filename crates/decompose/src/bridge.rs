//! BRIDGE decomposition (Algorithm 1 of the paper).
//!
//! Step 1: a parallel BFS tree (parent array `P`, level array `L`).
//! Step 2: for every non-tree edge `(x, y)`, walk up the tree from `x` and
//! `y` in parallel toward their least common ancestor, marking every tree
//! edge on the way. Tree edges never marked are exactly the bridges (a
//! bridge lies on no cycle; every tree edge covered by a non-tree edge lies
//! on the cycle that edge closes). Removing the bridges splits the graph
//! into its 2-edge-connected components, which the decomposition labels
//! with a parallel connected-components pass.
//!
//! The LCA walk is the paper's own formulation: cheap on low-diameter
//! graphs, and deliberately *not* asymptotically optimal — its cost on
//! high-diameter road networks is part of the paper's findings (Figure 2,
//! and the non-competitiveness of MIS-Bridge in §V-C).

use rayon::prelude::*;
use sb_graph::bfs::bfs_forest;
use sb_graph::components::{components_parallel, Components};
use sb_graph::csr::{Graph, VertexId, INVALID};
use sb_graph::view::EdgeView;
use sb_par::atomic::AtomicBitSet;
use sb_par::counters::Counters;

/// Output of the BRIDGE decomposition.
#[derive(Debug)]
pub struct BridgeDecomposition {
    /// Edge ids of the bridges of `G`, ascending.
    pub bridges: Vec<u32>,
    /// Per-edge class: [`BridgeDecomposition::COMPONENT`] or
    /// [`BridgeDecomposition::BRIDGE`].
    pub class: Vec<u8>,
    /// Connected components of `G − B` (the 2-edge-connected components,
    /// plus singleton vertices).
    pub components: Components,
}

impl BridgeDecomposition {
    /// Class of non-bridge edges (they form `G_c = ∪ G_i`).
    pub const COMPONENT: u8 = 0;
    /// Class of bridge edges (`B` / `G_b`).
    pub const BRIDGE: u8 = 1;

    /// Is edge `e` a bridge?
    #[inline]
    pub fn is_bridge(&self, e: u32) -> bool {
        self.class[e as usize] == Self::BRIDGE
    }

    /// View of `G_c` (the union of the 2-edge-connected components).
    pub fn component_view(&self) -> EdgeView<'_> {
        EdgeView::classes(&self.class, 1 << Self::COMPONENT)
    }

    /// View of `G_b` (the bridge edges).
    pub fn bridge_view(&self) -> EdgeView<'_> {
        EdgeView::classes(&self.class, 1 << Self::BRIDGE)
    }

    /// Materialize `G_c` on the parent's vertex ids.
    pub fn component_graph(&self, g: &Graph) -> Graph {
        self.component_view().materialize(g)
    }

    /// Materialize `G_b`.
    pub fn bridge_graph(&self, g: &Graph) -> Graph {
        self.bridge_view().materialize(g)
    }

    /// Vertices incident on at least one bridge ("bridge vertices" in the
    /// paper's MM-Bridge description).
    pub fn bridge_vertices(&self, g: &Graph) -> Vec<VertexId> {
        let mut vs: Vec<VertexId> = self
            .bridges
            .iter()
            .flat_map(|&e| {
                let (u, v) = g.edge(e);
                [u, v]
            })
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }
}

/// Run the BRIDGE decomposition on `g`.
///
/// Handles disconnected inputs by building a BFS forest (the paper connects
/// its inputs beforehand; the forest restart is a strict generalization).
pub fn decompose_bridge(g: &Graph, counters: &Counters) -> BridgeDecomposition {
    let bridges = find_bridges(g, counters);
    let mut class = vec![BridgeDecomposition::COMPONENT; g.num_edges()];
    for &e in &bridges {
        class[e as usize] = BridgeDecomposition::BRIDGE;
    }
    let alive = |e: u32| class[e as usize] == BridgeDecomposition::COMPONENT;
    let components = components_parallel(g, Some(&alive), counters);
    BridgeDecomposition {
        bridges,
        class,
        components,
    }
}

/// Find the bridge edge ids of `g` via BFS + parallel LCA marking.
pub fn find_bridges(g: &Graph, counters: &Counters) -> Vec<u32> {
    let n = g.num_vertices();
    if n == 0 || g.num_edges() == 0 {
        return Vec::new();
    }
    // STEP 1: BFS forest.
    let (tree, _roots) = bfs_forest(g, counters);

    // `marked` is indexed by *vertex*: bit v set means the tree edge
    // (v, parent(v)) lies on some cycle.
    let marked = AtomicBitSet::new(n);
    let is_tree_edge = {
        let mut t = vec![false; g.num_edges()];
        for v in 0..n {
            let e = tree.parent_edge[v];
            if e != INVALID {
                t[e as usize] = true;
            }
        }
        t
    };

    // STEP 2: walk every non-tree edge's endpoints to their LCA in parallel
    // (one kernel over the edges; the tree walks are dependent gathers).
    let round = counters.round_scope(g.num_edges() as u64);
    counters.add_rounds(1);
    counters.add_kernel(g.num_edges() as u64);
    g.edge_list()
        .par_iter()
        .enumerate()
        .for_each(|(e, &[u, v])| {
            if is_tree_edge[e] {
                return;
            }
            let (mut x, mut y) = (u, v);
            let mut lx = tree.level[x as usize];
            let mut ly = tree.level[y as usize];
            let mut steps = 0u64;
            // Raise the deeper endpoint first, then walk both together.
            while lx > ly {
                marked.set(x as usize);
                x = tree.parent[x as usize];
                lx -= 1;
                steps += 1;
            }
            while ly > lx {
                marked.set(y as usize);
                y = tree.parent[y as usize];
                ly -= 1;
                steps += 1;
            }
            while x != y {
                marked.set(x as usize);
                marked.set(y as usize);
                x = tree.parent[x as usize];
                y = tree.parent[y as usize];
                steps += 2;
            }
            counters.add_edges(steps);
        });
    // Marking settles nothing; edge classification happens afterwards.
    counters.finish_round(round, || 0);

    // Tree edges not marked are bridges.
    let mut bridges: Vec<u32> = (0..n)
        .into_par_iter()
        .filter_map(|v| {
            let e = tree.parent_edge[v];
            (e != INVALID && !marked.get(v)).then_some(e)
        })
        .collect();
    bridges.par_sort_unstable();
    bridges
}

/// Sequential reference: bridges via iterative Tarjan low-link DFS.
/// Used by tests to validate the parallel algorithm.
pub fn bridges_sequential(g: &Graph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut disc = vec![INVALID; n];
    let mut low = vec![0u32; n];
    let mut out = Vec::new();
    let mut timer = 0u32;
    // Iterative DFS storing (vertex, arc cursor, incoming edge id).
    for start in 0..n as u32 {
        if disc[start as usize] != INVALID {
            continue;
        }
        let mut stack: Vec<(u32, usize, u32)> = vec![(start, 0, INVALID)];
        disc[start as usize] = timer;
        low[start as usize] = timer;
        timer += 1;
        while let Some(&mut (v, ref mut cursor, in_edge)) = stack.last_mut() {
            let row_len = g.degree(v);
            if *cursor < row_len {
                let i = *cursor;
                *cursor += 1;
                let w = g.neighbors(v)[i];
                let e = g.edge_ids_of(v)[i];
                if e == in_edge {
                    continue; // don't re-traverse the incoming edge
                }
                if disc[w as usize] == INVALID {
                    disc[w as usize] = timer;
                    low[w as usize] = timer;
                    timer += 1;
                    stack.push((w, 0, e));
                } else {
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                }
            } else {
                stack.pop();
                if let Some(&mut (p, _, _)) = stack.last_mut() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                    if low[v as usize] > disc[p as usize] {
                        out.push(in_edge);
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_graph::builder::from_edge_list;

    #[test]
    fn tree_all_edges_are_bridges() {
        let g = from_edge_list(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]);
        let c = Counters::new();
        let d = decompose_bridge(&g, &c);
        assert_eq!(d.bridges.len(), 4);
        assert!((0..4u32).all(|e| d.is_bridge(e)));
        // Every vertex is its own 2-edge-connected component.
        assert_eq!(d.components.count, 5);
        assert_eq!(d.component_view().num_edges(&g), 0);
        assert_eq!(d.bridge_view().num_edges(&g), 4);
    }

    #[test]
    fn cycle_has_no_bridges() {
        let g = from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let d = decompose_bridge(&g, &Counters::new());
        assert!(d.bridges.is_empty());
        assert_eq!(d.components.count, 1);
    }

    #[test]
    fn barbell_bridge() {
        // Two triangles joined by edge (2,3): only (2,3) is a bridge.
        let g = from_edge_list(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let d = decompose_bridge(&g, &Counters::new());
        assert_eq!(d.bridges.len(), 1);
        assert_eq!(g.edge(d.bridges[0]), (2, 3));
        assert_eq!(d.components.count, 2);
        assert_eq!(d.bridge_vertices(&g), vec![2, 3]);
    }

    #[test]
    fn matches_sequential_reference_on_random_graphs() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        for trial in 0..10 {
            let n = 100 + 40 * trial;
            let m = n + trial * 23; // sparse → plenty of bridges
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = from_edge_list(n, &edges);
            let fast = find_bridges(&g, &Counters::new());
            let slow = bridges_sequential(&g);
            assert_eq!(fast, slow, "trial {trial}");
        }
    }

    #[test]
    fn parallel_edges_between_same_pair_collapse() {
        // Builder dedups, so a doubled edge is a single bridge edge.
        let g = from_edge_list(2, &[(0, 1), (1, 0)]);
        assert_eq!(g.num_edges(), 1);
        let d = decompose_bridge(&g, &Counters::new());
        assert_eq!(d.bridges.len(), 1);
    }

    #[test]
    fn disconnected_graph_handled() {
        let g = from_edge_list(7, &[(0, 1), (1, 2), (0, 2), (3, 4), (5, 6)]);
        let d = decompose_bridge(&g, &Counters::new());
        let mut b: Vec<(u32, u32)> = d.bridges.iter().map(|&e| g.edge(e)).collect();
        b.sort_unstable();
        assert_eq!(b, vec![(3, 4), (5, 6)]);
        assert_eq!(bridges_sequential(&g), d.bridges);
    }

    #[test]
    fn views_partition_edges() {
        let g = from_edge_list(
            8,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (5, 6),
                (6, 7),
            ],
        );
        let d = decompose_bridge(&g, &Counters::new());
        assert_eq!(
            d.component_view().num_edges(&g) + d.bridge_view().num_edges(&g),
            g.num_edges()
        );
        let cg = d.component_graph(&g);
        let bg = d.bridge_graph(&g);
        assert_eq!(cg.num_edges() + bg.num_edges(), g.num_edges());
    }

    #[test]
    fn empty_and_edgeless() {
        let d = decompose_bridge(&Graph::empty(4), &Counters::new());
        assert!(d.bridges.is_empty());
        assert_eq!(d.components.count, 4);
    }
}
