//! DEGk decomposition (Algorithm 3 of the paper).
//!
//! Vertices of degree at most `k` form `V_L`, the rest `V_H`; the output is
//! a per-edge classification into `G_H = G[V_H]`, `G_L = G[V_L]`, and the
//! cross-edge subgraph `G_C`, exposed as zero-copy [`EdgeView`]s. The
//! classification is one degree test per vertex plus one class pass per
//! edge — "a simple computation", which is why DEG2 is the cheapest
//! technique in Figure 2.
//!
//! For `k = 2` (the paper's choice) `G_L` is a disjoint union of paths and
//! cycles — the structural property the COLOR-Degk and MIS-Deg2 algorithms
//! exploit with a 3-entry FORBIDDEN array and an orientation-based MIS
//! respectively.

use rayon::prelude::*;
use sb_graph::csr::{Graph, VertexId};
use sb_graph::view::EdgeView;
use sb_par::counters::Counters;
use sb_par::prim::par_tabulate;

/// Output of the DEGk decomposition.
#[derive(Debug)]
pub struct DegkDecomposition {
    /// The degree threshold `k`.
    pub k: usize,
    /// `is_high[v]` ⇔ `degree(v) > k` (membership in `V_H`).
    pub is_high: Vec<bool>,
    /// Per-edge class: [`DegkDecomposition::HIGH`], [`DegkDecomposition::LOW`]
    /// or [`DegkDecomposition::CROSS`].
    pub class: Vec<u8>,
    /// Edges of `G_H`.
    pub m_high: usize,
    /// Edges of `G_L`.
    pub m_low: usize,
    /// Edges of `G_C`.
    pub m_cross: usize,
}

impl DegkDecomposition {
    /// Class of `G_H` edges (both endpoints of degree > k).
    pub const HIGH: u8 = 0;
    /// Class of `G_L` edges (both endpoints of degree ≤ k).
    pub const LOW: u8 = 1;
    /// Class of cross edges.
    pub const CROSS: u8 = 2;

    /// View of `G_H`.
    pub fn high_view(&self) -> EdgeView<'_> {
        EdgeView::classes(&self.class, 1 << Self::HIGH)
    }

    /// View of `G_L`.
    pub fn low_view(&self) -> EdgeView<'_> {
        EdgeView::classes(&self.class, 1 << Self::LOW)
    }

    /// View of `G_C`.
    pub fn cross_view(&self) -> EdgeView<'_> {
        EdgeView::classes(&self.class, 1 << Self::CROSS)
    }

    /// View of `G_L ∪ G_C` (phase 2 of MM-Degk).
    pub fn low_cross_view(&self) -> EdgeView<'_> {
        EdgeView::classes(&self.class, (1 << Self::LOW) | (1 << Self::CROSS))
    }

    /// Materialize `G_H` on the parent's vertex ids.
    pub fn high_graph(&self, g: &Graph) -> Graph {
        self.high_view().materialize(g)
    }

    /// Materialize `G_L`.
    pub fn low_graph(&self, g: &Graph) -> Graph {
        self.low_view().materialize(g)
    }

    /// Materialize `G_C`.
    pub fn cross_graph(&self, g: &Graph) -> Graph {
        self.cross_view().materialize(g)
    }

    /// Vertices of `V_H`.
    pub fn high_vertices(&self) -> Vec<VertexId> {
        self.is_high
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// Vertices of `V_L`.
    pub fn low_vertices(&self) -> Vec<VertexId> {
        self.is_high
            .iter()
            .enumerate()
            .filter(|&(_, &h)| !h)
            .map(|(v, _)| v as VertexId)
            .collect()
    }
}

/// Run the DEGk decomposition with threshold `k`.
pub fn decompose_degk(g: &Graph, k: usize, counters: &Counters) -> DegkDecomposition {
    let n = g.num_vertices();
    let m = g.num_edges();
    // Accounting: degree-test kernel over vertices, classify kernel over
    // edges (two side-flag gathers each). One synchronous round total.
    let round = counters.round_scope(n as u64);
    counters.add_rounds(1);
    counters.add_kernel(n as u64);
    counters.add_kernel(m as u64);
    counters.add_edges(2 * m as u64);
    let is_high: Vec<bool> = par_tabulate(n, |v| g.degree(v as VertexId) > k);
    let class: Vec<u8> = g
        .edge_list()
        .par_iter()
        .map(|&[u, v]| match (is_high[u as usize], is_high[v as usize]) {
            (true, true) => DegkDecomposition::HIGH,
            (false, false) => DegkDecomposition::LOW,
            _ => DegkDecomposition::CROSS,
        })
        .collect();
    let counts = class.par_iter().fold([0usize; 3], |mut acc, &c| {
        acc[c as usize] += 1;
        acc
    });
    counters.finish_round(round, || n as u64);
    DegkDecomposition {
        k,
        is_high,
        class,
        m_high: counts[0],
        m_low: counts[1],
        m_cross: counts[2],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_graph::builder::from_edge_list;

    /// Star with a pendant path: center 0 has degree 5, path tail is low.
    fn lollipop() -> Graph {
        from_edge_list(8, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (5, 6), (6, 7)])
    }

    #[test]
    fn three_pieces_partition_edges() {
        let g = lollipop();
        let d = decompose_degk(&g, 2, &Counters::new());
        assert_eq!(d.m_high + d.m_low + d.m_cross, g.num_edges());
        let (h, l, c) = (d.high_graph(&g), d.low_graph(&g), d.cross_graph(&g));
        assert_eq!(h.num_edges() + l.num_edges() + c.num_edges(), g.num_edges());
    }

    #[test]
    fn side_membership_matches_degree() {
        let g = lollipop();
        let d = decompose_degk(&g, 2, &Counters::new());
        for v in g.vertices() {
            assert_eq!(d.is_high[v as usize], g.degree(v) > 2, "vertex {v}");
        }
        assert_eq!(d.high_vertices(), vec![0]);
        assert_eq!(d.low_vertices().len(), 7);
    }

    #[test]
    fn piece_edges_respect_sides() {
        let g = lollipop();
        let d = decompose_degk(&g, 2, &Counters::new());
        for &[u, v] in d.high_graph(&g).edge_list() {
            assert!(d.is_high[u as usize] && d.is_high[v as usize]);
        }
        for &[u, v] in d.low_graph(&g).edge_list() {
            assert!(!d.is_high[u as usize] && !d.is_high[v as usize]);
        }
        for &[u, v] in d.cross_graph(&g).edge_list() {
            assert_ne!(d.is_high[u as usize], d.is_high[v as usize]);
        }
    }

    #[test]
    fn low_view_max_degree_bounded_by_k() {
        let g = lollipop();
        let d = decompose_degk(&g, 2, &Counters::new());
        let lv = d.low_view();
        for v in g.vertices() {
            assert!(lv.degree(&g, v) <= 2);
        }
        assert!(d.low_graph(&g).max_degree() <= 2);
    }

    #[test]
    fn low_cross_view_unions_two_classes() {
        let g = lollipop();
        let d = decompose_degk(&g, 2, &Counters::new());
        assert_eq!(d.low_cross_view().num_edges(&g), d.m_low + d.m_cross);
    }

    #[test]
    fn k_zero_sends_every_edge_endpoint_high() {
        let g = lollipop();
        let d = decompose_degk(&g, 0, &Counters::new());
        assert_eq!(d.m_high, g.num_edges());
        assert_eq!(d.m_low, 0);
        assert_eq!(d.m_cross, 0);
    }

    #[test]
    fn k_at_max_degree_sends_everything_low() {
        let g = lollipop();
        let d = decompose_degk(&g, g.max_degree(), &Counters::new());
        assert_eq!(d.m_low, g.num_edges());
        assert_eq!(d.m_high, 0);
    }

    #[test]
    fn cycle_is_all_low_at_k2() {
        let g = from_edge_list(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let d = decompose_degk(&g, 2, &Counters::new());
        assert_eq!(d.m_low, 6);
        assert!(d.high_vertices().is_empty());
    }
}
