//! Table II statistics.
//!
//! The paper characterizes each dataset by |V|, |E|, the percentage of
//! vertices with degree ≤ 2 (%DEG2), the percentage of bridge edges
//! (%BRIDGES — computed by `sb-decompose`, not here), and the average
//! degree. These statistics are what the synthetic stand-in generators are
//! validated against.

use crate::csr::Graph;
use rayon::prelude::*;

/// Degree-profile statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Average degree `2m/n`.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Percentage (0–100) of vertices with degree ≤ 2 — the %DEG2 column.
    pub pct_deg_le2: f64,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
}

impl GraphStats {
    /// Compute the statistics for `g`.
    pub fn compute(g: &Graph) -> Self {
        let n = g.num_vertices();
        let (deg2, isolated, maxd) = (0..n)
            .into_par_iter()
            .map(|v| {
                let d = g.degree(v as u32);
                (usize::from(d <= 2), usize::from(d == 0), d)
            })
            .fold((0, 0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2.max(b.2)));
        Self {
            num_vertices: n,
            num_edges: g.num_edges(),
            avg_degree: g.avg_degree(),
            max_degree: maxd,
            pct_deg_le2: if n == 0 {
                0.0
            } else {
                100.0 * deg2 as f64 / n as f64
            },
            isolated,
        }
    }
}

/// Percentage (0–100) of vertices with degree ≤ `k`.
pub fn pct_deg_le(g: &Graph, k: usize) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let c = (0..n)
        .into_par_iter()
        .filter(|&v| g.degree(v as u32) <= k)
        .count();
    100.0 * c as f64 / n as f64
}

/// Degeneracy (k-core) decomposition: `coreness[v]` is the largest `k`
/// such that `v` survives in the `k`-core; the returned pair is
/// `(coreness, degeneracy)`. Cascading min-degree peel, O(n + m).
///
/// The degeneracy explains several of the study's effects at once: the
/// DEG2 decomposition peels exactly the 1- and 2-shells, and a graph's
/// chromatic number is at most degeneracy + 1.
pub fn coreness(g: &Graph) -> (Vec<u32>, u32) {
    let n = g.num_vertices();
    let mut core = vec![u32::MAX; n];
    let mut residual: Vec<u32> = (0..n).map(|v| g.degree(v as u32) as u32).collect();
    let mut remaining = n;
    let mut k = 0u32;
    let mut degeneracy = 0u32;
    while remaining > 0 {
        let mut frontier: Vec<u32> = (0..n as u32)
            .filter(|&v| core[v as usize] == u32::MAX && residual[v as usize] <= k)
            .collect();
        for &v in &frontier {
            core[v as usize] = k;
        }
        if !frontier.is_empty() {
            degeneracy = k;
        }
        while let Some(v) = frontier.pop() {
            remaining -= 1;
            for &w in g.neighbors(v) {
                if core[w as usize] == u32::MAX {
                    residual[w as usize] -= 1;
                    if residual[w as usize] <= k {
                        core[w as usize] = k;
                        frontier.push(w);
                    }
                }
            }
        }
        k += 1;
    }
    (core, degeneracy)
}

/// Full degree histogram (index = degree).
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let maxd = g.max_degree();
    let mut h = vec![0usize; maxd + 1];
    for v in g.vertices() {
        h[g.degree(v)] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edge_list;

    #[test]
    fn stats_of_star() {
        // Star K1,4: center degree 4, leaves degree 1.
        let g = from_edge_list(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.max_degree, 4);
        assert!((s.avg_degree - 1.6).abs() < 1e-12);
        assert!((s.pct_deg_le2 - 80.0).abs() < 1e-12);
        assert_eq!(s.isolated, 0);
    }

    #[test]
    fn isolated_counted() {
        let g = from_edge_list(4, &[(0, 1)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.isolated, 2);
        assert!((s.pct_deg_le2 - 100.0).abs() < 1e-12);
    }

    #[test]
    fn pct_deg_le_thresholds() {
        let g = from_edge_list(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert!((pct_deg_le(&g, 0) - 0.0).abs() < 1e-12);
        assert!((pct_deg_le(&g, 1) - 80.0).abs() < 1e-12);
        assert!((pct_deg_le(&g, 4) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = from_edge_list(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 6);
        assert_eq!(h[2], 6, "cycle is 2-regular");
    }

    #[test]
    fn coreness_of_known_shapes() {
        // Tree: everything peels at k ≤ 1 → degeneracy 1.
        let t = from_edge_list(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]);
        let (c, d) = coreness(&t);
        assert_eq!(d, 1);
        assert!(c.iter().all(|&x| x <= 1));

        // Cycle: 2-regular → every vertex coreness 2.
        let cy = from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (c, d) = coreness(&cy);
        assert_eq!(d, 2);
        assert!(c.iter().all(|&x| x == 2));

        // K4 with a pendant: clique coreness 3, pendant 1.
        let g = from_edge_list(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]);
        let (c, d) = coreness(&g);
        assert_eq!(d, 3);
        assert_eq!(c[4], 1);
        assert_eq!(c[0], 3);
    }

    #[test]
    fn coreness_is_monotone_under_deg2_peel() {
        // The DEG2 low side is exactly the ≤2-shell: every low vertex has
        // coreness ≤ 2.
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 300usize;
        let edges: Vec<(u32, u32)> = (0..900)
            .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
            .collect();
        let g = from_edge_list(n, &edges);
        let (core, _) = coreness(&g);
        for v in g.vertices() {
            if g.degree(v) <= 2 {
                assert!(core[v as usize] <= 2, "vertex {v}");
            }
        }
    }

    #[test]
    fn empty_graph_stats() {
        let g = Graph::empty(0);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.pct_deg_le2, 0.0);
    }
}
