//! Storage backends for the CSR arrays: resident heap vectors or byte
//! ranges of a shared, read-only file mapping (the `.sbg` format, see
//! [`crate::sbg`]).
//!
//! The design goal is that [`crate::Graph`] keeps its exact accessor API
//! (`neighbors(v)`, `edge_ids_of(v)`, `edge_list()`, …) regardless of where
//! the arrays live, so every solver and decomposer runs unmodified over a
//! mapped graph. Each array is a [`Slab<T>`] that derefs to `&[T]`; the
//! mapped variant points into an [`Arc<Mapping>`], so any number of graphs,
//! jobs, and serve connections share one mapping and the bytes cost page
//! cache, not heap.
//!
//! Mapped slabs reinterpret file bytes in place, which is only sound when
//! the platform layout matches the on-disk layout. [`crate::sbg`] constructs
//! them exclusively on little-endian targets (and, for the `u64 → usize`
//! offsets array, only on 64-bit targets); everywhere else it decodes into
//! heap slabs instead.

use std::fmt;
use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

/// Which backing store a [`crate::Graph`]'s arrays live in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphStore {
    /// Arrays are owned heap vectors (builder output, decoded files).
    Heap,
    /// Arrays alias a shared read-only file mapping of a `.sbg` file.
    Mapped,
}

/// Identity of the file backing a mapping: device, inode, size, and
/// modification time. Cheap to hash (no content pass over a multi-GB
/// mapping) and stable across separate opens of the same file, which is
/// what the engine's fingerprint cache needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileIdent {
    /// Device id (0 where the platform has no inode concept).
    pub dev: u64,
    /// Inode number (a path hash where the platform has no inode concept).
    pub ino: u64,
    /// File size in bytes.
    pub size: u64,
    /// Modification time, nanoseconds since the Unix epoch (0 if unknown).
    pub mtime_ns: u64,
}

impl FileIdent {
    fn from_metadata(path: &Path, meta: &std::fs::Metadata) -> FileIdent {
        let mtime_ns = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        #[cfg(unix)]
        {
            use std::os::unix::fs::MetadataExt;
            let _ = path;
            FileIdent {
                dev: meta.dev(),
                ino: meta.ino(),
                size: meta.len(),
                mtime_ns,
            }
        }
        #[cfg(not(unix))]
        {
            // No inode: substitute an FNV-1a hash of the path string.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in path.to_string_lossy().as_bytes() {
                h = (h ^ *b as u64).wrapping_mul(0x100_0000_01b3);
            }
            FileIdent {
                dev: 0,
                ino: h,
                size: meta.len(),
                mtime_ns,
            }
        }
    }
}

/// A read-only mapping of one file, shared via `Arc` by every slab cut
/// from it. On Unix this is `mmap(PROT_READ, MAP_SHARED)` — the kernel
/// pages bytes in on demand and the process pays page cache, not RSS.
/// Elsewhere (or when `SBREAK_NO_MMAP=1`, or if `mmap` fails) the file is
/// read into an 8-byte-aligned heap buffer with identical semantics.
///
/// The mapping is immutable for its whole lifetime, so sharing it across
/// threads is sound; it unmaps when the last `Arc` drops.
pub struct Mapping {
    data: MapData,
    ident: FileIdent,
    /// Byte offset and element count of the stored new→old renumbering
    /// permutation section, when the file carries one.
    pub(crate) perm: Option<(usize, usize)>,
}

enum MapData {
    #[cfg(unix)]
    Mmap {
        ptr: std::ptr::NonNull<u8>,
        len: usize,
    },
    /// 8-byte-aligned heap fallback; `len` is the byte length (the word
    /// vector is padded up to the next multiple of 8).
    Heap { words: Vec<u64>, len: usize },
}

// SAFETY: the mapped bytes are immutable (PROT_READ, never written through)
// for the lifetime of the Mapping, so shared access from any thread is fine.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_SHARED: i32 = 1;

    // std already links libc on every Unix target, so declaring the two
    // symbols directly avoids a dependency the container may not have.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

impl MapData {
    fn read_heap(file: &mut std::fs::File, len: usize) -> std::io::Result<MapData> {
        use std::io::Read;
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: the u64 buffer is a valid writable byte region of
        // `len.div_ceil(8) * 8 >= len` bytes; u64 has no invalid patterns.
        let bytes = unsafe {
            std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, words.len() * 8)
        };
        file.read_exact(&mut bytes[..len])?;
        Ok(MapData::Heap { words, len })
    }

    #[cfg(unix)]
    fn map(file: &mut std::fs::File, len: usize) -> std::io::Result<MapData> {
        use std::os::unix::io::AsRawFd;
        if len == 0 || std::env::var_os("SBREAK_NO_MMAP").is_some_and(|v| v == "1") {
            return Self::read_heap(file, len);
        }
        // SAFETY: fd is a valid open file descriptor and len > 0; a failed
        // map returns MAP_FAILED, handled below.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            // e.g. a filesystem without mmap support: degrade to a heap read.
            return Self::read_heap(file, len);
        }
        Ok(MapData::Mmap {
            ptr: std::ptr::NonNull::new(ptr as *mut u8).expect("mmap returned null"),
            len,
        })
    }

    #[cfg(not(unix))]
    fn map(file: &mut std::fs::File, len: usize) -> std::io::Result<MapData> {
        Self::read_heap(file, len)
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let MapData::Mmap { ptr, len } = self.data {
            // SAFETY: (ptr, len) came from a successful mmap and is unmapped
            // exactly once, here.
            unsafe { sys::munmap(ptr.as_ptr() as *mut _, len) };
        }
    }
}

impl Mapping {
    /// Map `path` read-only (whole file).
    pub fn open(path: &Path) -> std::io::Result<Mapping> {
        let mut file = std::fs::File::open(path)?;
        let meta = file.metadata()?;
        let ident = FileIdent::from_metadata(path, &meta);
        let len = usize::try_from(meta.len()).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large to map")
        })?;
        let data = MapData::map(&mut file, len)?;
        Ok(Mapping {
            data,
            ident,
            perm: None,
        })
    }

    /// The mapped bytes. The base pointer is at least 8-byte aligned
    /// (page-aligned from mmap; u64-backed in the heap fallback).
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        match &self.data {
            #[cfg(unix)]
            // SAFETY: (ptr, len) is the live read-only mapping.
            MapData::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(ptr.as_ptr(), *len) },
            MapData::Heap { words, len } => {
                // SAFETY: the word buffer covers `len` initialized bytes.
                unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, *len) }
            }
        }
    }

    /// Byte length of the mapping.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.data {
            #[cfg(unix)]
            MapData::Mmap { len, .. } => *len,
            MapData::Heap { len, .. } => *len,
        }
    }

    /// True when the mapping is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Identity of the backing file.
    #[inline]
    pub fn ident(&self) -> &FileIdent {
        &self.ident
    }

    /// The stored new→old renumbering permutation, if the file has one.
    /// `perm[new_id] = old_id`.
    pub fn perm_slice(&self) -> Option<&[u32]> {
        let (off, count) = self.perm?;
        debug_assert!(off % 4 == 0 && off + count * 4 <= self.len());
        // SAFETY: (off, count) was bounds- and alignment-checked against the
        // mapping when the section table was validated at load time.
        Some(unsafe {
            std::slice::from_raw_parts(self.bytes().as_ptr().add(off) as *const u32, count)
        })
    }

    /// True when this mapping was produced by `mmap` (false for the heap
    /// fallback). Lets tests pin the zero-copy path on Unix.
    pub fn is_mmap(&self) -> bool {
        match &self.data {
            #[cfg(unix)]
            MapData::Mmap { .. } => true,
            MapData::Heap { .. } => false,
        }
    }
}

impl fmt::Debug for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mapping")
            .field("len", &self.len())
            .field("mmap", &self.is_mmap())
            .field("ident", &self.ident)
            .finish()
    }
}

/// Marker for element types that may be reinterpreted directly from mapped
/// file bytes.
///
/// # Safety
/// Implementors must be plain-old-data: no padding, no niches, valid for
/// every bit pattern, and layout-identical to their on-disk little-endian
/// encoding on the targets where a mapped slab is constructed.
pub unsafe trait Pod: Copy + 'static {}
unsafe impl Pod for u8 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for usize {}
unsafe impl Pod for [u32; 2] {}

/// One CSR array: either an owned heap vector or a typed window into a
/// shared [`Mapping`]. Derefs to `&[T]`, so all existing slice-based
/// accessors work unchanged; equality and hashing are content-based.
pub enum Slab<T: Pod> {
    /// Owned, resident storage.
    Heap(Vec<T>),
    /// `len` elements starting `byte_off` bytes into the mapping.
    Mapped {
        map: Arc<Mapping>,
        byte_off: usize,
        len: usize,
    },
}

impl<T: Pod> Slab<T> {
    /// A slab aliasing `len` elements of `map` at `byte_off`. Bounds and
    /// alignment are asserted here so `deref` can be branch-free unsafe.
    pub(crate) fn mapped(map: Arc<Mapping>, byte_off: usize, len: usize) -> Slab<T> {
        let bytes = len
            .checked_mul(std::mem::size_of::<T>())
            .expect("slab byte length overflows usize");
        assert!(
            byte_off.is_multiple_of(std::mem::align_of::<T>()),
            "slab offset {byte_off} misaligned for element alignment {}",
            std::mem::align_of::<T>()
        );
        assert!(
            byte_off
                .checked_add(bytes)
                .is_some_and(|end| end <= map.len()),
            "slab range {byte_off}+{bytes} exceeds mapping of {} bytes",
            map.len()
        );
        Slab::Mapped { map, byte_off, len }
    }

    /// The mapping this slab aliases, if any.
    #[inline]
    pub(crate) fn mapping(&self) -> Option<&Arc<Mapping>> {
        match self {
            Slab::Heap(_) => None,
            Slab::Mapped { map, .. } => Some(map),
        }
    }

    /// Heap bytes owned by this slab (0 for mapped slabs — their bytes are
    /// page cache, charged to nobody's quota).
    #[inline]
    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            Slab::Heap(v) => v.len() * std::mem::size_of::<T>(),
            Slab::Mapped { .. } => 0,
        }
    }
}

impl<T: Pod> Deref for Slab<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        match self {
            Slab::Heap(v) => v,
            Slab::Mapped { map, byte_off, len } => {
                // SAFETY: constructor checked alignment and bounds; the
                // mapping is immutable and outlives `self` via the Arc; T is
                // Pod so any byte pattern is a valid value.
                unsafe {
                    std::slice::from_raw_parts(
                        map.bytes().as_ptr().add(*byte_off) as *const T,
                        *len,
                    )
                }
            }
        }
    }
}

impl<T: Pod> From<Vec<T>> for Slab<T> {
    fn from(v: Vec<T>) -> Self {
        Slab::Heap(v)
    }
}

impl<T: Pod> Default for Slab<T> {
    fn default() -> Self {
        Slab::Heap(Vec::new())
    }
}

impl<T: Pod> Clone for Slab<T> {
    fn clone(&self) -> Self {
        match self {
            Slab::Heap(v) => Slab::Heap(v.clone()),
            Slab::Mapped { map, byte_off, len } => Slab::Mapped {
                map: Arc::clone(map),
                byte_off: *byte_off,
                len: *len,
            },
        }
    }
}

impl<T: Pod + PartialEq> PartialEq for Slab<T> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl<T: Pod + Eq> Eq for Slab<T> {}

impl<T: Pod + fmt::Debug> fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_slab_behaves_like_vec() {
        let s: Slab<u32> = vec![3, 1, 4].into();
        assert_eq!(&*s, &[3, 1, 4]);
        assert_eq!(s.heap_bytes(), 12);
        assert!(s.mapping().is_none());
        let t = s.clone();
        assert_eq!(s, t);
    }

    #[test]
    fn mapped_slab_reads_file_bytes() {
        let dir = std::env::temp_dir().join("sbg-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("words.bin");
        let words: Vec<u64> = (0..16).map(|i| i * 0x0101).collect();
        let mut bytes = Vec::new();
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();

        let map = Arc::new(Mapping::open(&path).unwrap());
        assert_eq!(map.len(), 128);
        assert_eq!(map.ident().size, 128);
        let slab = Slab::<u64>::mapped(Arc::clone(&map), 0, 16);
        assert_eq!(&*slab, &words[..]);
        assert_eq!(slab.heap_bytes(), 0);
        // A second slab over the tail shares the same mapping.
        let tail = Slab::<u64>::mapped(Arc::clone(&map), 64, 8);
        assert_eq!(&*tail, &words[8..]);
        assert_eq!(Arc::strong_count(&map), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds mapping")]
    fn mapped_slab_rejects_out_of_bounds() {
        let dir = std::env::temp_dir().join("sbg-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("short.bin");
        std::fs::write(&path, [0u8; 8]).unwrap();
        let map = Arc::new(Mapping::open(&path).unwrap());
        let _ = Slab::<u64>::mapped(map, 0, 2);
    }

    #[test]
    fn heap_fallback_is_byte_identical() {
        let dir = std::env::temp_dir().join("sbg-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("odd.bin");
        // Deliberately not a multiple of 8 to exercise the padded tail.
        std::fs::write(&path, (0u8..13).collect::<Vec<_>>()).unwrap();
        let map = Mapping::open(&path).unwrap();
        assert_eq!(map.bytes(), &(0u8..13).collect::<Vec<_>>()[..]);
        assert_eq!(map.len(), 13);
    }
}
