//! CSR graph substrate for the symmetry-breaking study.
//!
//! Everything in this repository operates on [`Graph`]: an immutable,
//! undirected graph in compressed-sparse-row form with stable *edge ids*
//! (both arcs of an undirected edge share one id), which the edge-centric
//! algorithms (LMAX matching, EB coloring, BRIDGE marking) rely on.
//!
//! Submodules:
//! * [`csr`] — the graph type itself and its accessors.
//! * [`builder`] — edge-list ingestion: parallel sort, dedup, self-loop
//!   removal, direction symmetrization (the paper's preprocessing).
//! * [`bfs`] — level-synchronous parallel BFS (Step 1 of BRIDGE).
//! * [`components`] — parallel connected components.
//! * [`subgraph`] — vertex- and edge-induced subgraph materialization with
//!   id remapping.
//! * [`view`] — zero-copy edge-filtered views (the output form of the
//!   light-weight decompositions).
//! * [`editlog`] — dynamic-graph edit logs and overlay views: the delta
//!   substrate for incremental re-solving.
//! * [`io`] — edge-list and Matrix-Market readers/writers so the original
//!   SuiteSparse inputs drop in when available.
//! * [`stats`] — the Table II statistics (%DEG2, average degree, …).
//! * [`store`] — storage backends: heap vectors vs shared read-only file
//!   mappings (the out-of-core substrate).
//! * [`sbg`] — the `.sbg` on-disk CSR format: writer + zero-copy mapped
//!   loader.
//! * [`renumber`] — degree-ordered vertex renumbering for convert-time
//!   locality, with the stored new→old permutation.

pub mod bfs;
pub mod builder;
pub mod components;
pub mod csr;
pub mod editlog;
pub mod io;
pub mod renumber;
pub mod sbg;
pub mod stats;
pub mod store;
pub mod subgraph;
pub mod view;

pub use builder::GraphBuilder;
pub use csr::{Graph, VertexId, INVALID};
pub use editlog::{Edit, EditLog, Overlay};
pub use sbg::{map_sbg, write_sbg, SbgError};
pub use stats::GraphStats;
pub use store::{FileIdent, GraphStore, Mapping};
pub use view::EdgeView;
