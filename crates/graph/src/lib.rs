//! CSR graph substrate for the symmetry-breaking study.
//!
//! Everything in this repository operates on [`Graph`]: an immutable,
//! undirected graph in compressed-sparse-row form with stable *edge ids*
//! (both arcs of an undirected edge share one id), which the edge-centric
//! algorithms (LMAX matching, EB coloring, BRIDGE marking) rely on.
//!
//! Submodules:
//! * [`csr`] — the graph type itself and its accessors.
//! * [`builder`] — edge-list ingestion: parallel sort, dedup, self-loop
//!   removal, direction symmetrization (the paper's preprocessing).
//! * [`bfs`] — level-synchronous parallel BFS (Step 1 of BRIDGE).
//! * [`components`] — parallel connected components.
//! * [`subgraph`] — vertex- and edge-induced subgraph materialization with
//!   id remapping.
//! * [`view`] — zero-copy edge-filtered views (the output form of the
//!   light-weight decompositions).
//! * [`io`] — edge-list and Matrix-Market readers/writers so the original
//!   SuiteSparse inputs drop in when available.
//! * [`stats`] — the Table II statistics (%DEG2, average degree, …).

pub mod bfs;
pub mod builder;
pub mod components;
pub mod csr;
pub mod io;
pub mod stats;
pub mod subgraph;
pub mod view;

pub use builder::GraphBuilder;
pub use csr::{Graph, VertexId, INVALID};
pub use stats::GraphStats;
pub use view::EdgeView;
