//! The `.sbg` on-disk CSR format and its zero-copy mapped loader.
//!
//! A `.sbg` file is the CSR arrays of one [`Graph`], laid out so a mapping
//! of the file can be aliased in place (no decode pass, no heap copy):
//!
//! ```text
//! offset  size      field
//! 0       8         magic  "SBGRAPH\0"
//! 8       4         version (u32 LE) — currently 1
//! 12      4         byte-order mark (u32 LE) — 0x01020304 as written by a
//!                   little-endian encoder; any other pattern means the
//!                   file was produced with the wrong byte order
//! 16      8         n — vertex count (u64 LE)
//! 24      8         m — undirected edge count (u64 LE)
//! 32      8         flags (u64 LE); bit 0 = file carries a renumbering
//!                   permutation section
//! 40      24        reserved, zero
//! 64      (n+1)*8   offsets   — CSR arc offsets (u64 LE), offsets[n] = 2m
//! ..      2m*4      neighbors — arc targets (u32 LE)
//! ..      2m*4      edge_ids  — undirected edge id per arc (u32 LE)
//! ..      m*8       edges     — endpoint pairs [u, v] (u32 LE each, u < v)
//! ..      n*4       perm      — optional: new→old vertex permutation
//! ```
//!
//! Every section starts on an 8-byte boundary (explicit zero padding is
//! inserted between sections; with these element sizes the sections are
//! naturally aligned, but the writer and reader both go through the same
//! [`pad8`] so the invariant survives format evolution). All integers are
//! little-endian with fixed widths.
//!
//! The loader validates the header, the section table against the file
//! size, and the offsets array (monotone, `offsets[0] = 0`,
//! `offsets[n] = 2m` — an O(n) pass) before exposing any slice. Neighbor
//! and edge payloads are *not* scanned at load time: that would fault in
//! the whole mapping and defeat out-of-core loading. Callers that want a
//! full structural check can still run [`Graph::validate`].

use crate::csr::Graph;
use crate::store::{Mapping, Slab};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// File magic: 8 bytes at offset 0.
pub const MAGIC: [u8; 8] = *b"SBGRAPH\0";
/// Current format version.
pub const VERSION: u32 = 1;
/// Byte-order mark as seen by a little-endian reader of a little-endian
/// file. A big-endian writer of the same constant produces `0x04030201`.
pub const BOM: u32 = 0x0102_0304;
/// Header length in bytes.
pub const HEADER_LEN: usize = 64;
/// Flags bit 0: the file carries a new→old renumbering permutation.
pub const FLAG_HAS_PERM: u64 = 1;

/// Typed errors from the `.sbg` writer and loader.
#[derive(Debug)]
pub enum SbgError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`VERSION`].
    Version {
        /// Version found in the header.
        found: u32,
    },
    /// The byte-order mark shows the file was written with the opposite
    /// endianness (or a corrupted mark).
    Endianness {
        /// The mark as decoded little-endian.
        found: u32,
    },
    /// The file is shorter than its header and section table require.
    Truncated {
        /// Bytes the sections require.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// Structurally invalid content (non-monotone offsets, size overflow,
    /// trailing garbage, unknown flags, …).
    Corrupt(String),
}

impl std::fmt::Display for SbgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SbgError::Io(e) => write!(f, "io error: {e}"),
            SbgError::BadMagic => write!(f, "not an .sbg file (bad magic)"),
            SbgError::Version { found } => {
                write!(f, "unsupported .sbg version {found} (expected {VERSION})")
            }
            SbgError::Endianness { found } => write!(
                f,
                "byte-order mark {found:#010x} is not {BOM:#010x}: file written with the wrong endianness"
            ),
            SbgError::Truncated { expected, found } => {
                write!(f, "truncated .sbg: need {expected} bytes, file has {found}")
            }
            SbgError::Corrupt(msg) => write!(f, "corrupt .sbg: {msg}"),
        }
    }
}

impl std::error::Error for SbgError {}

impl From<std::io::Error> for SbgError {
    fn from(e: std::io::Error) -> Self {
        SbgError::Io(e)
    }
}

/// Round `off` up to the next multiple of 8 (section alignment).
#[inline]
pub fn pad8(off: u64) -> u64 {
    (off + 7) & !7
}

/// Byte layout of one file: section start offsets and total length, all
/// derived from `(n, m, has_perm)`.
struct Layout {
    offsets: u64,
    neighbors: u64,
    edge_ids: u64,
    edges: u64,
    perm: u64,
    total: u64,
}

impl Layout {
    fn new(n: u64, m: u64, has_perm: bool) -> Option<Layout> {
        let arcs = m.checked_mul(2)?;
        let offsets = HEADER_LEN as u64;
        let neighbors = pad8(offsets.checked_add(n.checked_add(1)?.checked_mul(8)?)?);
        let edge_ids = pad8(neighbors.checked_add(arcs.checked_mul(4)?)?);
        let edges = pad8(edge_ids.checked_add(arcs.checked_mul(4)?)?);
        let perm = pad8(edges.checked_add(m.checked_mul(8)?)?);
        let total = if has_perm {
            perm.checked_add(n.checked_mul(4)?)?
        } else {
            perm
        };
        Some(Layout {
            offsets,
            neighbors,
            edge_ids,
            edges,
            perm,
            total,
        })
    }
}

/// Serialize `g` (plus an optional new→old permutation) to `path`.
/// Returns the number of bytes written.
///
/// The permutation, when given, must have exactly `n` entries; it is
/// stored verbatim so downstream consumers can map solver output on the
/// renumbered graph back to original vertex ids (`perm[new] = old`).
pub fn write_sbg(g: &Graph, perm: Option<&[u32]>, path: &Path) -> Result<u64, SbgError> {
    let n = g.num_vertices() as u64;
    let m = g.num_edges() as u64;
    if let Some(p) = perm {
        if p.len() as u64 != n {
            return Err(SbgError::Corrupt(format!(
                "permutation has {} entries for {n} vertices",
                p.len()
            )));
        }
    }
    let layout = Layout::new(n, m, perm.is_some())
        .ok_or_else(|| SbgError::Corrupt("graph too large for the format".into()))?;

    let file = std::fs::File::create(path)?;
    let mut w = CountingWriter {
        inner: std::io::BufWriter::new(file),
        written: 0,
    };

    let mut header = [0u8; HEADER_LEN];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..12].copy_from_slice(&VERSION.to_le_bytes());
    header[12..16].copy_from_slice(&BOM.to_le_bytes());
    header[16..24].copy_from_slice(&n.to_le_bytes());
    header[24..32].copy_from_slice(&m.to_le_bytes());
    let flags: u64 = if perm.is_some() { FLAG_HAS_PERM } else { 0 };
    header[32..40].copy_from_slice(&flags.to_le_bytes());
    w.write_all(&header)?;

    write_u64s(&mut w, g.raw_offsets().iter().map(|&o| o as u64))?;
    w.pad_to(layout.neighbors)?;
    write_u32s(&mut w, g.raw_neighbors().iter().copied())?;
    w.pad_to(layout.edge_ids)?;
    write_u32s(&mut w, g.raw_edge_ids().iter().copied())?;
    w.pad_to(layout.edges)?;
    write_u32s(&mut w, g.edge_list().iter().flat_map(|&[u, v]| [u, v]))?;
    if let Some(p) = perm {
        w.pad_to(layout.perm)?;
        write_u32s(&mut w, p.iter().copied())?;
    }
    debug_assert_eq!(w.written, layout.total);
    w.inner.flush()?;
    Ok(w.written)
}

struct CountingWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> CountingWriter<W> {
    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
        self.inner.write_all(buf)?;
        self.written += buf.len() as u64;
        Ok(())
    }

    /// Write zero padding up to absolute offset `target`.
    fn pad_to(&mut self, target: u64) -> std::io::Result<()> {
        debug_assert!(target >= self.written && target - self.written < 8);
        const ZERO: [u8; 8] = [0; 8];
        let gap = (target - self.written) as usize;
        self.write_all(&ZERO[..gap])
    }
}

/// Stream little-endian u64s through a fixed chunk buffer (no O(n) staging
/// allocation, amortized syscalls).
fn write_u64s<W: Write>(
    w: &mut CountingWriter<W>,
    it: impl Iterator<Item = u64>,
) -> std::io::Result<()> {
    let mut buf = [0u8; 8 * 1024];
    let mut used = 0;
    for v in it {
        buf[used..used + 8].copy_from_slice(&v.to_le_bytes());
        used += 8;
        if used == buf.len() {
            w.write_all(&buf)?;
            used = 0;
        }
    }
    w.write_all(&buf[..used])
}

/// Stream little-endian u32s through a fixed chunk buffer.
fn write_u32s<W: Write>(
    w: &mut CountingWriter<W>,
    it: impl Iterator<Item = u32>,
) -> std::io::Result<()> {
    let mut buf = [0u8; 8 * 1024];
    let mut used = 0;
    for v in it {
        buf[used..used + 4].copy_from_slice(&v.to_le_bytes());
        used += 4;
        if used == buf.len() {
            w.write_all(&buf)?;
            used = 0;
        }
    }
    w.write_all(&buf[..used])
}

/// Map `path` and expose it as a [`Graph`] whose arrays alias the mapping.
///
/// On 64-bit little-endian targets all four CSR arrays are zero-copy; on
/// other targets the arrays are decoded into heap storage (same `Graph`,
/// same results, no aliasing). Validation covers the header, the section
/// table against the file size, and the offsets array; see the module
/// docs for what is deliberately *not* scanned.
pub fn map_sbg(path: &Path) -> Result<Graph, SbgError> {
    let mut mapping = Mapping::open(path)?;
    let found = mapping.len() as u64;
    if mapping.len() < HEADER_LEN {
        return Err(SbgError::Truncated {
            expected: HEADER_LEN as u64,
            found,
        });
    }
    let (n, m, flags) = {
        let bytes = mapping.bytes();
        if bytes[0..8] != MAGIC {
            return Err(SbgError::BadMagic);
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let version = u32_at(8);
        if version != VERSION {
            return Err(SbgError::Version { found: version });
        }
        let bom = u32_at(12);
        if bom != BOM {
            return Err(SbgError::Endianness { found: bom });
        }
        (u64_at(16), u64_at(24), u64_at(32))
    };
    if flags & !FLAG_HAS_PERM != 0 {
        return Err(SbgError::Corrupt(format!("unknown flags {flags:#x}")));
    }
    let has_perm = flags & FLAG_HAS_PERM != 0;
    let layout = Layout::new(n, m, has_perm)
        .ok_or_else(|| SbgError::Corrupt("section table overflows u64".into()))?;
    if layout.total > found {
        return Err(SbgError::Truncated {
            expected: layout.total,
            found,
        });
    }
    if layout.total < found {
        return Err(SbgError::Corrupt(format!(
            "{} trailing bytes after the last section",
            found - layout.total
        )));
    }
    let n_us = usize::try_from(n).map_err(|_| SbgError::Corrupt("n overflows usize".into()))?;
    let m_us = usize::try_from(m).map_err(|_| SbgError::Corrupt("m overflows usize".into()))?;
    let arcs = 2 * m_us;

    // Validate the offsets section: offsets[0] = 0, monotone, last = 2m.
    // This is the array the accessors index with, so out-of-bounds values
    // here must be a typed load error, not a later panic or OOB slice.
    {
        let bytes = mapping.bytes();
        let off_base = layout.offsets as usize;
        let word = |i: usize| {
            u64::from_le_bytes(
                bytes[off_base + i * 8..off_base + i * 8 + 8]
                    .try_into()
                    .unwrap(),
            )
        };
        let mut prev = word(0);
        if prev != 0 {
            return Err(SbgError::Corrupt(format!("offsets[0] = {prev}, want 0")));
        }
        for i in 1..=n_us {
            let cur = word(i);
            if cur < prev {
                return Err(SbgError::Corrupt(format!(
                    "offsets not monotone at index {i} ({cur} < {prev})"
                )));
            }
            prev = cur;
        }
        if prev != arcs as u64 {
            return Err(SbgError::Corrupt(format!(
                "offsets[{n_us}] = {prev} out of bounds for {arcs} arcs"
            )));
        }
    }
    if has_perm {
        mapping.perm = Some((layout.perm as usize, n_us));
    }
    let map = Arc::new(mapping);

    // Zero-copy requires the in-memory element layout to equal the on-disk
    // one: little-endian integers, and usize == u64 for the offsets array.
    #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
    {
        Ok(Graph::from_slabs(
            Slab::<usize>::mapped(Arc::clone(&map), layout.offsets as usize, n_us + 1),
            Slab::<u32>::mapped(Arc::clone(&map), layout.neighbors as usize, arcs),
            Slab::<u32>::mapped(Arc::clone(&map), layout.edge_ids as usize, arcs),
            Slab::<[u32; 2]>::mapped(Arc::clone(&map), layout.edges as usize, m_us),
        ))
    }
    #[cfg(not(all(target_endian = "little", target_pointer_width = "64")))]
    {
        // Decode copy: correctness everywhere, zero-copy nowhere.
        let bytes = map.bytes();
        let off_base = layout.offsets as usize;
        let offsets: Vec<usize> = (0..=n_us)
            .map(|i| {
                u64::from_le_bytes(
                    bytes[off_base + i * 8..off_base + i * 8 + 8]
                        .try_into()
                        .unwrap(),
                ) as usize
            })
            .collect();
        let u32s = |base: usize, count: usize| -> Vec<u32> {
            (0..count)
                .map(|i| {
                    u32::from_le_bytes(bytes[base + i * 4..base + i * 4 + 4].try_into().unwrap())
                })
                .collect()
        };
        let neighbors = u32s(layout.neighbors as usize, arcs);
        let edge_ids = u32s(layout.edge_ids as usize, arcs);
        let flat = u32s(layout.edges as usize, 2 * m_us);
        let edges: Vec<[u32; 2]> = flat.chunks_exact(2).map(|c| [c[0], c[1]]).collect();
        // The perm section (if any) is validated above but not attached to
        // the decoded heap graph; [`read_sbg_perm`] recovers it portably.
        let _ = &map;
        Ok(Graph::from_parts(offsets, neighbors, edge_ids, edges))
    }
}

/// Read just the stored new→old permutation from a `.sbg` file (decoded,
/// endian-portable — works whether or not the graph itself would be
/// mapped zero-copy). Returns `None` when the file carries no permutation.
pub fn read_sbg_perm(path: &Path) -> Result<Option<Vec<u32>>, SbgError> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = std::fs::File::open(path)?;
    let found = f.metadata()?.len();
    if found < HEADER_LEN as u64 {
        return Err(SbgError::Truncated {
            expected: HEADER_LEN as u64,
            found,
        });
    }
    let mut header = [0u8; HEADER_LEN];
    f.read_exact(&mut header)?;
    if header[0..8] != MAGIC {
        return Err(SbgError::BadMagic);
    }
    let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(SbgError::Version { found: version });
    }
    let bom = u32::from_le_bytes(header[12..16].try_into().unwrap());
    if bom != BOM {
        return Err(SbgError::Endianness { found: bom });
    }
    let n = u64::from_le_bytes(header[16..24].try_into().unwrap());
    let m = u64::from_le_bytes(header[24..32].try_into().unwrap());
    let flags = u64::from_le_bytes(header[32..40].try_into().unwrap());
    if flags & FLAG_HAS_PERM == 0 {
        return Ok(None);
    }
    let layout = Layout::new(n, m, true)
        .ok_or_else(|| SbgError::Corrupt("section table overflows u64".into()))?;
    if layout.total > found {
        return Err(SbgError::Truncated {
            expected: layout.total,
            found,
        });
    }
    f.seek(SeekFrom::Start(layout.perm))?;
    let n_us = usize::try_from(n).map_err(|_| SbgError::Corrupt("n overflows usize".into()))?;
    let mut buf = vec![0u8; n_us * 4];
    f.read_exact(&mut buf)?;
    Ok(Some(
        buf.chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edge_list;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sbg-format-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> Graph {
        from_edge_list(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)])
    }

    #[test]
    fn round_trip_equals_heap_graph() {
        let g = sample();
        let path = tmp("round.sbg");
        let written = write_sbg(&g, None, &path).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        let h = map_sbg(&path).unwrap();
        assert_eq!(g, h);
        h.validate().unwrap();
        assert!(h.renumber_perm().is_none());
    }

    #[test]
    fn round_trip_with_perm() {
        let g = sample();
        let perm: Vec<u32> = (0..6).rev().collect();
        let path = tmp("perm.sbg");
        write_sbg(&g, Some(&perm), &path).unwrap();
        let h = map_sbg(&path).unwrap();
        assert_eq!(g, h);
        assert_eq!(h.renumber_perm().unwrap(), &perm[..]);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::empty(4);
        let path = tmp("empty.sbg");
        write_sbg(&g, None, &path).unwrap();
        let h = map_sbg(&path).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn writer_rejects_wrong_perm_length() {
        let g = sample();
        let err = write_sbg(&g, Some(&[0, 1]), &tmp("badperm.sbg")).unwrap_err();
        assert!(matches!(err, SbgError::Corrupt(_)), "{err}");
    }

    #[test]
    fn layout_is_aligned_and_padded() {
        for (n, m) in [(0u64, 0u64), (1, 0), (5, 7), (100, 1)] {
            let l = Layout::new(n, m, true).unwrap();
            for off in [l.offsets, l.neighbors, l.edge_ids, l.edges, l.perm] {
                assert_eq!(off % 8, 0, "section at {off} misaligned (n={n}, m={m})");
            }
            assert!(l.total >= l.perm);
        }
    }
}
