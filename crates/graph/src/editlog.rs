//! Dynamic-graph edit logs and overlay views.
//!
//! Production traffic mutates graphs; rebuilding the CSR for every edge
//! change throws away both the build work and every warm solver state
//! keyed to the old structure. An [`EditLog`] records a sequence of
//! structural edits (add/remove edge, add vertex) against an immutable
//! base [`Graph`], and an [`Overlay`] resolves the log into its *net
//! effect* — the set of edges added relative to the base, the set
//! removed, and the grown vertex count — so solvers can read the edited
//! structure (degrees, sorted adjacency, edge membership) without
//! touching the base CSR.
//!
//! Semantics are sequential and idempotent-at-the-end: the log is
//! replayed in order, and only the final membership of each edge
//! matters. Adding an edge that exists is a no-op, removing one that
//! does not exist is a no-op, self-loops are dropped, and orientation is
//! normalized to `(min, max)` exactly as [`crate::builder::GraphBuilder`]
//! does — so [`EditLog::materialize`] is *byte-identical* to rebuilding
//! from the edited edge list directly (pinned by `tests/properties.rs`).
//!
//! Vertex ids obey the same hardening bound as file ingestion
//! ([`crate::io`]): ids above [`MAX_EDIT_VERTEX`] are rejected at parse
//! time and panic at push time, mirroring `IoError::IdOverflow`.

use crate::csr::{Graph, VertexId};
use std::collections::BTreeSet;
use std::collections::HashMap;
use std::fmt;

/// Largest vertex id an edit may reference — the same bound the
/// edge-list reader enforces (`io::MAX_VERTEX_ID`), so a shrunk fuzz
/// case replays identically whether it arrives via file or edit log.
pub const MAX_EDIT_VERTEX: u64 = u32::MAX as u64 - 2;

/// One structural edit against a base graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edit {
    /// Add the undirected edge `{u, v}` (self-loops dropped, duplicates
    /// merged, endpoints beyond the current vertex count grow it).
    AddEdge(VertexId, VertexId),
    /// Remove the undirected edge `{u, v}` if present.
    RemoveEdge(VertexId, VertexId),
    /// Grow the vertex count to at least `n` (never shrinks).
    AddVertex(usize),
}

/// Error from parsing a wire-format edit log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditParseError {
    /// Malformed token (not `+u-v`, `-u-v`, or `v:n`).
    Parse(String),
    /// A vertex id exceeded [`MAX_EDIT_VERTEX`] — the io hardening bound.
    IdOverflow(u64),
}

impl fmt::Display for EditParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditParseError::Parse(tok) => write!(f, "malformed edit token '{tok}'"),
            EditParseError::IdOverflow(id) => {
                write!(f, "vertex id {id} exceeds the maximum {MAX_EDIT_VERTEX}")
            }
        }
    }
}

impl std::error::Error for EditParseError {}

/// An ordered sequence of edits against a base graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EditLog {
    edits: Vec<Edit>,
}

fn assert_id(v: VertexId) {
    assert!(
        v as u64 <= MAX_EDIT_VERTEX,
        "vertex id {v} exceeds the maximum {MAX_EDIT_VERTEX}"
    );
}

impl EditLog {
    /// An empty log.
    pub fn new() -> EditLog {
        EditLog::default()
    }

    /// Append an add-edge edit.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        assert_id(u);
        assert_id(v);
        self.edits.push(Edit::AddEdge(u, v));
        self
    }

    /// Append a remove-edge edit.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        assert_id(u);
        assert_id(v);
        self.edits.push(Edit::RemoveEdge(u, v));
        self
    }

    /// Append a grow-vertex-count edit.
    pub fn add_vertex(&mut self, n: usize) -> &mut Self {
        assert!(
            n as u64 <= MAX_EDIT_VERTEX + 1,
            "vertex count {n} exceeds the maximum {}",
            MAX_EDIT_VERTEX + 1
        );
        self.edits.push(Edit::AddVertex(n));
        self
    }

    /// Append one edit (already-validated form).
    pub fn push(&mut self, e: Edit) -> &mut Self {
        match e {
            Edit::AddEdge(u, v) => self.add_edge(u, v),
            Edit::RemoveEdge(u, v) => self.remove_edge(u, v),
            Edit::AddVertex(n) => self.add_vertex(n),
        }
    }

    /// Append every edit of `other`, in order.
    pub fn extend(&mut self, other: &EditLog) -> &mut Self {
        self.edits.extend_from_slice(&other.edits);
        self
    }

    /// The edits, in application order.
    pub fn edits(&self) -> &[Edit] {
        &self.edits
    }

    /// Number of edits.
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Render the wire format: comma-separated `+u-v` (add edge),
    /// `-u-v` (remove edge), `v:n` (grow vertex count) tokens.
    /// [`EditLog::parse`] inverts it.
    pub fn wire(&self) -> String {
        let toks: Vec<String> = self
            .edits
            .iter()
            .map(|e| match *e {
                Edit::AddEdge(u, v) => format!("+{u}-{v}"),
                Edit::RemoveEdge(u, v) => format!("-{u}-{v}"),
                Edit::AddVertex(n) => format!("v:{n}"),
            })
            .collect();
        toks.join(",")
    }

    /// Parse the wire format produced by [`EditLog::wire`]. Rejects
    /// vertex ids above [`MAX_EDIT_VERTEX`] with the same hardening
    /// posture as the edge-list reader.
    pub fn parse(s: &str) -> Result<EditLog, EditParseError> {
        let mut log = EditLog::new();
        let s = s.trim();
        if s.is_empty() {
            return Ok(log);
        }
        let id = |tok: &str, part: &str| -> Result<VertexId, EditParseError> {
            let raw: u64 = part
                .parse()
                .map_err(|_| EditParseError::Parse(tok.to_string()))?;
            if raw > MAX_EDIT_VERTEX {
                return Err(EditParseError::IdOverflow(raw));
            }
            Ok(raw as VertexId)
        };
        for tok in s.split(',') {
            let tok = tok.trim();
            if let Some(rest) = tok.strip_prefix("v:") {
                let n: u64 = rest
                    .parse()
                    .map_err(|_| EditParseError::Parse(tok.to_string()))?;
                if n > MAX_EDIT_VERTEX + 1 {
                    return Err(EditParseError::IdOverflow(n));
                }
                log.edits.push(Edit::AddVertex(n as usize));
            } else if let Some(rest) = tok.strip_prefix('+') {
                let (u, v) = rest
                    .split_once('-')
                    .ok_or_else(|| EditParseError::Parse(tok.to_string()))?;
                let (u, v) = (id(tok, u)?, id(tok, v)?);
                log.edits.push(Edit::AddEdge(u, v));
            } else if let Some(rest) = tok.strip_prefix('-') {
                let (u, v) = rest
                    .split_once('-')
                    .ok_or_else(|| EditParseError::Parse(tok.to_string()))?;
                let (u, v) = (id(tok, u)?, id(tok, v)?);
                log.edits.push(Edit::RemoveEdge(u, v));
            } else {
                return Err(EditParseError::Parse(tok.to_string()));
            }
        }
        Ok(log)
    }

    /// Resolve the log against `base` into an [`Overlay`].
    pub fn apply<'g>(&self, base: &'g Graph) -> Overlay<'g> {
        Overlay::new(base, self)
    }

    /// Build the edited graph as a fresh heap CSR. Byte-identical to
    /// `from_edge_list(new_n, base edges − removed + added)`.
    pub fn materialize(&self, base: &Graph) -> Graph {
        self.apply(base).materialize()
    }
}

/// The net effect of an [`EditLog`] on a base graph, readable without
/// rebuilding the CSR.
///
/// `added` holds normalized edges present in the edited graph but not
/// the base; `removed` holds base edges absent from the edited graph.
/// Adjacency deltas are indexed per endpoint so [`Overlay::neighbors`]
/// merges the (sorted) base row with the (sorted) delta in one pass.
#[derive(Debug)]
pub struct Overlay<'g> {
    base: &'g Graph,
    n: usize,
    added: BTreeSet<(u32, u32)>,
    removed: BTreeSet<(u32, u32)>,
    added_adj: HashMap<u32, Vec<u32>>,
    removed_adj: HashMap<u32, Vec<u32>>,
}

impl<'g> Overlay<'g> {
    fn new(base: &'g Graph, log: &EditLog) -> Overlay<'g> {
        let base_n = base.num_vertices();
        let mut n = base_n;
        let mut added: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut removed: BTreeSet<(u32, u32)> = BTreeSet::new();
        let in_base = |u: u32, v: u32| {
            (u as usize) < base_n && (v as usize) < base_n && base.has_edge(u, v)
        };
        for &e in log.edits() {
            match e {
                Edit::AddEdge(u, v) => {
                    if u == v {
                        continue; // self-loops drop, as in the builder
                    }
                    let key = (u.min(v), u.max(v));
                    n = n.max(key.1 as usize + 1);
                    if in_base(key.0, key.1) {
                        removed.remove(&key);
                    } else {
                        added.insert(key);
                    }
                }
                Edit::RemoveEdge(u, v) => {
                    let key = (u.min(v), u.max(v));
                    if !added.remove(&key) && in_base(key.0, key.1) {
                        removed.insert(key);
                    }
                }
                Edit::AddVertex(want) => n = n.max(want),
            }
        }
        let mut added_adj: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(u, v) in &added {
            added_adj.entry(u).or_default().push(v);
            added_adj.entry(v).or_default().push(u);
        }
        let mut removed_adj: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(u, v) in &removed {
            removed_adj.entry(u).or_default().push(v);
            removed_adj.entry(v).or_default().push(u);
        }
        for adj in added_adj.values_mut().chain(removed_adj.values_mut()) {
            adj.sort_unstable();
        }
        Overlay {
            base,
            n,
            added,
            removed,
            added_adj,
            removed_adj,
        }
    }

    /// The base graph this overlay edits.
    pub fn base(&self) -> &'g Graph {
        self.base
    }

    /// Vertex count of the edited graph.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Edge count of the edited graph.
    pub fn num_edges(&self) -> usize {
        self.base.num_edges() - self.removed.len() + self.added.len()
    }

    /// Normalized edges present in the edited graph but not the base.
    pub fn added_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.added.iter().copied()
    }

    /// Normalized base edges absent from the edited graph.
    pub fn removed_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.removed.iter().copied()
    }

    /// Degree of `v` in the edited graph.
    pub fn degree(&self, v: VertexId) -> usize {
        let base = if (v as usize) < self.base.num_vertices() {
            self.base.degree(v)
        } else {
            0
        };
        base + self.added_adj.get(&v).map_or(0, Vec::len)
            - self.removed_adj.get(&v).map_or(0, Vec::len)
    }

    /// Whether `{u, v}` is an edge of the edited graph.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        let key = (u.min(v), u.max(v));
        if self.added.contains(&key) {
            return true;
        }
        if self.removed.contains(&key) {
            return false;
        }
        (key.1 as usize) < self.base.num_vertices() && self.base.has_edge(key.0, key.1)
    }

    /// Sorted neighbors of `v` in the edited graph (merges the base row
    /// with the adjacency delta; allocates one small vector).
    pub fn neighbors(&self, v: VertexId) -> Vec<VertexId> {
        let base: &[u32] = if (v as usize) < self.base.num_vertices() {
            self.base.neighbors(v)
        } else {
            &[]
        };
        let empty: &[u32] = &[];
        let add = self.added_adj.get(&v).map_or(empty, Vec::as_slice);
        let rem = self.removed_adj.get(&v).map_or(empty, Vec::as_slice);
        let mut out = Vec::with_capacity(base.len() + add.len() - rem.len());
        let (mut i, mut j, mut k) = (0, 0, 0);
        while i < base.len() || j < add.len() {
            let take_base = j >= add.len() || (i < base.len() && base[i] < add[j]);
            if take_base {
                let w = base[i];
                i += 1;
                // Skip removed base neighbors (both lists sorted).
                while k < rem.len() && rem[k] < w {
                    k += 1;
                }
                if k < rem.len() && rem[k] == w {
                    k += 1;
                    continue;
                }
                out.push(w);
            } else {
                out.push(add[j]);
                j += 1;
            }
        }
        out
    }

    /// Every vertex whose incident structure changed: endpoints of added
    /// and removed edges plus all vertices new to the edited graph.
    /// Sorted, deduplicated.
    pub fn touched(&self) -> Vec<VertexId> {
        let mut t: Vec<u32> = self
            .added
            .iter()
            .chain(self.removed.iter())
            .flat_map(|&(u, v)| [u, v])
            .collect();
        t.extend(self.base.num_vertices() as u32..self.n as u32);
        t.sort_unstable();
        t.dedup();
        t
    }

    /// The full edited edge list (normalized, sorted).
    pub fn edge_pairs(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.num_edges());
        let mut add = self.added.iter().copied().peekable();
        for &[u, v] in self.base.edge_list() {
            let key = (u, v);
            while add.peek().is_some_and(|&a| a < key) {
                out.push(add.next().unwrap());
            }
            if !self.removed.contains(&key) {
                out.push(key);
            }
        }
        out.extend(add);
        out
    }

    /// Build the edited graph as a fresh heap CSR.
    pub fn materialize(&self) -> Graph {
        crate::builder::from_edge_list(self.n, &self.edge_pairs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edge_list;

    fn path4() -> Graph {
        from_edge_list(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn add_remove_net_effect() {
        let g = path4();
        let mut log = EditLog::new();
        log.add_edge(0, 3) // new
            .add_edge(1, 0) // duplicate of base (0,1) — no-op
            .remove_edge(1, 2) // base edge out
            .remove_edge(0, 3) // cancels the add
            .add_edge(3, 0); // back in
        let ov = log.apply(&g);
        assert_eq!(ov.num_vertices(), 4);
        assert_eq!(ov.num_edges(), 3);
        assert!(ov.has_edge(0, 3));
        assert!(!ov.has_edge(1, 2));
        assert!(ov.has_edge(0, 1));
        assert_eq!(ov.neighbors(0), vec![1, 3]);
        assert_eq!(ov.neighbors(1), vec![0]);
        assert_eq!(ov.degree(2), 1);
        assert_eq!(ov.touched(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn vertex_growth_and_selfloops() {
        let g = path4();
        let mut log = EditLog::new();
        log.add_edge(2, 2) // self-loop drops
            .add_edge(3, 6) // grows n to 7
            .add_vertex(9);
        let ov = log.apply(&g);
        assert_eq!(ov.num_vertices(), 9);
        assert_eq!(ov.degree(6), 1);
        assert_eq!(ov.degree(8), 0);
        assert_eq!(ov.neighbors(6), vec![3]);
        let m = ov.materialize();
        assert_eq!(m.num_vertices(), 9);
        assert_eq!(m.num_edges(), 4);
        m.validate().unwrap();
    }

    #[test]
    fn materialize_equals_direct_build() {
        let g = path4();
        let mut log = EditLog::new();
        log.remove_edge(0, 1).add_edge(1, 3).add_edge(3, 1);
        let edited = log.materialize(&g);
        let direct = from_edge_list(4, &[(1, 2), (2, 3), (1, 3)]);
        assert_eq!(edited.edge_list(), direct.edge_list());
        assert_eq!(edited.num_vertices(), direct.num_vertices());
        for v in edited.vertices() {
            assert_eq!(edited.neighbors(v), direct.neighbors(v));
            assert_eq!(edited.edge_ids_of(v), direct.edge_ids_of(v));
        }
    }

    #[test]
    fn remove_absent_is_noop() {
        let g = path4();
        let mut log = EditLog::new();
        log.remove_edge(0, 3).remove_edge(2, 1).remove_edge(1, 2);
        let ov = log.apply(&g);
        assert_eq!(ov.num_edges(), 2);
        assert!(!ov.has_edge(1, 2));
    }

    #[test]
    fn wire_round_trip() {
        let mut log = EditLog::new();
        log.add_edge(3, 1).remove_edge(0, 2).add_vertex(12);
        let wire = log.wire();
        assert_eq!(wire, "+3-1,-0-2,v:12");
        assert_eq!(EditLog::parse(&wire).unwrap(), log);
        assert_eq!(EditLog::parse("").unwrap(), EditLog::new());
        assert_eq!(EditLog::parse(" +1-2 , v:4 ").unwrap().len(), 2);
    }

    #[test]
    fn parse_rejects_overflow_and_garbage() {
        // The io hardening bound: u32::MAX and u32::MAX-1 are rejected,
        // u32::MAX-2 is the largest accepted id.
        let max_ok = MAX_EDIT_VERTEX;
        assert!(EditLog::parse(&format!("+0-{max_ok}")).is_ok());
        for bad in [u32::MAX as u64, u32::MAX as u64 - 1] {
            assert_eq!(
                EditLog::parse(&format!("+0-{bad}")),
                Err(EditParseError::IdOverflow(bad))
            );
        }
        assert!(EditLog::parse(&format!("v:{}", MAX_EDIT_VERTEX + 2)).is_err());
        for garbage in ["x", "+1", "-1", "+1-2-3", "+a-b", "1-2", "+1-2;+3-4"] {
            assert!(EditLog::parse(garbage).is_err(), "{garbage}");
        }
    }

    #[test]
    fn overlay_on_empty_base() {
        let g = Graph::empty(0);
        let mut log = EditLog::new();
        log.add_edge(0, 1).add_edge(1, 2);
        let ov = log.apply(&g);
        assert_eq!(ov.num_vertices(), 3);
        assert_eq!(ov.num_edges(), 2);
        assert_eq!(ov.neighbors(1), vec![0, 2]);
        let m = ov.materialize();
        m.validate().unwrap();
        assert_eq!(m.num_edges(), 2);
    }
}
