//! Edge-filtered graph views.
//!
//! The paper's decompositions are *light-weight*: their output is a
//! classification of the edges (intra/cross partition, high/low/cross
//! degree side, component/bridge), not materialized subgraphs — that is
//! why DEG2 is the cheapest technique in Figure 2 ("a simple
//! computation"). An [`EdgeView`] carries such a classification and lets a
//! solver iterate a vertex's adjacency restricted to any subset of the
//! classes, with no copy of the graph.

use crate::csr::{Graph, VertexId};

/// A subset of a graph's edges, described by a per-edge class array and a
/// bitmask of admitted classes. [`EdgeView::full`] admits everything.
#[derive(Clone, Copy, Debug)]
pub struct EdgeView<'a> {
    filter: Option<(&'a [u8], u8)>,
}

impl<'a> EdgeView<'a> {
    /// The unfiltered view (every edge admitted).
    pub const fn full() -> Self {
        Self { filter: None }
    }

    /// View admitting edge `e` iff bit `class[e]` of `mask` is set.
    /// Classes must be `< 8` (a larger class id would silently shift out
    /// of the mask and never be admitted).
    pub fn classes(class: &'a [u8], mask: u8) -> Self {
        debug_assert!(
            class.iter().all(|&c| c < 8),
            "EdgeView class ids must be < 8"
        );
        Self {
            filter: Some((class, mask)),
        }
    }

    /// Does this view admit edge `e`?
    #[inline]
    pub fn admits(&self, e: u32) -> bool {
        match self.filter {
            None => true,
            Some((class, mask)) => mask & (1 << class[e as usize]) != 0,
        }
    }

    /// True when the view filters nothing.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.filter.is_none()
    }

    /// Iterate `(neighbor, edge id)` over the admitted arcs of `v`.
    #[inline]
    pub fn arcs<'g>(
        &self,
        g: &'g Graph,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, u32)> + use<'g, 'a> {
        let me = *self;
        g.arcs(v).filter(move |&(_, e)| me.admits(e))
    }

    /// Admitted degree of `v` (scans the row).
    pub fn degree(&self, g: &Graph, v: VertexId) -> usize {
        match self.filter {
            None => g.degree(v),
            Some(_) => self.arcs(g, v).count(),
        }
    }

    /// Does `v` have at least one admitted arc?
    pub fn has_arc(&self, g: &Graph, v: VertexId) -> bool {
        match self.filter {
            None => g.degree(v) > 0,
            Some(_) => self.arcs(g, v).next().is_some(),
        }
    }

    /// Number of admitted edges (scans the edge list).
    pub fn num_edges(&self, g: &Graph) -> usize {
        match self.filter {
            None => g.num_edges(),
            Some(_) => (0..g.num_edges() as u32)
                .filter(|&e| self.admits(e))
                .count(),
        }
    }

    /// Materialize the admitted subgraph on the same vertex ids.
    pub fn materialize(&self, g: &Graph) -> Graph {
        crate::subgraph::filter_edges(g, |e| self.admits(e))
    }

    /// Original ids of the admitted edges, ascending.
    ///
    /// [`EdgeView::materialize`] renumbers edges by rank among the kept
    /// ones, so the returned vector is exactly the new-id → original-id
    /// map of the materialized subgraph. Solvers whose output depends on
    /// edge identity (LMAX keys its random weights by edge id) use this
    /// to stay byte-identical between the materialized and the zero-copy
    /// masked paths.
    pub fn admitted_edge_ids(&self, g: &Graph) -> Vec<u32> {
        match self.filter {
            None => (0..g.num_edges() as u32).collect(),
            Some(_) => sb_par::frontier::compact_range(g.num_edges(), |e| self.admits(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edge_list;

    fn path4() -> Graph {
        from_edge_list(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn full_view_is_transparent() {
        let g = path4();
        let v = EdgeView::full();
        assert!(v.is_full());
        assert_eq!(v.degree(&g, 1), 2);
        assert_eq!(v.num_edges(&g), 3);
        assert!(v.has_arc(&g, 0));
        assert_eq!(v.arcs(&g, 1).count(), 2);
    }

    #[test]
    fn class_mask_filters_arcs() {
        let g = path4();
        // Class by edge id parity; admit only class 1.
        let class: Vec<u8> = (0..g.num_edges()).map(|e| (e % 2) as u8).collect();
        let v = EdgeView::classes(&class, 0b10);
        assert!(!v.is_full());
        let admitted: Vec<u32> = (0..3u32).filter(|&e| v.admits(e)).collect();
        assert_eq!(admitted, vec![1]);
        assert_eq!(v.num_edges(&g), 1);
        // Vertex degrees under the view.
        let total: usize = g.vertices().map(|x| v.degree(&g, x)).sum();
        assert_eq!(total, 2, "one admitted edge contributes two arc ends");
    }

    #[test]
    fn multi_class_mask_unions() {
        let g = from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let class: Vec<u8> = vec![0, 1, 2, 1];
        let v = EdgeView::classes(&class, 0b110); // classes 1 and 2
        assert_eq!(v.num_edges(&g), 3);
        assert!(!v.admits(0));
        assert!(v.admits(2));
    }

    #[test]
    fn materialize_matches_filter() {
        let g = from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let class: Vec<u8> = vec![0, 1, 0, 1];
        let v = EdgeView::classes(&class, 0b01);
        let sub = v.materialize(&g);
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(2, 3));
        assert!(!sub.has_edge(1, 2));
    }

    #[test]
    fn has_arc_respects_filter() {
        let g = path4();
        let class: Vec<u8> = vec![0, 0, 1];
        let v = EdgeView::classes(&class, 0b10);
        assert!(!v.has_arc(&g, 0));
        assert!(v.has_arc(&g, 3));
    }
}
