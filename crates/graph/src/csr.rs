//! The compressed-sparse-row graph type.

use crate::store::{FileIdent, GraphStore, Slab};

/// Vertex identifier. `u32` keeps the adjacency arrays compact (see the
/// "Smaller Integers" guidance in the Rust Performance Book); graphs in this
/// study stay far below `u32::MAX` vertices.
pub type VertexId = u32;

/// Sentinel for "no vertex" / "no edge" in parent, mate, and label arrays.
pub const INVALID: u32 = u32::MAX;

/// An immutable undirected graph in CSR form with stable edge ids.
///
/// Both arcs `(u,v)` and `(v,u)` of an undirected edge carry the same edge id
/// `e`, and `edge(e)` recovers the endpoint pair with `u < v`. Construct via
/// [`crate::builder::GraphBuilder`], which deduplicates, drops self-loops,
/// and symmetrizes directed input — the preprocessing the paper applies to
/// its dataset.
///
/// The four arrays live in [`Slab`]s: heap vectors when built in memory, or
/// windows into one shared read-only file mapping when loaded from a `.sbg`
/// file ([`crate::sbg::map_sbg`]). Every accessor below is backend-agnostic,
/// and equality is content-based either way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR row offsets; `offsets[v]..offsets[v+1]` indexes `v`'s arcs.
    pub(crate) offsets: Slab<usize>,
    /// Arc targets, grouped by source vertex, sorted within each row.
    pub(crate) neighbors: Slab<VertexId>,
    /// Undirected edge id of each arc (parallel to `neighbors`).
    pub(crate) edge_ids: Slab<u32>,
    /// Endpoint pairs per edge id, normalized `u < v`.
    pub(crate) edges: Slab<[VertexId; 2]>,
}

impl Graph {
    /// The empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self::from_parts(vec![0; n + 1], Vec::new(), Vec::new(), Vec::new())
    }

    /// Assemble a heap-backed graph from already-built CSR arrays. The
    /// caller (builder, subgraph induction, file decode) guarantees the
    /// CSR invariants; debug builds re-check via [`Graph::validate`] at
    /// the public construction sites.
    pub(crate) fn from_parts(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        edge_ids: Vec<u32>,
        edges: Vec<[VertexId; 2]>,
    ) -> Self {
        Self {
            offsets: offsets.into(),
            neighbors: neighbors.into(),
            edge_ids: edge_ids.into(),
            edges: edges.into(),
        }
    }

    /// Assemble a graph over pre-validated slabs (the mapped-load path).
    pub(crate) fn from_slabs(
        offsets: Slab<usize>,
        neighbors: Slab<VertexId>,
        edge_ids: Slab<u32>,
        edges: Slab<[VertexId; 2]>,
    ) -> Self {
        Self {
            offsets,
            neighbors,
            edge_ids,
            edges,
        }
    }

    /// Which backing store this graph's arrays live in.
    pub fn store(&self) -> GraphStore {
        if self.offsets.mapping().is_some() {
            GraphStore::Mapped
        } else {
            GraphStore::Heap
        }
    }

    /// Heap bytes resident for this graph: the full CSR arrays for a heap
    /// graph, only `size_of::<Graph>()` for a mapped one (whose array bytes
    /// are page cache against the file, not process heap). This is the
    /// weight a cache should charge for holding the graph.
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.offsets.heap_bytes()
            + self.neighbors.heap_bytes()
            + self.edge_ids.heap_bytes()
            + self.edges.heap_bytes()
    }

    /// Identity of the mapped file backing this graph (`None` for heap
    /// graphs). Two graphs mapped from the same file report the same
    /// identity, which is what cache fingerprints key on.
    pub fn mapped_ident(&self) -> Option<&FileIdent> {
        self.offsets.mapping().map(|m| m.ident())
    }

    /// The stored new→old vertex renumbering (`perm[new] = old`) when this
    /// graph was mapped from a `.sbg` written with `--renumber`; solver
    /// output index `v` on this graph refers to original vertex `perm[v]`.
    pub fn renumber_perm(&self) -> Option<&[u32]> {
        self.offsets.mapping().and_then(|m| m.perm_slice())
    }

    /// Raw CSR offsets array (length `n + 1`).
    #[inline]
    pub(crate) fn raw_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw arc-target array (length `2m`).
    #[inline]
    pub(crate) fn raw_neighbors(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// Raw per-arc edge-id array (length `2m`).
    #[inline]
    pub(crate) fn raw_edge_ids(&self) -> &[u32] {
        &self.edge_ids
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbors of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Edge ids of the arcs out of `v` (parallel to [`Self::neighbors`]).
    #[inline]
    pub fn edge_ids_of(&self, v: VertexId) -> &[u32] {
        &self.edge_ids[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Iterate `(neighbor, edge_id)` pairs of `v`.
    #[inline]
    pub fn arcs(&self, v: VertexId) -> impl Iterator<Item = (VertexId, u32)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.edge_ids_of(v).iter().copied())
    }

    /// Endpoints of edge `e`, normalized so `.0 < .1`.
    #[inline]
    pub fn edge(&self, e: u32) -> (VertexId, VertexId) {
        let [u, v] = self.edges[e as usize];
        (u, v)
    }

    /// All edges as `(u, v)` pairs with `u < v`, indexed by edge id.
    #[inline]
    pub fn edge_list(&self) -> &[[VertexId; 2]] {
        &self.edges
    }

    /// Average degree `2m/n` (0 for the empty vertex set).
    pub fn avg_degree(&self) -> f64 {
        let n = self.num_vertices();
        if n == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / n as f64
        }
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// True when `u` and `v` are adjacent (binary search on the CSR row).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Edge id of `(u, v)` if adjacent.
    pub fn find_edge(&self, u: VertexId, v: VertexId) -> Option<u32> {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a)
            .binary_search(&b)
            .ok()
            .map(|pos| self.edge_ids_of(a)[pos])
    }

    /// Iterate all vertex ids.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Structural invariant check, used by tests and debug assertions:
    /// offsets monotone, rows sorted, arcs symmetric, edge ids consistent.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if *self.offsets.last().unwrap() != self.neighbors.len() {
            return Err("offsets do not cover neighbor array".into());
        }
        if self.neighbors.len() != self.edge_ids.len() {
            return Err("edge_ids length mismatch".into());
        }
        if self.neighbors.len() != 2 * self.edges.len() {
            return Err(format!(
                "arc count {} != 2 × edge count {}",
                self.neighbors.len(),
                self.edges.len()
            ));
        }
        for v in 0..n {
            if self.offsets[v] > self.offsets[v + 1] {
                return Err(format!("offsets not monotone at {v}"));
            }
            let row = self.neighbors(v as VertexId);
            if !row.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("row {v} not strictly sorted"));
            }
            for (w, e) in self.arcs(v as VertexId) {
                if w as usize >= n {
                    return Err(format!("target {w} out of range"));
                }
                if w as usize == v {
                    return Err(format!("self-loop at {v}"));
                }
                let (a, b) = self.edge(e);
                let (x, y) = (v.min(w as usize) as u32, v.max(w as usize) as u32);
                if (a, b) != (x, y) {
                    return Err(format!("edge id {e} inconsistent at arc ({v},{w})"));
                }
            }
        }
        for (e, &[u, v]) in self.edges.iter().enumerate() {
            if u >= v {
                return Err(format!("edge {e} not normalized"));
            }
            if !self.has_edge(u, v) {
                return Err(format!("edge {e} missing from adjacency"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;

    #[test]
    fn empty_graph() {
        let g = super::Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn zero_vertices() {
        let g = super::Graph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        g.validate().unwrap();
    }

    #[test]
    fn triangle_accessors() {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2), (0, 2)]).build();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        let e = g.find_edge(2, 1).unwrap();
        assert_eq!(g.edge(e), (1, 2));
        assert_eq!(g.find_edge(0, 1).map(|e| g.edge(e)), Some((0, 1)));
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
        assert_eq!(g.max_degree(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn arcs_pair_neighbor_with_edge_id() {
        let g = GraphBuilder::new(4).edges([(0, 1), (0, 2), (0, 3)]).build();
        for (w, e) in g.arcs(0) {
            let (a, b) = g.edge(e);
            assert_eq!((a, b), (0, w));
        }
        // Reverse arcs carry the same ids.
        let e01 = g.find_edge(0, 1).unwrap();
        assert!(g.arcs(1).any(|(w, e)| w == 0 && e == e01));
    }
}
