//! Degree-ordered vertex renumbering for convert-time locality.
//!
//! Webgraph-style layouts put high-degree vertices first so the hot rows of
//! the CSR share pages and the gather traffic that dominates the parallel
//! symmetry-breaking rounds (see PAPERS.md on locality lower bounds) hits a
//! compact prefix of the mapping. The permutation is deterministic
//! (degree descending, original id ascending as the tie-break), so a
//! convert is reproducible byte-for-byte.
//!
//! Contract: [`renumber_by_degree`] returns `(h, perm)` where `h` is the
//! renumbered graph and `perm[new] = old`. A solver output indexed by the
//! renumbered ids maps back to the original graph via `perm`; edge ids are
//! *not* preserved (the renumbered graph re-sorts its edge list), so
//! edge-indexed outputs must be translated through endpoints.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};

/// Renumber `g` so new vertex ids are ordered by degree (descending; ties
/// by original id ascending). Returns the renumbered graph and the
/// new→old permutation (`perm[new] = old`).
pub fn renumber_by_degree(g: &Graph) -> (Graph, Vec<u32>) {
    let n = g.num_vertices();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    let mut inv = vec![0u32; n];
    for (new, &old) in perm.iter().enumerate() {
        inv[old as usize] = new as u32;
    }
    let mut b = GraphBuilder::new(n);
    b.reserve(g.num_edges());
    for &[u, v] in g.edge_list() {
        b.push(inv[u as usize], inv[v as usize]);
    }
    (b.build(), perm)
}

/// Translate a per-vertex label array from renumbered ids back to original
/// ids: `out[perm[new]] = labels[new]`.
pub fn unpermute_labels<T: Copy + Default>(labels: &[T], perm: &[VertexId]) -> Vec<T> {
    assert_eq!(labels.len(), perm.len());
    let mut out = vec![T::default(); labels.len()];
    for (new, &old) in perm.iter().enumerate() {
        out[old as usize] = labels[new];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edge_list;

    #[test]
    fn degrees_descend_and_perm_is_bijective() {
        let g = from_edge_list(6, &[(0, 1), (0, 2), (0, 3), (1, 2), (4, 5)]);
        let (h, perm) = renumber_by_degree(&g);
        assert_eq!(h.num_vertices(), g.num_vertices());
        assert_eq!(h.num_edges(), g.num_edges());
        let degs: Vec<usize> = h.vertices().map(|v| h.degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "{degs:?}");
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<u32>>());
        // Vertex 0 had the max degree, so it becomes new id 0.
        assert_eq!(perm[0], 0);
    }

    #[test]
    fn adjacency_is_preserved_through_perm() {
        let g = from_edge_list(7, &[(0, 3), (3, 5), (1, 2), (2, 6), (5, 6), (0, 5)]);
        let (h, perm) = renumber_by_degree(&g);
        for nu in h.vertices() {
            for nv in h.neighbors(nu) {
                assert!(g.has_edge(perm[nu as usize], perm[*nv as usize]));
            }
        }
        for &[u, v] in g.edge_list() {
            let inv_u = perm.iter().position(|&o| o == u).unwrap() as u32;
            let inv_v = perm.iter().position(|&o| o == v).unwrap() as u32;
            assert!(h.has_edge(inv_u, inv_v));
        }
    }

    #[test]
    fn unpermute_round_trips_vertex_labels() {
        let g = from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        let (h, perm) = renumber_by_degree(&g);
        // Label every renumbered vertex with its original id…
        let labels: Vec<u32> = h.vertices().map(|v| perm[v as usize]).collect();
        // …then unpermuting must yield the identity.
        let back = unpermute_labels(&labels, &perm);
        assert_eq!(back, (0..5).collect::<Vec<u32>>());
    }

    #[test]
    fn renumber_is_deterministic() {
        let g = from_edge_list(8, &[(0, 1), (2, 3), (4, 5), (6, 7), (1, 2), (5, 6)]);
        let (h1, p1) = renumber_by_degree(&g);
        let (h2, p2) = renumber_by_degree(&g);
        assert_eq!(h1, h2);
        assert_eq!(p1, p2);
    }
}
