//! Subgraph materialization — the output form of every decomposition.
//!
//! Two families:
//!
//! * **Same-id filtering** ([`filter_edges`], [`induce_vertices_same_ids`]):
//!   the subgraph keeps the parent's vertex set and drops edges. This is what
//!   the solvers consume, because it lets the matching/color/MIS arrays of
//!   all phases share indices — exactly how the paper's composite algorithms
//!   (Algorithms 4–12) pass partial solutions between phases. Processing the
//!   union of the decomposition pieces "in parallel" is then one solve over
//!   the filtered graph, whose pieces are disconnected from each other.
//! * **Remapped compaction** ([`induce_vertices_remap`],
//!   [`induce_edges_remap`]): a dense subgraph plus a `to_parent` map, used
//!   when a piece must be handed to an algorithm as a standalone graph.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId, INVALID};
use rayon::prelude::*;

/// A compacted subgraph together with its vertex mapping back to the parent.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The materialized subgraph with dense vertex ids `0..k`.
    pub graph: Graph,
    /// `to_parent[new_id] = parent_id`.
    pub to_parent: Vec<VertexId>,
}

impl Subgraph {
    /// Inverse mapping: `from_parent[parent_id] = new_id` or `INVALID`.
    pub fn from_parent(&self, parent_n: usize) -> Vec<u32> {
        let mut inv = vec![INVALID; parent_n];
        for (new, &old) in self.to_parent.iter().enumerate() {
            inv[old as usize] = new as u32;
        }
        inv
    }
}

/// Keep only edges `e` with `keep(e)`; the vertex set is unchanged.
///
/// Fast path used by every decomposition: because the parent is already a
/// deduplicated CSR with sorted rows, the filtered graph is assembled in
/// O(n + m) with two scans and no sorting — the decompositions must stay
/// *light-weight* (Figure 2 of the paper) or they could never pay off.
pub fn filter_edges<F>(g: &Graph, keep: F) -> Graph
where
    F: Fn(u32) -> bool + Sync,
{
    let n = g.num_vertices();
    let m = g.num_edges();
    // New edge ids = rank among kept edges (edge list stays sorted).
    let flags: Vec<usize> = (0..m)
        .into_par_iter()
        .map(|e| keep(e as u32) as usize)
        .collect();
    let (new_id, m_new) = sb_par::prim::exclusive_scan_vec(&flags);
    let edges: Vec<[VertexId; 2]> = {
        let mut out = vec![[0u32; 2]; m_new];
        let out_at = OutCells(out.as_mut_ptr());
        (0..m).into_par_iter().for_each(|e| {
            if flags[e] == 1 {
                // SAFETY: new_id is a bijection from kept edges to 0..m_new.
                unsafe { *out_at.get().add(new_id[e]) = g.edge_list()[e] };
            }
        });
        out
    };

    // Per-vertex filtered degrees, then CSR fill preserving row order (the
    // parent rows are sorted, so the filtered rows are too).
    let degrees: Vec<usize> = (0..n)
        .into_par_iter()
        .map(|v| {
            g.edge_ids_of(v as VertexId)
                .iter()
                .filter(|&&e| flags[e as usize] == 1)
                .count()
        })
        .collect();
    let (mut offsets, arcs) = sb_par::prim::exclusive_scan_vec(&degrees);
    offsets.push(arcs);
    debug_assert_eq!(arcs, 2 * m_new);
    let mut neighbors = vec![0u32; arcs];
    let mut edge_ids = vec![0u32; arcs];
    {
        let nb = OutCells(neighbors.as_mut_ptr());
        let ei = OutCells(edge_ids.as_mut_ptr());
        (0..n).into_par_iter().for_each(|v| {
            let mut cursor = offsets[v];
            for (w, e) in g.arcs(v as VertexId) {
                if flags[e as usize] == 1 {
                    // SAFETY: each row range [offsets[v], offsets[v+1]) is
                    // written only by its own vertex's iteration.
                    unsafe {
                        *nb.get().add(cursor) = w;
                        *ei.get().add(cursor) = new_id[e as usize] as u32;
                    }
                    cursor += 1;
                }
            }
            debug_assert_eq!(cursor, offsets[v + 1]);
        });
    }
    let out = Graph::from_parts(offsets, neighbors, edge_ids, edges);
    debug_assert!(out.validate().is_ok());
    out
}

/// Split the edges of `g` into `nclasses` graphs in one fused pass:
/// `class(e)` assigns every edge to exactly one output graph, all on the
/// parent's vertex set. One shared classification pass plus one fill pass
/// per vertex covering all classes — this is what keeps the RAND and DEGk
/// decompositions *light-weight* (a DEGk split is 3 `filter_edges` calls'
/// worth of output for roughly one call's worth of passes).
pub fn split_edges<F>(g: &Graph, nclasses: usize, class: F) -> Vec<Graph>
where
    F: Fn(u32) -> usize + Sync,
{
    assert!(nclasses >= 1);
    let n = g.num_vertices();
    let m = g.num_edges();
    // Classify every edge once.
    let cls: Vec<u8> = (0..m)
        .into_par_iter()
        .map(|e| {
            let c = class(e as u32);
            debug_assert!(c < nclasses && nclasses <= u8::MAX as usize);
            c as u8
        })
        .collect();
    // Per-class new edge ids + edge lists.
    let mut per_class_new_id: Vec<Vec<usize>> = Vec::with_capacity(nclasses);
    let mut per_class_edges: Vec<Vec<[VertexId; 2]>> = Vec::with_capacity(nclasses);
    for c in 0..nclasses {
        let flags: Vec<usize> = cls
            .par_iter()
            .map(|&x| (x as usize == c) as usize)
            .collect();
        let (new_id, mc) = sb_par::prim::exclusive_scan_vec(&flags);
        let mut edges = vec![[0u32; 2]; mc];
        {
            let out = OutCells(edges.as_mut_ptr());
            (0..m).into_par_iter().for_each(|e| {
                if cls[e] as usize == c {
                    // SAFETY: new_id restricted to class-c edges is a
                    // bijection onto 0..mc.
                    unsafe { *out.get().add(new_id[e]) = g.edge_list()[e] };
                }
            });
        }
        per_class_new_id.push(new_id);
        per_class_edges.push(edges);
    }
    // Per-vertex, per-class degrees in one adjacency pass, stored as one
    // flat `n * nclasses` row-major array (`deg_flat[v * nclasses + c]`) —
    // one allocation instead of a Vec per vertex.
    let mut deg_flat = vec![0usize; n * nclasses];
    deg_flat
        .par_chunks_mut(nclasses)
        .enumerate()
        .for_each(|(v, d)| {
            for &e in g.edge_ids_of(v as VertexId) {
                d[cls[e as usize] as usize] += 1;
            }
        });
    // Assemble each class graph.
    (0..nclasses)
        .map(|c| {
            let degrees: Vec<usize> = (0..n).map(|v| deg_flat[v * nclasses + c]).collect();
            let (mut offsets, arcs) = sb_par::prim::exclusive_scan_vec(&degrees);
            offsets.push(arcs);
            let mut neighbors = vec![0u32; arcs];
            let mut edge_ids = vec![0u32; arcs];
            {
                let nb = OutCells(neighbors.as_mut_ptr());
                let ei = OutCells(edge_ids.as_mut_ptr());
                let new_id = &per_class_new_id[c];
                (0..n).into_par_iter().for_each(|v| {
                    let mut cursor = offsets[v];
                    for (w, e) in g.arcs(v as VertexId) {
                        if cls[e as usize] as usize == c {
                            // SAFETY: row ranges are disjoint per vertex.
                            unsafe {
                                *nb.get().add(cursor) = w;
                                *ei.get().add(cursor) = new_id[e as usize] as u32;
                            }
                            cursor += 1;
                        }
                    }
                    debug_assert_eq!(cursor, offsets[v + 1]);
                });
            }
            let out = Graph::from_parts(
                offsets,
                neighbors,
                edge_ids,
                std::mem::take(&mut per_class_edges[c]),
            );
            debug_assert!(out.validate().is_ok());
            out
        })
        .collect()
}

/// Raw-pointer cell for disjoint-index parallel scatters (method access so
/// edition-2021 closures capture the `Sync` wrapper, not the pointer).
#[derive(Clone, Copy)]
struct OutCells<T>(*mut T);
unsafe impl<T> Send for OutCells<T> {}
unsafe impl<T> Sync for OutCells<T> {}
impl<T> OutCells<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Vertex-induced subgraph on the parent's id space: keeps edges whose both
/// endpoints satisfy `in_set`.
pub fn induce_vertices_same_ids<F>(g: &Graph, in_set: F) -> Graph
where
    F: Fn(VertexId) -> bool + Sync,
{
    filter_edges(g, |e| {
        let (u, v) = g.edge(e);
        in_set(u) && in_set(v)
    })
}

/// Cross-edge subgraph on the parent's id space: keeps edges with exactly one
/// endpoint in the set (the `G_C` / `G_{k+1}` pieces of the decompositions).
pub fn cross_edges_same_ids<F>(g: &Graph, in_set: F) -> Graph
where
    F: Fn(VertexId) -> bool + Sync,
{
    filter_edges(g, |e| {
        let (u, v) = g.edge(e);
        in_set(u) != in_set(v)
    })
}

/// Compacted vertex-induced subgraph `G[verts]` with id remapping.
pub fn induce_vertices_remap(g: &Graph, verts: &[VertexId]) -> Subgraph {
    let mut to_parent = verts.to_vec();
    to_parent.sort_unstable();
    to_parent.dedup();
    let mut from_parent = vec![INVALID; g.num_vertices()];
    for (new, &old) in to_parent.iter().enumerate() {
        from_parent[old as usize] = new as u32;
    }
    let edges: Vec<(u32, u32)> = g
        .edge_list()
        .par_iter()
        .filter_map(|&[u, v]| {
            let (nu, nv) = (from_parent[u as usize], from_parent[v as usize]);
            (nu != INVALID && nv != INVALID).then_some((nu, nv))
        })
        .collect();
    Subgraph {
        graph: GraphBuilder::new(to_parent.len()).edges(edges).build(),
        to_parent,
    }
}

/// Compacted edge-induced subgraph: the given edges plus their endpoints.
pub fn induce_edges_remap(g: &Graph, edge_ids: &[u32]) -> Subgraph {
    let mut verts: Vec<VertexId> = edge_ids
        .iter()
        .flat_map(|&e| {
            let (u, v) = g.edge(e);
            [u, v]
        })
        .collect();
    verts.sort_unstable();
    verts.dedup();
    let mut from_parent = vec![INVALID; g.num_vertices()];
    for (new, &old) in verts.iter().enumerate() {
        from_parent[old as usize] = new as u32;
    }
    let edges: Vec<(u32, u32)> = edge_ids
        .iter()
        .map(|&e| {
            let (u, v) = g.edge(e);
            (from_parent[u as usize], from_parent[v as usize])
        })
        .collect();
    Subgraph {
        graph: GraphBuilder::new(verts.len()).edges(edges).build(),
        to_parent: verts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edge_list;

    fn k4() -> Graph {
        from_edge_list(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn filter_keeps_selected_edges_only() {
        let g = k4();
        let keep = g.find_edge(0, 1).unwrap();
        let f = filter_edges(&g, |e| e == keep);
        assert_eq!(f.num_vertices(), 4);
        assert_eq!(f.num_edges(), 1);
        assert!(f.has_edge(0, 1));
        assert!(!f.has_edge(2, 3));
        f.validate().unwrap();
    }

    #[test]
    fn induced_same_ids_is_triangle() {
        let g = k4();
        let sub = induce_vertices_same_ids(&g, |v| v < 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(sub.degree(3), 0);
        assert!(sub.has_edge(0, 1) && sub.has_edge(1, 2) && sub.has_edge(0, 2));
    }

    #[test]
    fn cross_edges_partition_complement() {
        let g = k4();
        let inside = induce_vertices_same_ids(&g, |v| v < 2);
        let outside = induce_vertices_same_ids(&g, |v| v >= 2);
        let cross = cross_edges_same_ids(&g, |v| v < 2);
        assert_eq!(
            inside.num_edges() + outside.num_edges() + cross.num_edges(),
            g.num_edges(),
            "induced + cross pieces must partition the edges"
        );
        assert_eq!(cross.num_edges(), 4);
    }

    #[test]
    fn remap_round_trip() {
        let g = k4();
        let sub = induce_vertices_remap(&g, &[1, 3]);
        assert_eq!(sub.graph.num_vertices(), 2);
        assert_eq!(sub.graph.num_edges(), 1);
        assert_eq!(sub.to_parent, vec![1, 3]);
        let inv = sub.from_parent(4);
        assert_eq!(inv[1], 0);
        assert_eq!(inv[3], 1);
        assert_eq!(inv[0], INVALID);
        // Every subgraph edge maps back to a parent edge.
        for &[u, v] in sub.graph.edge_list() {
            assert!(g.has_edge(sub.to_parent[u as usize], sub.to_parent[v as usize]));
        }
    }

    #[test]
    fn edge_induced_remap() {
        let g = from_edge_list(6, &[(0, 1), (2, 3), (4, 5), (1, 2)]);
        let eids = vec![g.find_edge(2, 3).unwrap(), g.find_edge(4, 5).unwrap()];
        let sub = induce_edges_remap(&g, &eids);
        assert_eq!(sub.graph.num_vertices(), 4);
        assert_eq!(sub.graph.num_edges(), 2);
        assert_eq!(sub.to_parent, vec![2, 3, 4, 5]);
        sub.graph.validate().unwrap();
    }

    #[test]
    fn split_matches_individual_filters() {
        let g = k4();
        let class = |e: u32| (e as usize) % 3;
        let parts = split_edges(&g, 3, class);
        assert_eq!(parts.len(), 3);
        for (c, part) in parts.iter().enumerate() {
            let want = filter_edges(&g, |e| class(e) == c);
            assert_eq!(part, &want, "class {c}");
        }
        let total: usize = parts.iter().map(|p| p.num_edges()).sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn split_single_class_is_identity() {
        let g = k4();
        let parts = split_edges(&g, 1, |_| 0);
        assert_eq!(parts[0], g);
    }

    #[test]
    fn split_empty_classes_are_empty_graphs() {
        let g = k4();
        let parts = split_edges(&g, 2, |_| 0);
        assert_eq!(parts[0].num_edges(), g.num_edges());
        assert_eq!(parts[1].num_edges(), 0);
        assert_eq!(parts[1].num_vertices(), g.num_vertices());
    }

    #[test]
    fn duplicate_vertices_in_request_are_deduped() {
        let g = k4();
        let sub = induce_vertices_remap(&g, &[2, 2, 0, 0]);
        assert_eq!(sub.to_parent, vec![0, 2]);
        assert_eq!(sub.graph.num_edges(), 1);
    }

    #[test]
    fn empty_selection() {
        let g = k4();
        let sub = induce_vertices_remap(&g, &[]);
        assert_eq!(sub.graph.num_vertices(), 0);
        let f = filter_edges(&g, |_| false);
        assert_eq!(f.num_edges(), 0);
        assert_eq!(f.num_vertices(), 4);
    }
}
