//! Edge-list ingestion.
//!
//! Applies the paper's preprocessing (§II-D): directed edges are converted to
//! undirected, self-loops are ignored, duplicates are merged. Construction is
//! parallel: normalize + sort + dedup the edge list, then build both CSR
//! directions with a histogram/scan/scatter pipeline.

use crate::csr::{Graph, VertexId};
use rayon::prelude::*;
use sb_par::prim::exclusive_scan_vec;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Accumulates edges and produces a [`Graph`].
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<[VertexId; 2]>,
}

impl GraphBuilder {
    /// Builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "vertex ids must fit in u32");
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Add one edge; direction and duplicates are irrelevant, self-loops are
    /// dropped at build time.
    pub fn edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.push(u, v);
        self
    }

    /// Add many edges.
    pub fn edges<I>(mut self, it: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        for (u, v) in it {
            self.push(u, v);
        }
        self
    }

    /// Add one edge in place (non-consuming form for loops).
    pub fn push(&mut self, u: VertexId, v: VertexId) {
        debug_assert!((u as usize) < self.n && (v as usize) < self.n);
        self.edges.push([u.min(v), u.max(v)]);
    }

    /// Reserve capacity for `extra` more edges.
    pub fn reserve(&mut self, extra: usize) {
        self.edges.reserve(extra);
    }

    /// Grow the declared vertex count to at least `n` (never shrinks).
    /// Streaming readers that discover the id range as they parse call
    /// this per chunk instead of pre-declaring a size.
    pub fn ensure_vertices(&mut self, n: usize) {
        assert!(n < u32::MAX as usize, "vertex ids must fit in u32");
        self.n = self.n.max(n);
    }

    /// Current declared vertex count.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of raw (pre-dedup) edges added so far.
    pub fn raw_len(&self) -> usize {
        self.edges.len()
    }

    /// Finalize into an immutable CSR graph.
    pub fn build(self) -> Graph {
        let Self { n, mut edges } = self;
        // Normalize happened on push; drop self-loops, sort, dedup.
        edges.retain(|&[u, v]| u != v);
        edges.par_sort_unstable();
        edges.dedup();
        let m = edges.len();
        assert!(m < u32::MAX as usize, "edge ids must fit in u32");

        // Degree histogram over both arc directions.
        let mut degrees = vec![0usize; n];
        {
            let deg = sb_par::atomic::as_atomic_usize(&mut degrees);
            edges.par_iter().for_each(|&[u, v]| {
                deg[u as usize].fetch_add(1, Ordering::Relaxed);
                deg[v as usize].fetch_add(1, Ordering::Relaxed);
            });
        }
        let (offsets, total) = exclusive_scan_vec(&degrees);
        debug_assert_eq!(total, 2 * m);

        // Scatter arcs. A per-vertex atomic cursor keeps this parallel.
        let mut neighbors = vec![0u32; 2 * m];
        let mut edge_ids = vec![0u32; 2 * m];
        {
            let cursors: Vec<AtomicUsize> = offsets.iter().map(|&o| AtomicUsize::new(o)).collect();
            // SAFETY: each slot index is claimed exactly once via the atomic
            // cursor fetch_add, so no two threads write the same element.
            let nb_ptr = SendPtr(neighbors.as_mut_ptr());
            let ei_ptr = SendPtr(edge_ids.as_mut_ptr());
            edges.par_iter().enumerate().for_each(|(e, &[u, v])| {
                let su = cursors[u as usize].fetch_add(1, Ordering::Relaxed);
                let sv = cursors[v as usize].fetch_add(1, Ordering::Relaxed);
                unsafe {
                    *nb_ptr.get().add(su) = v;
                    *ei_ptr.get().add(su) = e as u32;
                    *nb_ptr.get().add(sv) = u;
                    *ei_ptr.get().add(sv) = e as u32;
                }
            });
        }

        // Sort each row by neighbor (keeping edge ids aligned) so adjacency
        // queries can binary-search. Rows are disjoint → parallel per vertex.
        let mut full_offsets = offsets;
        full_offsets.push(2 * m);
        {
            let rows: Vec<(usize, usize)> = (0..n)
                .map(|v| (full_offsets[v], full_offsets[v + 1]))
                .collect();
            let nb_ptr = SendPtr(neighbors.as_mut_ptr());
            let ei_ptr = SendPtr(edge_ids.as_mut_ptr());
            rows.par_iter().for_each(|&(lo, hi)| {
                // SAFETY: row ranges [lo, hi) are pairwise disjoint.
                let nb = unsafe { std::slice::from_raw_parts_mut(nb_ptr.get().add(lo), hi - lo) };
                let ei = unsafe { std::slice::from_raw_parts_mut(ei_ptr.get().add(lo), hi - lo) };
                // Co-sort the two small arrays by neighbor id.
                let mut perm: Vec<u32> = (0..(hi - lo) as u32).collect();
                perm.sort_unstable_by_key(|&i| nb[i as usize]);
                apply_permutation(&perm, nb, ei);
            });
        }

        let g = Graph::from_parts(full_offsets, neighbors, edge_ids, edges);
        debug_assert!(g.validate().is_ok());
        g
    }
}

/// Build a graph directly from an edge slice.
pub fn from_edge_list(n: usize, edges: &[(VertexId, VertexId)]) -> Graph {
    GraphBuilder::new(n).edges(edges.iter().copied()).build()
}

/// Apply permutation `perm` to both `a` and `b` in place (small rows, O(k) scratch).
fn apply_permutation(perm: &[u32], a: &mut [u32], b: &mut [u32]) {
    let ta: Vec<u32> = perm.iter().map(|&i| a[i as usize]).collect();
    let tb: Vec<u32> = perm.iter().map(|&i| b[i as usize]).collect();
    a.copy_from_slice(&ta);
    b.copy_from_slice(&tb);
}

/// Raw pointer wrapper so disjoint-index parallel scatters can cross the
/// closure boundary; soundness is argued at each use site. Access goes
/// through [`SendPtr::get`] so edition-2021 closures capture the wrapper
/// (which is `Sync`) rather than the raw pointer field (which is not).
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_selfloop_symmetrize() {
        // (2,1) duplicates (1,2); (3,3) is a self-loop.
        let g = GraphBuilder::new(4)
            .edges([(1, 2), (2, 1), (3, 3), (0, 1)])
            .build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        g.validate().unwrap();
    }

    #[test]
    fn rows_sorted_with_aligned_edge_ids() {
        let g = GraphBuilder::new(6)
            .edges([(5, 0), (0, 3), (0, 1), (4, 0), (0, 2)])
            .build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
        for (w, e) in g.arcs(0) {
            assert_eq!(g.edge(e), (0, w));
        }
        g.validate().unwrap();
    }

    #[test]
    fn star_and_path_shapes() {
        let star = from_edge_list(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(star.degree(0), 4);
        assert_eq!(star.max_degree(), 4);
        let path = from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(path.degree(0), 1);
        assert_eq!(path.degree(1), 2);
        path.validate().unwrap();
    }

    #[test]
    fn larger_random_graph_validates() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 2000usize;
        let mut b = GraphBuilder::new(n);
        for _ in 0..10_000 {
            let u = rng.random_range(0..n) as u32;
            let v = rng.random_range(0..n) as u32;
            b.push(u, v);
        }
        let g = b.build();
        g.validate().unwrap();
        // Handshake identity.
        let degsum: usize = g.vertices().map(|v| g.degree(v)).sum();
        assert_eq!(degsum, 2 * g.num_edges());
    }

    #[test]
    fn edge_ids_are_dense_and_consistent() {
        let g = from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let mut seen = vec![false; g.num_edges()];
        for v in g.vertices() {
            for (_, e) in g.arcs(v) {
                seen[e as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
