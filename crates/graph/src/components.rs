//! Connected components.
//!
//! Two implementations:
//! * [`components_parallel`] — pointer-style label propagation with path
//!   compression hooks, the parallel algorithm used by the BRIDGE pipeline to
//!   split `G − B` into 2-edge-connected pieces.
//! * [`components_sequential`] — a plain union-find reference used by tests
//!   and by small post-decomposition fix-ups.

use crate::csr::{Graph, VertexId};
use rayon::prelude::*;
use sb_par::atomic::as_atomic_u32;
use sb_par::counters::Counters;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Component labeling: `label[v]` is the id of `v`'s component
/// (the minimum vertex id in it), `count` the number of components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Per-vertex component representative (min vertex id in the component).
    pub label: Vec<VertexId>,
    /// Number of connected components.
    pub count: usize,
}

impl Components {
    /// Group vertices by component, ordered by representative id.
    pub fn groups(&self) -> Vec<Vec<VertexId>> {
        let mut map = std::collections::BTreeMap::<VertexId, Vec<VertexId>>::new();
        for (v, &l) in self.label.iter().enumerate() {
            map.entry(l).or_default().push(v as VertexId);
        }
        map.into_values().collect()
    }

    /// Relabel components densely as `0..count`, preserving representative order.
    pub fn dense_ids(&self) -> Vec<u32> {
        let mut reps: Vec<VertexId> = self.label.clone();
        reps.sort_unstable();
        reps.dedup();
        let mut dense = vec![0u32; self.label.len()];
        for (v, &l) in self.label.iter().enumerate() {
            dense[v] = reps.binary_search(&l).unwrap() as u32;
        }
        dense
    }
}

/// Parallel connected components via min-label propagation with hooking.
///
/// Each round every vertex adopts the minimum label in its closed
/// neighborhood, followed by a pointer-jumping shortcut pass; converges in
/// O(log n) label rounds on most inputs and O(diameter) in the worst case.
/// The optional `edge_alive` mask drops edges (by edge id) from consideration
/// — this is how the BRIDGE pipeline removes bridges without materializing
/// `G − B`.
pub fn components_parallel(
    g: &Graph,
    edge_alive: Option<&(dyn Fn(u32) -> bool + Sync)>,
    counters: &Counters,
) -> Components {
    let n = g.num_vertices();
    let mut label: Vec<u32> = (0..n as u32).collect();
    if n == 0 {
        return Components { label, count: 0 };
    }
    let alive = |e: u32| edge_alive.is_none_or(|f| f(e));
    loop {
        let round = counters.round_scope(n as u64);
        counters.add_rounds(1);
        counters.add_kernel(2 * n as u64); // hook + shortcut kernels
        let changed = AtomicBool::new(false);
        {
            let lab: &[AtomicU32] = as_atomic_u32(&mut label);
            // Hook: adopt the minimum label among live neighbors.
            (0..n).into_par_iter().for_each(|v| {
                let mut best = lab[v].load(Ordering::Relaxed);
                for (w, e) in g.arcs(v as VertexId) {
                    if alive(e) {
                        best = best.min(lab[w as usize].load(Ordering::Relaxed));
                    }
                }
                if best < lab[v].load(Ordering::Relaxed) {
                    lab[v].store(best, Ordering::Relaxed);
                    changed.store(true, Ordering::Relaxed);
                }
            });
            // Shortcut: pointer-jump labels toward roots.
            (0..n).into_par_iter().for_each(|v| {
                let mut l = lab[v].load(Ordering::Relaxed);
                loop {
                    let ll = lab[l as usize].load(Ordering::Relaxed);
                    if ll == l {
                        break;
                    }
                    l = ll;
                }
                lab[v].store(l, Ordering::Relaxed);
            });
        }
        counters.add_edges(2 * g.num_edges() as u64);
        // Label-propagation rounds settle nothing attributable per vertex.
        counters.finish_round(round, || 0);
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }
    let mut reps = label.clone();
    reps.par_sort_unstable();
    reps.dedup();
    Components {
        count: reps.len(),
        label,
    }
}

/// Sequential union-find reference implementation.
pub fn components_sequential(
    g: &Graph,
    edge_alive: Option<&(dyn Fn(u32) -> bool + Sync)>,
) -> Components {
    let n = g.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let gp = parent[parent[x as usize] as usize];
            parent[x as usize] = gp;
            x = gp;
        }
        x
    }
    for (e, &[u, v]) in g.edge_list().iter().enumerate() {
        if edge_alive.is_none_or(|f| f(e as u32)) {
            let ru = find(&mut parent, u);
            let rv = find(&mut parent, v);
            if ru != rv {
                let (lo, hi) = (ru.min(rv), ru.max(rv));
                parent[hi as usize] = lo;
            }
        }
    }
    // Normalize: label = min id in component.
    let mut label = vec![0u32; n];
    for v in 0..n as u32 {
        label[v as usize] = find(&mut parent, v);
    }
    let mut reps = label.clone();
    reps.sort_unstable();
    reps.dedup();
    Components {
        count: reps.len(),
        label,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edge_list;

    #[test]
    fn single_component() {
        let g = from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = components_parallel(&g, None, &Counters::new());
        assert_eq!(c.count, 1);
        assert!(c.label.iter().all(|&l| l == 0));
    }

    #[test]
    fn isolated_vertices_are_components() {
        let g = from_edge_list(5, &[(1, 2)]);
        let c = components_parallel(&g, None, &Counters::new());
        assert_eq!(c.count, 4);
        assert_eq!(c.label, vec![0, 1, 1, 3, 4]);
    }

    #[test]
    fn parallel_matches_sequential_on_random_graphs() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for trial in 0..8 {
            let n = 200 + trial * 50;
            let m = n / 2 + trial * 37;
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = from_edge_list(n, &edges);
            let p = components_parallel(&g, None, &Counters::new());
            let s = components_sequential(&g, None);
            assert_eq!(p.count, s.count, "trial {trial}");
            assert_eq!(p.label, s.label, "trial {trial}");
        }
    }

    #[test]
    fn edge_mask_splits_components() {
        // Path 0-1-2-3; killing middle edge (1,2) gives two components.
        let g = from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        let mid = g.find_edge(1, 2).unwrap();
        let alive = |e: u32| e != mid;
        let c = components_parallel(&g, Some(&alive), &Counters::new());
        assert_eq!(c.count, 2);
        assert_eq!(c.label[0], c.label[1]);
        assert_eq!(c.label[2], c.label[3]);
        assert_ne!(c.label[0], c.label[2]);
        let s = components_sequential(&g, Some(&alive));
        assert_eq!(c.label, s.label);
    }

    #[test]
    fn groups_and_dense_ids() {
        let g = from_edge_list(5, &[(0, 1), (3, 4)]);
        let c = components_parallel(&g, None, &Counters::new());
        let gs = c.groups();
        assert_eq!(gs, vec![vec![0, 1], vec![2], vec![3, 4]]);
        assert_eq!(c.dense_ids(), vec![0, 0, 1, 2, 2]);
    }

    #[test]
    fn empty_graph_zero_components() {
        let g = Graph::empty(0);
        let c = components_parallel(&g, None, &Counters::new());
        assert_eq!(c.count, 0);
    }
}
