//! Graph I/O: whitespace edge lists and Matrix Market files.
//!
//! The paper's dataset comes from the SuiteSparse (University of Florida)
//! collection, distributed as Matrix Market. These readers apply the same
//! preprocessing the paper describes: symmetrize, drop self-loops, dedup.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Largest usable vertex id: `id + 1` vertices must stay below the
/// `u32::MAX` sentinel (`sb_graph::csr::INVALID`) that every solver uses
/// for "no vertex".
pub const MAX_VERTEX_ID: u64 = u32::MAX as u64 - 2;

/// Errors from the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed `.sbg` binary file (dispatched through [`read_path`]).
    Sbg(crate::sbg::SbgError),
    /// Malformed content with a line number and message.
    Parse { line: usize, msg: String },
    /// A vertex id at or beyond the declared vertex count (the edge-list
    /// `n_hint`, or a Matrix Market dimension). Rejected rather than
    /// silently growing the graph: a caller that declared a size wants
    /// ids outside it treated as corruption.
    VertexOutOfRange {
        /// 1-based input line.
        line: usize,
        /// The offending (0-based) vertex id.
        id: u64,
        /// Ids must be `< limit`.
        limit: u64,
    },
    /// A vertex id too large to represent: ids above [`MAX_VERTEX_ID`]
    /// would collide with the `u32::MAX` INVALID sentinel or overflow the
    /// `u32` vertex-count domain.
    IdOverflow {
        /// 1-based input line.
        line: usize,
        /// The offending (0-based) vertex id.
        id: u64,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Sbg(e) => write!(f, "{e}"),
            IoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            IoError::VertexOutOfRange { line, id, limit } => write!(
                f,
                "vertex id {id} at line {line} is outside the declared vertex count {limit}"
            ),
            IoError::IdOverflow { line, id } => write!(
                f,
                "vertex id {id} at line {line} exceeds the maximum representable id {MAX_VERTEX_ID}"
            ),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Edges per parse-buffer flush in the streaming edge-list reader. At 8
/// bytes per parsed edge this bounds the reader's own staging memory at
/// 8 MiB regardless of input size; the builder it feeds is the only O(m)
/// consumer.
const CHUNK_EDGES: usize = 1 << 20;

/// Read a whitespace-separated edge list (`u v` per line, 0-based ids,
/// `#`/`%` comments).
///
/// Without a hint the vertex count is `max id + 1`. With `n_hint` the
/// count is exactly the hint, and any id `≥ n_hint` is rejected with
/// [`IoError::VertexOutOfRange`] — the graph never silently outgrows a
/// declared size. Ids above [`MAX_VERTEX_ID`] are rejected with
/// [`IoError::IdOverflow`] in either mode.
///
/// Parsing streams through a bounded chunk buffer ([`CHUNK_EDGES`])
/// flushed into the [`GraphBuilder`] as it fills, so ingesting a 100M+
/// edge list holds one copy of the edges (the builder's), not two. The
/// `sb_graph_io_parse_buffer_peak_bytes` gauge records the staging
/// buffer's peak occupancy so tests can pin the bound.
pub fn read_edge_list<R: Read>(reader: R, n_hint: Option<usize>) -> Result<Graph, IoError> {
    read_edge_list_chunked(reader, n_hint, CHUNK_EDGES).map(|(g, _)| g)
}

/// Streaming core of [`read_edge_list`]; returns the graph together with
/// the staging buffer's peak byte occupancy (also exported through the
/// `sb_graph_io_parse_buffer_peak_bytes` gauge) so tests can assert the
/// memory bound without racing on the process-global registry.
pub(crate) fn read_edge_list_chunked<R: Read>(
    reader: R,
    n_hint: Option<usize>,
    chunk_edges: usize,
) -> Result<(Graph, usize), IoError> {
    assert!(chunk_edges > 0);
    let br = BufReader::new(reader);
    let mut b = GraphBuilder::new(n_hint.unwrap_or(0));
    let mut chunk: Vec<(u32, u32)> = Vec::with_capacity(chunk_edges);
    let mut max_id = 0u32;
    let mut any = false;
    let mut peak_bytes = 0usize;
    let mut flush = |b: &mut GraphBuilder, chunk: &mut Vec<(u32, u32)>, max_id: u32| {
        peak_bytes = peak_bytes.max(chunk.len() * std::mem::size_of::<(u32, u32)>());
        // Ids were range-checked against the hint on parse; without a hint
        // the vertex set grows to cover what this chunk saw.
        b.ensure_vertices(max_id as usize + 1);
        b.reserve(chunk.len());
        for &(u, v) in chunk.iter() {
            b.push(u, v);
        }
        chunk.clear();
    };
    for (lineno, line) in br.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>| -> Result<u32, IoError> {
            let id = s
                .ok_or_else(|| IoError::Parse {
                    line: lineno + 1,
                    msg: "expected two vertex ids".into(),
                })?
                .parse::<u64>()
                .map_err(|e| IoError::Parse {
                    line: lineno + 1,
                    msg: e.to_string(),
                })?;
            if id > MAX_VERTEX_ID {
                return Err(IoError::IdOverflow {
                    line: lineno + 1,
                    id,
                });
            }
            if let Some(limit) = n_hint {
                if id >= limit as u64 {
                    return Err(IoError::VertexOutOfRange {
                        line: lineno + 1,
                        id,
                        limit: limit as u64,
                    });
                }
            }
            Ok(id as u32)
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_id = max_id.max(u).max(v);
        any = true;
        chunk.push((u, v));
        if chunk.len() == chunk_edges {
            flush(&mut b, &mut chunk, max_id);
        }
    }
    if !chunk.is_empty() || (any && b.num_vertices() <= max_id as usize) {
        flush(&mut b, &mut chunk, max_id);
    }
    sb_metrics::global()
        .gauge(
            "sb_graph_io_parse_buffer_peak_bytes",
            sb_metrics::Class::Runtime,
        )
        .set(peak_bytes as u64);
    Ok((b.build(), peak_bytes))
}

/// Write a graph as a 0-based edge list, one `u v` per line.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# vertices {} edges {}", g.num_vertices(), g.num_edges())?;
    for &[u, v] in g.edge_list() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Read a Matrix Market coordinate file as an undirected graph.
///
/// Accepts `pattern`/`real`/`integer` fields and `general`/`symmetric`
/// symmetry; numeric values are ignored (the study treats all graphs as
/// unweighted). Entries are 1-based per the format.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Graph, IoError> {
    let br = BufReader::new(reader);
    let mut lines = br.lines().enumerate();

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let (hline, header) = loop {
        match lines.next() {
            Some((i, l)) => {
                let l = l?;
                if !l.trim().is_empty() {
                    break (i, l);
                }
            }
            None => {
                // Absolute-line contract: the header was expected on the
                // first line of the file.
                return Err(IoError::Parse {
                    line: 1,
                    msg: "empty file".into(),
                });
            }
        }
    };
    let head: Vec<String> = header
        .split_whitespace()
        .map(|s| s.to_lowercase())
        .collect();
    if head.len() < 5 || head[0] != "%%matrixmarket" || head[2] != "coordinate" {
        return Err(IoError::Parse {
            line: hline + 1,
            msg: "expected '%%MatrixMarket matrix coordinate ...'".into(),
        });
    }

    // Size line: rows cols nnz (skipping comments). Errors carry absolute
    // file lines: a missing size line points one past the last line that
    // exists (header and comments counted), not at the header.
    let mut last_line = hline;
    let (rows, _cols, nnz, size_line) = loop {
        let (i, l) = lines.next().ok_or(IoError::Parse {
            line: last_line + 2,
            msg: "missing size line".into(),
        })?;
        last_line = i;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(IoError::Parse {
                line: i + 1,
                msg: "size line must have three fields".into(),
            });
        }
        let p = |s: &str| -> Result<usize, IoError> {
            s.parse().map_err(|_| IoError::Parse {
                line: i + 1,
                msg: format!("bad size value '{s}'"),
            })
        };
        break (p(parts[0])?, p(parts[1])?, p(parts[2])?, i);
    };
    // Dimensions bound the 0-based ids below, so they must themselves fit
    // the id domain (dimension d admits ids up to d - 1).
    let max_dim = rows.max(_cols);
    if max_dim as u64 > MAX_VERTEX_ID + 1 {
        return Err(IoError::IdOverflow {
            line: size_line + 1,
            id: max_dim as u64 - 1,
        });
    }

    let mut b = GraphBuilder::new(max_dim);
    b.reserve(nnz);
    let mut read = 0usize;
    for (i, l) in lines {
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let p = |s: Option<&str>| -> Result<u64, IoError> {
            s.ok_or(IoError::Parse {
                line: i + 1,
                msg: "entry needs row and column".into(),
            })?
            .parse()
            .map_err(|_| IoError::Parse {
                line: i + 1,
                msg: "bad index".into(),
            })
        };
        let r = p(it.next())?;
        let c = p(it.next())?;
        if r == 0 || c == 0 {
            return Err(IoError::Parse {
                line: i + 1,
                msg: "matrix market indices are 1-based (found a 0 index)".into(),
            });
        }
        // Entries beyond the declared dimensions are corruption, not a
        // request to grow the matrix.
        if r > rows as u64 {
            return Err(IoError::VertexOutOfRange {
                line: i + 1,
                id: r - 1,
                limit: rows as u64,
            });
        }
        if c > _cols as u64 {
            return Err(IoError::VertexOutOfRange {
                line: i + 1,
                id: c - 1,
                limit: _cols as u64,
            });
        }
        // Value field (if any) ignored.
        b.push((r - 1) as u32, (c - 1) as u32);
        read += 1;
    }
    if read != nnz {
        return Err(IoError::Parse {
            line: size_line + 1,
            msg: format!("size line promised {nnz} entries, found {read}"),
        });
    }
    Ok(b.build())
}

/// Read a graph from a path, dispatching on extension (`.mtx` → Matrix
/// Market, `.sbg` → zero-copy mapped binary CSR, anything else → edge
/// list).
pub fn read_path(path: &Path) -> Result<Graph, IoError> {
    if path.extension().is_some_and(|e| e == "sbg") {
        return crate::sbg::map_sbg(path).map_err(|e| match e {
            crate::sbg::SbgError::Io(io) => IoError::Io(io),
            other => IoError::Sbg(other),
        });
    }
    let f = std::fs::File::open(path)?;
    if path.extension().is_some_and(|e| e == "mtx") {
        read_matrix_market(f)
    } else {
        read_edge_list(f, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn edge_list_round_trip() {
        let g = crate::builder::from_edge_list(5, &[(0, 1), (1, 2), (3, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf), Some(5)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_skips_comments_and_blank_lines() {
        let text = "# comment\n\n0 1\n% other comment\n1 2\n";
        let g = read_edge_list(Cursor::new(text), None).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let err = read_edge_list(Cursor::new("0 x\n"), None).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
        let err = read_edge_list(Cursor::new("5\n"), None).unwrap_err();
        assert!(matches!(err, IoError::Parse { .. }));
    }

    #[test]
    fn matrix_market_symmetric_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    % a comment\n\
                    4 4 3\n1 2\n2 3\n4 4\n";
        let g = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 4);
        // Self-loop (4,4) dropped.
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn matrix_market_general_with_values_symmetrizes() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    3 3 4\n1 2 1.5\n2 1 2.5\n2 3 0.1\n3 3 9.0\n";
        let g = read_matrix_market(Cursor::new(text)).unwrap();
        // (1,2) and (2,1) merge, (3,3) self-loop drops.
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn matrix_market_entry_count_mismatch() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 3\n1 2\n";
        assert!(read_matrix_market(Cursor::new(text)).is_err());
    }

    #[test]
    fn matrix_market_bad_header() {
        let text = "%%NotMatrixMarket nope\n1 1 0\n";
        assert!(read_matrix_market(Cursor::new(text)).is_err());
    }

    #[test]
    fn matrix_market_header_case_and_whitespace_tolerant() {
        let text =
            "%%MATRIXMARKET MATRIX COORDINATE PATTERN SYMMETRIC\n  3   3   2 \n 1  2 \n2\t3\n";
        let g = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn matrix_market_crlf_line_endings() {
        let text = "%%MatrixMarket matrix coordinate pattern general\r\n2 2 1\r\n1 2\r\n";
        let g = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn matrix_market_rectangular_uses_max_dimension() {
        // Bipartite-style rectangular matrices appear in the UFL set; the
        // reader sizes the vertex set by max(rows, cols).
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 5 1\n1 5\n";
        let g = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert!(g.has_edge(0, 4));
    }

    #[test]
    fn matrix_market_rejects_zero_index() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n";
        let err = read_matrix_market(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 3, .. }), "{err}");
    }

    #[test]
    fn edge_list_rejects_ids_beyond_hint() {
        // A declared size is a contract, not a lower bound: ids past it
        // are corruption, never silent growth.
        let err = read_edge_list(Cursor::new("0 1\n2 5\n"), Some(3)).unwrap_err();
        assert!(
            matches!(
                err,
                IoError::VertexOutOfRange {
                    line: 2,
                    id: 5,
                    limit: 3
                }
            ),
            "{err}"
        );
        // Equal to the hint is already out of range (ids are 0-based).
        let err = read_edge_list(Cursor::new("0 3\n"), Some(3)).unwrap_err();
        assert!(
            matches!(err, IoError::VertexOutOfRange { id: 3, .. }),
            "{err}"
        );
        // The same input reads fine without the hint.
        let g = read_edge_list(Cursor::new("0 1\n2 5\n"), None).unwrap();
        assert_eq!(g.num_vertices(), 6);
    }

    #[test]
    fn edge_list_rejects_ids_near_u32_boundary() {
        // u32::MAX is the INVALID sentinel and u32::MAX - 1 would need a
        // vertex count of u32::MAX; both are typed errors instead of a
        // builder panic (or a sentinel-colliding graph).
        for id in [u32::MAX as u64, u32::MAX as u64 - 1] {
            let err = read_edge_list(Cursor::new(format!("0 {id}\n")), None).unwrap_err();
            assert!(
                matches!(err, IoError::IdOverflow { line: 1, id: got } if got == id),
                "{err}"
            );
        }
        // The largest representable id is accepted by the parser (the
        // range check fires before any allocation).
        let err = read_edge_list(Cursor::new(format!("0 {MAX_VERTEX_ID}\n")), Some(4)).unwrap_err();
        assert!(matches!(err, IoError::VertexOutOfRange { .. }), "{err}");
        // Ids past u64 remain plain parse errors.
        let err = read_edge_list(Cursor::new("0 99999999999999999999999\n"), None).unwrap_err();
        assert!(matches!(err, IoError::Parse { .. }), "{err}");
    }

    #[test]
    fn matrix_market_rejects_entries_beyond_declared_dims() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 3\n";
        let err = read_matrix_market(Cursor::new(text)).unwrap_err();
        assert!(
            matches!(
                err,
                IoError::VertexOutOfRange {
                    line: 3,
                    id: 2,
                    limit: 2
                }
            ),
            "{err}"
        );
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(matches!(
            read_matrix_market(Cursor::new(text)).unwrap_err(),
            IoError::VertexOutOfRange { line: 3, id: 2, .. }
        ));
    }

    #[test]
    fn matrix_market_rejects_overflowing_dimensions() {
        let text = format!(
            "%%MatrixMarket matrix coordinate pattern general\n{} 2 0\n",
            u32::MAX
        );
        let err = read_matrix_market(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, IoError::IdOverflow { line: 2, .. }), "{err}");
    }

    #[test]
    fn matrix_market_line_numbers_are_absolute_file_lines() {
        // Comments and the header count: the bad entry below sits on
        // physical line 7, and that is the line the error must name, not
        // its rank within the data section (which would be 2).
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    % comment line 2\n\
                    % comment line 3\n\
                    3 3 3\n\
                    1 2\n\
                    % comment line 6\n\
                    0 3\n\
                    2 3\n";
        let err = read_matrix_market(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 7, .. }), "{err}");

        // Same file shape, out-of-range entry instead: still line 7.
        let text = text.replace("0 3", "9 3");
        let err = read_matrix_market(Cursor::new(text)).unwrap_err();
        assert!(
            matches!(
                err,
                IoError::VertexOutOfRange {
                    line: 7,
                    id: 8,
                    limit: 3
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn matrix_market_size_line_errors_are_absolute() {
        // The malformed size line is physical line 4 (header + 2 comments).
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    % c\n% c\nnot a size line\n";
        let err = read_matrix_market(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 4, .. }), "{err}");

        // A file that ends before any size line points one past its last
        // physical line (line 4 here), not at the header.
        let text = "%%MatrixMarket matrix coordinate pattern general\n% c\n% c\n";
        let err = read_matrix_market(Cursor::new(text)).unwrap_err();
        let IoError::Parse { line, msg } = &err else {
            panic!("{err}")
        };
        assert_eq!(*line, 4, "{err}");
        assert!(msg.contains("missing size line"));
    }

    #[test]
    fn matrix_market_empty_file_reports_line_one() {
        let err = read_matrix_market(Cursor::new("")).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }), "{err}");
        let err = read_matrix_market(Cursor::new("\n\n  \n")).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn matrix_market_count_mismatch_points_at_size_line() {
        // Size line is physical line 3 after one comment; the mismatch is
        // reported against the promise made there.
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    % c\n2 2 3\n1 2\n";
        let err = read_matrix_market(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 3, .. }), "{err}");
    }

    #[test]
    fn edge_list_streaming_chunks_match_buffered_read() {
        // 1000 edges through a 7-edge chunk buffer must build the same
        // graph as one big buffer, with peak staging bounded by the chunk.
        let mut text = String::new();
        let n = 200u32;
        for i in 0..1000u32 {
            text.push_str(&format!("{} {}\n", i % n, (i * 7 + 3) % n));
        }
        let (small, small_peak) = read_edge_list_chunked(Cursor::new(&text), None, 7).unwrap();
        let (big, big_peak) = read_edge_list_chunked(Cursor::new(&text), None, 1 << 20).unwrap();
        assert_eq!(small, big);
        assert!(
            small_peak <= 7 * 8,
            "staging peak {small_peak} exceeds the 7-edge chunk bound"
        );
        // The wide-chunk path stages everything; the bounded path must not.
        assert_eq!(big_peak, 1000 * 8);
        assert!(small_peak < big_peak);
    }

    #[test]
    fn edge_list_streaming_grows_vertex_set_across_chunks() {
        // Max id appears in the last chunk; earlier flushes must not have
        // frozen the vertex count.
        let text = "0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n90 91\n";
        let (g, _) = read_edge_list_chunked(Cursor::new(text), None, 2).unwrap();
        assert_eq!(g.num_vertices(), 92);
        assert_eq!(g.num_edges(), 7);
        g.validate().unwrap();
    }

    #[test]
    fn edge_list_fuzz_case_duplicate_selfloop_heavy_with_hint() {
        // Minimized from a fuzzed raw edge list: duplicates, self-loops,
        // comments interleaved, and an id exactly at the hint boundary on
        // the last line. The reader must dedup/drop-loops for the valid
        // prefix and still flag the trailing violation with its line.
        let text = "3 3\n0 1\n1 0\n# dup\n0 1\n2 2\n\n1 4\n";
        let err = read_edge_list(Cursor::new(text), Some(4)).unwrap_err();
        assert!(
            matches!(
                err,
                IoError::VertexOutOfRange {
                    line: 8,
                    id: 4,
                    limit: 4
                }
            ),
            "{err}"
        );
        // One more vertex of headroom and the same input is clean.
        let ok = read_edge_list(Cursor::new(text), Some(5)).unwrap();
        assert_eq!(ok.num_vertices(), 5);
        assert_eq!(
            ok.num_edges(),
            2,
            "(0,1) survives dedup, (1,4) stays, loops drop"
        );
    }
}
