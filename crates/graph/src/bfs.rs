//! Level-synchronous parallel BFS.
//!
//! Step 1 of the BRIDGE decomposition (Algorithm 1 of the paper): compute a
//! BFS spanning tree as a parent array `P(v)` and level array `L(v)`, with
//! `P(root) = INVALID` and `L(root) = 0`.

use crate::csr::{Graph, VertexId, INVALID};
use rayon::prelude::*;
use sb_par::atomic::as_atomic_u32;
use sb_par::counters::Counters;
use std::sync::atomic::{AtomicU32, Ordering};

/// Result of a BFS traversal.
#[derive(Debug, Clone)]
pub struct BfsTree {
    /// Parent of each vertex in the BFS tree; `INVALID` for the root and for
    /// unreached vertices (distinguish via `level`).
    pub parent: Vec<VertexId>,
    /// BFS level of each vertex; `INVALID` for unreached vertices.
    pub level: Vec<u32>,
    /// For each reached non-root vertex, the edge id of its tree edge;
    /// `INVALID` otherwise.
    pub parent_edge: Vec<u32>,
    /// Number of vertices reached (including the root).
    pub reached: usize,
}

impl BfsTree {
    /// True when `v` was reached by the traversal.
    #[inline]
    pub fn is_reached(&self, v: VertexId) -> bool {
        self.level[v as usize] != INVALID
    }

    /// Edge ids of all tree edges.
    pub fn tree_edges(&self) -> Vec<u32> {
        self.parent_edge
            .iter()
            .copied()
            .filter(|&e| e != INVALID)
            .collect()
    }
}

/// Parallel BFS from `root`.
///
/// Frontier-expansion formulation: each round claims unvisited neighbors of
/// the current frontier with an atomic store-once on the parent array, then
/// compacts the claimed vertices into the next frontier. Rounds = eccentricity
/// of `root`, which is why the paper flags BRIDGE as slow on high-diameter
/// road networks — the `counters` output lets benches show exactly that.
pub fn bfs(g: &Graph, root: VertexId, counters: &Counters) -> BfsTree {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root out of range");
    let mut parent = vec![INVALID; n];
    let mut level = vec![INVALID; n];
    let mut parent_edge = vec![INVALID; n];
    level[root as usize] = 0;

    // `claim[v]` is the winning (parent, edge) packed as two u32 stores; we
    // use parent as the claim flag via compare_exchange from INVALID.
    let parent_at: &[AtomicU32] = as_atomic_u32(&mut parent);
    let level_at: &[AtomicU32] = as_atomic_u32(&mut level);
    let pedge_at: &[AtomicU32] = as_atomic_u32(&mut parent_edge);

    let mut frontier: Vec<VertexId> = vec![root];
    let mut depth = 0u32;
    let mut reached = 1usize;
    while !frontier.is_empty() {
        depth += 1;
        let round = counters.round_scope(frontier.len() as u64);
        counters.add_rounds(1);
        counters.add_kernel(frontier.len() as u64);
        let next: Vec<VertexId> = frontier
            .par_iter()
            .flat_map_iter(|&u| {
                g.arcs(u).filter_map(move |(w, e)| {
                    // Claim w for this round. The root already has level 0 and
                    // parent INVALID, so exclude it via the level array.
                    if level_at[w as usize].load(Ordering::Relaxed) != INVALID {
                        return None;
                    }
                    if level_at[w as usize]
                        .compare_exchange(INVALID, depth, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        parent_at[w as usize].store(u, Ordering::Relaxed);
                        pedge_at[w as usize].store(e, Ordering::Relaxed);
                        Some(w)
                    } else {
                        None
                    }
                })
            })
            .collect();
        counters.add_edges(frontier.par_iter().map(|&u| g.degree(u) as u64).sum());
        reached += next.len();
        counters.finish_round(round, || next.len() as u64);
        frontier = next;
    }

    BfsTree {
        parent,
        level,
        parent_edge,
        reached,
    }
}

/// BFS forest over a possibly disconnected graph: restarts from the lowest
/// unreached vertex until every vertex is covered. Returns the combined
/// parent/level arrays plus the list of roots.
pub fn bfs_forest(g: &Graph, counters: &Counters) -> (BfsTree, Vec<VertexId>) {
    let n = g.num_vertices();
    let mut combined = BfsTree {
        parent: vec![INVALID; n],
        level: vec![INVALID; n],
        parent_edge: vec![INVALID; n],
        reached: 0,
    };
    let mut roots = Vec::new();
    let mut scan_from = 0usize;
    while combined.reached < n {
        let root = (scan_from..n)
            .find(|&v| combined.level[v] == INVALID)
            .expect("unreached vertex must exist") as VertexId;
        scan_from = root as usize + 1;
        roots.push(root);
        let t = bfs_masked(g, root, &combined.level, counters);
        for v in 0..n {
            if t.level[v] != INVALID && combined.level[v] == INVALID {
                combined.level[v] = t.level[v];
                combined.parent[v] = t.parent[v];
                combined.parent_edge[v] = t.parent_edge[v];
                combined.reached += 1;
            }
        }
    }
    (combined, roots)
}

/// BFS from `root` that treats vertices already labeled in `occupied` as
/// absent. Used by the forest driver.
fn bfs_masked(g: &Graph, root: VertexId, occupied: &[u32], counters: &Counters) -> BfsTree {
    let n = g.num_vertices();
    let mut parent = vec![INVALID; n];
    let mut level = vec![INVALID; n];
    let mut parent_edge = vec![INVALID; n];
    level[root as usize] = 0;
    let mut frontier = vec![root];
    let mut depth = 0u32;
    let mut reached = 1usize;
    while !frontier.is_empty() {
        depth += 1;
        let round = counters.round_scope(frontier.len() as u64);
        counters.add_rounds(1);
        let mut next = Vec::new();
        for &u in &frontier {
            for (w, e) in g.arcs(u) {
                if occupied[w as usize] == INVALID && level[w as usize] == INVALID {
                    level[w as usize] = depth;
                    parent[w as usize] = u;
                    parent_edge[w as usize] = e;
                    next.push(w);
                    reached += 1;
                }
            }
        }
        counters.finish_round(round, || next.len() as u64);
        frontier = next;
    }
    BfsTree {
        parent,
        level,
        parent_edge,
        reached,
    }
}

/// Pseudo-diameter estimate by double sweep: BFS from `start`, then BFS
/// from the farthest vertex found; the second eccentricity lower-bounds the
/// diameter (exact on trees). The paper's BRIDGE/BFS costs are governed by
/// exactly this quantity — road networks have huge pseudo-diameters, kron
/// graphs tiny ones.
pub fn pseudo_diameter(g: &Graph, start: VertexId, counters: &Counters) -> u32 {
    if g.num_vertices() == 0 {
        return 0;
    }
    let first = bfs(g, start, counters);
    let far = (0..g.num_vertices())
        .filter(|&v| first.level[v] != INVALID)
        .max_by_key(|&v| first.level[v])
        .unwrap_or(start as usize) as VertexId;
    let second = bfs(g, far, counters);
    (0..g.num_vertices())
        .filter(|&v| second.level[v] != INVALID)
        .map(|v| second.level[v])
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edge_list;

    #[test]
    fn path_levels() {
        let g = from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let t = bfs(&g, 0, &Counters::new());
        assert_eq!(t.level, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.parent[0], INVALID);
        assert_eq!(t.parent[4], 3);
        assert_eq!(t.reached, 5);
        assert_eq!(t.tree_edges().len(), 4);
    }

    #[test]
    fn tree_edges_are_real_edges_and_levels_differ_by_one() {
        let g = from_edge_list(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6), (3, 6)]);
        let t = bfs(&g, 0, &Counters::new());
        for v in g.vertices() {
            if t.parent[v as usize] != INVALID {
                let p = t.parent[v as usize];
                assert!(g.has_edge(v, p));
                assert_eq!(t.level[v as usize], t.level[p as usize] + 1);
                assert_eq!(g.edge(t.parent_edge[v as usize]), (v.min(p), v.max(p)));
            }
        }
    }

    #[test]
    fn bfs_levels_are_shortest_distances() {
        // Cycle of 6: distances from 0 are 0,1,2,3,2,1.
        let g = from_edge_list(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let t = bfs(&g, 0, &Counters::new());
        assert_eq!(t.level, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn unreached_vertices_marked() {
        let g = from_edge_list(4, &[(0, 1)]);
        let t = bfs(&g, 0, &Counters::new());
        assert_eq!(t.reached, 2);
        assert!(!t.is_reached(2));
        assert!(!t.is_reached(3));
        assert_eq!(t.level[2], INVALID);
    }

    #[test]
    fn forest_covers_disconnected_graph() {
        let g = from_edge_list(6, &[(0, 1), (2, 3), (4, 5)]);
        let (t, roots) = bfs_forest(&g, &Counters::new());
        assert_eq!(t.reached, 6);
        assert_eq!(roots, vec![0, 2, 4]);
        assert!(t.level.iter().all(|&l| l != INVALID));
        // Exactly n - #components tree edges.
        assert_eq!(t.tree_edges().len(), 3);
    }

    #[test]
    fn pseudo_diameter_on_known_shapes() {
        // Path: exact diameter regardless of start.
        let g = from_edge_list(9, &(0..8u32).map(|i| (i, i + 1)).collect::<Vec<_>>());
        assert_eq!(pseudo_diameter(&g, 4, &Counters::new()), 8);
        // Star: diameter 2.
        let s = from_edge_list(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(pseudo_diameter(&s, 1, &Counters::new()), 2);
        // Cycle of 8: true diameter 4; double sweep reports ≥ 4 and ≤ 4.
        let mut e: Vec<(u32, u32)> = (0..7).map(|i| (i, i + 1)).collect();
        e.push((7, 0));
        let c = from_edge_list(8, &e);
        assert_eq!(pseudo_diameter(&c, 0, &Counters::new()), 4);
    }

    #[test]
    fn counters_track_rounds() {
        let g = from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let c = Counters::new();
        bfs(&g, 0, &c);
        // 4 productive expansions plus the final round that scans the last
        // frontier and finds it has no unvisited neighbors.
        assert_eq!(c.rounds(), 5);
    }
}
