//! Per-round observability for the symmetry-breaking solvers.
//!
//! The paper's headline claims are stated in *rounds*, not wall-clock —
//! "GM requires on the order of 14,000 iterations … MM-Rand finds the
//! remaining matches in another 400" — so this crate records exactly that
//! shape of evidence:
//!
//! * **Phase spans** — nested, named intervals (`decompose`,
//!   `induced-solve`, `cross-solve`, `fringe-peel`, `cleanup`, …) carrying
//!   wall time and the counter delta accumulated while the span was open.
//! * **Round records** — one per outer synchronous round: round index
//!   within its phase, active/frontier size, items settled, edges scanned,
//!   work items, and duration.
//! * **JSONL export** (one flat JSON object per line) plus a minimal
//!   parser, so tests can replay a trace and reconstruct the run's totals.
//! * **In-memory summary** — rounds to converge, p50/p95/max round time,
//!   and a settled-per-round histogram.
//!
//! The sink is thread-safe and *zero-cost when disabled*: a disabled sink
//! holds `None` internally, and every recording call starts with a single
//! branch on that `Option`. All hot-path callers thread an
//! `Arc<TraceSink>` obtained from [`TraceSink::disabled`] by default, so
//! no existing call site pays for tracing it did not ask for.

mod jsonl;
mod summary;

pub use jsonl::{parse_jsonl, ParseError};
pub use summary::TraceSummary;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Identifier of a phase span, unique within one sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u32);

/// Counter movement attributed to a span: the difference between the
/// solver counters at span end and span start.
///
/// This mirrors `sb_par::counters::CounterSnapshot` field-for-field, but
/// lives here so the dependency points the right way (`sb-par` depends on
/// `sb-trace`, never the reverse).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterDelta {
    /// Synchronous rounds executed inside the span.
    pub rounds: u64,
    /// Kernel launches (BSP executor) inside the span.
    pub kernel_launches: u64,
    /// Work items processed inside the span.
    pub work_items: u64,
    /// Edge scans performed inside the span.
    pub edges_scanned: u64,
}

impl std::ops::Add for CounterDelta {
    type Output = CounterDelta;

    /// Component-wise sum.
    fn add(self, other: CounterDelta) -> CounterDelta {
        CounterDelta {
            rounds: self.rounds + other.rounds,
            kernel_launches: self.kernel_launches + other.kernel_launches,
            work_items: self.work_items + other.work_items,
            edges_scanned: self.edges_scanned + other.edges_scanned,
        }
    }
}

/// One record of a completed synchronous round, as handed to the sink by
/// the executing solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundRecord {
    /// Round index within the enclosing phase, starting at 0.
    pub round: u64,
    /// Vertices/edges active (in the frontier/work list) this round.
    pub active: u64,
    /// Items settled this round: matched vertices, colored vertices, or
    /// MIS in/out decisions.
    pub settled: u64,
    /// Edge scans performed this round.
    pub edges_scanned: u64,
    /// Work items processed this round.
    pub work_items: u64,
    /// Wall time of the round, microseconds.
    pub duration_us: u64,
    /// True for a termination-check round that settled nothing by
    /// construction — e.g. the dense LMAX sweep that observes no live
    /// pointer remains and exits. Compact (frontier) forms may skip such
    /// rounds entirely when their worklist empties, so cross-mode round
    /// accounting compares *productive* (non-vacuous) rounds; see
    /// [`productive_rounds_per_phase`].
    pub vacuous: bool,
}

/// A single trace event. The JSONL file holds one event per line.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A phase span opened.
    SpanStart {
        /// Span id, unique within the trace.
        id: u32,
        /// Enclosing span, if any.
        parent: Option<u32>,
        /// Phase name (`decompose`, `induced-solve`, …).
        name: String,
        /// Microseconds since the sink was created.
        t_us: u64,
    },
    /// A phase span closed.
    SpanEnd {
        /// Id of the span being closed.
        id: u32,
        /// Microseconds since the sink was created.
        t_us: u64,
        /// Counter movement attributed to this span (including children).
        delta: CounterDelta,
    },
    /// One synchronous round completed.
    Round {
        /// Enclosing span id, if a span was open.
        span: Option<u32>,
        /// Name of the enclosing phase (empty when no span was open).
        phase: String,
        /// Payload of the round.
        record: RoundRecord,
    },
}

struct Inner {
    epoch: Instant,
    events: Vec<TraceEvent>,
    next_span: u32,
    /// Stack of (id, name, rounds recorded so far) for currently-open
    /// spans; phases are opened and closed by the orchestrating thread in
    /// LIFO order.
    open: Vec<(u32, &'static str, u64)>,
    /// Rounds recorded while no span was open.
    orphan_rounds: u64,
}

/// Thread-safe event sink. Construct with [`TraceSink::enabled`] to
/// record, or [`TraceSink::disabled`] for a no-op sink whose every method
/// is a single branch.
pub struct TraceSink {
    inner: Option<Mutex<Inner>>,
    /// Redundant with `inner.is_some()` but readable without locking; kept
    /// as an atomic so `TraceSink` stays `Sync` without interior `bool`
    /// aliasing questions.
    enabled: AtomicBool,
}

impl TraceSink {
    /// A recording sink. Wrap in `Arc` to share across solver layers.
    pub fn enabled() -> TraceSink {
        TraceSink {
            inner: Some(Mutex::new(Inner {
                epoch: Instant::now(),
                events: Vec::new(),
                next_span: 0,
                open: Vec::new(),
                orphan_rounds: 0,
            })),
            enabled: AtomicBool::new(true),
        }
    }

    /// A sink that records nothing; every call is one branch and a return.
    pub fn disabled() -> TraceSink {
        TraceSink {
            inner: None,
            enabled: AtomicBool::new(false),
        }
    }

    /// Whether this sink records anything. Callers use this to skip
    /// computing expensive record fields (e.g. settled counts).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Open a phase span. Returns `None` on a disabled sink.
    pub fn begin_span(&self, name: &'static str) -> Option<SpanId> {
        let inner = self.inner.as_ref()?;
        let mut inner = inner.lock().expect("trace sink poisoned");
        let id = inner.next_span;
        inner.next_span += 1;
        let parent = inner.open.last().map(|&(p, _, _)| p);
        let t_us = inner.epoch.elapsed().as_micros() as u64;
        inner.open.push((id, name, 0));
        inner.events.push(TraceEvent::SpanStart {
            id,
            parent,
            name: name.to_string(),
            t_us,
        });
        Some(SpanId(id))
    }

    /// Close a phase span, attributing `delta` to it.
    pub fn end_span(&self, id: SpanId, delta: CounterDelta) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let mut inner = inner.lock().expect("trace sink poisoned");
        if let Some(pos) = inner
            .open
            .iter()
            .rposition(|&(open_id, _, _)| open_id == id.0)
        {
            inner.open.remove(pos);
        }
        let t_us = inner.epoch.elapsed().as_micros() as u64;
        inner.events.push(TraceEvent::SpanEnd {
            id: id.0,
            t_us,
            delta,
        });
    }

    /// Record one completed round, attributed to the innermost open span.
    ///
    /// The round index is assigned by the sink — a contiguous 0-based
    /// counter per span — so indices are monotone and gap-free by
    /// construction, which the trace consistency tests rely on.
    pub fn record_round(
        &self,
        active: u64,
        settled: u64,
        edges_scanned: u64,
        work_items: u64,
        duration_us: u64,
        vacuous: bool,
    ) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let mut inner = inner.lock().expect("trace sink poisoned");
        let (span, phase, round) = match inner.open.last_mut() {
            Some((id, name, rounds)) => {
                let round = *rounds;
                *rounds += 1;
                (Some(*id), name.to_string(), round)
            }
            None => {
                let round = inner.orphan_rounds;
                inner.orphan_rounds += 1;
                (None, String::new(), round)
            }
        };
        inner.events.push(TraceEvent::Round {
            span,
            phase,
            record: RoundRecord {
                round,
                active,
                settled,
                edges_scanned,
                work_items,
                duration_us,
                vacuous,
            },
        });
    }

    /// Snapshot of all events recorded so far (empty for a disabled sink).
    pub fn events(&self) -> Vec<TraceEvent> {
        match self.inner.as_ref() {
            Some(inner) => inner.lock().expect("trace sink poisoned").events.clone(),
            None => Vec::new(),
        }
    }

    /// Compute the in-memory summary over everything recorded so far.
    /// Returns `None` for a disabled sink.
    pub fn summary(&self) -> Option<TraceSummary> {
        self.inner.as_ref().map(|inner| {
            TraceSummary::from_events(&inner.lock().expect("trace sink poisoned").events)
        })
    }

    /// Write the trace as JSONL (one event object per line).
    pub fn write_jsonl<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        for event in self.events() {
            jsonl::write_event(&mut w, &event)?;
        }
        Ok(())
    }

    /// Write the trace to `path` as JSONL, creating parent directories.
    pub fn save_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = std::fs::File::create(path)?;
        self.write_jsonl(std::io::BufWriter::new(file))
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Sum the counter deltas of all *top-level* spans (spans with no parent).
/// Child spans are already included in their parent's delta, so this is
/// the trace-side reconstruction of the run's total counter snapshot.
pub fn total_delta(events: &[TraceEvent]) -> CounterDelta {
    let top_level: std::collections::HashSet<u32> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::SpanStart {
                id, parent: None, ..
            } => Some(*id),
            _ => None,
        })
        .collect();
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::SpanEnd { id, delta, .. } if top_level.contains(id) => Some(*delta),
            _ => None,
        })
        .fold(CounterDelta::default(), |acc, d| acc + d)
}

/// Rounds recorded under each phase name, in first-appearance order.
pub fn rounds_per_phase(events: &[TraceEvent]) -> Vec<(String, u64)> {
    count_rounds_per_phase(events, |_| true)
}

/// *Productive* (non-vacuous) rounds per phase name, in first-appearance
/// order. This is the round count that is invariant across
/// dense/compact frontier modes: a dense solver may need one extra
/// sweep to observe that nothing is left (recorded with
/// `vacuous: true`), while the compact form's emptied worklist lets it
/// skip that sweep.
pub fn productive_rounds_per_phase(events: &[TraceEvent]) -> Vec<(String, u64)> {
    count_rounds_per_phase(events, |r| !r.vacuous)
}

/// Wall-clock duration of every *completed* span, as `(phase name, µs)`
/// pairs in span-end order. This is the per-request latency feed `sbreak
/// serve` aggregates into its `stats` response: each request records into
/// its own sink, and the server folds these pairs into per-phase
/// percentile summaries. Spans still open at snapshot time are skipped.
pub fn span_durations(events: &[TraceEvent]) -> Vec<(String, u64)> {
    let mut open: std::collections::HashMap<u32, (&str, u64)> = std::collections::HashMap::new();
    let mut out = Vec::new();
    for e in events {
        match e {
            TraceEvent::SpanStart { id, name, t_us, .. } => {
                open.insert(*id, (name.as_str(), *t_us));
            }
            TraceEvent::SpanEnd { id, t_us, .. } => {
                if let Some((name, start)) = open.remove(id) {
                    out.push((name.to_string(), t_us.saturating_sub(start)));
                }
            }
            TraceEvent::Round { .. } => {}
        }
    }
    out
}

fn count_rounds_per_phase(
    events: &[TraceEvent],
    keep: impl Fn(&RoundRecord) -> bool,
) -> Vec<(String, u64)> {
    let mut order: Vec<String> = Vec::new();
    let mut counts: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    for e in events {
        if let TraceEvent::Round { phase, record, .. } = e {
            if !counts.contains_key(phase) {
                order.push(phase.clone());
            }
            *counts.entry(phase.clone()).or_insert(0) += u64::from(keep(record));
        }
    }
    order
        .into_iter()
        .map(|p| {
            let c = counts[&p];
            (p, c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_round(sink: &TraceSink, settled: u64) {
        sink.record_round(10, settled, 5, 10, 3, false);
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        assert!(sink.begin_span("decompose").is_none());
        push_round(&sink, 1);
        assert!(sink.events().is_empty());
        assert!(sink.summary().is_none());
    }

    #[test]
    fn spans_nest_and_rounds_attach_to_innermost() {
        let sink = TraceSink::enabled();
        let outer = sink.begin_span("solve").unwrap();
        let inner = sink.begin_span("induced-solve").unwrap();
        push_round(&sink, 4);
        sink.end_span(
            inner,
            CounterDelta {
                rounds: 1,
                kernel_launches: 0,
                work_items: 10,
                edges_scanned: 5,
            },
        );
        push_round(&sink, 2);
        sink.end_span(
            outer,
            CounterDelta {
                rounds: 2,
                kernel_launches: 0,
                work_items: 25,
                edges_scanned: 9,
            },
        );

        let events = sink.events();
        assert_eq!(events.len(), 6);
        match &events[1] {
            TraceEvent::SpanStart { parent, name, .. } => {
                assert_eq!(*parent, Some(0));
                assert_eq!(name, "induced-solve");
            }
            other => panic!("unexpected event {other:?}"),
        }
        match &events[2] {
            TraceEvent::Round { span, phase, .. } => {
                assert_eq!(*span, Some(1));
                assert_eq!(phase, "induced-solve");
            }
            other => panic!("unexpected event {other:?}"),
        }
        match &events[4] {
            TraceEvent::Round { span, phase, .. } => {
                assert_eq!(*span, Some(0));
                assert_eq!(phase, "solve");
            }
            other => panic!("unexpected event {other:?}"),
        }

        // Only the top-level span contributes to the reconstructed total.
        let total = total_delta(&events);
        assert_eq!(total.rounds, 2);
        assert_eq!(total.work_items, 25);
        assert_eq!(total.edges_scanned, 9);
    }

    #[test]
    fn rounds_per_phase_counts_in_order() {
        let sink = TraceSink::enabled();
        let a = sink.begin_span("decompose").unwrap();
        push_round(&sink, 1);
        sink.end_span(a, CounterDelta::default());
        let b = sink.begin_span("cross-solve").unwrap();
        push_round(&sink, 1);
        push_round(&sink, 1);
        sink.end_span(b, CounterDelta::default());
        assert_eq!(
            rounds_per_phase(&sink.events()),
            vec![("decompose".to_string(), 1), ("cross-solve".to_string(), 2)]
        );
        // Round indices restart per span and are contiguous within it.
        let rounds: Vec<u64> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Round { record, .. } => Some(record.round),
                _ => None,
            })
            .collect();
        assert_eq!(rounds, vec![0, 0, 1]);
    }

    #[test]
    fn span_durations_pair_starts_with_ends() {
        let sink = TraceSink::enabled();
        let outer = sink.begin_span("solve").unwrap();
        let inner = sink.begin_span("decompose").unwrap();
        sink.end_span(inner, CounterDelta::default());
        sink.end_span(outer, CounterDelta::default());
        let left_open = sink.begin_span("cleanup").unwrap();
        let _ = left_open; // never closed: must not appear
        let durations = span_durations(&sink.events());
        let names: Vec<&str> = durations.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            ["decompose", "solve"],
            "end order, open spans skipped"
        );
        // The outer span fully contains the inner one.
        assert!(durations[1].1 >= durations[0].1);
    }

    #[test]
    fn sink_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceSink>();
    }
}
