//! JSONL serialization of trace events, plus the minimal parser used by
//! replay tests and external tooling.
//!
//! Every line is one flat JSON object discriminated by its `"type"` field:
//!
//! ```text
//! {"type":"span_start","id":0,"parent":null,"name":"decompose","t_us":12}
//! {"type":"span_end","id":0,"t_us":340,"rounds":3,"kernel_launches":0,
//!  "work_items":900,"edges_scanned":4000}
//! {"type":"round","span":0,"phase":"decompose","round":0,"active":128,
//!  "settled":40,"edges_scanned":1300,"work_items":128,"duration_us":95}
//! ```
//!
//! Values are only ever unsigned integers, `null`, or plain strings
//! (phase names — no escapes needed in practice, though the parser
//! understands the standard JSON escapes). Hand-rolled on purpose: the
//! build is offline, so no serde.

use crate::{CounterDelta, RoundRecord, TraceEvent};
use std::collections::HashMap;
use std::io::Write;

/// Serialize one event as a single JSONL line.
pub fn write_event<W: Write>(w: &mut W, event: &TraceEvent) -> std::io::Result<()> {
    match event {
        TraceEvent::SpanStart {
            id,
            parent,
            name,
            t_us,
        } => {
            let parent = match parent {
                Some(p) => p.to_string(),
                None => "null".to_string(),
            };
            writeln!(
                w,
                "{{\"type\":\"span_start\",\"id\":{id},\"parent\":{parent},\"name\":\"{}\",\"t_us\":{t_us}}}",
                escape(name)
            )
        }
        TraceEvent::SpanEnd { id, t_us, delta } => writeln!(
            w,
            "{{\"type\":\"span_end\",\"id\":{id},\"t_us\":{t_us},\"rounds\":{},\"kernel_launches\":{},\"work_items\":{},\"edges_scanned\":{}}}",
            delta.rounds, delta.kernel_launches, delta.work_items, delta.edges_scanned
        ),
        TraceEvent::Round {
            span,
            phase,
            record,
        } => {
            let span = match span {
                Some(s) => s.to_string(),
                None => "null".to_string(),
            };
            writeln!(
                w,
                "{{\"type\":\"round\",\"span\":{span},\"phase\":\"{}\",\"round\":{},\"active\":{},\"settled\":{},\"edges_scanned\":{},\"work_items\":{},\"duration_us\":{},\"vacuous\":{}}}",
                escape(phase),
                record.round,
                record.active,
                record.settled,
                record.edges_scanned,
                record.work_items,
                record.duration_us,
                record.vacuous
            )
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Error produced by [`parse_jsonl`], carrying the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line of the input that failed to parse.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace JSONL line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// One scalar JSON value as found in a trace line.
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Num(u64),
    Str(String),
    Bool(bool),
    Null,
}

impl Scalar {
    fn as_num(&self) -> Option<u64> {
        match self {
            Scalar::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Scalar::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn as_opt_num(&self) -> Option<Option<u64>> {
        match self {
            Scalar::Num(n) => Some(Some(*n)),
            Scalar::Null => Some(None),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a whole JSONL trace back into events. Blank lines are skipped.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, ParseError> {
    let mut events = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields = parse_object(trimmed).map_err(|message| ParseError { line, message })?;
        events.push(event_from_fields(&fields).map_err(|message| ParseError { line, message })?);
    }
    Ok(events)
}

fn event_from_fields(fields: &HashMap<String, Scalar>) -> Result<TraceEvent, String> {
    let get = |key: &str| -> Result<&Scalar, String> {
        fields
            .get(key)
            .ok_or_else(|| format!("missing field {key:?}"))
    };
    let num = |key: &str| -> Result<u64, String> {
        get(key)?
            .as_num()
            .ok_or_else(|| format!("field {key:?} must be a number"))
    };
    let kind = get("type")?
        .as_str()
        .ok_or_else(|| "field \"type\" must be a string".to_string())?;
    match kind {
        "span_start" => Ok(TraceEvent::SpanStart {
            id: num("id")? as u32,
            parent: get("parent")?
                .as_opt_num()
                .ok_or_else(|| "field \"parent\" must be a number or null".to_string())?
                .map(|p| p as u32),
            name: get("name")?
                .as_str()
                .ok_or_else(|| "field \"name\" must be a string".to_string())?
                .to_string(),
            t_us: num("t_us")?,
        }),
        "span_end" => Ok(TraceEvent::SpanEnd {
            id: num("id")? as u32,
            t_us: num("t_us")?,
            delta: CounterDelta {
                rounds: num("rounds")?,
                kernel_launches: num("kernel_launches")?,
                work_items: num("work_items")?,
                edges_scanned: num("edges_scanned")?,
            },
        }),
        "round" => Ok(TraceEvent::Round {
            span: get("span")?
                .as_opt_num()
                .ok_or_else(|| "field \"span\" must be a number or null".to_string())?
                .map(|s| s as u32),
            phase: get("phase")?
                .as_str()
                .ok_or_else(|| "field \"phase\" must be a string".to_string())?
                .to_string(),
            record: RoundRecord {
                round: num("round")?,
                active: num("active")?,
                settled: num("settled")?,
                edges_scanned: num("edges_scanned")?,
                work_items: num("work_items")?,
                duration_us: num("duration_us")?,
                // Absent in traces written before the flag existed.
                vacuous: match fields.get("vacuous") {
                    Some(v) => v
                        .as_bool()
                        .ok_or_else(|| "field \"vacuous\" must be a boolean".to_string())?,
                    None => false,
                },
            },
        }),
        other => Err(format!("unknown event type {other:?}")),
    }
}

/// Parse one flat JSON object of scalar values.
fn parse_object(s: &str) -> Result<HashMap<String, Scalar>, String> {
    let mut chars = s.char_indices().peekable();
    let mut fields = HashMap::new();

    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if let Some(&(_, '}')) = chars.peek() {
        chars.next();
        return Ok(fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        let value = parse_scalar(&mut chars)?;
        fields.insert(key, value);
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            Some((_, c)) => return Err(format!("expected ',' or '}}', found {c:?}")),
            None => return Err("unexpected end of line".to_string()),
        }
    }
    skip_ws(&mut chars);
    if let Some((_, c)) = chars.next() {
        return Err(format!("trailing content starting at {c:?}"));
    }
    Ok(fields)
}

type Chars<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_ws(chars: &mut Chars<'_>) {
    while matches!(chars.peek(), Some(&(_, c)) if c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn expect(chars: &mut Chars<'_>, want: char) -> Result<(), String> {
    match chars.next() {
        Some((_, c)) if c == want => Ok(()),
        Some((_, c)) => Err(format!("expected {want:?}, found {c:?}")),
        None => Err(format!("expected {want:?}, found end of line")),
    }
}

fn parse_string(chars: &mut Chars<'_>) -> Result<String, String> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            Some((_, '"')) => return Ok(out),
            Some((_, '\\')) => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 'u')) => {
                    let hex: String = (0..4)
                        .filter_map(|_| chars.next().map(|(_, c)| c))
                        .collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad unicode escape \\u{hex}"))?;
                    out.push(char::from_u32(code).ok_or("bad unicode codepoint")?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some((_, c)) => out.push(c),
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn parse_scalar(chars: &mut Chars<'_>) -> Result<Scalar, String> {
    match chars.peek() {
        Some(&(_, '"')) => Ok(Scalar::Str(parse_string(chars)?)),
        Some(&(_, 'n')) => {
            for want in "null".chars() {
                expect(chars, want)?;
            }
            Ok(Scalar::Null)
        }
        Some(&(_, 't')) => {
            for want in "true".chars() {
                expect(chars, want)?;
            }
            Ok(Scalar::Bool(true))
        }
        Some(&(_, 'f')) => {
            for want in "false".chars() {
                expect(chars, want)?;
            }
            Ok(Scalar::Bool(false))
        }
        Some(&(_, c)) if c.is_ascii_digit() => {
            let mut n: u64 = 0;
            while let Some(&(_, c)) = chars.peek() {
                if let Some(d) = c.to_digit(10) {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(d as u64))
                        .ok_or("number overflows u64")?;
                    chars.next();
                } else {
                    break;
                }
            }
            Ok(Scalar::Num(n))
        }
        Some(&(_, c)) => Err(format!("unexpected value start {c:?}")),
        None => Err("expected a value, found end of line".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterDelta, RoundRecord, TraceEvent};

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::SpanStart {
                id: 0,
                parent: None,
                name: "decompose".to_string(),
                t_us: 5,
            },
            TraceEvent::SpanStart {
                id: 1,
                parent: Some(0),
                name: "induced-solve".to_string(),
                t_us: 8,
            },
            TraceEvent::Round {
                span: Some(1),
                phase: "induced-solve".to_string(),
                record: RoundRecord {
                    round: 0,
                    active: 100,
                    settled: 42,
                    edges_scanned: 350,
                    work_items: 100,
                    duration_us: 17,
                    vacuous: false,
                },
            },
            TraceEvent::SpanEnd {
                id: 1,
                t_us: 30,
                delta: CounterDelta {
                    rounds: 1,
                    kernel_launches: 2,
                    work_items: 100,
                    edges_scanned: 350,
                },
            },
            TraceEvent::SpanEnd {
                id: 0,
                t_us: 44,
                delta: CounterDelta {
                    rounds: 1,
                    kernel_launches: 2,
                    work_items: 130,
                    edges_scanned: 400,
                },
            },
        ]
    }

    #[test]
    fn round_trips_through_jsonl() {
        let events = sample_events();
        let mut buf = Vec::new();
        for e in &events {
            write_event(&mut buf, e).unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), events.len());
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn parser_skips_blank_lines_and_reports_position() {
        let good = "{\"type\":\"span_start\",\"id\":0,\"parent\":null,\"name\":\"x\",\"t_us\":1}";
        let parsed = parse_jsonl(&format!("\n{good}\n\n")).unwrap();
        assert_eq!(parsed.len(), 1);

        let err = parse_jsonl(&format!("{good}\nnot json")).unwrap_err();
        assert_eq!(err.line, 2);

        let err = parse_jsonl("{\"type\":\"mystery\"}").unwrap_err();
        assert!(err.message.contains("mystery"), "{err}");
    }

    #[test]
    fn strings_with_escapes_survive() {
        let e = TraceEvent::SpanStart {
            id: 0,
            parent: None,
            name: "weird \"name\"\\with\nescapes".to_string(),
            t_us: 0,
        };
        let mut buf = Vec::new();
        write_event(&mut buf, &e).unwrap();
        let parsed = parse_jsonl(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed, vec![e]);
    }
}
